//! Craft the paper's adversarial data patterns (§V-D) against a chip
//! whose swizzle has been recovered, and measure how much worse they
//! make RowHammer.
//!
//! ```text
//! cargo run --example adversarial_patterns
//! ```

use dramscope::core::hammer::{self, AibConfig, Attack};
use dramscope::core::patterns::{nibble_pattern_row, CellLayout, CellPatternBuilder};
use dramscope::sim::{ChipProfile, DramChip};
use dramscope::testbed::Testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = DramChip::new(ChipProfile::test_small(), 99);
    let mut tb = Testbed::new(chip);

    // Stand-in for a completed swizzle reverse-engineering pass (see the
    // fig7_swizzle experiment for the real pipeline): take the layout
    // from ground truth.
    let gt = tb.chip().ground_truth();
    let layout = CellLayout::from_swizzle(&gt.swizzle, tb.chip().profile().row_bits, gt.mat_width);

    // A moderate dose: boosted BERs must stay below saturation for the
    // amplification to be visible (the observation suite does the same).
    let cfg = AibConfig {
        bank: 0,
        attack: Attack::Hammer { count: 1_200_000 },
    };
    // Accumulate over several victim rows for stable counts.
    let pairs: Vec<(u32, u32)> = (0..8).map(|i| (20 + 3 * i, 19 + 3 * i)).collect();

    let base_vic = nibble_pattern_row(&layout, 0xF);
    let base_aggr = nibble_pattern_row(&layout, 0x0);
    let adv_vic = nibble_pattern_row(&layout, 0x3);
    let adv_aggr = nibble_pattern_row(&layout, 0xC);
    let mut base = 0usize;
    let mut adv = 0usize;
    for &(aggressor, victim) in &pairs {
        // Baseline: victim all ones, aggressor all zeros.
        base += hammer::measure_victim_flips(
            &mut tb,
            cfg,
            aggressor,
            victim,
            &|c| base_vic[c as usize],
            &|c| base_aggr[c as usize],
        )?
        .len();
        // The paper's worst case: physical 0x3 victim vs 0xC aggressor
        // (2-bit runs, vertically opposite — O14).
        adv += hammer::measure_victim_flips(
            &mut tb,
            cfg,
            aggressor,
            victim,
            &|c| adv_vic[c as usize],
            &|c| adv_aggr[c as usize],
        )?
        .len();
    }

    println!("whole-row BER amplification (O14):");
    println!("  baseline (0xF/0x0): {base} flips");
    println!(
        "  adversarial (0x3/0xC): {adv} flips  ({:.2}x, paper reports up to 1.69x)",
        adv as f64 / base.max(1) as f64
    );

    // Targeted H_cnt reduction (O13): pick one victim cell, set its four
    // horizontal neighbours opposite, and watch the first flip arrive
    // earlier.
    let (aggressor, victim) = (20u32, 19u32);
    let target = layout.cell_at(70);
    let base_hcnt = hammer::hcnt_for_cell(
        &mut tb,
        0,
        aggressor,
        victim,
        &|_| 0,
        &|_| u64::MAX,
        target,
        6_000_000,
    )?;
    let mut b = CellPatternBuilder::solid(&layout, false);
    b.set_neighbors(target.0, target.1, 1, true);
    b.set_neighbors(target.0, target.1, 2, true);
    let adv_cols = b.columns();
    let adv_hcnt = hammer::hcnt_for_cell(
        &mut tb,
        0,
        aggressor,
        victim,
        &|c| adv_cols[c as usize],
        &|_| u64::MAX,
        target,
        6_000_000,
    )?;
    match (base_hcnt.count, adv_hcnt.count) {
        (Some(b0), Some(b1)) => println!(
            "targeted H_cnt (O13): baseline {b0}, adversarial {b1} ({:.2}x, paper up to 0.81x)",
            b1 as f64 / b0 as f64
        ),
        _ => println!("target cell did not flip within the ceiling; try another cell"),
    }
    Ok(())
}
