//! Quickstart: build a simulated DRAM chip, talk to it with standard
//! commands through the testbed, and watch RowHammer flip bits.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dramscope::sim::{ChipProfile, DramChip};
use dramscope::testbed::Testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small chip for instant results; swap in ChipProfile::mfr_a_x4_2021()
    // for the paper-scale device.
    let chip = DramChip::new(ChipProfile::test_small(), 42);
    let mut tb = Testbed::new(chip);

    println!("chip: {}", tb.chip().profile().label());
    println!(
        "{} banks x {} rows x {} bits",
        tb.chip().profile().banks,
        tb.rows(),
        tb.chip().profile().row_bits
    );

    // Plain write/read through ACT-WR-RD-PRE.
    tb.write_row_pattern(0, 100, 0xDEAD_BEEF)?;
    let data = tb.read_row(0, 100)?;
    assert!(data.iter().all(|&d| d == 0xDEAD_BEEF));
    println!("write/read round trip: ok");

    // Single-sided RowHammer: victims hold ones, the aggressor zeros.
    let aggressor = 20;
    for victim in [19, 21] {
        tb.write_row_pattern(0, victim, u64::MAX)?;
    }
    tb.write_row_pattern(0, aggressor, 0)?;

    for count in [100_000u64, 1_000_000, 2_000_000, 4_000_000] {
        // Re-arm the victims, then hammer.
        for victim in [19, 21] {
            tb.write_row_pattern(0, victim, u64::MAX)?;
        }
        tb.hammer(0, aggressor, count)?;
        let mut flips = 0;
        for victim in [19, 21] {
            flips += tb
                .read_row(0, victim)?
                .iter()
                .map(|d| (!d & 0xFFFF_FFFF).count_ones())
                .sum::<u32>();
        }
        println!("{count:>9} activations -> {flips} victim bitflips");
    }

    // RowCopy: the out-of-spec in-memory copy the paper uses as a probe.
    tb.write_row_pattern(0, 5, 0x1234_5678)?;
    tb.write_row_pattern(0, 9, 0)?;
    tb.rowcopy(0, 5, 9)?;
    assert!(tb.read_row(0, 9)?.iter().all(|&d| d == 0x1234_5678));
    println!("RowCopy within a subarray: data moved");

    Ok(())
}
