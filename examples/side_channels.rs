//! The §VI-C side channels, implemented: watch the power rail to locate
//! edge subarrays and smuggle bits, then unmask an on-die ECC.
//!
//! ```text
//! cargo run --example side_channels
//! ```

use dramscope::core::{ecc_probe, power_channel, trr_re};
use dramscope::sim::{ChipProfile, DramChip};
use dramscope::testbed::Testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Power analysis: edge-subarray rows drive two wordlines, so the
    //    supply current leaks which rows a victim touches.
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 5));
    println!("activation energy by row (model units):");
    for row in [5u32, 10, 50, 100, 240] {
        let e = power_channel::activation_energy(&mut tb, 0, row)?;
        println!("  row {row:>3}: {e} (edge rows cost double)");
    }
    let interval = power_channel::edge_interval_from_power(&mut tb, 0, 4)?;
    println!("edge-subarray interval from power alone: {interval:?} rows (cross-checks O5)\n");

    // 2. Covert channel: a sender picks edge vs interior rows; a receiver
    //    on the power rail decodes.
    let message = [true, false, false, true, true, false, true, false];
    let decoded = power_channel::transmit(&mut tb, 0, 10, 50, &message)?;
    println!("covert channel sent {message:?}");
    println!("covert channel got  {decoded:?}\n");

    // 3. TRR fingerprinting: is there an in-DRAM mitigation, and how big
    //    is its sampler?
    let mut mk = || Testbed::new(DramChip::new(ChipProfile::test_small().with_trr(2), 5));
    let verdict = trr_re::detect_trr(&mut mk, 0, 20, &[19, 21], 200_000, 12)?;
    println!("TRR probe on a 2-entry-sampler chip: {verdict:?}");
    if let Some(decoys) =
        trr_re::estimate_sampler_size(&mut mk, 0, 20, &[19, 21], 70, 6, 200_000, 12)?
    {
        println!("many-sided bypass succeeded with {decoys} decoys → sampler ≤ {decoys} entries\n");
    }

    // 4. On-die ECC: the first visible corruption arrives as a multi-bit
    //    event instead of a single flip.
    for ecc in [false, true] {
        let mut mk = move || {
            let p = if ecc {
                ChipProfile::test_small().with_on_die_ecc()
            } else {
                ChipProfile::test_small()
            };
            Testbed::new(DramChip::new(p, 5))
        };
        let v = ecc_probe::detect_on_die_ecc(&mut mk, 0, 20, 19, 8_000_000)?;
        println!("chip with on_die_ecc={ecc}: probe says {v:?}");
    }
    Ok(())
}
