//! The paper's HBM2 study: the same reverse-engineering techniques run
//! unchanged against the stacked device — and find a different structure
//! (8K-row edge segments, 8K coupled distance) than the DDR4 parts.
//!
//! Runs against the full-size simulated Mfr. A HBM2 stack; takes a few
//! seconds in release mode:
//!
//! ```text
//! cargo run --release --example hbm2_study
//! ```

use dramscope::core::hammer::{AibConfig, Attack};
use dramscope::core::{remap_re, rowcopy_probe};
use dramscope::sim::{ChipProfile, DramChip};
use dramscope::testbed::Testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ChipProfile::hbm2_mfr_a();
    println!(
        "device: {} ({} rows/bank, {}-bit rows)\n",
        profile.label(),
        profile.rows_per_bank,
        profile.row_bits
    );
    let mut tb = Testbed::new(DramChip::new(profile, 2024));

    // Structure via RowCopy, exactly like the DDR4 flow.
    let heights = rowcopy_probe::subarray_heights(&mut tb, 0, 0..4097)?;
    println!("subarray heights (first block): {heights:?}");

    let edge = rowcopy_probe::detect_edge_interval(&mut tb, 0)?;
    println!("edge-subarray interval: {edge:?} rows (paper: 8K)");

    let coupled = rowcopy_probe::detect_coupled_rows(&mut tb, 0)?;
    println!("coupled-row distance: {coupled:?} (paper: 8K)");

    // HBM2 from Mfr. A remaps rows internally, like its DDR4 parts.
    let cfg = AibConfig {
        bank: 0,
        attack: Attack::Hammer { count: 1_800_000 },
    };
    let verdict = remap_re::detect_remap(&mut tb, cfg, &[844])?;
    println!("row decoder: {verdict:?} (paper: Mfr. A remaps on HBM2 too)");

    // Grade against the sealed truth.
    let gt = tb.chip().ground_truth();
    assert_eq!(edge, Some(gt.edge_interval_wls));
    assert_eq!(coupled, gt.coupled_distance);
    println!("\nHBM2 structure discovered correctly through the command interface.");
    Ok(())
}
