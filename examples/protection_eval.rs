//! Evaluate AIB defenses against the coupled-row split attack (§VI):
//! oblivious vs coupled-aware tracking, MC-side row swapping (bypassed),
//! and in-DRAM DRFM (safe).
//!
//! ```text
//! cargo run --example protection_eval
//! ```

use dramscope::core::protect::{self, AttackStrategy, MisraGries, RowSwapDefense};
use dramscope::sim::{ChipProfile, DramChip};
use dramscope::testbed::Testbed;

fn fresh() -> Testbed {
    Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 91))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aggressor = 45;
    let coupled_distance = 1024;

    // Calibrate: the deterministic first-flip count of this silicon.
    let mut probe = fresh();
    let n_star = protect::first_flip_count(&mut probe, 0, aggressor, &[44, 46], 8_000_000)?
        .expect("victims must flip within the ceiling");
    println!("first-flip activation count N* = {n_star}\n");

    // 1. Unprotected chip.
    let mut tb = fresh();
    let mut noop = MisraGries::new(u64::MAX, 16);
    let out = protect::run_attack(
        &mut tb,
        &mut noop,
        aggressor,
        AttackStrategy::SingleRow,
        n_star * 2,
        n_star / 8,
    )?;
    println!(
        "unprotected single-row attack: {} victim flips",
        out.victim_flips
    );

    // 2. Misra-Gries tracker with victim refresh.
    let mut tb = fresh();
    let mut mg = MisraGries::new(n_star / 2, 16);
    let out = protect::run_attack(
        &mut tb,
        &mut mg,
        aggressor,
        AttackStrategy::SingleRow,
        n_star * 3,
        n_star / 8,
    )?;
    println!(
        "tracked single-row attack: {} flips after {} mitigations",
        out.victim_flips, out.mitigations
    );

    // 3. Row swap: safe against single-row, bypassed by the coupled split
    //    staying under the per-address threshold.
    let threshold = 3 * n_star / 4;
    let mut tb = fresh();
    let mut swap = RowSwapDefense::new(threshold, 1500);
    let single = protect::run_attack_rowswap(
        &mut tb,
        &mut swap,
        aggressor,
        AttackStrategy::SingleRow,
        n_star * 2,
        threshold / 4,
    )?;
    let per_address = (threshold - 1) / 4 * 4;
    let mut tb = fresh();
    let mut swap2 = RowSwapDefense::new(threshold, 1500);
    let split = protect::run_attack_rowswap(
        &mut tb,
        &mut swap2,
        aggressor,
        AttackStrategy::CoupledSplit {
            distance: coupled_distance,
        },
        2 * per_address,
        per_address / 4,
    )?;
    println!(
        "row swap: single-row {} flips ({} swaps); coupled split {} flips ({} swaps) — \
         the alias bypasses MC-side swapping (O3)",
        single.victim_flips, single.mitigations, split.victim_flips, split.mitigations
    );

    // 4. DRFM: the in-DRAM mitigation knows its own coupling and remap.
    let mut tb = fresh();
    tb.write_row_pattern(0, aggressor - 1, u64::MAX)?;
    tb.write_row_pattern(0, aggressor + 1, u64::MAX)?;
    tb.write_row_pattern(0, aggressor, 0)?;
    tb.hammer(0, aggressor, 3 * n_star / 4)?;
    protect::drfm_refresh(&mut tb, 0, aggressor)?;
    tb.hammer(0, aggressor, 3 * n_star / 4)?;
    let mut flips = 0u32;
    for v in [aggressor - 1, aggressor + 1] {
        flips += tb
            .read_row(0, v)?
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum::<u32>();
    }
    println!("DRFM between sub-threshold bursts: {flips} flips (1.5x N* total dose)");
    Ok(())
}
