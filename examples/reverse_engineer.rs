//! Reverse-engineer an "unknown" chip exactly the way DRAMScope does:
//! RowCopy probing for structure, retention for polarity, RowHammer for
//! adjacency — all through the command interface, then grade the answers
//! against the hidden ground truth.
//!
//! ```text
//! cargo run --example reverse_engineer
//! ```

use dramscope::core::hammer::{AibConfig, Attack};
use dramscope::core::{remap_re, retention_probe, rowcopy_probe};
use dramscope::sim::{ChipProfile, DramChip, Time};
use dramscope::testbed::Testbed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend we don't know what this is: a coupled, internally-remapped
    // chip in the Mfr. A style.
    let chip = DramChip::new(ChipProfile::test_small_coupled(), 7);
    let mut tb = Testbed::new(chip);
    println!("device under test: (unknown; only the command interface is used)\n");

    // 1. Subarray structure via RowCopy.
    let heights = rowcopy_probe::subarray_heights(&mut tb, 0, 0..257)?;
    println!("subarray heights (first segment+): {heights:?}");

    // 2. Edge-subarray interval (tandem pairs, O5).
    let edge = rowcopy_probe::detect_edge_interval(&mut tb, 0)?;
    println!("edge-subarray interval: {edge:?} rows");

    // 3. Coupled rows (O3).
    let coupled = rowcopy_probe::detect_coupled_rows(&mut tb, 0)?;
    println!("coupled-row distance: {coupled:?}");

    // 4. Cross-subarray copy inversion (true-/anti-cell hint).
    let inverted = rowcopy_probe::detect_copy_inversion(&mut tb, 0, 0)?;
    println!("cross-subarray copies inverted: {inverted:?}");

    // 5. Cell polarity via retention (heated to accelerate).
    tb.set_temperature(85.0);
    let verdicts = retention_probe::classify_rows(&mut tb, 0, &[10, 50], Time::from_ms(120_000))?;
    println!(
        "retention polarity: {:?}",
        retention_probe::polarity_scheme(&verdicts)
    );
    tb.set_temperature(75.0);

    // 6. Internal row remapping via single-sided RowHammer.
    let cfg = AibConfig {
        bank: 0,
        attack: Attack::Hammer { count: 1_500_000 },
    };
    let verdict = remap_re::detect_remap(&mut tb, cfg, &[12])?;
    println!("row decoder: {verdict:?}");
    let map = remap_re::adjacency_map(&mut tb, cfg, 8..24)?;
    let chains = remap_re::physical_chains(&map);
    println!("physical row order (pins 8..24): {:?}", chains[0]);

    // Grade against the hidden truth.
    let gt = tb.chip().ground_truth();
    println!("\n--- ground truth (sealed during the analysis) ---");
    println!("composition block: {:?}", gt.composition);
    println!("edge interval: {} rows", gt.edge_interval_wls);
    println!("coupled distance: {:?}", gt.coupled_distance);
    println!("remap: {:?}, polarity: {:?}", gt.remap, gt.polarity);
    assert_eq!(edge, Some(gt.edge_interval_wls));
    assert_eq!(coupled, gt.coupled_distance);
    println!("\nall discovered structures match the silicon.");
    Ok(())
}
