//! # dramscope
//!
//! Facade crate for the DRAMScope (ISCA 2024) reproduction: a
//! command-level study of DRAM microarchitecture and activate-induced
//! bitflip (AIB) characteristics, rebuilt in Rust on top of a simulated
//! silicon substrate.
//!
//! The workspace splits into:
//!
//! * [`sim`] — the DRAM device simulator (hidden microarchitecture,
//!   6F² cell physics, AIB/retention/RowCopy effects);
//! * [`module`] — RDIMM assembly: RCD address inversion, DQ twisting,
//!   controller address mapping;
//! * [`testbed`] — a SoftMC/DRAM-Bender-style programmable command
//!   sequencer with thermal control and measurement collection;
//! * [`trace`] — command-trace capture, a compact versioned binary trace
//!   format, deterministic bit-for-bit replay, and golden-trace diffing;
//! * [`telemetry`] — zero-dependency deterministic metrics: counters,
//!   gauges, log2 histograms, and phase/span timers keyed to simulated
//!   time (byte-stable JSON-lines snapshots);
//! * [`perf`] — the host-clock other half of telemetry: a span-tree
//!   profiler over the same phase/span markers, a zero-dependency bench
//!   harness, `BENCH_*.json` performance snapshots, and a regression
//!   gate;
//! * [`core`] — the DRAMScope toolkit itself: reverse-engineering
//!   pipelines, observation validators (O1–O14), attacks and protections;
//! * [`service`] — characterization-as-a-service: the `dramscoped`
//!   JSON-lines daemon with in-flight dedup and a content-addressed
//!   dossier cache over the fleet pool;
//! * [`obs`] — structured observability: sequenced events with
//!   correlation ids, a ring-buffered bus with cursor tails, a rotating
//!   on-disk journal with total decoding, and Prometheus text
//!   exposition of the telemetry registry.
//!
//! # Quickstart
//!
//! ```
//! use dramscope::sim::{ChipProfile, DramChip};
//!
//! let chip = DramChip::new(ChipProfile::test_small(), 1);
//! assert_eq!(chip.profile().banks, 2);
//! ```
//!
//! See `examples/` for full reverse-engineering walkthroughs.

#![warn(missing_docs)]

pub use dram_module as module;
pub use dram_obs as obs;
pub use dram_perf as perf;
pub use dram_sim as sim;
pub use dram_telemetry as telemetry;
pub use dram_testbed as testbed;
pub use dram_trace as trace;
pub use dramscope_core as core;
pub use dramscope_service as service;
