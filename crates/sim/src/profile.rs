//! Chip profiles: the public datasheet face and the hidden microarchitecture.
//!
//! A [`ChipProfile`] carries two kinds of information:
//!
//! * **Public** fields a real datasheet would disclose: vendor, I/O width,
//!   density, year, bank count, row count, row width, timings.
//! * **Hidden** fields (`HiddenConfig`, crate-private) that real vendors
//!   keep proprietary and that the DRAMScope toolkit must reverse-engineer:
//!   subarray composition, edge-subarray interval, coupled-row aliasing,
//!   MAT width, internal row remapping, data swizzling, and cell polarity.
//!
//! The preset constructors reproduce the device population of the paper's
//! Table I with the per-device structures of Table III.

use crate::disturb::DisturbModel;
use crate::geometry::BankGeometry;
use crate::mitigation::TrrConfig;
use crate::remap::RowRemap;
use crate::swizzle::SwizzleMap;
use crate::time::TimingParams;
use std::fmt;

/// DRAM manufacturer, anonymized as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Vendor {
    /// Mfr. A (row-remapping DDR4 and HBM2; 640/576- or 832/768-row subarrays).
    A,
    /// Mfr. B (832/768-row subarrays, no internal remapping).
    B,
    /// Mfr. C (688/680/672-row subarrays, true-/anti-cell interleaving).
    C,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::A => write!(f, "Mfr. A"),
            Vendor::B => write!(f, "Mfr. B"),
            Vendor::C => write!(f, "Mfr. C"),
        }
    }
}

/// Chip I/O width (the `×n` of the datasheet) or HBM2 stack type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoWidth {
    /// 4 data pins; 32-bit RD_data per read burst.
    X4,
    /// 8 data pins; 64-bit RD_data per read burst.
    X8,
    /// HBM2 stack (modeled per pseudo-channel; 64-bit RD_data).
    Hbm2,
}

impl IoWidth {
    /// Bits delivered by one chip for one `RD` command (paper Table II,
    /// "RD_data").
    pub const fn rd_bits(self) -> u32 {
        match self {
            IoWidth::X4 => 32,
            IoWidth::X8 | IoWidth::Hbm2 => 64,
        }
    }

    /// Number of DQ pins.
    pub const fn dq_pins(self) -> u32 {
        match self {
            IoWidth::X4 => 4,
            IoWidth::X8 => 8,
            IoWidth::Hbm2 => 64,
        }
    }
}

impl fmt::Display for IoWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoWidth::X4 => write!(f, "x4"),
            IoWidth::X8 => write!(f, "x8"),
            IoWidth::Hbm2 => write!(f, "HBM2"),
        }
    }
}

/// Cell polarity scheme of a chip (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolarityScheme {
    /// Every cell is a true-cell (charged = 1). Mfr. A and Mfr. B.
    AllTrue,
    /// True- and anti-cells interleave at subarray granularity
    /// (even subarrays true, odd subarrays anti). Mfr. C.
    SubarrayInterleaved,
}

/// The hidden, vendor-proprietary microarchitecture of a chip.
///
/// Crate-private by design: reverse-engineering code must not read it.
/// Tests access a read-only copy through
/// [`DramChip::ground_truth`](crate::DramChip::ground_truth).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HiddenConfig {
    /// Repeating block of subarray heights (in wordlines), e.g.
    /// `[640 × 11, 576 × 2]` for Mfr. A 2016 (Table III).
    pub composition: Vec<u32>,
    /// Edge-subarray interval in wordlines: the bank splits into segments
    /// of this many wordlines; each segment's first and last subarrays are
    /// the edge tandem pair (Table III, "edge subarray interval").
    pub edge_interval: u32,
    /// Whether two addressable rows fold onto each physical wordline
    /// (coupled-row activation, paper O3).
    pub coupled: bool,
    /// Cells per MAT row (paper O2: 512 or 1024 for the tested ×4 parts).
    pub mat_width: u32,
    /// Internal logical→physical row remapping (common pitfall 2).
    pub remap: RowRemap,
    /// Intra-chip data swizzling (paper O1).
    pub swizzle: SwizzleMap,
    /// True-/anti-cell arrangement.
    pub polarity: PolarityScheme,
    /// Disturbance (AIB) physics parameters.
    pub disturb: DisturbModel,
    /// In-DRAM TRR-style mitigation engine (disabled on every preset,
    /// matching the paper's methodology; enable with
    /// [`ChipProfile::with_trr`]).
    pub trr: TrrConfig,
    /// On-die ECC: each RD_data word protected by a Hamming SEC code
    /// whose parity lives in reserved (non-host-addressable) columns.
    pub on_die_ecc: bool,
}

/// A complete chip configuration: public datasheet fields plus the hidden
/// microarchitecture.
///
/// Use the preset constructors (`mfr_a_x4_2016`, …) for the paper's device
/// population, or [`ChipProfile::test_small`] /
/// [`ChipProfile::test_small_coupled`] for fast unit tests.
///
/// # Example
///
/// ```
/// use dram_sim::{ChipProfile, Vendor, IoWidth};
/// let p = ChipProfile::mfr_a_x4_2016();
/// assert_eq!(p.vendor, Vendor::A);
/// assert_eq!(p.io_width, IoWidth::X4);
/// assert_eq!(p.rows_per_bank, 1 << 17);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChipProfile {
    /// Manufacturer.
    pub vendor: Vendor,
    /// I/O width / stack type.
    pub io_width: IoWidth,
    /// Manufacturing year (Table I).
    pub year: u16,
    /// Density in gigabits (8 Gb for all DDR4 parts in Table I).
    pub density_gbit: u32,
    /// Banks per chip.
    pub banks: u32,
    /// Addressable rows per bank.
    pub rows_per_bank: u32,
    /// Data bits per addressable row.
    pub row_bits: u32,
    /// Timing parameters.
    pub timing: TimingParams,
    pub(crate) hidden: HiddenConfig,
}

impl ChipProfile {
    /// A short human-readable identifier, e.g. `"Mfr. A x4 2016"`.
    pub fn label(&self) -> String {
        match self.io_width {
            IoWidth::Hbm2 => format!("{} HBM2 4-Hi", self.vendor),
            w => format!("{} {} {}", self.vendor, w, self.year),
        }
    }

    /// The bank geometry implied by this profile.
    pub fn bank_geometry(&self) -> BankGeometry {
        BankGeometry::new(
            self.rows_per_bank,
            self.row_bits,
            self.hidden.mat_width,
            if self.hidden.coupled { 2 } else { 1 },
        )
    }

    /// Host-addressable column addresses per row. With on-die ECC
    /// enabled, the tail columns are reserved for parity and hidden from
    /// the host.
    pub fn cols_per_row(&self) -> u32 {
        let raw = self.raw_cols_per_row();
        if self.hidden.on_die_ecc {
            crate::ecc::data_columns(raw, self.io_width.rd_bits())
        } else {
            raw
        }
    }

    /// Physical column addresses per row (including any parity columns).
    pub fn raw_cols_per_row(&self) -> u32 {
        self.row_bits / self.io_width.rd_bits()
    }

    fn ddr4_x4(vendor: Vendor, year: u16) -> ChipProfile {
        ChipProfile {
            vendor,
            io_width: IoWidth::X4,
            year,
            density_gbit: 8,
            banks: 16,
            rows_per_bank: 1 << 17,
            row_bits: 4096,
            timing: TimingParams::ddr4(),
            hidden: HiddenConfig {
                composition: vec![],
                edge_interval: 0,
                coupled: false,
                mat_width: 512,
                remap: RowRemap::Identity,
                swizzle: SwizzleMap::vendor_a(32, 4096, 512),
                polarity: PolarityScheme::AllTrue,
                disturb: DisturbModel::default(),
                trr: TrrConfig::disabled(),
                on_die_ecc: false,
            },
        }
    }

    fn ddr4_x8(vendor: Vendor, year: u16) -> ChipProfile {
        ChipProfile {
            io_width: IoWidth::X8,
            rows_per_bank: 1 << 16,
            row_bits: 8192,
            ..Self::ddr4_x4(vendor, year)
        }
    }

    /// Composition `11 × 640 + 2 × 576` rows (per 8192, Table III).
    fn composition_640() -> Vec<u32> {
        let mut c = vec![640; 11];
        c.extend([576, 576]);
        c
    }

    /// Composition `4 × 832 + 1 × 768` rows (per 4096, Table III).
    fn composition_832() -> Vec<u32> {
        vec![832, 832, 832, 832, 768]
    }

    /// Composition `2 × 688 + 1 × 672` rows (per 2048, Table III).
    fn composition_688() -> Vec<u32> {
        vec![688, 688, 672]
    }

    /// Composition `1 × 688 + 2 × 680` rows (per 2048, Table III).
    fn composition_688_680() -> Vec<u32> {
        vec![688, 680, 680]
    }

    /// Mfr. A ×4 8 Gb, 2016 (also 2017): 640/576-row subarrays, edge per
    /// 16 K rows, coupled rows at 64 K distance, internal row remapping.
    pub fn mfr_a_x4_2016() -> ChipProfile {
        let mut p = Self::ddr4_x4(Vendor::A, 2016);
        p.hidden.composition = Self::composition_640();
        p.hidden.edge_interval = 16 << 10;
        p.hidden.coupled = true;
        p.hidden.remap = RowRemap::MfrA;
        p
    }

    /// Mfr. A ×4 8 Gb, 2017 — same structure as 2016.
    pub fn mfr_a_x4_2017() -> ChipProfile {
        ChipProfile {
            year: 2017,
            ..Self::mfr_a_x4_2016()
        }
    }

    /// Mfr. A ×4 8 Gb, 2018 (also 2021): 832/768-row subarrays, edge per
    /// 32 K rows, no coupling, internal row remapping.
    pub fn mfr_a_x4_2018() -> ChipProfile {
        let mut p = Self::ddr4_x4(Vendor::A, 2018);
        p.hidden.composition = Self::composition_832();
        p.hidden.edge_interval = 32 << 10;
        p.hidden.coupled = false;
        p.hidden.remap = RowRemap::MfrA;
        p
    }

    /// Mfr. A ×4 8 Gb, 2021 — same structure as 2018.
    pub fn mfr_a_x4_2021() -> ChipProfile {
        ChipProfile {
            year: 2021,
            ..Self::mfr_a_x4_2018()
        }
    }

    /// Mfr. A ×8 8 Gb, 2017 (also 2019): 640/576-row subarrays, edge per
    /// 16 K rows.
    pub fn mfr_a_x8_2017() -> ChipProfile {
        let mut p = Self::ddr4_x8(Vendor::A, 2017);
        p.hidden.composition = Self::composition_640();
        p.hidden.edge_interval = 16 << 10;
        p.hidden.remap = RowRemap::MfrA;
        p.hidden.swizzle = SwizzleMap::vendor_a(64, 8192, 512);
        p
    }

    /// Mfr. A ×8 8 Gb, 2019 — same structure as 2017.
    pub fn mfr_a_x8_2019() -> ChipProfile {
        ChipProfile {
            year: 2019,
            ..Self::mfr_a_x8_2017()
        }
    }

    /// Mfr. A ×8 8 Gb, 2018: 832/768-row subarrays, edge per 32 K rows.
    pub fn mfr_a_x8_2018() -> ChipProfile {
        let mut p = Self::ddr4_x8(Vendor::A, 2018);
        p.hidden.composition = Self::composition_832();
        p.hidden.edge_interval = 32 << 10;
        p.hidden.remap = RowRemap::MfrA;
        p.hidden.swizzle = SwizzleMap::vendor_a(64, 8192, 512);
        p
    }

    /// Mfr. B ×4 8 Gb, 2019: 832/768-row subarrays, edge per 32 K rows,
    /// coupled rows at 64 K distance, no internal remapping.
    pub fn mfr_b_x4_2019() -> ChipProfile {
        let mut p = Self::ddr4_x4(Vendor::B, 2019);
        p.hidden.composition = Self::composition_832();
        p.hidden.edge_interval = 32 << 10;
        p.hidden.coupled = true;
        p.hidden.mat_width = 1024;
        p.hidden.swizzle = SwizzleMap::vendor_b(32, 4096, 1024);
        p
    }

    /// Mfr. B ×8 8 Gb, 2017 (also 2018, 2019): 832/768-row subarrays, edge
    /// per 32 K rows.
    pub fn mfr_b_x8_2017() -> ChipProfile {
        let mut p = Self::ddr4_x8(Vendor::B, 2017);
        p.hidden.composition = Self::composition_832();
        p.hidden.edge_interval = 32 << 10;
        p.hidden.mat_width = 1024;
        p.hidden.swizzle = SwizzleMap::vendor_b(64, 8192, 1024);
        p
    }

    /// Mfr. B ×8 8 Gb, 2018 — same structure as 2017.
    pub fn mfr_b_x8_2018() -> ChipProfile {
        ChipProfile {
            year: 2018,
            ..Self::mfr_b_x8_2017()
        }
    }

    /// Mfr. B ×8 8 Gb, 2019 — same structure as 2017.
    pub fn mfr_b_x8_2019() -> ChipProfile {
        ChipProfile {
            year: 2019,
            ..Self::mfr_b_x8_2017()
        }
    }

    /// Mfr. C ×4 8 Gb, 2018 (also 2021): 688/672-row subarrays, edge per
    /// 32 K rows, true-/anti-cell interleaving, no remapping.
    pub fn mfr_c_x4_2018() -> ChipProfile {
        let mut p = Self::ddr4_x4(Vendor::C, 2018);
        p.hidden.composition = Self::composition_688();
        p.hidden.edge_interval = 32 << 10;
        p.hidden.swizzle = SwizzleMap::vendor_c(32, 4096, 512);
        p.hidden.polarity = PolarityScheme::SubarrayInterleaved;
        p
    }

    /// Mfr. C ×4 8 Gb, 2021 — same structure as 2018.
    pub fn mfr_c_x4_2021() -> ChipProfile {
        ChipProfile {
            year: 2021,
            ..Self::mfr_c_x4_2018()
        }
    }

    /// Mfr. C ×8 8 Gb, 2016: 688/680-row subarrays, edge per 4 K rows.
    pub fn mfr_c_x8_2016() -> ChipProfile {
        let mut p = Self::ddr4_x8(Vendor::C, 2016);
        p.hidden.composition = Self::composition_688_680();
        p.hidden.edge_interval = 4 << 10;
        p.hidden.swizzle = SwizzleMap::vendor_c(64, 8192, 512);
        p.hidden.polarity = PolarityScheme::SubarrayInterleaved;
        p
    }

    /// Mfr. C ×8 8 Gb, 2019: 688/672-row subarrays, edge per 32 K rows.
    pub fn mfr_c_x8_2019() -> ChipProfile {
        let mut p = Self::ddr4_x8(Vendor::C, 2019);
        p.hidden.composition = Self::composition_688();
        p.hidden.edge_interval = 32 << 10;
        p.hidden.swizzle = SwizzleMap::vendor_c(64, 8192, 512);
        p.hidden.polarity = PolarityScheme::SubarrayInterleaved;
        p
    }

    /// Mfr. A HBM2 4-Hi stack (per pseudo-channel model): 832/768-row
    /// subarrays, edge per 8 K rows, coupled rows at 8 K distance.
    pub fn hbm2_mfr_a() -> ChipProfile {
        ChipProfile {
            vendor: Vendor::A,
            io_width: IoWidth::Hbm2,
            year: 0,
            density_gbit: 32,
            banks: 16,
            rows_per_bank: 1 << 14,
            row_bits: 8192,
            timing: TimingParams::hbm2(),
            hidden: HiddenConfig {
                composition: Self::composition_832(),
                edge_interval: 8 << 10,
                coupled: true,
                mat_width: 512,
                remap: RowRemap::MfrA,
                swizzle: SwizzleMap::vendor_a(64, 8192, 512),
                polarity: PolarityScheme::AllTrue,
                disturb: DisturbModel::default(),
                trr: TrrConfig::disabled(),
                on_die_ecc: false,
            },
        }
    }

    /// A small, fast profile for unit tests: 2048 rows, 256-bit rows,
    /// subarrays of 40/24 wordlines, edge segments of 256 wordlines.
    pub fn test_small() -> ChipProfile {
        ChipProfile {
            vendor: Vendor::B,
            io_width: IoWidth::X4,
            year: 0,
            density_gbit: 0,
            banks: 2,
            rows_per_bank: 2048,
            row_bits: 256,
            timing: TimingParams::ddr4(),
            hidden: HiddenConfig {
                composition: vec![40, 24],
                edge_interval: 256,
                coupled: false,
                mat_width: 64,
                remap: RowRemap::Identity,
                swizzle: SwizzleMap::vendor_a(32, 256, 64),
                polarity: PolarityScheme::AllTrue,
                disturb: DisturbModel::default(),
                trr: TrrConfig::disabled(),
                on_die_ecc: false,
            },
        }
    }

    /// Like [`test_small`](Self::test_small) but with the Mfr. B swizzle
    /// style (stride interleave).
    pub fn test_small_vendor_b() -> ChipProfile {
        let mut p = Self::test_small();
        p.hidden.swizzle = SwizzleMap::vendor_b(32, 256, 64);
        p
    }

    /// Like [`test_small`](Self::test_small) but with the Mfr. C swizzle
    /// style (contiguous nibbles, pair swap).
    pub fn test_small_vendor_c() -> ChipProfile {
        let mut p = Self::test_small();
        p.hidden.swizzle = SwizzleMap::vendor_c(32, 256, 64);
        p
    }

    /// Like [`test_small`](Self::test_small) but with Mfr. C-style
    /// true-/anti-cell interleaving at subarray granularity.
    pub fn test_small_interleaved() -> ChipProfile {
        let mut p = Self::test_small();
        p.vendor = Vendor::C;
        p.hidden.polarity = PolarityScheme::SubarrayInterleaved;
        p.hidden.swizzle = SwizzleMap::vendor_c(32, 256, 64);
        p
    }

    /// Like [`test_small`](Self::test_small) but with coupled rows and
    /// Mfr. A-style internal remapping.
    pub fn test_small_coupled() -> ChipProfile {
        let mut p = Self::test_small();
        p.vendor = Vendor::A;
        p.row_bits = 128;
        p.hidden.coupled = true;
        p.hidden.mat_width = 32;
        p.hidden.remap = RowRemap::MfrA;
        p.hidden.swizzle = SwizzleMap::vendor_a(32, 128, 32);
        p
    }

    /// A small, fast HBM2-style profile for unit tests: HBM2 timing and
    /// I/O width on `test_small`'s array (2048 rows, 256-bit rows,
    /// 40/24-row subarrays), four banks so bank-sharding tests exercise
    /// real fan-out. Vendor B, so its label (`"Mfr. B HBM2 4-Hi"`) stays
    /// distinct from [`hbm2_mfr_a`](Self::hbm2_mfr_a)'s and the profile
    /// can round-trip through [`by_label`](Self::by_label).
    pub fn test_small_hbm2() -> ChipProfile {
        ChipProfile {
            vendor: Vendor::B,
            io_width: IoWidth::Hbm2,
            year: 0,
            density_gbit: 0,
            banks: 4,
            rows_per_bank: 2048,
            row_bits: 256,
            timing: TimingParams::hbm2(),
            hidden: HiddenConfig {
                composition: vec![40, 24],
                edge_interval: 256,
                coupled: false,
                mat_width: 64,
                remap: RowRemap::Identity,
                swizzle: SwizzleMap::vendor_a(64, 256, 64),
                polarity: PolarityScheme::AllTrue,
                disturb: DisturbModel::default(),
                trr: TrrConfig::disabled(),
                on_die_ecc: false,
            },
        }
    }

    /// Returns this profile with on-die ECC enabled: the host loses the
    /// tail columns to parity, and single-cell errors become invisible.
    pub fn with_on_die_ecc(mut self) -> ChipProfile {
        self.hidden.on_die_ecc = true;
        self
    }

    /// Returns this profile with an in-DRAM TRR engine enabled
    /// (`entries` sampler slots, one mitigation per `REF`/`RFM`).
    pub fn with_trr(mut self, entries: usize) -> ChipProfile {
        self.hidden.trr = TrrConfig::typical_trr(entries);
        self
    }

    /// Resolves a profile from its [`label`](Self::label), covering every
    /// Table I preset plus the distinct-label test profiles. This is how
    /// trace replay recovers the device a trace was recorded against.
    ///
    /// The swizzle-only test variants (`test_small_vendor_b`,
    /// `test_small_vendor_c`) share `test_small`'s label and therefore
    /// cannot be resolved this way; `test_small` wins.
    pub fn by_label(label: &str) -> Option<ChipProfile> {
        Self::all_presets()
            .into_iter()
            .chain([
                Self::test_small(),
                Self::test_small_interleaved(),
                Self::test_small_coupled(),
                Self::test_small_hbm2(),
            ])
            .find(|p| p.label() == label)
    }

    /// All Table I-style presets, one per distinct structure.
    pub fn all_presets() -> Vec<ChipProfile> {
        vec![
            Self::mfr_a_x4_2016(),
            Self::mfr_a_x4_2017(),
            Self::mfr_a_x4_2018(),
            Self::mfr_a_x4_2021(),
            Self::mfr_a_x8_2017(),
            Self::mfr_a_x8_2018(),
            Self::mfr_a_x8_2019(),
            Self::mfr_b_x4_2019(),
            Self::mfr_b_x8_2017(),
            Self::mfr_b_x8_2018(),
            Self::mfr_b_x8_2019(),
            Self::mfr_c_x4_2018(),
            Self::mfr_c_x4_2021(),
            Self::mfr_c_x8_2016(),
            Self::mfr_c_x8_2019(),
            Self::hbm2_mfr_a(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositions_sum_to_their_blocks() {
        assert_eq!(ChipProfile::composition_640().iter().sum::<u32>(), 8192);
        assert_eq!(ChipProfile::composition_832().iter().sum::<u32>(), 4096);
        assert_eq!(ChipProfile::composition_688().iter().sum::<u32>(), 2048);
        assert_eq!(ChipProfile::composition_688_680().iter().sum::<u32>(), 2048);
    }

    #[test]
    fn every_preset_has_consistent_geometry() {
        for p in ChipProfile::all_presets() {
            let g = p.bank_geometry();
            let block: u32 = p.hidden.composition.iter().sum();
            assert_eq!(
                p.hidden.edge_interval % block,
                0,
                "{}: edge interval {} not a multiple of block {block}",
                p.label(),
                p.hidden.edge_interval
            );
            assert_eq!(
                g.wordlines() % p.hidden.edge_interval,
                0,
                "{}: wordlines {} not a multiple of segment {}",
                p.label(),
                g.wordlines(),
                p.hidden.edge_interval
            );
            assert_eq!(g.cells_per_wordline() % p.hidden.mat_width, 0);
            assert_eq!(p.row_bits % p.io_width.rd_bits(), 0);
        }
    }

    #[test]
    fn coupled_presets_match_table_iii() {
        assert_eq!(
            ChipProfile::mfr_a_x4_2016()
                .bank_geometry()
                .coupled_row_distance(),
            Some(64 << 10)
        );
        assert_eq!(
            ChipProfile::mfr_b_x4_2019()
                .bank_geometry()
                .coupled_row_distance(),
            Some(64 << 10)
        );
        assert_eq!(
            ChipProfile::hbm2_mfr_a()
                .bank_geometry()
                .coupled_row_distance(),
            Some(8 << 10)
        );
        assert_eq!(
            ChipProfile::mfr_a_x4_2018()
                .bank_geometry()
                .coupled_row_distance(),
            None
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = ChipProfile::all_presets()
            .iter()
            .map(|p| p.label())
            .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn test_profiles_are_small() {
        let p = ChipProfile::test_small();
        assert!(p.rows_per_bank <= 4096);
        let g = p.bank_geometry();
        assert_eq!(g.wordlines() % p.hidden.edge_interval, 0);
        let pc = ChipProfile::test_small_coupled();
        assert!(pc.bank_geometry().has_coupled_rows());
        assert_eq!(pc.bank_geometry().wordlines() % pc.hidden.edge_interval, 0);
    }

    #[test]
    fn test_small_hbm2_is_a_resolvable_multi_bank_hbm2_device() {
        let p = ChipProfile::test_small_hbm2();
        assert_eq!(p.io_width, IoWidth::Hbm2);
        assert!(p.banks >= 4, "sharding tests need real bank fan-out");
        assert!(p.rows_per_bank <= 4096);
        assert_eq!(p.row_bits % p.io_width.rd_bits(), 0);
        let g = p.bank_geometry();
        assert_eq!(g.wordlines() % p.hidden.edge_interval, 0);
        assert_eq!(p.label(), "Mfr. B HBM2 4-Hi");
        assert_ne!(p.label(), ChipProfile::hbm2_mfr_a().label());
        let resolved = ChipProfile::by_label(&p.label()).expect("label resolves");
        assert_eq!(resolved.banks, p.banks);
        assert_eq!(resolved.timing, p.timing);
    }
}
