//! The 6F² cell taxonomy (paper §II-B, §V-A).
//!
//! In the 6F² layout, pairs of cells share a bitline contact inside one
//! P-substrate island. Relative to that island a cell is a *top* or a
//! *bottom* cell; every top cell is isomorphic to every other top cell.
//! For a top cell the wordline **above** it is a *passing gate* and the
//! wordline **below** it a *neighboring gate*; for a bottom cell the roles
//! swap. Top and bottom cells alternate along a row, and the pattern shifts
//! by one between even and odd wordlines — this is the geometric origin of
//! every alternating AIB pattern in the paper (O7, O8).

use crate::geometry::{Bitline, Wordline};

/// Position of a cell within its shared P-substrate island.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// The upper cell of the pair: upper neighbor WL is the passing gate.
    Top,
    /// The lower cell of the pair: lower neighbor WL is the passing gate.
    Bottom,
}

/// The relationship between an aggressor wordline and a victim cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateType {
    /// The aggressor WL does not share the victim's P-substrate
    /// (capacitive-crosstalk / electron-attraction mechanism).
    Passing,
    /// The aggressor WL shares the victim's P-substrate
    /// (electron-injection mechanism).
    Neighboring,
}

/// Polarity of a cell's data encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellPolarity {
    /// Charged state stores logical 1.
    True,
    /// Charged state stores logical 0.
    Anti,
}

impl CellPolarity {
    /// Whether a stored logical bit corresponds to the charged state.
    ///
    /// # Example
    ///
    /// ```
    /// use dram_sim::CellPolarity;
    /// assert!(CellPolarity::True.is_charged(true));
    /// assert!(CellPolarity::Anti.is_charged(false));
    /// ```
    pub fn is_charged(self, bit: bool) -> bool {
        match self {
            CellPolarity::True => bit,
            CellPolarity::Anti => !bit,
        }
    }

    /// The logical bit that corresponds to the discharged state
    /// (what a retention failure decays *to*).
    pub fn discharged_bit(self) -> bool {
        match self {
            CellPolarity::True => false,
            CellPolarity::Anti => true,
        }
    }
}

/// Which vertical neighbor a disturbance comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggressorDir {
    /// Aggressor wordline index is one above the victim's.
    Upper,
    /// Aggressor wordline index is one below the victim's.
    Lower,
}

impl AggressorDir {
    /// The opposite direction.
    pub fn flipped(self) -> AggressorDir {
        match self {
            AggressorDir::Upper => AggressorDir::Lower,
            AggressorDir::Lower => AggressorDir::Upper,
        }
    }
}

/// Classifies a cell as top or bottom from its physical coordinates.
///
/// Top/bottom alternates along the bitline axis and flips with wordline
/// parity, matching the paper's observation that a victim row with odd WL
/// shows the reversed error pattern of an even WL (Fig. 12).
pub fn cell_kind(wl: Wordline, bl: Bitline) -> CellKind {
    if (wl.0 + bl.0).is_multiple_of(2) {
        CellKind::Top
    } else {
        CellKind::Bottom
    }
}

/// Resolves the gate type an aggressor presents to a victim cell.
///
/// For a [`CellKind::Top`] cell the upper aggressor is the passing gate and
/// the lower aggressor the neighboring gate; the opposite holds for a
/// bottom cell (paper §V-A, Fig. 11).
pub fn gate_type(victim_wl: Wordline, victim_bl: Bitline, dir: AggressorDir) -> GateType {
    match (cell_kind(victim_wl, victim_bl), dir) {
        (CellKind::Top, AggressorDir::Upper) => GateType::Passing,
        (CellKind::Top, AggressorDir::Lower) => GateType::Neighboring,
        (CellKind::Bottom, AggressorDir::Upper) => GateType::Neighboring,
        (CellKind::Bottom, AggressorDir::Lower) => GateType::Passing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_alternate_along_a_row() {
        let wl = Wordline(10);
        assert_eq!(cell_kind(wl, Bitline(0)), CellKind::Top);
        assert_eq!(cell_kind(wl, Bitline(1)), CellKind::Bottom);
        assert_eq!(cell_kind(wl, Bitline(2)), CellKind::Top);
    }

    #[test]
    fn kinds_flip_with_wordline_parity() {
        let bl = Bitline(4);
        assert_ne!(cell_kind(Wordline(6), bl), cell_kind(Wordline(7), bl));
    }

    #[test]
    fn gate_reverses_with_direction() {
        let (wl, bl) = (Wordline(2), Bitline(2));
        assert_ne!(
            gate_type(wl, bl, AggressorDir::Upper),
            gate_type(wl, bl, AggressorDir::Lower)
        );
    }

    #[test]
    fn gate_pattern_alternates_along_the_row() {
        // For a fixed direction, passing/neighboring gates alternate with
        // the bitline index — the origin of the alternating BER of Fig. 12.
        let wl = Wordline(0);
        let g0 = gate_type(wl, Bitline(0), AggressorDir::Upper);
        let g1 = gate_type(wl, Bitline(1), AggressorDir::Upper);
        let g2 = gate_type(wl, Bitline(2), AggressorDir::Upper);
        assert_ne!(g0, g1);
        assert_eq!(g0, g2);
    }

    #[test]
    fn top_cell_upper_gate_is_passing() {
        assert_eq!(
            gate_type(Wordline(0), Bitline(0), AggressorDir::Upper),
            GateType::Passing
        );
        assert_eq!(
            gate_type(Wordline(0), Bitline(1), AggressorDir::Upper),
            GateType::Neighboring
        );
    }

    #[test]
    fn polarity_encodes_charge() {
        assert!(CellPolarity::True.is_charged(true));
        assert!(!CellPolarity::True.is_charged(false));
        assert!(CellPolarity::Anti.is_charged(false));
        assert!(!CellPolarity::Anti.is_charged(true));
        assert!(!CellPolarity::True.discharged_bit());
        assert!(CellPolarity::Anti.discharged_bit());
    }

    #[test]
    fn direction_flip_is_involutive() {
        assert_eq!(AggressorDir::Upper.flipped(), AggressorDir::Lower);
        assert_eq!(AggressorDir::Upper.flipped().flipped(), AggressorDir::Upper);
    }
}
