//! Differential fuzzing of the flat-state [`DramChip`] against the
//! frozen map-backed [`RefChip`] oracle.
//!
//! The flat-state refactor re-laid the chip's hot state (dense per-bank
//! tables, lazy settling, precomputed static tables) while promising
//! *identical observable behavior*. These tests hold it to that promise
//! the strong way: drive both implementations with the same randomized
//! command stream — legal sequences, timing violations, out-of-range
//! addresses, bursts, refresh windows, temperature changes — and assert
//! that every single entry-point result, the simulated clock, the final
//! statistics, and the rendered metrics snapshot agree exactly.
//!
//! The streams are [`StreamRng`]-driven and fully deterministic, so a
//! failure reproduces from its seed; the failure message names the step,
//! the command, and the timestamp.

use crate::chip::{Command, DramChip};
use crate::metrics::SharedMetrics;
use crate::profile::ChipProfile;
use crate::refchip::RefChip;
use crate::rng::StreamRng;
use crate::time::Time;

/// Drives `steps` randomized operations through both chips in lockstep,
/// asserting exact agreement after every operation.
fn fuzz_pair(profile: &ChipProfile, seed: u64, steps: u32) {
    let mut flat = DramChip::new(profile.clone(), seed);
    let mut oracle = RefChip::new(profile.clone(), seed);
    let flat_metrics = SharedMetrics::new();
    let oracle_metrics = SharedMetrics::new();
    flat.set_sink(Box::new(flat_metrics.clone()));
    oracle.set_sink(Box::new(oracle_metrics.clone()));

    let banks = profile.banks;
    let rows = profile.rows_per_bank;
    let cols = profile.cols_per_row();
    let timing = *flat.timing();
    let mut rng = StreamRng::new(seed ^ 0xD1FF_7E57);
    let mut t = Time::from_ns(100);

    // Mostly in-range addresses, occasionally just past the edge so the
    // range-check rejections are exercised too.
    let pick = |rng: &mut StreamRng, bound: u32| -> u32 {
        let r = rng.next_below(u64::from(bound) + 2);
        u32::try_from(r).expect("bound fits u32")
    };

    for step in 0..steps {
        // Advance time by a randomly chosen gap: zero and one-tick gaps
        // provoke tRCD/tRAS-class violations, the long gaps let charge
        // decay and make the settle paths do real work.
        let gap = match rng.next_below(7) {
            0 => Time::ZERO,
            1 => timing.tck,
            2 => timing.trcd,
            3 => timing.trp,
            4 => timing.tras,
            5 => timing.tras + timing.trp,
            _ => Time::from_us(50),
        };
        t += gap;

        match rng.next_below(100) {
            0..=29 => {
                let cmd = Command::Activate {
                    bank: pick(&mut rng, banks),
                    row: pick(&mut rng, rows),
                };
                let a = flat.issue(cmd, t);
                let b = oracle.issue(cmd, t);
                assert_eq!(a, b, "seed {seed} step {step}: {cmd:?} at {t}");
            }
            30..=44 => {
                let cmd = Command::Read {
                    bank: pick(&mut rng, banks),
                    col: pick(&mut rng, cols),
                };
                let a = flat.issue(cmd, t);
                let b = oracle.issue(cmd, t);
                assert_eq!(a, b, "seed {seed} step {step}: {cmd:?} at {t}");
            }
            45..=59 => {
                let cmd = Command::Write {
                    bank: pick(&mut rng, banks),
                    col: pick(&mut rng, cols),
                    data: rng.next_u64(),
                };
                let a = flat.issue(cmd, t);
                let b = oracle.issue(cmd, t);
                assert_eq!(a, b, "seed {seed} step {step}: {cmd:?} at {t}");
            }
            60..=74 => {
                let cmd = Command::Precharge {
                    bank: pick(&mut rng, banks),
                };
                let a = flat.issue(cmd, t);
                let b = oracle.issue(cmd, t);
                assert_eq!(a, b, "seed {seed} step {step}: {cmd:?} at {t}");
            }
            75..=79 => {
                let a = flat.issue(Command::Refresh, t);
                let b = oracle.issue(Command::Refresh, t);
                assert_eq!(a, b, "seed {seed} step {step}: REF at {t}");
            }
            80..=83 => {
                let cmd = Command::Rfm {
                    bank: pick(&mut rng, banks),
                };
                let a = flat.issue(cmd, t);
                let b = oracle.issue(cmd, t);
                assert_eq!(a, b, "seed {seed} step {step}: {cmd:?} at {t}");
            }
            84..=89 => {
                let bank = pick(&mut rng, banks);
                let row = pick(&mut rng, rows);
                let count = rng.next_below(2_000) + 1;
                let a = flat.activate_burst(bank, row, count, timing.tras, t);
                let b = oracle.activate_burst(bank, row, count, timing.tras, t);
                assert_eq!(
                    a, b,
                    "seed {seed} step {step}: burst b{bank} r{row} x{count} at {t}"
                );
                if let Ok(end) = a {
                    t = end + timing.trp;
                }
            }
            90..=93 => {
                let a = flat.refresh_window(t);
                let b = oracle.refresh_window(t);
                assert_eq!(a, b, "seed {seed} step {step}: refresh window at {t}");
            }
            94..=96 => {
                let celsius = 20.0 + rng.next_unit() * 70.0;
                flat.set_temperature(celsius);
                oracle.set_temperature(celsius);
            }
            _ => {
                flat.mark("fuzz");
                oracle.mark("fuzz");
            }
        }

        assert_eq!(
            flat.now(),
            oracle.now(),
            "seed {seed} step {step}: clocks diverged"
        );
    }

    assert_eq!(
        flat.stats(),
        oracle.stats(),
        "seed {seed}: final stats diverged"
    );
    flat.clear_sink();
    oracle.clear_sink();
    assert_eq!(
        flat_metrics.take_registry().to_json_lines(),
        oracle_metrics.take_registry().to_json_lines(),
        "seed {seed}: metrics snapshots diverged"
    );
}

#[test]
fn flat_chip_matches_oracle_on_random_streams() {
    let profile = ChipProfile::test_small();
    for seed in [1u64, 0xBEEF, 0x5EED_CAFE] {
        fuzz_pair(&profile, seed, 400);
    }
}

#[test]
fn flat_chip_matches_oracle_across_profile_features() {
    // Coupled rows, TRR sampling, on-die ECC, and the HBM2 geometry all
    // take different branches through the settle and read paths.
    for (name, profile) in [
        ("coupled", ChipProfile::test_small_coupled()),
        ("trr", ChipProfile::test_small().with_trr(2)),
        ("ecc", ChipProfile::test_small().with_on_die_ecc()),
        ("hbm2", ChipProfile::test_small_hbm2()),
        ("interleaved", ChipProfile::test_small_interleaved()),
    ] {
        eprintln!("fuzzing {name}");
        fuzz_pair(&profile, 0xABC0 ^ u64::from(name.len() as u8), 250);
    }
}
