//! Stable content digests for device identity.
//!
//! The characterization service memoizes dossiers in a content-addressed
//! cache, and the cache key must name the *device*, not just its label:
//! two profiles that share a label but differ in any hidden field (a
//! different swizzle map, a TRR engine switched on) must never collide.
//! [`ChipProfile::digest`](crate::ChipProfile::digest) and
//! [`BankGeometry::digest`](crate::BankGeometry::digest) are those
//! identities — the per-device analogue of the dossier digest the
//! golden-trace subsystem already pins runs on.
//!
//! All digests are FNV-1a 64: stable across platforms and releases by
//! construction, not collision-resistant against adversaries — cache
//! keys and regression identities do not need that.

use crate::geometry::BankGeometry;
use crate::profile::ChipProfile;

/// FNV-1a 64-bit hash over raw bytes.
///
/// This is the workspace's one hashing primitive; `dram-trace` re-exports
/// it for dossier digests and geometry hashes.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ChipProfile {
    /// FNV-1a 64 digest of the complete profile — every public datasheet
    /// field *and* every hidden microarchitecture field (composition,
    /// edge interval, coupling, MAT width, remap, swizzle, polarity,
    /// disturbance physics, TRR, on-die ECC).
    ///
    /// The digest covers every field via the derived [`Debug`]
    /// rendering, the same every-field-by-rendering discipline as
    /// `ChipDossier::digest`: any change to any field (or to a field of
    /// a nested config) changes the rendering and therefore the digest.
    /// This is the `profile_digest` half of the service's dossier cache
    /// key — stronger than [`label`](Self::label) (which hidden-field
    /// variants share) and stronger than the trace geometry hash (which
    /// covers only externally visible shape and timing).
    pub fn digest(&self) -> u64 {
        fnv1a_64(format!("{self:?}").as_bytes())
    }
}

impl BankGeometry {
    /// FNV-1a 64 digest of the bank geometry, covering all four fields
    /// (rows, row width, MAT width, rows per wordline) as little-endian
    /// words. The `geometry_hash` component of the service cache key.
    pub fn digest(&self) -> u64 {
        let mut bytes = [0u8; 16];
        for (slot, v) in bytes.chunks_exact_mut(4).zip([
            self.rows,
            self.row_bits,
            self.mat_width,
            self.rows_per_wordline,
        ]) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        fnv1a_64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn profile_digest_is_stable_and_distinct_across_presets() {
        let all = ChipProfile::all_presets();
        let digests: Vec<u64> = all.iter().map(ChipProfile::digest).collect();
        // Deterministic for the same profile.
        for (p, d) in all.iter().zip(&digests) {
            assert_eq!(p.digest(), *d, "{}", p.label());
        }
        // Every preset has its own identity.
        let mut sorted = digests.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), digests.len(), "preset digests collide");
    }

    #[test]
    fn profile_digest_sees_every_public_field() {
        let base = ChipProfile::test_small();
        let d = base.digest();
        let mutations: Vec<(&str, ChipProfile)> = vec![
            ("vendor", {
                let mut p = base.clone();
                p.vendor = crate::Vendor::C;
                p
            }),
            ("io_width", {
                let mut p = base.clone();
                p.io_width = crate::IoWidth::X8;
                p
            }),
            ("year", {
                let mut p = base.clone();
                p.year = 2031;
                p
            }),
            ("density_gbit", {
                let mut p = base.clone();
                p.density_gbit = 16;
                p
            }),
            ("banks", {
                let mut p = base.clone();
                p.banks = 8;
                p
            }),
            ("rows_per_bank", {
                let mut p = base.clone();
                p.rows_per_bank = 4096;
                p
            }),
            ("row_bits", {
                let mut p = base.clone();
                p.row_bits = 512;
                p
            }),
            ("timing", {
                let mut p = base.clone();
                p.timing = crate::TimingParams::hbm2();
                p
            }),
        ];
        for (field, mutated) in mutations {
            assert_ne!(
                mutated.digest(),
                d,
                "changing `{field}` must change the profile digest"
            );
        }
    }

    #[test]
    fn profile_digest_sees_hidden_fields_the_label_does_not() {
        let base = ChipProfile::test_small();
        let d = base.digest();
        // Same label, different hidden swizzle map.
        let vb = ChipProfile::test_small_vendor_b();
        assert_eq!(vb.label(), base.label());
        assert_ne!(vb.digest(), d, "hidden swizzle change must be visible");
        let vc = ChipProfile::test_small_vendor_c();
        assert_eq!(vc.label(), base.label());
        assert_ne!(vc.digest(), d);
        assert_ne!(vc.digest(), vb.digest());
        // Hidden TRR / ECC toggles (label unchanged for these builders).
        assert_ne!(base.clone().with_trr(2).digest(), d);
        assert_ne!(
            base.clone().with_trr(4).digest(),
            base.clone().with_trr(2).digest()
        );
        assert_ne!(base.clone().with_on_die_ecc().digest(), d);
    }

    #[test]
    fn geometry_digest_sees_every_field() {
        let g = BankGeometry::new(2048, 256, 64, 1);
        let d = g.digest();
        assert_eq!(BankGeometry::new(2048, 256, 64, 1).digest(), d);
        assert_ne!(BankGeometry::new(4096, 256, 64, 1).digest(), d, "rows");
        assert_ne!(BankGeometry::new(2048, 512, 64, 1).digest(), d, "row_bits");
        assert_ne!(BankGeometry::new(2048, 256, 32, 1).digest(), d, "mat_width");
        assert_ne!(
            BankGeometry::new(2048, 256, 64, 2).digest(),
            d,
            "rows_per_wordline"
        );
        // Field values must not be interchangeable across positions.
        assert_ne!(
            BankGeometry::new(256, 2048, 64, 1).digest(),
            d,
            "swapped rows/row_bits"
        );
    }
}
