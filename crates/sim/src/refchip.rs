//! The map-backed reference chip: a frozen copy of the original
//! `DramChip` implementation, kept as the differential-testing oracle
//! for the flat-state hot path.
//!
//! [`RefChip`] preserves the pre-flat-state implementation verbatim:
//! `BTreeMap` wordline/row tables, eager per-`ACT` settling with the
//! full transcendental retention/disturbance bounds, and allocation per
//! settle. It is deliberately slow and deliberately unchanged — any
//! behavioral divergence between it and [`DramChip`](crate::chip::DramChip)
//! under the same command stream is a bug in the fast path.
//!
//! The module is compiled only for tests and under the `ref-model`
//! feature, so release consumers never pay for it.

use crate::cell::{gate_type, AggressorDir};
use crate::chip::{ChipStats, Command, CommandError, ReadData, REF_SLICES};
use crate::disturb::{FlipContext, Mechanism};
use crate::geometry::{BankGeometry, Bitline, LogicalRow, Wordline};
use crate::layout::{BankLayout, CopyRelation};
use crate::profile::{ChipProfile, PolarityScheme};
use crate::retention::RetentionModel;
use crate::rng::unit_open;
use crate::rowdata::RowBits;
use crate::sink::{ChipEvent, CommandOutcome, CommandSink, SinkSlot};
use crate::time::{Time, TimingParams};
use std::collections::BTreeMap;

const TAG_HAMMER: u64 = 0xD157;
const TAG_PRESS: u64 = 0x9435;
const TAG_RETENTION: u64 = 0x4E7E;

const COPY_WINDOW_FRACTION: f64 = 0.5;

fn elapsed(later: Time, earlier: Time) -> Result<Time, CommandError> {
    later.checked_sub(earlier).ok_or(CommandError::TimeReversed)
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct WlActivity {
    acts: u64,
    on_ns: f64,
    comp_acts: u64,
    comp_on_ns: f64,
}

impl WlActivity {
    fn delta(&self, snap: &WlActivity) -> WlActivity {
        WlActivity {
            acts: self.acts - snap.acts,
            on_ns: self.on_ns - snap.on_ns,
            comp_acts: self.comp_acts - snap.comp_acts,
            comp_on_ns: self.comp_on_ns - snap.comp_on_ns,
        }
    }

    fn is_zero(&self) -> bool {
        self.acts == 0 && self.comp_acts == 0 && self.on_ns == 0.0 && self.comp_on_ns == 0.0
    }
}

#[derive(Debug, Clone)]
struct RowState {
    data: RowBits,
    snapshot: Vec<(u32, WlActivity)>,
    last_restore: Time,
}

#[derive(Debug, Clone, Copy)]
struct OpenRow {
    wl: Wordline,
    half: u32,
    since: Time,
    companion: Option<Wordline>,
}

#[derive(Debug, Clone, Copy)]
struct PreEvent {
    at: Time,
    wl: Wordline,
}

#[derive(Debug, Default)]
struct BankState {
    open: Option<OpenRow>,
    last_pre: Option<PreEvent>,
    // BTreeMaps on purpose: refresh settles rows in iteration order and
    // settle order feeds the physics, so map order must be deterministic.
    wl_acts: BTreeMap<u32, WlActivity>,
    rows: BTreeMap<u32, RowState>,
    sampler: crate::mitigation::Sampler,
}

/// The frozen map-backed reference implementation of the simulated chip.
///
/// Mirrors the public entry points of [`DramChip`](crate::chip::DramChip)
/// exactly; see that type for semantics.
#[derive(Debug)]
pub struct RefChip {
    profile: ChipProfile,
    geom: BankGeometry,
    layout: BankLayout,
    retention: RetentionModel,
    seed: u64,
    banks: Vec<BankState>,
    now: Time,
    temperature_c: f64,
    stats: ChipStats,
    ref_counter: u64,
    sink: SinkSlot,
}

impl RefChip {
    /// Creates a reference chip; same contract as `DramChip::new`.
    pub fn new(profile: ChipProfile, seed: u64) -> Self {
        assert!(
            !profile.hidden.on_die_ecc || profile.io_width.rd_bits() == 32,
            "on-die ECC model supports 32-bit RD_data chips"
        );
        let geom = profile.bank_geometry();
        let layout = BankLayout::build(
            geom.wordlines(),
            profile.hidden.edge_interval,
            &profile.hidden.composition,
        );
        let sampler_cap = if profile.hidden.trr.enabled {
            profile.hidden.trr.sampler_entries
        } else {
            0
        };
        let banks = (0..profile.banks)
            .map(|_| BankState {
                sampler: crate::mitigation::Sampler::new(sampler_cap),
                ..BankState::default()
            })
            .collect();
        RefChip {
            geom,
            layout,
            retention: RetentionModel::default(),
            seed,
            banks,
            now: Time::ZERO,
            temperature_c: 75.0,
            stats: ChipStats::default(),
            ref_counter: 0,
            sink: SinkSlot::empty(),
            profile,
        }
    }

    /// Attaches a command sink; same contract as `DramChip::set_sink`.
    pub fn set_sink(&mut self, sink: Box<dyn CommandSink + Send>) {
        self.sink = SinkSlot(Some(sink));
    }

    /// Detaches and returns the current sink, if any.
    pub fn clear_sink(&mut self) -> Option<Box<dyn CommandSink + Send>> {
        self.sink.0.take()
    }

    /// Emits an out-of-band marker through the attached sink.
    pub fn mark(&mut self, label: &str) {
        if let Some(s) = self.sink.0.as_mut() {
            s.record(ChipEvent::Marker { label });
        }
    }

    #[inline]
    fn record(&mut self, event: ChipEvent<'_>) {
        if let Some(s) = self.sink.0.as_mut() {
            s.record(event);
        }
    }

    /// The chip's (public) profile.
    pub fn profile(&self) -> &ChipProfile {
        &self.profile
    }

    /// The chip's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.profile.timing
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current die temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the die temperature.
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature_c = celsius;
        self.record(ChipEvent::SetTemperature { celsius });
    }

    /// Cumulative command statistics.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// Issues one command; same contract as `DramChip::issue`.
    pub fn issue(&mut self, cmd: Command, at: Time) -> Result<Option<ReadData>, CommandError> {
        let result = self.issue_inner(cmd, at);
        self.record(ChipEvent::Command {
            cmd,
            at,
            outcome: CommandOutcome::of_issue(&result),
        });
        result
    }

    fn issue_inner(&mut self, cmd: Command, at: Time) -> Result<Option<ReadData>, CommandError> {
        if at < self.now {
            return Err(CommandError::TimeReversed);
        }
        self.now = at;
        match cmd {
            Command::Activate { bank, row } => {
                self.cmd_activate(bank, row, at)?;
                Ok(None)
            }
            Command::Precharge { bank } => {
                self.cmd_precharge(bank, at)?;
                Ok(None)
            }
            Command::Read { bank, col } => Ok(Some(self.cmd_read(bank, col, at)?)),
            Command::Write { bank, col, data } => {
                self.cmd_write(bank, col, data, at)?;
                Ok(None)
            }
            Command::Refresh => {
                self.cmd_refresh(at)?;
                Ok(None)
            }
            Command::Rfm { bank } => {
                self.cmd_rfm(bank, at)?;
                Ok(None)
            }
        }
    }

    /// Loop-accelerated hammer burst; same contract as
    /// `DramChip::activate_burst`.
    pub fn activate_burst(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        each_on: Time,
        at: Time,
    ) -> Result<Time, CommandError> {
        let result = self.activate_burst_inner(bank, row, count, each_on, at);
        self.record(ChipEvent::Burst {
            bank,
            row,
            count,
            each_on,
            at,
            outcome: CommandOutcome::of_unit(&result),
        });
        result
    }

    fn activate_burst_inner(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        each_on: Time,
        at: Time,
    ) -> Result<Time, CommandError> {
        if at < self.now {
            return Err(CommandError::TimeReversed);
        }
        self.check_bank(bank)?;
        self.check_row(row)?;
        if self.banks[bank as usize].open.is_some() {
            return Err(CommandError::RowAlreadyOpen);
        }
        if count == 0 {
            self.now = at;
            return Ok(at);
        }
        let (wl, _half) = self.resolve(LogicalRow(row));
        let companion = self.layout.companion_wordline(wl);
        let cycle = each_on + self.profile.timing.trp;
        let end = at + cycle * count;
        self.now = end;

        let on_total = each_on.as_ns() * count as f64;
        let last_pre_at = elapsed(end, self.profile.timing.trp)?;
        {
            let b = &mut self.banks[bank as usize];
            if self.profile.hidden.trr.enabled {
                b.sampler.observe(wl.0, count);
            }
            let a = b.wl_acts.entry(wl.0).or_default();
            a.acts += count;
            a.on_ns += on_total;
            if let Some(c) = companion {
                let ca = b.wl_acts.entry(c.0).or_default();
                ca.comp_acts += count;
                ca.comp_on_ns += on_total;
            }
            b.last_pre = Some(PreEvent {
                at: last_pre_at,
                wl,
            });
        }
        self.settle_and_restore(bank, wl, end)?;
        if let Some(c) = companion {
            self.settle_and_restore(bank, c, end)?;
        }
        self.stats.activations += count;
        self.stats.act_energy_units += count * self.act_energy_per_activation(companion);
        Ok(end)
    }

    fn act_energy_per_activation(&self, companion: Option<Wordline>) -> u64 {
        let coupled = if self.geom.has_coupled_rows() { 2 } else { 1 };
        let tandem = if companion.is_some() { 2 } else { 1 };
        coupled * tandem
    }

    fn check_bank(&self, bank: u32) -> Result<(), CommandError> {
        if bank >= self.profile.banks {
            Err(CommandError::BankOutOfRange {
                bank,
                banks: self.profile.banks,
            })
        } else {
            Ok(())
        }
    }

    fn check_row(&self, row: u32) -> Result<(), CommandError> {
        if row >= self.profile.rows_per_bank {
            Err(CommandError::RowOutOfRange {
                row,
                rows: self.profile.rows_per_bank,
            })
        } else {
            Ok(())
        }
    }

    fn resolve(&self, row: LogicalRow) -> (Wordline, u32) {
        let phys = self.profile.hidden.remap.to_physical(row);
        self.geom.fold(phys)
    }

    fn cmd_activate(&mut self, bank: u32, row: u32, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        if self.banks[bank as usize].open.is_some() {
            return Err(CommandError::RowAlreadyOpen);
        }
        let (wl, half) = self.resolve(LogicalRow(row));

        let copy_from = match self.banks[bank as usize].last_pre {
            Some(pre) => {
                let window = Time::from_ps(
                    (self.profile.timing.trp.as_ps() as f64 * COPY_WINDOW_FRACTION) as u64,
                );
                if elapsed(at, pre.at)? < window {
                    Some(pre.wl)
                } else {
                    None
                }
            }
            None => None,
        };

        self.settle_and_restore(bank, wl, at)?;
        if let Some(src) = copy_from {
            self.apply_rowcopy(bank, src, wl)?;
        }

        let companion = self.layout.companion_wordline(wl);
        if let Some(c) = companion {
            if c != wl {
                self.settle_and_restore(bank, c, at)?;
            }
        }
        let b = &mut self.banks[bank as usize];
        if self.profile.hidden.trr.enabled {
            b.sampler.observe(wl.0, 1);
        }
        b.open = Some(OpenRow {
            wl,
            half,
            since: at,
            companion,
        });
        self.stats.activations += 1;
        self.stats.act_energy_units += self.act_energy_per_activation(companion);
        Ok(())
    }

    fn cmd_precharge(&mut self, bank: u32, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        let b = &mut self.banks[bank as usize];
        let open = b.open.ok_or(CommandError::NoOpenRow)?;
        let on_ns = elapsed(at, open.since)?.as_ns();
        b.open = None;
        let a = b.wl_acts.entry(open.wl.0).or_default();
        a.acts += 1;
        a.on_ns += on_ns;
        if let Some(c) = open.companion {
            let ca = b.wl_acts.entry(c.0).or_default();
            ca.comp_acts += 1;
            ca.comp_on_ns += on_ns;
        }
        b.last_pre = Some(PreEvent { at, wl: open.wl });
        Ok(())
    }

    fn open_row(&self, bank: u32) -> Result<OpenRow, CommandError> {
        self.banks[bank as usize]
            .open
            .ok_or(CommandError::NoOpenRow)
    }

    fn check_col(&self, col: u32) -> Result<(), CommandError> {
        let cols = self.profile.cols_per_row();
        if col >= cols {
            Err(CommandError::ColOutOfRange { col, cols })
        } else {
            Ok(())
        }
    }

    fn cmd_read(&mut self, bank: u32, col: u32, at: Time) -> Result<ReadData, CommandError> {
        self.check_bank(bank)?;
        self.check_col(col)?;
        let open = self.open_row(bank)?;
        if elapsed(at, open.since)? < self.profile.timing.trcd {
            return Err(CommandError::TrcdViolation);
        }
        let swz = &self.profile.hidden.swizzle;
        let rd_bits = self.profile.io_width.rd_bits();
        let base = open.half * self.geom.row_bits;
        let row = self.banks[bank as usize].rows.get(&open.wl.0);
        let mut out = 0u64;
        for bit in 0..rd_bits {
            let bl = swz.bitline_of(col, bit);
            let v = match row {
                Some(r) => r.data.get(base + bl.0),
                None => self.default_bit(open.wl),
            };
            if v {
                out |= 1 << bit;
            }
        }
        if self.profile.hidden.on_die_ecc {
            let data_cols = self.profile.cols_per_row();
            let mut parity = 0u8;
            for j in 0..crate::ecc::PARITY_BITS {
                let (pc, pb) = crate::ecc::parity_cell(data_cols, rd_bits, col, j);
                let bl = swz.bitline_of(pc, pb);
                let v = match row {
                    Some(r) => r.data.get(base + bl.0),
                    None => self.default_bit(open.wl),
                };
                if v {
                    parity |= 1 << j;
                }
            }
            let code = u32::try_from(out)
                .map_err(|_| CommandError::Internal("ECC read assembled more than 32 data bits"))?;
            let (corrected, _what) = crate::ecc::decode(code, parity);
            out = u64::from(corrected);
        }
        self.stats.reads += 1;
        Ok(ReadData(out))
    }

    fn cmd_write(&mut self, bank: u32, col: u32, data: u64, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        self.check_col(col)?;
        let open = self.open_row(bank)?;
        if elapsed(at, open.since)? < self.profile.timing.trcd {
            return Err(CommandError::TrcdViolation);
        }
        let rd_bits = self.profile.io_width.rd_bits();
        let base = open.half * self.geom.row_bits;
        let wl = open.wl;
        self.ensure_row(bank, wl, at);
        let mut targets: Vec<(u32, bool)> = (0..rd_bits)
            .map(|bit| {
                let bl = self.profile.hidden.swizzle.bitline_of(col, bit);
                (base + bl.0, data & (1 << bit) != 0)
            })
            .collect();
        if self.profile.hidden.on_die_ecc {
            let data_cols = self.profile.cols_per_row();
            let parity = crate::ecc::encode((data & u64::from(u32::MAX)) as u32);
            for j in 0..crate::ecc::PARITY_BITS {
                let (pc, pb) = crate::ecc::parity_cell(data_cols, rd_bits, col, j);
                let bl = self.profile.hidden.swizzle.bitline_of(pc, pb);
                targets.push((base + bl.0, parity & (1 << j) != 0));
            }
        }
        let row = self.banks[bank as usize]
            .rows
            .get_mut(&wl.0)
            .ok_or(CommandError::Internal(
                "written row missing after ensure_row",
            ))?;
        for (idx, v) in targets {
            row.data.set(idx, v);
        }
        self.stats.writes += 1;
        Ok(())
    }

    fn cmd_refresh(&mut self, at: Time) -> Result<(), CommandError> {
        for b in 0..self.banks.len() {
            if self.banks[b].open.is_some() {
                return Err(CommandError::RefreshWhileOpen);
            }
        }
        let wls_total = u64::from(self.geom.wordlines());
        let slice_size = wls_total.div_ceil(REF_SLICES).max(1);
        let slice = self.ref_counter % REF_SLICES;
        let lo = u32::try_from((slice * slice_size).min(wls_total))
            .map_err(|_| CommandError::Internal("REF slice bound exceeds u32 wordline count"))?;
        let hi = u32::try_from(((slice + 1) * slice_size).min(wls_total))
            .map_err(|_| CommandError::Internal("REF slice bound exceeds u32 wordline count"))?;
        self.ref_counter += 1;
        for b in 0..self.banks.len() as u32 {
            let wls: Vec<u32> = self.banks[b as usize]
                .rows
                .keys()
                .copied()
                .filter(|&wl| wl >= lo && wl < hi)
                .collect();
            for wl in wls {
                self.settle_and_restore(b, Wordline(wl), at)?;
            }
            self.banks[b as usize].last_pre = None;
            if self.profile.hidden.trr.enabled {
                self.run_in_dram_mitigation(b, at)?;
            }
        }
        self.stats.refreshes += 1;
        Ok(())
    }

    /// Loop-accelerated full refresh window; same contract as
    /// `DramChip::refresh_window`.
    pub fn refresh_window(&mut self, at: Time) -> Result<(), CommandError> {
        let result = self.refresh_window_inner(at);
        self.record(ChipEvent::RefreshWindow {
            at,
            outcome: CommandOutcome::of_unit(&result),
        });
        result
    }

    fn refresh_window_inner(&mut self, at: Time) -> Result<(), CommandError> {
        if at < self.now {
            return Err(CommandError::TimeReversed);
        }
        self.now = at;
        for b in 0..self.banks.len() {
            if self.banks[b].open.is_some() {
                return Err(CommandError::RefreshWhileOpen);
            }
        }
        for b in 0..self.banks.len() as u32 {
            let wls: Vec<u32> = self.banks[b as usize].rows.keys().copied().collect();
            for wl in wls {
                self.settle_and_restore(b, Wordline(wl), at)?;
            }
            self.banks[b as usize].last_pre = None;
            if self.profile.hidden.trr.enabled {
                self.run_in_dram_mitigation(b, at)?;
            }
        }
        self.ref_counter = self.ref_counter.next_multiple_of(REF_SLICES);
        self.stats.refreshes += REF_SLICES;
        Ok(())
    }

    fn cmd_rfm(&mut self, bank: u32, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        if self.banks[bank as usize].open.is_some() {
            return Err(CommandError::RefreshWhileOpen);
        }
        if self.profile.hidden.trr.enabled {
            self.run_in_dram_mitigation(bank, at)?;
        }
        Ok(())
    }

    fn run_in_dram_mitigation(&mut self, bank: u32, at: Time) -> Result<(), CommandError> {
        let n = self.profile.hidden.trr.mitigations_per_ref;
        let hottest = self.banks[bank as usize].sampler.take_hottest(n);
        for wl in hottest {
            let mut targets = self.layout.neighbors_at(Wordline(wl), 1);
            if let Some(c) = self.layout.companion_wordline(Wordline(wl)) {
                targets.extend(self.layout.neighbors_at(c, 1));
            }
            for v in targets {
                self.settle_and_restore(bank, v, at)?;
            }
        }
        Ok(())
    }

    fn default_bit(&self, wl: Wordline) -> bool {
        self.polarity_of(wl).discharged_bit()
    }

    fn polarity_of(&self, wl: Wordline) -> crate::cell::CellPolarity {
        match self.profile.hidden.polarity {
            PolarityScheme::AllTrue => crate::cell::CellPolarity::True,
            PolarityScheme::SubarrayInterleaved => {
                if self.layout.subarray_of(wl).0.is_multiple_of(2) {
                    crate::cell::CellPolarity::True
                } else {
                    crate::cell::CellPolarity::Anti
                }
            }
        }
    }

    fn default_row(&self, wl: Wordline) -> RowBits {
        let cells = self.geom.cells_per_wordline();
        if self.default_bit(wl) {
            RowBits::ones(cells)
        } else {
            RowBits::zeros(cells)
        }
    }

    fn aggressors_of(&self, wl: Wordline) -> Vec<(Wordline, f64)> {
        let model = &self.profile.hidden.disturb;
        let mut out: Vec<(Wordline, f64)> = self
            .layout
            .neighbors_at(wl, 1)
            .into_iter()
            .map(|a| (a, 1.0))
            .collect();
        out.extend(
            self.layout
                .neighbors_at(wl, 2)
                .into_iter()
                .map(|a| (a, model.distance_two_dose)),
        );
        out
    }

    fn ensure_row(&mut self, bank: u32, wl: Wordline, at: Time) {
        if !self.banks[bank as usize].rows.contains_key(&wl.0) {
            let snapshot = self.snapshot_for(bank, wl);
            let state = RowState {
                data: self.default_row(wl),
                snapshot,
                last_restore: at,
            };
            self.banks[bank as usize].rows.insert(wl.0, state);
        }
    }

    fn snapshot_for(&self, bank: u32, wl: Wordline) -> Vec<(u32, WlActivity)> {
        self.aggressors_of(wl)
            .iter()
            .map(|(a, _)| {
                (
                    a.0,
                    self.banks[bank as usize]
                        .wl_acts
                        .get(&a.0)
                        .copied()
                        .unwrap_or_default(),
                )
            })
            .collect()
    }

    fn settle_and_restore(
        &mut self,
        bank: u32,
        wl: Wordline,
        at: Time,
    ) -> Result<(), CommandError> {
        if !self.banks[bank as usize].rows.contains_key(&wl.0) {
            let state = RowState {
                data: self.default_row(wl),
                snapshot: Vec::new(),
                last_restore: Time::ZERO,
            };
            self.banks[bank as usize].rows.insert(wl.0, state);
        }
        let last_restore = self.banks[bank as usize].rows[&wl.0].last_restore;
        let elapsed = elapsed(at, last_restore)?;
        let mut row = self.banks[bank as usize]
            .rows
            .remove(&wl.0)
            .ok_or(CommandError::Internal("settled row missing after insert"))?;
        let ret_frac = self
            .retention
            .expected_fail_fraction(self.temperature_c, elapsed);
        let holds_charge = match self.polarity_of(wl) {
            crate::cell::CellPolarity::True => row.data.count_ones() > 0,
            crate::cell::CellPolarity::Anti => row.data.count_ones() < row.data.len(),
        };
        let do_retention = ret_frac > 1e-12 && holds_charge;

        let aggr: Vec<(Wordline, f64, WlActivity)> = self
            .aggressors_of(wl)
            .into_iter()
            .filter_map(|(a, scale)| {
                let cur = self.banks[bank as usize]
                    .wl_acts
                    .get(&a.0)
                    .copied()
                    .unwrap_or_default();
                let snap = row
                    .snapshot
                    .iter()
                    .find(|(w, _)| *w == a.0)
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                let d = cur.delta(&snap);
                if d.is_zero() {
                    None
                } else {
                    Some((a, scale, d))
                }
            })
            .collect();

        let worth_evaluating = if aggr.is_empty() {
            false
        } else {
            const MAX_CONTEXT_MULTIPLIER: f64 = 4.0;
            let model = &self.profile.hidden.disturb;
            let dose_h: f64 = aggr
                .iter()
                .map(|(_, s, d)| s * (d.acts as f64 + model.companion_dose * d.comp_acts as f64))
                .sum();
            let dose_p: f64 = aggr
                .iter()
                .map(|(_, s, d)| s * (d.on_ns + model.companion_dose * d.comp_on_ns))
                .sum();
            let bound = model.flip_probability(Mechanism::Hammer, dose_h, MAX_CONTEXT_MULTIPLIER)
                + model.flip_probability(Mechanism::Press, dose_p, MAX_CONTEXT_MULTIPLIER);
            bound > 1e-12
        };

        if do_retention || worth_evaluating {
            let flipped = self.apply_physics(bank, wl, &mut row, &aggr, do_retention, elapsed);
            self.stats.bitflips += flipped;
        }

        row.snapshot = self.snapshot_for(bank, wl);
        row.last_restore = at;
        self.banks[bank as usize].rows.insert(wl.0, row);
        Ok(())
    }

    fn apply_physics(
        &self,
        bank: u32,
        wl: Wordline,
        row: &mut RowState,
        aggr: &[(Wordline, f64, WlActivity)],
        do_retention: bool,
        elapsed: Time,
    ) -> u64 {
        let mut flipped = 0u64;
        let model = &self.profile.hidden.disturb;
        let polarity = self.polarity_of(wl);
        let sub = self.layout.subarray_of(wl);
        let is_edge = self.layout.info(sub).is_edge();
        let cells = self.geom.cells_per_wordline();
        let orig = row.data.clone();

        let aggr_rows: Vec<(Wordline, f64, WlActivity, RowBits)> = aggr
            .iter()
            .map(|(a, scale, d)| {
                let bits = self.banks[bank as usize]
                    .rows
                    .get(&a.0)
                    .map(|r| r.data.clone())
                    .unwrap_or_else(|| self.default_row(*a));
                (*a, *scale, *d, bits)
            })
            .collect();

        for bl in 0..cells {
            let bit = orig.get(bl);
            let charged = polarity.is_charged(bit);

            if do_retention && charged {
                let u_ret = unit_open(
                    self.seed,
                    bank as u64,
                    wl.0 as u64,
                    bl as u64,
                    TAG_RETENTION,
                );
                if self.retention.fails(u_ret, self.temperature_c, elapsed) {
                    row.data.set(bl, polarity.discharged_bit());
                    flipped += 1;
                    continue;
                }
            }

            if aggr_rows.is_empty() {
                continue;
            }

            let mut vic_diff = [None; 4];
            for (i, off) in [-2i64, -1, 1, 2].iter().enumerate() {
                let n = bl as i64 + off;
                if n >= 0
                    && (n as u32) < cells
                    && self.geom.same_mat(Bitline(bl), Bitline(n as u32))
                {
                    vic_diff[i] = Some(orig.get(n as u32) != bit);
                }
            }

            let mut survive_h = 1.0f64;
            let mut survive_p = 1.0f64;
            for (a, scale, d, a_bits) in &aggr_rows {
                let dir = if a.0 > wl.0 {
                    AggressorDir::Upper
                } else {
                    AggressorDir::Lower
                };
                let gate = gate_type(wl, Bitline(bl), dir);

                let mut aggr_same = [None; 5];
                for (i, off) in [-2i64, -1, 0, 1, 2].iter().enumerate() {
                    let n = bl as i64 + off;
                    if n >= 0
                        && (n as u32) < cells
                        && self.geom.same_mat(Bitline(bl), Bitline(n as u32))
                    {
                        aggr_same[i] = Some(a_bits.get(n as u32) == bit);
                    }
                }

                let ctx = FlipContext {
                    gate,
                    charged,
                    vic_data: bit,
                    vic_neighbor_differs: vic_diff,
                    aggr_same,
                    edge: is_edge,
                    aggr0_data: a_bits.get(bl),
                    dose_scale: *scale,
                };
                let m_h = model.dose_multiplier(Mechanism::Hammer, &ctx);
                let m_p = model.dose_multiplier(Mechanism::Press, &ctx);
                let dose_h = d.acts as f64 + model.companion_dose * d.comp_acts as f64;
                let dose_p = d.on_ns + model.companion_dose * d.comp_on_ns;
                let p_h = model.flip_probability(Mechanism::Hammer, dose_h, m_h);
                let p_p = model.flip_probability(Mechanism::Press, dose_p, m_p);
                survive_h *= 1.0 - p_h;
                survive_p *= 1.0 - p_p;
            }
            let p_hammer = 1.0 - survive_h;
            let p_press = 1.0 - survive_p;
            let flips = (p_hammer > 0.0
                && unit_open(self.seed, bank as u64, wl.0 as u64, bl as u64, TAG_HAMMER)
                    < p_hammer)
                || (p_press > 0.0
                    && unit_open(self.seed, bank as u64, wl.0 as u64, bl as u64, TAG_PRESS)
                        < p_press);
            if flips {
                row.data.set(bl, !bit);
                flipped += 1;
            }
        }
        flipped
    }

    fn apply_rowcopy(
        &mut self,
        bank: u32,
        src: Wordline,
        dst: Wordline,
    ) -> Result<(), CommandError> {
        let relation = self.layout.copy_relation(src, dst);
        if relation == CopyRelation::Unrelated || src == dst {
            return Ok(());
        }
        let src_bits = self.banks[bank as usize]
            .rows
            .get(&src.0)
            .map(|r| r.data.clone())
            .unwrap_or_else(|| self.default_row(src));
        let src_pol = self.polarity_of(src);
        let dst_pol = self.polarity_of(dst);
        self.ensure_row(bank, dst, self.now);
        let cells = self.geom.cells_per_wordline();

        let transfer = |dst_bl: u32, src_bl: u32, crosses_sa: bool, row: &mut RowState| {
            let src_bit = src_bits.get(src_bl);
            let src_charge = src_pol.is_charged(src_bit);
            let dst_charge = if crosses_sa { !src_charge } else { src_charge };
            let dst_bit = match (dst_pol, dst_charge) {
                (crate::cell::CellPolarity::True, c) => c,
                (crate::cell::CellPolarity::Anti, c) => !c,
            };
            row.data.set(dst_bl, dst_bit);
        };

        let mut row =
            self.banks[bank as usize]
                .rows
                .remove(&dst.0)
                .ok_or(CommandError::Internal(
                    "copy destination missing after ensure_row",
                ))?;
        match relation {
            CopyRelation::SameSubarray if src_pol == dst_pol => {
                row.data = src_bits.clone();
            }
            CopyRelation::SameSubarray => {
                for bl in 0..cells {
                    transfer(bl, bl, false, &mut row);
                }
            }
            CopyRelation::AdjacentAbove => {
                for p in 0..cells / 2 {
                    transfer(2 * p, 2 * p + 1, true, &mut row);
                }
            }
            CopyRelation::AdjacentBelow => {
                for p in 0..cells / 2 {
                    transfer(2 * p + 1, 2 * p, true, &mut row);
                }
            }
            CopyRelation::TandemLowToHigh => {
                for p in 0..cells / 2 {
                    transfer(2 * p + 1, 2 * p, true, &mut row);
                }
            }
            CopyRelation::TandemHighToLow => {
                for p in 0..cells / 2 {
                    transfer(2 * p, 2 * p + 1, true, &mut row);
                }
            }
            CopyRelation::Unrelated => {
                return Err(CommandError::Internal("unrelated copy reached transfer"))
            }
        }
        self.banks[bank as usize].rows.insert(dst.0, row);
        Ok(())
    }
}
