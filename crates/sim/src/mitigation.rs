//! In-DRAM AIB mitigation: TRR-style activation sampling and the
//! DDR5 RFM/DRFM mitigation hook (paper §VI-B).
//!
//! Real DDR4 devices ship undocumented target-row-refresh (TRR) engines
//! that sample "suspicious" activations and refresh their neighbours
//! during `REF`; DDR5 standardizes the interface as RFM/DRFM, where the
//! controller *tells* the device when to spend mitigation work. Both run
//! **inside** the DRAM, so they act on physical wordlines — they know the
//! chip's own remapping, coupling, and tandem structure, which is exactly
//! why the paper recommends DRFM against coupled-row attacks.
//!
//! The model here is a Misra–Gries frequent-row sampler with a bounded
//! table, which matches the publicly reverse-engineered behaviour of
//! real TRR implementations (few table entries, bypassable by many-sided
//! patterns with enough decoys).

use std::collections::BTreeMap;

/// Configuration of the in-DRAM mitigation engine.
///
/// `None`-style absence is modeled by [`TrrConfig::disabled`] (the
/// default for every profile, matching the paper's test methodology of
/// working around TRR with single-sided patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrrConfig {
    /// Whether the engine is active.
    pub enabled: bool,
    /// Sampler table entries per bank (real devices: 1–4).
    pub sampler_entries: usize,
    /// Sampled rows mitigated per `REF`/`RFM` (neighbours refreshed).
    pub mitigations_per_ref: usize,
}

impl TrrConfig {
    /// No in-DRAM mitigation.
    pub const fn disabled() -> Self {
        TrrConfig {
            enabled: false,
            sampler_entries: 0,
            mitigations_per_ref: 0,
        }
    }

    /// A typical DDR4-era TRR: a small sampler, one mitigation per `REF`.
    pub const fn typical_trr(entries: usize) -> Self {
        TrrConfig {
            enabled: true,
            sampler_entries: entries,
            mitigations_per_ref: 1,
        }
    }
}

impl Default for TrrConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The per-bank activation sampler (Misra–Gries frequent-row sketch).
#[derive(Debug, Clone, Default)]
pub struct Sampler {
    counters: BTreeMap<u32, u64>,
    capacity: usize,
}

impl Sampler {
    /// Creates a sampler with a bounded table.
    pub fn new(capacity: usize) -> Self {
        Sampler {
            counters: BTreeMap::new(),
            capacity,
        }
    }

    /// Records `count` activations of `wl`.
    ///
    /// The table never holds a zero-count entry: a zero-count
    /// observation is a no-op, entries that decay to zero during the
    /// Misra–Gries decrement are dropped, and an outsider whose count is
    /// fully consumed by the decrement is not admitted. (A zero entry
    /// would squat on one of the few table slots — real TRR samplers
    /// have 1–4 — and starve the sampler of live aggressors.)
    pub fn observe(&mut self, wl: u32, count: u64) {
        if self.capacity == 0 || count == 0 {
            return;
        }
        if let Some(c) = self.counters.get_mut(&wl) {
            *c += count;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(wl, count);
            return;
        }
        // Misra–Gries decrement: every resident row pays for the outsider.
        // Clamping at zero is the algorithm here, not a hidden error path:
        // a counter fully consumed by the decrement is evicted on the next
        // line. (`dec` never exceeds the table minimum anyway.)
        let dec = count.min(self.counters.values().copied().min().unwrap_or(0));
        self.counters.retain(|_, c| {
            *c = c.saturating_sub(dec);
            *c > 0
        });
        let remaining = count - dec;
        if remaining > 0 && self.counters.len() < self.capacity {
            self.counters.insert(wl, remaining);
        }
    }

    /// Takes the `n` hottest sampled wordlines, clearing their counters.
    pub fn take_hottest(&mut self, n: usize) -> Vec<u32> {
        let mut entries: Vec<(u32, u64)> = self.counters.iter().map(|(&w, &c)| (w, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let picked: Vec<u32> = entries.iter().take(n).map(|(w, _)| *w).collect();
        for w in &picked {
            self.counters.remove(w);
        }
        picked
    }

    /// Current table occupancy (for tests).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The current `(wordline, count)` entries, in wordline order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counters.iter().map(|(&w, &c)| (w, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_tracks_the_heavy_hitter() {
        let mut s = Sampler::new(2);
        for _ in 0..10 {
            s.observe(5, 100);
            s.observe(7, 1);
        }
        let hot = s.take_hottest(1);
        assert_eq!(hot, vec![5]);
    }

    #[test]
    fn sampler_capacity_bounds_the_table() {
        let mut s = Sampler::new(4);
        for wl in 0..100 {
            s.observe(wl, 1);
        }
        assert!(s.len() <= 4);
    }

    #[test]
    fn decoys_can_evict_the_real_aggressor() {
        // The classic many-sided TRR bypass: more distinct decoy rows than
        // table entries starve the sampler.
        let mut s = Sampler::new(2);
        for round in 0..1000 {
            s.observe(5, 1); // the real aggressor
            for d in 0..8 {
                s.observe(100 + (round * 8 + d) % 64, 1); // rotating decoys
            }
        }
        // Row 5 cannot retain a dominant count against 8 decoys per round.
        let hot = s.take_hottest(2);
        let count_5 = hot.iter().filter(|&&w| w == 5).count();
        assert!(
            count_5 == 0 || s.is_empty(),
            "sampler must be starvable: got {hot:?}"
        );
    }

    #[test]
    fn take_hottest_clears_taken_entries() {
        let mut s = Sampler::new(3);
        s.observe(1, 10);
        s.observe(2, 20);
        let hot = s.take_hottest(1);
        assert_eq!(hot, vec![2]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn zero_count_observations_never_occupy_entries() {
        let mut s = Sampler::new(2);
        s.observe(9, 0);
        assert!(s.is_empty(), "a zero-count observation must not insert");
        s.observe(1, 4);
        s.observe(2, 4);
        // Outsider whose count is fully consumed by the decrement: the
        // old code inserted it with count 0 and let it squat on a slot.
        s.observe(3, 4);
        assert!(
            s.entries().all(|(_, c)| c > 0),
            "no zero-count entries may survive observe: {:?}",
            s.entries().collect::<Vec<_>>()
        );
    }

    #[test]
    fn long_hammer_keeps_the_table_bounded_and_zero_free() {
        // A long many-sided hammer cycling through far more distinct rows
        // than the table holds, with counts chosen so the decrement often
        // lands exactly on an entry's count (the zero-entry trigger).
        let mut s = Sampler::new(4);
        for round in 0u32..20_000 {
            let wl = round % 512;
            let count = u64::from(round % 3); // 0, 1, 2 — zeros included
            s.observe(wl, count);
            assert!(s.len() <= 4, "round {round}: table grew past capacity");
            assert!(
                s.entries().all(|(_, c)| c > 0),
                "round {round}: zero-count entry kept alive"
            );
        }
    }

    #[test]
    fn zero_capacity_sampler_is_inert() {
        let mut s = Sampler::new(0);
        s.observe(1, 100);
        assert!(s.is_empty());
        assert!(s.take_hottest(4).is_empty());
    }

    #[test]
    fn config_presets() {
        assert!(!TrrConfig::disabled().enabled);
        let t = TrrConfig::typical_trr(2);
        assert!(t.enabled);
        assert_eq!(t.sampler_entries, 2);
        assert_eq!(TrrConfig::default(), TrrConfig::disabled());
    }
}
