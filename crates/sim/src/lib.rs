//! # dram-sim
//!
//! A command-level DRAM device simulator with an explicit physical model of
//! the modern 6F² cell array, built as the silicon substitute for the
//! [DRAMScope (ISCA 2024)](https://doi.org/10.1109/ISCA59077.2024.00083)
//! reproduction.
//!
//! The simulator models, per chip:
//!
//! * **Microarchitecture**: banks split into open-bitline subarrays with
//!   non-power-of-two heights (Table III of the paper), sense-amplifier
//!   stripes shared between adjacent subarrays, edge-subarray tandem pairs
//!   with dummy bitlines, memory array tiles (MATs) with vendor-specific
//!   widths, intra-chip data swizzling, internal row remapping, and
//!   coupled-row aliasing.
//! * **Cell physics**: the 6F² top/bottom cell taxonomy with
//!   passing/neighboring gate resolution, true-/anti-cell polarity,
//!   activate-induced bitflips (RowHammer and RowPress) driven by a
//!   weakest-cell dose/threshold model, data-retention leakage, and
//!   charge-transfer RowCopy on violated precharge timing.
//! * **Interface**: the standard DRAM command set (`ACT`, `PRE`, `RD`, `WR`,
//!   `REF`) with picosecond timestamps. The microarchitecture above is
//!   *hidden* behind this interface; reverse-engineering tools in
//!   `dramscope-core` interact with a [`DramChip`] exactly the way the paper
//!   interacts with silicon through an FPGA testbed.
//!
//! # Example
//!
//! ```
//! use dram_sim::{ChipProfile, DramChip, Command, Time};
//!
//! # fn main() -> Result<(), dram_sim::CommandError> {
//! let mut chip = DramChip::new(ChipProfile::mfr_a_x4_2021(), 42);
//! let mut t = Time::ZERO;
//! chip.issue(Command::Activate { bank: 0, row: 100 }, t)?;
//! t += chip.timing().trcd;
//! chip.issue(Command::Write { bank: 0, col: 0, data: 0xDEAD_BEEF }, t)?;
//! t += chip.timing().tras;
//! chip.issue(Command::Precharge { bank: 0 }, t)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cell;
pub mod chip;
#[cfg(test)]
mod difftest;
pub mod digest;
pub mod disturb;
pub mod ecc;
pub mod geometry;
pub mod layout;
pub mod metrics;
pub mod mitigation;
pub mod profile;
#[cfg(any(test, feature = "ref-model"))]
pub mod refchip;
pub mod remap;
pub mod retention;
pub mod rng;
pub mod rowdata;
pub mod sink;
pub mod swizzle;
pub mod time;

pub use cell::{AggressorDir, CellKind, CellPolarity, GateType};
pub use chip::{ChipStats, Command, CommandError, DramChip, GroundTruth, ReadData, REF_SLICES};
pub use digest::fnv1a_64;
pub use disturb::{DisturbModel, FlipContext, GateRates, Mechanism};
pub use geometry::{row_neighbors, BankGeometry, Bitline, LogicalRow, MatId, SubarrayId, Wordline};
pub use layout::{BankLayout, CopyRelation, EdgeRole, StripeSide, SubarrayInfo};
pub use metrics::{MetricsSink, SharedMetrics};
pub use mitigation::TrrConfig;
pub use profile::{ChipProfile, IoWidth, PolarityScheme, Vendor};
pub use remap::RowRemap;
pub use retention::RetentionModel;
pub use rowdata::RowBits;
pub use sink::{ChipEvent, CommandOutcome, CommandSink, Tee};
pub use swizzle::{SwizzleMap, SwizzleStyle};
pub use time::{Time, TimingParams};
