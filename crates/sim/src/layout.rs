//! Subarray layout of one bank (paper §IV-C).
//!
//! A bank splits into *segments* (the edge-subarray interval of Table III);
//! each segment is an independent slab of silicon containing a run of
//! open-bitline subarrays whose heights repeat the vendor's composition
//! block (e.g. `11×640 + 2×576`). Within a segment:
//!
//! * consecutive subarrays share a sense-amplifier stripe — the stripe
//!   below subarray *i* serves subarray *i*'s even bitlines and subarray
//!   *i−1*'s odd bitlines;
//! * the segment's **first and last subarrays are the edge tandem pair**:
//!   the first subarray's even bitlines and the last subarray's odd
//!   bitlines meet on a shared *wrap stripe* that also carries the dummy
//!   bitlines (paper O5, Fig. 9);
//! * activating a wordline in one edge subarray co-activates the
//!   corresponding wordline in its tandem partner (doubling activation
//!   power, §VI-C).
//!
//! Nothing crosses a segment boundary: no AIB, no RowCopy.

use crate::geometry::{SubarrayId, Wordline};

/// How an edge subarray participates in its tandem pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeRole {
    /// The physically lowest subarray of its segment.
    Low,
    /// The physically highest subarray of its segment.
    High,
}

/// Which sense-amplifier stripe a bitline parity reaches, relative to a
/// subarray (open-bitline convention of this model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StripeSide {
    /// Even bitlines connect downward (or to the wrap stripe for the
    /// low-edge subarray).
    Lower,
    /// Odd bitlines connect upward (or to the wrap stripe for the
    /// high-edge subarray).
    Upper,
}

/// Descriptor of one subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubarrayInfo {
    /// Index within the bank, from the physical bottom.
    pub id: SubarrayId,
    /// First wordline of the subarray.
    pub start_wl: u32,
    /// Height in wordlines.
    pub height: u32,
    /// Segment (edge-interval slab) the subarray belongs to.
    pub segment: u32,
    /// Tandem role if this is an edge subarray.
    pub edge_role: Option<EdgeRole>,
}

impl SubarrayInfo {
    /// `true` for the first/last subarray of a segment.
    pub fn is_edge(&self) -> bool {
        self.edge_role.is_some()
    }

    /// One-past-the-last wordline.
    pub fn end_wl(&self) -> u32 {
        self.start_wl + self.height
    }
}

/// The relationship between two wordlines for charge-transfer RowCopy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyRelation {
    /// Same subarray: every bitline shares its sense amplifier; the full
    /// row copies without crossing an SA.
    SameSubarray,
    /// Destination in the subarray directly above the source: the shared
    /// stripe pairs source odd bitlines with destination even bitlines.
    AdjacentAbove,
    /// Destination in the subarray directly below the source: the shared
    /// stripe pairs source even bitlines with destination odd bitlines.
    AdjacentBelow,
    /// Source in the low-edge, destination in the high-edge subarray of
    /// the same segment: the wrap stripe pairs source even bitlines with
    /// destination odd bitlines.
    TandemLowToHigh,
    /// Source in the high-edge, destination in the low-edge subarray:
    /// source odd bitlines pair with destination even bitlines.
    TandemHighToLow,
    /// No shared sense amplifiers: RowCopy has no effect.
    Unrelated,
}

/// The complete subarray layout of one bank.
///
/// # Example
///
/// ```
/// use dram_sim::{BankLayout, Wordline};
/// let layout = BankLayout::build(256, 128, &[40, 24]);
/// assert_eq!(layout.subarray_count(), 8);
/// assert_eq!(layout.subarray_of(Wordline(0)).0, 0);
/// assert_eq!(layout.subarray_of(Wordline(40)).0, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankLayout {
    /// Start wordline of each subarray, plus a final sentinel equal to the
    /// total wordline count.
    starts: Vec<u32>,
    segment_wls: u32,
    subs_per_segment: u32,
    total_wls: u32,
}

impl BankLayout {
    /// Builds the layout for `total_wls` wordlines split into segments of
    /// `segment_wls`, each tiled by the repeating `composition` block.
    ///
    /// # Panics
    ///
    /// Panics if the composition is empty or the sizes do not tile exactly
    /// (`segment_wls` must be a multiple of the block sum, `total_wls` a
    /// multiple of `segment_wls`).
    pub fn build(total_wls: u32, segment_wls: u32, composition: &[u32]) -> Self {
        assert!(!composition.is_empty(), "composition must not be empty");
        assert!(composition.iter().all(|&h| h > 0));
        let block: u32 = composition.iter().sum();
        assert_eq!(segment_wls % block, 0, "segment must tile by block");
        assert_eq!(total_wls % segment_wls, 0, "bank must tile by segment");
        let blocks_per_segment = segment_wls / block;
        let block_subs = u32::try_from(composition.len())
            .expect("composition block count fits the u32 subarray space");
        let subs_per_segment = blocks_per_segment
            .checked_mul(block_subs)
            .expect("subarrays per segment fit u32");
        let segments = total_wls / segment_wls;

        let mut starts = Vec::with_capacity((segments * subs_per_segment + 1) as usize);
        let mut wl = 0u32;
        for _seg in 0..segments {
            for _blk in 0..blocks_per_segment {
                for &h in composition {
                    starts.push(wl);
                    wl += h;
                }
            }
        }
        starts.push(wl);
        debug_assert_eq!(wl, total_wls);
        BankLayout {
            starts,
            segment_wls,
            subs_per_segment,
            total_wls,
        }
    }

    /// Total wordlines covered.
    pub fn total_wordlines(&self) -> u32 {
        self.total_wls
    }

    /// Number of subarrays in the bank.
    pub fn subarray_count(&self) -> u32 {
        u32::try_from(self.starts.len() - 1).expect("one start per subarray, each ≥1 wordline")
    }

    /// Wordlines per segment (the edge-subarray interval).
    pub fn segment_wordlines(&self) -> u32 {
        self.segment_wls
    }

    /// Subarrays per segment.
    pub fn subarrays_per_segment(&self) -> u32 {
        self.subs_per_segment
    }

    /// The subarray containing a wordline.
    ///
    /// # Panics
    ///
    /// Panics if the wordline is out of range.
    pub fn subarray_of(&self, wl: Wordline) -> SubarrayId {
        assert!(wl.0 < self.total_wls, "wordline {wl} out of range");
        // starts is sorted; partition_point returns the first start > wl.
        let idx = self.starts.partition_point(|&s| s <= wl.0) - 1;
        SubarrayId(u32::try_from(idx).expect("subarray index bounded by u32 wordline count"))
    }

    /// Full descriptor of a subarray.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn info(&self, id: SubarrayId) -> SubarrayInfo {
        let i = id.0 as usize;
        assert!(i < self.starts.len() - 1, "subarray {id} out of range");
        let local = id.0 % self.subs_per_segment;
        let edge_role = if local == 0 {
            Some(EdgeRole::Low)
        } else if local == self.subs_per_segment - 1 {
            Some(EdgeRole::High)
        } else {
            None
        };
        SubarrayInfo {
            id,
            start_wl: self.starts[i],
            height: self.starts[i + 1] - self.starts[i],
            segment: id.0 / self.subs_per_segment,
            edge_role,
        }
    }

    /// The local row index of a wordline within its subarray.
    pub fn local_index(&self, wl: Wordline) -> u32 {
        let sa = self.subarray_of(wl);
        wl.0 - self.starts[sa.0 as usize]
    }

    /// `true` if both wordlines sit in one subarray.
    pub fn in_same_subarray(&self, a: Wordline, b: Wordline) -> bool {
        self.subarray_of(a) == self.subarray_of(b)
    }

    /// The tandem partner of an edge subarray, if any.
    pub fn tandem_partner(&self, id: SubarrayId) -> Option<SubarrayId> {
        let info = self.info(id);
        let seg_base = info.segment * self.subs_per_segment;
        match info.edge_role? {
            EdgeRole::Low => Some(SubarrayId(seg_base + self.subs_per_segment - 1)),
            EdgeRole::High => Some(SubarrayId(seg_base)),
        }
    }

    /// The co-activated wordline in the tandem partner when `wl` lies in an
    /// edge subarray (paper O5 / §VI-C double activation).
    pub fn companion_wordline(&self, wl: Wordline) -> Option<Wordline> {
        let sa = self.subarray_of(wl);
        let partner = self.tandem_partner(sa)?;
        if partner == sa {
            // Degenerate single-subarray segment: no tandem.
            return None;
        }
        let local = self.local_index(wl);
        let pinfo = self.info(partner);
        Some(Wordline(pinfo.start_wl + local.min(pinfo.height - 1)))
    }

    /// The wordlines physically adjacent to `wl` inside its subarray —
    /// the only rows AIB from `wl` can reach at distance `dist`.
    pub fn neighbors_at(&self, wl: Wordline, dist: u32) -> Vec<Wordline> {
        let sa = self.subarray_of(wl);
        let info = self.info(sa);
        let mut out = Vec::with_capacity(2);
        if wl.0 >= info.start_wl + dist {
            out.push(Wordline(wl.0 - dist));
        }
        if wl.0 + dist < info.end_wl() {
            out.push(Wordline(wl.0 + dist));
        }
        out
    }

    /// The RowCopy relationship between a source and destination wordline.
    pub fn copy_relation(&self, src: Wordline, dst: Wordline) -> CopyRelation {
        let s = self.info(self.subarray_of(src));
        let d = self.info(self.subarray_of(dst));
        if s.id == d.id {
            return CopyRelation::SameSubarray;
        }
        if s.segment != d.segment {
            return CopyRelation::Unrelated;
        }
        if d.id.0 == s.id.0 + 1 {
            return CopyRelation::AdjacentAbove;
        }
        if s.id.0 == d.id.0 + 1 {
            return CopyRelation::AdjacentBelow;
        }
        match (s.edge_role, d.edge_role) {
            (Some(EdgeRole::Low), Some(EdgeRole::High)) => CopyRelation::TandemLowToHigh,
            (Some(EdgeRole::High), Some(EdgeRole::Low)) => CopyRelation::TandemHighToLow,
            _ => CopyRelation::Unrelated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> BankLayout {
        // Two segments of 128 wordlines, blocks of 40+24.
        BankLayout::build(256, 128, &[40, 24])
    }

    #[test]
    fn build_tiles_exactly() {
        let l = layout();
        assert_eq!(l.subarray_count(), 8);
        assert_eq!(l.subarrays_per_segment(), 4);
        let heights: Vec<u32> = (0..8).map(|i| l.info(SubarrayId(i)).height).collect();
        assert_eq!(heights, vec![40, 24, 40, 24, 40, 24, 40, 24]);
    }

    #[test]
    fn subarray_of_matches_boundaries() {
        let l = layout();
        assert_eq!(l.subarray_of(Wordline(0)), SubarrayId(0));
        assert_eq!(l.subarray_of(Wordline(39)), SubarrayId(0));
        assert_eq!(l.subarray_of(Wordline(40)), SubarrayId(1));
        assert_eq!(l.subarray_of(Wordline(127)), SubarrayId(3));
        assert_eq!(l.subarray_of(Wordline(128)), SubarrayId(4));
        assert_eq!(l.subarray_of(Wordline(255)), SubarrayId(7));
    }

    #[test]
    fn edge_roles_per_segment() {
        let l = layout();
        assert_eq!(l.info(SubarrayId(0)).edge_role, Some(EdgeRole::Low));
        assert_eq!(l.info(SubarrayId(1)).edge_role, None);
        assert_eq!(l.info(SubarrayId(3)).edge_role, Some(EdgeRole::High));
        assert_eq!(l.info(SubarrayId(4)).edge_role, Some(EdgeRole::Low));
    }

    #[test]
    fn tandem_partners_pair_up() {
        let l = layout();
        assert_eq!(l.tandem_partner(SubarrayId(0)), Some(SubarrayId(3)));
        assert_eq!(l.tandem_partner(SubarrayId(3)), Some(SubarrayId(0)));
        assert_eq!(l.tandem_partner(SubarrayId(1)), None);
        assert_eq!(l.tandem_partner(SubarrayId(4)), Some(SubarrayId(7)));
    }

    #[test]
    fn companion_wordline_clamps_to_partner_height() {
        let l = layout();
        // Low edge (height 40) → high edge (height 24): local 30 clamps to 23.
        assert_eq!(l.companion_wordline(Wordline(30)), Some(Wordline(104 + 23)));
        assert_eq!(l.companion_wordline(Wordline(5)), Some(Wordline(104 + 5)));
        assert_eq!(l.companion_wordline(Wordline(50)), None);
    }

    #[test]
    fn neighbors_respect_subarray_boundaries() {
        let l = layout();
        assert_eq!(l.neighbors_at(Wordline(0), 1), vec![Wordline(1)]);
        assert_eq!(
            l.neighbors_at(Wordline(39), 1),
            vec![Wordline(38)],
            "wl 39 is the top of subarray 0; wl 40 is across an SA stripe"
        );
        assert_eq!(
            l.neighbors_at(Wordline(20), 1),
            vec![Wordline(19), Wordline(21)]
        );
        assert_eq!(
            l.neighbors_at(Wordline(20), 2),
            vec![Wordline(18), Wordline(22)]
        );
    }

    #[test]
    fn copy_relations() {
        let l = layout();
        use CopyRelation::*;
        assert_eq!(l.copy_relation(Wordline(3), Wordline(30)), SameSubarray);
        assert_eq!(l.copy_relation(Wordline(3), Wordline(45)), AdjacentAbove);
        assert_eq!(l.copy_relation(Wordline(45), Wordline(3)), AdjacentBelow);
        assert_eq!(l.copy_relation(Wordline(0), Wordline(127)), TandemLowToHigh);
        assert_eq!(l.copy_relation(Wordline(127), Wordline(0)), TandemHighToLow);
        assert_eq!(l.copy_relation(Wordline(3), Wordline(70)), Unrelated);
        assert_eq!(
            l.copy_relation(Wordline(3), Wordline(130)),
            Unrelated,
            "nothing crosses a segment boundary"
        );
    }

    #[test]
    #[should_panic(expected = "segment must tile")]
    fn bad_composition_panics() {
        BankLayout::build(256, 100, &[40, 24]);
    }
}
