//! Coordinate newtypes and bank geometry.
//!
//! The address flow inside a simulated chip (paper §III-C, §IV):
//!
//! ```text
//! pin row address            (what arrives on the C/A pins, post-RCD)
//!   └─ internal remap ──► logical row   (vendor row-decoder scramble)
//!        └─ coupled-row fold ──► wordline (two logical rows may share one WL)
//!             └─ layout ──► (subarray, local row)
//! ```
//!
//! Column/data flow:
//!
//! ```text
//! RD_data bit index ──(swizzle)──► (MAT, intra-MAT physical bitline)
//! ```

use std::fmt;

/// The physically adjacent row indices of `row` inside a bank of `rows`
/// rows: up to two neighbors (`row - 1`, `row + 1`), in ascending order,
/// with both array edges handled by `checked_sub`/bounds tests rather
/// than wrapping arithmetic. Row 0 yields only `1`; the last row yields
/// only `rows - 2`; a single-row bank yields nothing.
///
/// Every neighbor enumeration in the workspace goes through this helper
/// so the edge rows the paper stresses (row 0, last row, edge subarrays)
/// can never manufacture a wrapped `u32::MAX` address.
pub fn row_neighbors(row: u32, rows: u32) -> impl Iterator<Item = u32> {
    let below = row.checked_sub(1).filter(|&r| r < rows);
    let above = row.checked_add(1).filter(|&r| r < rows);
    below.into_iter().chain(above)
}

/// A row address as it appears on the chip's command/address pins.
///
/// This is *after* any RCD inversion (the RCD lives at module level) but
/// *before* the chip's internal remapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalRow(pub u32);

impl fmt::Display for LogicalRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A physical wordline index within a bank, counted from the physical
/// bottom of the array. Adjacent indices are physically adjacent unless a
/// sense-amplifier stripe (subarray boundary) lies between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Wordline(pub u32);

impl fmt::Display for Wordline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wl{}", self.0)
    }
}

/// A physical bitline index within a wordline, counted from the physically
/// leftmost cell. Even/odd parity decides which sense-amplifier stripe the
/// bitline connects to in the open-bitline structure (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bitline(pub u32);

impl Bitline {
    /// `true` if the index is even (connects to the lower stripe in this
    /// model's convention).
    pub const fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }
}

impl fmt::Display for Bitline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bl{}", self.0)
    }
}

/// A subarray index within a bank, counted from the physical bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubarrayId(pub u32);

impl fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sa{}", self.0)
    }
}

/// A memory-array-tile index within a wordline, counted from the left.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MatId(pub u32);

impl fmt::Display for MatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mat{}", self.0)
    }
}

/// Static geometry of one bank.
///
/// # Example
///
/// ```
/// use dram_sim::BankGeometry;
/// let g = BankGeometry::new(1 << 17, 4096, 512, 2);
/// assert_eq!(g.wordlines(), 1 << 16); // coupled: two rows per wordline
/// assert_eq!(g.mats(), 16);           // 8192 cells / 512 per MAT
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankGeometry {
    /// Number of addressable (pin-level) rows in the bank.
    pub rows: u32,
    /// Data bits stored per addressable row (the chip's row width).
    pub row_bits: u32,
    /// Cells per MAT row (the hidden MAT width, paper O2).
    pub mat_width: u32,
    /// Addressable rows folded onto one physical wordline (1 = normal,
    /// 2 = coupled-row chips, paper O3).
    pub rows_per_wordline: u32,
}

impl BankGeometry {
    /// Creates a bank geometry.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero, if `rows` is not divisible by
    /// `rows_per_wordline`, or if the wordline cell count is not divisible
    /// by `mat_width`.
    pub fn new(rows: u32, row_bits: u32, mat_width: u32, rows_per_wordline: u32) -> Self {
        assert!(rows > 0 && row_bits > 0 && mat_width > 0 && rows_per_wordline > 0);
        assert_eq!(rows % rows_per_wordline, 0, "rows must fold evenly");
        let wl_cells = row_bits * rows_per_wordline;
        assert_eq!(wl_cells % mat_width, 0, "wordline must tile into MATs");
        BankGeometry {
            rows,
            row_bits,
            mat_width,
            rows_per_wordline,
        }
    }

    /// Number of physical wordlines in the bank.
    pub const fn wordlines(&self) -> u32 {
        self.rows / self.rows_per_wordline
    }

    /// Number of physical cells along one wordline.
    pub const fn cells_per_wordline(&self) -> u32 {
        self.row_bits * self.rows_per_wordline
    }

    /// Number of MATs along one wordline.
    pub const fn mats(&self) -> u32 {
        self.cells_per_wordline() / self.mat_width
    }

    /// `true` when two addressable rows share each wordline (paper O3).
    pub const fn has_coupled_rows(&self) -> bool {
        self.rows_per_wordline == 2
    }

    /// The addressable-row distance between the two members of a
    /// coupled-row pair, or `None` for uncoupled chips.
    ///
    /// Coupled chips alias row `r` and `r + rows/2` onto one wordline, so
    /// the distance is always half the bank (64K rows for the paper's ×4
    /// DDR4 parts, Table III).
    pub const fn coupled_row_distance(&self) -> Option<u32> {
        if self.has_coupled_rows() {
            Some(self.rows / 2)
        } else {
            None
        }
    }

    /// Splits a logical row into `(wordline, half)` where `half` selects
    /// which coupled half of the wordline the row's data occupies.
    pub const fn fold(&self, row: LogicalRow) -> (Wordline, u32) {
        let wls = self.wordlines();
        (Wordline(row.0 % wls), row.0 / wls)
    }

    /// Inverse of [`fold`](Self::fold): the logical row for a wordline half.
    pub const fn unfold(&self, wl: Wordline, half: u32) -> LogicalRow {
        LogicalRow(wl.0 + half * self.wordlines())
    }

    /// Converts a `(half, data-bit index)` pair to the physical bitline.
    ///
    /// Coupled halves occupy disjoint MATs on the shared wordline: half 0
    /// owns the left MATs, half 1 the right MATs. Horizontal cell coupling
    /// therefore never crosses halves, matching the MAT isolation the paper
    /// observes (§IV-A).
    pub const fn half_bit_to_bitline(&self, half: u32, bit: u32) -> Bitline {
        Bitline(half * self.row_bits + bit)
    }

    /// Converts a physical bitline back to `(half, data-bit index)`.
    pub const fn bitline_to_half_bit(&self, bl: Bitline) -> (u32, u32) {
        (bl.0 / self.row_bits, bl.0 % self.row_bits)
    }

    /// The MAT containing a physical bitline.
    pub const fn mat_of(&self, bl: Bitline) -> MatId {
        MatId(bl.0 / self.mat_width)
    }

    /// `true` if two bitlines sit in the same MAT (horizontal coupling is
    /// only possible inside a MAT; paper §IV-A).
    pub const fn same_mat(&self, a: Bitline, b: Bitline) -> bool {
        self.mat_of(a).0 == self.mat_of(b).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coupled_x4() -> BankGeometry {
        BankGeometry::new(1 << 17, 4096, 512, 2)
    }

    fn plain_x8() -> BankGeometry {
        BankGeometry::new(1 << 16, 8192, 1024, 1)
    }

    #[test]
    fn fold_unfold_round_trips() {
        let g = coupled_x4();
        for r in [0u32, 1, 65_535, 65_536, 131_071] {
            let (wl, half) = g.fold(LogicalRow(r));
            assert_eq!(g.unfold(wl, half), LogicalRow(r));
        }
    }

    #[test]
    fn coupled_rows_share_wordlines() {
        let g = coupled_x4();
        let (wl_a, half_a) = g.fold(LogicalRow(100));
        let (wl_b, half_b) = g.fold(LogicalRow(100 + (1 << 16)));
        assert_eq!(wl_a, wl_b);
        assert_ne!(half_a, half_b);
        assert_eq!(g.coupled_row_distance(), Some(1 << 16));
    }

    #[test]
    fn plain_geometry_has_no_coupling() {
        let g = plain_x8();
        assert!(!g.has_coupled_rows());
        assert_eq!(g.coupled_row_distance(), None);
        assert_eq!(g.wordlines(), 1 << 16);
    }

    #[test]
    fn halves_occupy_disjoint_mats() {
        let g = coupled_x4();
        let left = g.half_bit_to_bitline(0, g.row_bits - 1);
        let right = g.half_bit_to_bitline(1, 0);
        assert!(!g.same_mat(left, right) || g.mat_of(left) != g.mat_of(right));
        assert_eq!(g.mat_of(right).0, g.row_bits / g.mat_width);
    }

    #[test]
    fn bitline_round_trips() {
        let g = coupled_x4();
        for bit in [0u32, 1, 511, 512, 4095] {
            for half in 0..2 {
                let bl = g.half_bit_to_bitline(half, bit);
                assert_eq!(g.bitline_to_half_bit(bl), (half, bit));
            }
        }
    }

    #[test]
    #[should_panic(expected = "rows must fold evenly")]
    fn odd_fold_panics() {
        BankGeometry::new(7, 64, 32, 2);
    }

    #[test]
    fn row_neighbors_handles_both_array_edges() {
        let n = |row, rows| row_neighbors(row, rows).collect::<Vec<u32>>();
        assert_eq!(n(0, 8), vec![1], "row 0 has no wrapped below-neighbor");
        assert_eq!(n(7, 8), vec![6], "last row has no above-neighbor");
        assert_eq!(n(3, 8), vec![2, 4]);
        assert_eq!(n(0, 1), Vec::<u32>::new());
        assert_eq!(n(0, 0), Vec::<u32>::new());
        // Out-of-bank rows yield only in-bank neighbors.
        assert_eq!(n(8, 8), vec![7]);
        assert_eq!(n(u32::MAX, 8), Vec::<u32>::new());
    }
}
