//! Deterministic pseudo-random variates for the device model.
//!
//! Every stochastic element of the simulated silicon — per-cell disturbance
//! thresholds, retention times, process variation — is derived from a
//! `(seed, coordinates)` tuple through a SplitMix64-style mixer. This makes
//! a simulated chip behave like a *specific* piece of silicon: the same weak
//! cells flip first on every run, which mirrors real DRAM and lets the test
//! suite assert exact discovered structures.

/// Mixes a 64-bit value with the SplitMix64 finalizer.
///
/// This is the standard avalanche mixer from Vigna's `splitmix64`; it is
/// bijective and passes BigCrush when used as a counter-based generator.
///
/// # Example
///
/// ```
/// let a = dram_sim::rng::mix64(1);
/// let b = dram_sim::rng::mix64(2);
/// assert_ne!(a, b);
/// ```
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a seed with up to four coordinate words into one 64-bit hash.
///
/// The combination is a short Merkle–Damgård chain over [`mix64`], so every
/// coordinate influences every output bit.
#[inline]
pub fn hash_coords(seed: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut h = mix64(seed ^ 0xD1B5_4A32_D192_ED03);
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    mix64(h ^ d)
}

/// Returns a uniform variate in the open interval `(0, 1)`.
///
/// The value is never exactly `0.0` or `1.0`, so it is safe to use in
/// power-law transforms (`u.powf(gamma)`) and logarithms.
#[inline]
pub fn unit_open(seed: u64, a: u64, b: u64, c: u64, d: u64) -> f64 {
    let h = hash_coords(seed, a, b, c, d);
    // 53 random mantissa bits, then shift into (0, 1).
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    // Clamp away from exact zero; 2^-60 is far below any quantile we use.
    u.max(8.67e-19)
}

/// A small counter-based generator for streams of variates.
///
/// `StreamRng` is used where the device model needs *sequences* (for
/// example, shuffling) rather than coordinate-addressed single variates.
///
/// # Example
///
/// ```
/// use dram_sim::rng::StreamRng;
/// let mut rng = StreamRng::new(7);
/// let x = rng.next_u64();
/// let y = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRng {
    state: u64,
}

impl StreamRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift reduction; slight modulo bias is
        // irrelevant for the shuffles this is used for.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `(0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        let h = self.next_u64();
        ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(8.67e-19)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Approximates the standard normal inverse CDF (Acklam's method).
///
/// Used by the retention model to draw lognormal retention times from the
/// coordinate-addressed uniform variates. Absolute error is below 1.15e-9
/// over the full open unit interval.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
#[allow(clippy::excessive_precision)]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_ne!(mix64(12345), mix64(12346));
    }

    #[test]
    fn hash_coords_distinguishes_every_coordinate() {
        let base = hash_coords(1, 2, 3, 4, 5);
        assert_ne!(base, hash_coords(9, 2, 3, 4, 5));
        assert_ne!(base, hash_coords(1, 9, 3, 4, 5));
        assert_ne!(base, hash_coords(1, 2, 9, 4, 5));
        assert_ne!(base, hash_coords(1, 2, 3, 9, 5));
        assert_ne!(base, hash_coords(1, 2, 3, 4, 9));
    }

    #[test]
    fn unit_open_is_in_open_interval() {
        for i in 0..10_000 {
            let u = unit_open(7, i, 0, 0, 0);
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn unit_open_mean_is_near_half() {
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|i| unit_open(3, i, 1, 2, 3)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn stream_rng_shuffle_is_a_permutation() {
        let mut rng = StreamRng::new(99);
        let mut items: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(items, (0..64).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = StreamRng::new(5);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn inverse_normal_cdf_hits_known_quantiles() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn inverse_normal_cdf_is_monotonic() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let x = inverse_normal_cdf(p);
            assert!(x > prev);
            prev = x;
        }
    }
}
