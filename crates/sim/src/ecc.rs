//! On-die ECC: a Hamming SEC code over each RD_data word
//! (paper §VI-B's ECC-mitigation discussion; the BEER/HARP line of work
//! the paper cites for uncovering such codes).
//!
//! Modern high-density DRAM corrects single-cell errors inside the chip,
//! invisibly to the host. The model here protects each 32-bit RD_data
//! word with a Hamming(38,32) single-error-correcting code whose six
//! parity bits live in *reserved columns* of the same row — real cells
//! that take retention and disturbance damage like any others, which is
//! what makes double-error miscorrection (the BEER observation)
//! reproducible.

/// Parity bits per protected data word.
pub const PARITY_BITS: u32 = 6;

/// Codeword length for a 32-bit data word (bit positions 1..=38; parity
/// at the power-of-two positions).
const CODEWORD_LEN: u32 = 38;

/// Returns `true` for the power-of-two codeword positions that hold
/// parity.
fn is_parity_position(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// The codeword position (1-based) of data bit `i` (0-based).
fn data_position(i: u32) -> u32 {
    // Skip parity positions while walking the codeword.
    let mut pos = 1;
    let mut seen = 0;
    loop {
        if !is_parity_position(pos) {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

/// Precomputed data-bit positions (computed on first use).
fn data_positions() -> [u32; 32] {
    let mut out = [0u32; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = data_position(i as u32);
    }
    out
}

/// Encodes a 32-bit data word into its six Hamming parity bits.
///
/// # Example
///
/// ```
/// use dram_sim::ecc;
/// let p = ecc::encode(0xDEAD_BEEF);
/// assert_eq!(ecc::decode(0xDEAD_BEEF, p), (0xDEAD_BEEF, ecc::Correction::None));
/// ```
pub fn encode(data: u32) -> u8 {
    let positions = data_positions();
    let mut parity = 0u8;
    for (j, shift) in (0..PARITY_BITS).enumerate() {
        let mask = 1u32 << shift; // parity position 2^shift
        let mut p = false;
        for (i, &pos) in positions.iter().enumerate() {
            if pos & mask != 0 && data & (1 << i) != 0 {
                p = !p;
            }
        }
        if p {
            parity |= 1 << j;
        }
    }
    parity
}

/// What the decoder did to the word it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Correction {
    /// Clean codeword.
    None,
    /// A single data-bit error was corrected.
    DataBit(u32),
    /// A parity-bit error was detected (data returned untouched).
    ParityBit(u32),
    /// The syndrome pointed outside the codeword: at least two errors,
    /// returned best-effort (possibly miscorrected upstream).
    Uncorrectable,
}

/// Decodes a (data, parity) pair: returns the corrected data word and
/// what happened.
///
/// Double errors produce either a [`Correction::Uncorrectable`] verdict
/// or — when the combined syndrome aliases a valid position — a silent
/// *miscorrection* that flips a third, previously-correct bit. Both
/// behaviours match real SEC on-die ECC.
pub fn decode(data: u32, parity: u8) -> (u32, Correction) {
    let expected = encode(data);
    let syndrome_low = (expected ^ parity) as u32;
    if syndrome_low == 0 {
        return (data, Correction::None);
    }
    // Reconstruct the syndrome as a codeword position: each differing
    // parity bit j contributes 2^j.
    let pos = syndrome_low;
    if pos > CODEWORD_LEN {
        return (data, Correction::Uncorrectable);
    }
    if is_parity_position(pos) {
        return (data, Correction::ParityBit(pos.trailing_zeros()));
    }
    let positions = data_positions();
    let bit = positions
        .iter()
        .position(|&p| p == pos)
        .expect("non-parity position within the codeword is a data bit") as u32;
    (data ^ (1 << bit), Correction::DataBit(bit))
}

/// Host-visible data columns when a row of `cols` columns of `rd_bits`
/// each reserves space for per-word parity.
pub fn data_columns(cols: u32, rd_bits: u32) -> u32 {
    cols * rd_bits / (rd_bits + PARITY_BITS)
}

/// The (column, bit) cell holding parity bit `j` of data column `c`,
/// given the host/data split.
pub fn parity_cell(data_cols: u32, rd_bits: u32, c: u32, j: u32) -> (u32, u32) {
    let idx = c * PARITY_BITS + j;
    (data_cols + idx / rd_bits, idx % rd_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_words_decode_clean() {
        for data in [0u32, u32::MAX, 0xDEAD_BEEF, 0x0139_71AC] {
            let p = encode(data);
            assert_eq!(decode(data, p), (data, Correction::None));
        }
    }

    #[test]
    fn every_single_data_bit_error_is_corrected() {
        let data = 0x5A5A_1234;
        let p = encode(data);
        for bit in 0..32 {
            let corrupted = data ^ (1 << bit);
            let (fixed, what) = decode(corrupted, p);
            assert_eq!(fixed, data, "bit {bit}");
            assert_eq!(what, Correction::DataBit(bit));
        }
    }

    #[test]
    fn every_single_parity_bit_error_is_flagged() {
        let data = 0xCAFE_F00D;
        let p = encode(data);
        for j in 0..PARITY_BITS {
            let corrupted = p ^ (1 << j);
            let (fixed, what) = decode(data, corrupted);
            assert_eq!(fixed, data);
            assert_eq!(what, Correction::ParityBit(j));
        }
    }

    #[test]
    fn double_errors_are_not_silently_clean() {
        // SEC (no DED): two errors must never decode as `None`, and they
        // sometimes miscorrect — the BEER-relevant behaviour.
        let data = 0x0F0F_3C3C;
        let p = encode(data);
        let mut miscorrections = 0;
        for a in 0..8 {
            for b in (a + 1)..8 {
                let corrupted = data ^ (1 << a) ^ (1 << b);
                let (fixed, what) = decode(corrupted, p);
                assert_ne!(what, Correction::None, "bits {a},{b}");
                if let Correction::DataBit(_) = what {
                    if fixed != data {
                        miscorrections += 1;
                    }
                }
            }
        }
        assert!(miscorrections > 0, "SEC must miscorrect some double errors");
    }

    #[test]
    fn data_positions_avoid_parity_slots() {
        let positions = data_positions();
        for &p in &positions {
            assert!(!is_parity_position(p));
            assert!(p <= CODEWORD_LEN);
        }
        let mut sorted = positions.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
    }

    #[test]
    fn layout_helpers_tile() {
        // 128 columns of 32 bits: 107 data columns, parity fits the rest.
        assert_eq!(data_columns(128, 32), 107);
        let data_cols = 107;
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..data_cols {
            for j in 0..PARITY_BITS {
                let (pc, pb) = parity_cell(data_cols, 32, c, j);
                assert!(pc >= data_cols && pc < 128, "col {pc}");
                assert!(pb < 32);
                assert!(seen.insert((pc, pb)), "parity cells must not collide");
            }
        }
    }
}
