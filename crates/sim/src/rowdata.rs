//! Dense bit storage for row contents.

use std::fmt;

/// A fixed-width bit vector holding the data of one addressable row
/// (or one whole wordline).
///
/// Bit index 0 is the physically leftmost cell of the region the vector
/// covers.
///
/// # Example
///
/// ```
/// use dram_sim::rowdata::RowBits;
/// let mut row = RowBits::zeros(128);
/// row.set(5, true);
/// assert!(row.get(5));
/// assert_eq!(row.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RowBits {
    words: Vec<u64>,
    len: u32,
}

impl RowBits {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: u32) -> Self {
        RowBits {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: u32) -> Self {
        let mut r = Self::zeros(len);
        r.fill(true);
        r
    }

    /// Creates a vector by repeating an 8-bit pattern (LSB first).
    pub fn from_byte_pattern(len: u32, pattern: u8) -> Self {
        let mut r = Self::zeros(len);
        for i in 0..len {
            r.set(i, pattern & (1 << (i % 8)) != 0);
        }
        r
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: u32, v: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `i` and returns its new value.
    pub fn toggle(&mut self, i: u32) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Sets every bit to `v`.
    pub fn fill(&mut self, v: bool) {
        let word = if v { u64::MAX } else { 0 };
        for w in &mut self.words {
            *w = word;
        }
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Indices where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn diff_indices(&self, other: &RowBits) -> Vec<u32> {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut out = Vec::new();
        for (wi, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let bit = x.trailing_zeros();
                // Differing bits lie below `len: u32`, so the index fits;
                // the checked conversion guards the multiply against a
                // silent wrap if that invariant ever breaks.
                let base = u32::try_from(wi * 64).expect("bit index fits u32 row length");
                out.push(base + bit);
                x &= x - 1;
            }
        }
        out
    }

    /// Number of differing bits.
    pub fn hamming(&self, other: &RowBits) -> u32 {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Returns a bit-inverted copy.
    pub fn inverted(&self) -> RowBits {
        let mut r = self.clone();
        for w in &mut r.words {
            *w = !*w;
        }
        r.mask_tail();
        r
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for RowBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowBits[{} bits, {} ones]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = RowBits::zeros(100);
        assert_eq!(z.count_ones(), 0);
        let o = RowBits::ones(100);
        assert_eq!(o.count_ones(), 100);
    }

    #[test]
    fn set_get_toggle() {
        let mut r = RowBits::zeros(70);
        r.set(69, true);
        assert!(r.get(69));
        assert!(!r.get(68));
        assert!(!r.toggle(69));
        assert_eq!(r.count_ones(), 0);
    }

    #[test]
    fn byte_pattern_repeats() {
        let r = RowBits::from_byte_pattern(32, 0x33);
        // 0x33 = 0b0011_0011 → bits 0,1,4,5 set per byte.
        for i in 0..32 {
            assert_eq!(r.get(i), matches!(i % 8, 0 | 1 | 4 | 5), "bit {i}");
        }
    }

    #[test]
    fn diff_and_hamming_agree() {
        let mut a = RowBits::zeros(130);
        let b = RowBits::zeros(130);
        a.set(0, true);
        a.set(64, true);
        a.set(129, true);
        assert_eq!(a.diff_indices(&b), vec![0, 64, 129]);
        assert_eq!(a.hamming(&b), 3);
    }

    #[test]
    fn inverted_respects_tail() {
        let r = RowBits::zeros(70);
        let inv = r.inverted();
        assert_eq!(inv.count_ones(), 70);
        assert_eq!(inv.inverted(), r);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        RowBits::zeros(8).get(8);
    }
}
