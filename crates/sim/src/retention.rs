//! Data-retention physics (paper §III-B).
//!
//! Each cell leaks charge and decays from its charged state to its
//! discharged state unless refreshed. Retention times follow a wide
//! lognormal across cells (the classic retention-tail distribution) and
//! halve for every fixed temperature increase, so the retention test can
//! be accelerated by heating — exactly how the paper's testbed separates
//! true-cells from anti-cells.

use crate::rng::inverse_normal_cdf;
use crate::time::Time;

/// The retention-time distribution of a chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionModel {
    /// Median retention time at the reference temperature, in seconds.
    pub median_s: f64,
    /// Lognormal sigma (natural-log units).
    pub sigma: f64,
    /// Reference temperature in °C (the paper tests DDR4 at 75 °C).
    pub ref_temp_c: f64,
    /// Temperature step that halves retention, in °C.
    pub halving_c: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel {
            median_s: 300.0,
            sigma: 1.2,
            ref_temp_c: 75.0,
            halving_c: 10.0,
        }
    }
}

impl RetentionModel {
    /// The retention time of a cell with process variate `u ∈ (0,1)` at
    /// temperature `temp_c`, in seconds.
    ///
    /// # Example
    ///
    /// ```
    /// use dram_sim::retention::RetentionModel;
    /// let m = RetentionModel::default();
    /// // Hotter chips retain for less time.
    /// assert!(m.retention_time_s(0.5, 85.0) < m.retention_time_s(0.5, 75.0));
    /// ```
    pub fn retention_time_s(&self, u: f64, temp_c: f64) -> f64 {
        let z = inverse_normal_cdf(u);
        let at_ref = self.median_s * (self.sigma * z).exp();
        at_ref * 2f64.powf((self.ref_temp_c - temp_c) / self.halving_c)
    }

    /// Whether a charged cell with variate `u` has decayed after holding
    /// its charge for `elapsed` at `temp_c`.
    pub fn fails(&self, u: f64, temp_c: f64, elapsed: Time) -> bool {
        let elapsed_s = elapsed.as_ps() as f64 / 1e12;
        elapsed_s > self.retention_time_s(u, temp_c)
    }

    /// The expected failing fraction after `elapsed` at `temp_c`
    /// (the lognormal CDF). Useful for calibrating tests analytically.
    pub fn expected_fail_fraction(&self, temp_c: f64, elapsed: Time) -> f64 {
        let elapsed_s = elapsed.as_ps() as f64 / 1e12;
        if elapsed_s <= 0.0 {
            return 0.0;
        }
        let scaled_median = self.median_s * 2f64.powf((self.ref_temp_c - temp_c) / self.halving_c);
        let z = (elapsed_s / scaled_median).ln() / self.sigma;
        normal_cdf(z)
    }

    /// The largest elapsed time (in picoseconds) whose
    /// [`expected_fail_fraction`](Self::expected_fail_fraction) at
    /// `temp_c` stays at or below `threshold`.
    ///
    /// The fail fraction is a lognormal CDF of elapsed time, hence
    /// monotone non-decreasing, so a binary search to 1 ps pins the
    /// crossing exactly. Callers cache the result per temperature and
    /// compare raw picosecond clocks against it to skip the CDF on the
    /// (overwhelmingly common) short-elapsed settles.
    pub fn negligible_elapsed_ps(&self, temp_c: f64, threshold: f64) -> u64 {
        // A quarter of the u64 range is ~53 days of picoseconds —
        // far beyond any refresh interval worth modeling.
        const CAP: u64 = u64::MAX / 4;
        let frac = |ps: u64| self.expected_fail_fraction(temp_c, Time::from_ps(ps));
        if frac(1) > threshold {
            return 0;
        }
        let mut lo = 1u64;
        let mut hi = 1u64;
        while frac(hi) <= threshold {
            if hi >= CAP {
                return CAP;
            }
            lo = hi;
            hi = hi.saturating_mul(2).min(CAP);
        }
        // Invariant: frac(lo) <= threshold < frac(hi).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if frac(mid) <= threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Standard normal CDF via `erf`-free Abramowitz–Stegun approximation.
fn normal_cdf(z: f64) -> f64 {
    // Zelen & Severo 26.2.17, |error| < 7.5e-8.
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let upper = pdf * poly;
    if z >= 0.0 {
        1.0 - upper
    } else {
        upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_cell_retains_for_the_median_time() {
        let m = RetentionModel::default();
        let t = m.retention_time_s(0.5, m.ref_temp_c);
        assert!((t - m.median_s).abs() / m.median_s < 1e-6);
    }

    #[test]
    fn weak_cells_fail_sooner() {
        let m = RetentionModel::default();
        assert!(m.retention_time_s(0.01, 75.0) < m.retention_time_s(0.99, 75.0));
    }

    #[test]
    fn heating_accelerates_failures() {
        let m = RetentionModel::default();
        let wait = Time::from_ms(120_000);
        assert!(
            m.expected_fail_fraction(85.0, wait) > m.expected_fail_fraction(45.0, wait),
            "hotter must fail more"
        );
    }

    #[test]
    fn fails_is_consistent_with_retention_time() {
        let m = RetentionModel::default();
        let u = 0.2;
        let t = m.retention_time_s(u, 75.0);
        let just_under = Time::from_ps((t * 1e12 * 0.99) as u64);
        let just_over = Time::from_ps((t * 1e12 * 1.01) as u64);
        assert!(!m.fails(u, 75.0, just_under));
        assert!(m.fails(u, 75.0, just_over));
    }

    #[test]
    fn expected_fraction_matches_empirical() {
        let m = RetentionModel::default();
        let wait = Time::from_ms(120_000);
        let n = 50_000;
        let empirical = (0..n)
            .filter(|&i| {
                let u = crate::rng::unit_open(11, i, 0, 0, 0);
                m.fails(u, 75.0, wait)
            })
            .count() as f64
            / n as f64;
        let expected = m.expected_fail_fraction(75.0, wait);
        assert!(
            (empirical - expected).abs() < 0.01,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn no_failures_at_zero_elapsed() {
        let m = RetentionModel::default();
        assert_eq!(m.expected_fail_fraction(75.0, Time::ZERO), 0.0);
        assert!(!m.fails(0.5, 75.0, Time::ZERO));
    }
}
