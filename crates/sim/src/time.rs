//! Simulation time and DRAM timing parameters.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in simulated time, measured in integer picoseconds.
///
/// Picosecond resolution comfortably represents both the DDR4 clock
/// (tCK = 1.25 ns) and the HBM2 clock (tCK = 1.67 ns) without rounding,
/// and a `u64` covers more than 200 days of simulated time.
///
/// # Example
///
/// ```
/// use dram_sim::Time;
/// let t = Time::from_ns(35) + Time::from_ns(15);
/// assert_eq!(t.as_ns(), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in (possibly fractional) nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the time in (possibly fractional) milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Clamping subtraction: `self - rhs`, floored at [`Time::ZERO`].
    ///
    /// Reach for this only where "no earlier than the origin" is the
    /// *intended semantics* — e.g. widening a scan window that may abut
    /// the start of time. Wherever a negative difference would instead
    /// indicate a time-ordering bug (a command dated before the event it
    /// is measured against), use [`Time::checked_sub`] and surface the
    /// reversal; clamping there silently converts a logic error into a
    /// plausible-looking zero.
    pub fn clamped_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` when `rhs` is later than `self`.
    ///
    /// The simulator uses this wherever a clamped result would silently
    /// hide a time-ordering bug (a command dated before the event it is
    /// measured against).
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// The JEDEC-style timing parameters of a chip.
///
/// Values follow DDR4-3200AA-class parts (and HBM2 for the stacked
/// profiles); the reverse-engineering flows only depend on the *ordering*
/// constraints (for example `ACT`→`ACT` faster than `tRP` triggers
/// RowCopy), not on the absolute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Clock period.
    pub tck: Time,
    /// `ACT` to `RD`/`WR` delay.
    pub trcd: Time,
    /// `ACT` to `PRE` minimum (row restore complete).
    pub tras: Time,
    /// `PRE` to next `ACT` minimum (bitline precharge complete).
    pub trp: Time,
    /// Refresh cycle time (one `REF` command's duration).
    pub trfc: Time,
    /// Average refresh interval (all rows refreshed once per `tREFW`).
    pub trefw: Time,
}

impl TimingParams {
    /// DDR4-3200-class timings (tCK = 1.25 ns, paper §III-A).
    pub const fn ddr4() -> Self {
        TimingParams {
            tck: Time::from_ps(1_250),
            trcd: Time::from_ps(13_750),
            tras: Time::from_ps(32_000),
            trp: Time::from_ps(13_750),
            trfc: Time::from_ns(350),
            trefw: Time::from_ms(64),
        }
    }

    /// HBM2-class timings (tCK = 1.67 ns, paper §III-A).
    pub const fn hbm2() -> Self {
        TimingParams {
            tck: Time::from_ps(1_670),
            trcd: Time::from_ps(14_000),
            tras: Time::from_ps(33_000),
            trp: Time::from_ps(14_000),
            trfc: Time::from_ns(350),
            trefw: Time::from_ms(64),
        }
    }

    /// The canonical single-activation "hammer" dwell time:
    /// `tRAS`-limited open time used by a tight `ACT`-`PRE` loop.
    pub fn hammer_on_time(&self) -> Time {
        self.tras
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(Time::from_ns(5).as_ps(), 5_000);
        assert_eq!(Time::from_us(2).as_ps(), 2_000_000);
        assert_eq!(Time::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Time::from_ns(35).as_ns(), 35.0);
    }

    #[test]
    fn time_arithmetic_behaves() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(b * 3, Time::from_ns(12));
        assert_eq!(b.clamped_sub(a), Time::ZERO);
        assert_eq!(a.clamped_sub(b), Time::from_ns(6));
        assert_eq!(a.checked_sub(b), Some(Time::from_ns(6)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Time::from_ps(500).to_string(), "500ps");
        assert_eq!(Time::from_ns(35).to_string(), "35.000ns");
        assert_eq!(Time::from_us(8).to_string(), "8.000us");
        assert_eq!(Time::from_ms(64).to_string(), "64.000ms");
    }

    #[test]
    fn ddr4_orderings_hold() {
        let t = TimingParams::ddr4();
        assert!(t.tck < t.trcd);
        assert!(t.trcd < t.tras);
        assert!(t.trp < t.tras);
        assert!(t.trefw > t.trfc);
    }
}
