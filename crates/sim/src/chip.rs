//! The simulated DRAM chip: command interface, state machine, and the
//! physical effects (AIB, retention, RowCopy) that the DRAMScope toolkit
//! observes through it.
//!
//! # Evaluation model
//!
//! Physical effects are *lazily materialized*: per-wordline activation
//! counters accumulate as commands arrive, and a row's pending bitflips
//! (disturbance and retention) are resolved when the row is next sensed
//! (`ACT`) or refreshed — which is also when real silicon would reveal
//! them. Activating a row restores its charge, so the disturbance and
//! retention clocks of that row reset at every activation, exactly as in
//! hardware.
//!
//! # Flat bank state
//!
//! All per-wordline state lives in dense `Vec` tables indexed by wordline
//! (allocated lazily per bank on first touch): activation counters in
//! `BankState::wl_acts`, materialized rows in `BankState::rows`. A
//! sorted dirty list records which rows are materialized so refresh can
//! settle them in the same deterministic ascending order the previous
//! `BTreeMap`-backed implementation used. Static per-wordline facts
//! (aggressor slots, tandem companion, polarity, edge role) are
//! precomputed once per chip into `WlStatic` so the per-command hot
//! path does no tree lookups and no allocation; two provably
//! conservative pre-filters (a cached retention-negligibility horizon
//! and a cubic disturbance-dose bound) skip the expensive `powf`/CDF
//! evaluations whenever no cell could plausibly flip. See
//! `DESIGN.md` § "Flat bank state" for the identity argument.
//!
//! # Loop acceleration
//!
//! A tight `ACT`-`PRE` hammer loop is physically equivalent to adding
//! `count` activations to one wordline's counters. [`DramChip::activate_burst`]
//! exposes that equivalence so testbed programs can run 300 K-activation
//! attacks in O(1); it performs exactly the same state updates a command
//! loop would.

use crate::cell::{gate_type, AggressorDir, CellPolarity};
use crate::disturb::{FlipContext, Mechanism};
use crate::geometry::{BankGeometry, Bitline, LogicalRow, Wordline};
use crate::layout::{BankLayout, CopyRelation};
use crate::profile::{ChipProfile, PolarityScheme};
use crate::remap::RowRemap;
use crate::retention::RetentionModel;
use crate::rng::unit_open;
use crate::rowdata::RowBits;
use crate::sink::{ChipEvent, CommandOutcome, CommandSink, SinkSlot};
use crate::swizzle::SwizzleMap;
use crate::time::{Time, TimingParams};
use std::error::Error;
use std::fmt;

/// Hash-stream tags so each physical phenomenon draws independent
/// variates. RowHammer and RowPress use *separate* streams: their failure
/// mechanisms differ (electron migration vs. crosstalk), so a cell weak
/// under one is not necessarily weak under the other — the paper observes
/// that their flipped-cell populations barely overlap (§V-B).
const TAG_HAMMER: u64 = 0xD157;
const TAG_PRESS: u64 = 0x9435;
const TAG_RETENTION: u64 = 0x4E7E;

/// `ACT` issued within this fraction of `tRP` after a `PRE` latches the
/// not-yet-precharged bitline state into the destination row (RowCopy).
const COPY_WINDOW_FRACTION: f64 = 0.5;

/// Flip probabilities at or below this are treated as "cannot happen":
/// both the retention horizon and the disturbance dose bound compare
/// against it before running the per-cell physics pass.
const NEGLIGIBLE_P: f64 = 1e-12;

/// The most generous context multiplier any [`FlipContext`] can produce;
/// used to bound the best-case flip probability of an accumulated dose.
const MAX_CONTEXT_MULTIPLIER: f64 = 4.0;

/// A wordline has at most two distance-1 and two distance-2 aggressors
/// (subarray-clipped), so every aggressor set fits four static slots.
const MAX_AGGRESSORS: usize = 4;

/// Sentinel in [`WlStatic::companion`] for "no tandem companion". Valid
/// wordline indices are bounded by the bank geometry, far below this.
const NO_COMPANION: u32 = u32::MAX;

/// Widens a wordline index for dense-table addressing; `u32 → usize`
/// cannot truncate on any supported target (usize is ≥ 32 bits).
#[inline(always)]
fn wi(wl: u32) -> usize {
    wl as usize
}

/// The bitline `off` columns away from `bl`, if it exists on the die:
/// non-negative, representable as a `u32` index, and under `cells`.
/// Checked conversion instead of `n as u32`, which would silently wrap
/// a geometry-derived index near the top of the `u32` range.
#[inline(always)]
fn bl_offset(bl: u32, off: i64, cells: u32) -> Option<u32> {
    u32::try_from(i64::from(bl) + off)
        .ok()
        .filter(|&n| n < cells)
}

/// Elapsed time from `earlier` to `later`, failing loudly when the order
/// is reversed. A saturating subtraction here would clamp to zero and
/// let an out-of-order command slip past the tRCD / copy-window / decay
/// computations it should fail.
fn elapsed(later: Time, earlier: Time) -> Result<Time, CommandError> {
    later.checked_sub(earlier).ok_or(CommandError::TimeReversed)
}

/// JEDEC refresh granularity: one `REF` covers 1/8192 of the rows; a full
/// refresh window (`tREFW`) is 8192 `REF` commands.
pub const REF_SLICES: u64 = 8192;

/// A DRAM command as it arrives on the chip's pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Open a row: sense it into the sense amplifiers.
    Activate {
        /// Bank index.
        bank: u32,
        /// Pin-level row address.
        row: u32,
    },
    /// Close the open row and start precharging the bitlines.
    Precharge {
        /// Bank index.
        bank: u32,
    },
    /// Read one RD_data burst from the open row.
    Read {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
    },
    /// Write one RD_data burst into the open row.
    Write {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
        /// RD_data payload, bit 0 = first burst bit.
        data: u64,
    },
    /// Refresh: restore every row and reset all retention clocks. Also
    /// the point where an in-DRAM TRR engine spends its mitigation work.
    Refresh,
    /// DDR5-style refresh management: ask the device to run its in-DRAM
    /// AIB mitigation for one bank, now (paper §VI-B).
    Rfm {
        /// Bank index.
        bank: u32,
    },
}

impl Command {
    /// The command's pin mnemonic (`act`, `pre`, `rd`, `wr`, `ref`,
    /// `rfm`) — the stable label telemetry buckets command mixes under.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Activate { .. } => "act",
            Command::Precharge { .. } => "pre",
            Command::Read { .. } => "rd",
            Command::Write { .. } => "wr",
            Command::Refresh => "ref",
            Command::Rfm { .. } => "rfm",
        }
    }

    /// The bank the command addresses, if it is bank-scoped (`REF` is
    /// all-bank and has none).
    pub fn bank(&self) -> Option<u32> {
        match self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. }
            | Command::Rfm { bank } => Some(*bank),
            Command::Refresh => None,
        }
    }
}

/// Data returned by a `RD` command (RD_data bits, LSB first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ReadData(pub u64);

/// Errors from [`DramChip::issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandError {
    /// Bank index out of range.
    BankOutOfRange {
        /// Offending bank.
        bank: u32,
        /// Banks on the chip.
        banks: u32,
    },
    /// Row address out of range.
    RowOutOfRange {
        /// Offending row.
        row: u32,
        /// Rows per bank.
        rows: u32,
    },
    /// Column address out of range.
    ColOutOfRange {
        /// Offending column.
        col: u32,
        /// Columns per row.
        cols: u32,
    },
    /// `RD`/`WR`/`PRE` issued with no open row.
    NoOpenRow,
    /// `ACT` issued while a row is already open in the bank.
    RowAlreadyOpen,
    /// `RD`/`WR` issued before `tRCD` elapsed.
    TrcdViolation,
    /// `REF` issued while a row is open.
    RefreshWhileOpen,
    /// Command timestamp precedes the previous command.
    TimeReversed,
    /// An internal simulator invariant failed (a map lookup or checked
    /// conversion the protocol state machine should guarantee). This is
    /// a simulator bug surfaced as an error instead of a panic; the
    /// payload names the violated invariant.
    Internal(&'static str),
}

impl CommandError {
    /// A stable short name for the error variant — the label telemetry
    /// buckets rejections under (payload-free on purpose, so all
    /// `BankOutOfRange` rejections share one counter).
    pub fn kind(&self) -> &'static str {
        match self {
            CommandError::BankOutOfRange { .. } => "bank_out_of_range",
            CommandError::RowOutOfRange { .. } => "row_out_of_range",
            CommandError::ColOutOfRange { .. } => "col_out_of_range",
            CommandError::NoOpenRow => "no_open_row",
            CommandError::RowAlreadyOpen => "row_already_open",
            CommandError::TrcdViolation => "trcd_violation",
            CommandError::RefreshWhileOpen => "refresh_while_open",
            CommandError::TimeReversed => "time_reversed",
            CommandError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range ({banks} banks)")
            }
            CommandError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range ({rows} rows)")
            }
            CommandError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range ({cols} columns)")
            }
            CommandError::NoOpenRow => write!(f, "no open row in bank"),
            CommandError::RowAlreadyOpen => write!(f, "a row is already open in bank"),
            CommandError::TrcdViolation => write!(f, "read/write issued before tRCD"),
            CommandError::RefreshWhileOpen => write!(f, "refresh issued while a row is open"),
            CommandError::TimeReversed => write!(f, "command timestamp precedes previous command"),
            CommandError::Internal(what) => {
                write!(f, "internal simulator invariant failed: {what}")
            }
        }
    }
}

impl Error for CommandError {}

/// Cumulative activity counters for one wordline (as an aggressor).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct WlActivity {
    /// Direct activations.
    acts: u64,
    /// Direct accumulated on-time, ns.
    on_ns: f64,
    /// Tandem companion co-activations (paper O5 / §VI-C).
    comp_acts: u64,
    /// Companion accumulated on-time, ns.
    comp_on_ns: f64,
}

impl WlActivity {
    fn delta(&self, snap: &WlActivity) -> WlActivity {
        WlActivity {
            acts: self.acts - snap.acts,
            on_ns: self.on_ns - snap.on_ns,
            comp_acts: self.comp_acts - snap.comp_acts,
            comp_on_ns: self.comp_on_ns - snap.comp_on_ns,
        }
    }

    fn is_zero(&self) -> bool {
        self.acts == 0 && self.comp_acts == 0 && self.on_ns == 0.0 && self.comp_on_ns == 0.0
    }
}

/// Per-wordline stored state.
#[derive(Debug, Clone)]
struct RowState {
    /// Cell data in physical bitline order, covering the full wordline.
    data: RowBits,
    /// Aggressor counter snapshots taken at the last restore, aligned to
    /// the wordline's [`WlStatic::aggr`] slots.
    snapshot: [WlActivity; MAX_AGGRESSORS],
    /// When the row's charge was last restored.
    last_restore: Time,
}

/// Precomputed static facts about one wordline, shared by all banks: the
/// hot path reads these instead of re-deriving them from the layout on
/// every command.
#[derive(Debug, Clone, Copy)]
struct WlStatic {
    /// Aggressor wordlines in settle order: distance-1 neighbors in
    /// ascending order, then distance-2 neighbors in ascending order
    /// (the order `BankLayout::neighbors_at` yields them, which the
    /// previous implementation's `aggressors_of` concatenated).
    aggr: [u32; MAX_AGGRESSORS],
    /// Slots `0..n_dist1` are distance-1 (dose scale 1.0); slots
    /// `n_dist1..n_aggr` are distance-2 (`distance_two_dose`).
    n_dist1: u8,
    /// Occupied slot count; slots `n_aggr..` are unused.
    n_aggr: u8,
    /// Whether the wordline sits in an edge (tandem) subarray.
    is_edge: bool,
    /// The wordline's cell polarity under the chip's polarity scheme.
    polarity: CellPolarity,
    /// Tandem companion wordline, or [`NO_COMPANION`].
    companion: u32,
}

/// The currently open row of a bank.
#[derive(Debug, Clone, Copy)]
struct OpenRow {
    wl: Wordline,
    half: u32,
    since: Time,
    companion: Option<Wordline>,
}

/// A completed precharge whose bitlines may still carry the old row.
#[derive(Debug, Clone, Copy)]
struct PreEvent {
    at: Time,
    wl: Wordline,
}

#[derive(Debug, Default)]
struct BankState {
    open: Option<OpenRow>,
    last_pre: Option<PreEvent>,
    /// Dense per-wordline activation counters, allocated on the bank's
    /// first counted activation (an empty table reads as all zeros).
    wl_acts: Vec<WlActivity>,
    /// Dense per-wordline materialized rows, allocated on first touch.
    rows: Vec<Option<Box<RowState>>>,
    /// Sorted wordline indices with a materialized row. Refresh settles
    /// rows in this (ascending) order, and settle order feeds the
    /// physics through neighbor data, so the order must stay
    /// deterministic — it matches the old `BTreeMap` key order exactly.
    dirty: Vec<u32>,
    /// The in-DRAM TRR activation sampler (inert when TRR is disabled).
    sampler: crate::mitigation::Sampler,
}

impl BankState {
    /// Current counters for a wordline; an unallocated table reads as
    /// all zeros, exactly like a missing map entry did.
    #[inline]
    fn wl_act(&self, wl: u32) -> WlActivity {
        self.wl_acts.get(wi(wl)).copied().unwrap_or_default()
    }

    /// Mutable counters for a wordline, allocating the dense table
    /// (`wls` entries) on the bank's first counted activation.
    #[inline]
    fn wl_act_mut(&mut self, wl: u32, wls: usize) -> &mut WlActivity {
        if self.wl_acts.is_empty() {
            self.wl_acts = vec![WlActivity::default(); wls];
        }
        &mut self.wl_acts[wi(wl)]
    }

    /// The materialized row for a wordline, if any.
    #[inline]
    fn row(&self, wl: u32) -> Option<&RowState> {
        self.rows.get(wi(wl)).and_then(|r| r.as_deref())
    }

    /// Records `wl` in the sorted dirty list (idempotent).
    fn mark_dirty(&mut self, wl: u32) {
        if let Err(pos) = self.dirty.binary_search(&wl) {
            self.dirty.insert(pos, wl);
        }
    }
}

/// Precomputes the per-wordline static table for a chip.
fn build_wl_static(layout: &BankLayout, profile: &ChipProfile, wls: u32) -> Vec<WlStatic> {
    (0..wls)
        .map(|widx| {
            let wl = Wordline(widx);
            let d1 = layout.neighbors_at(wl, 1);
            let d2 = layout.neighbors_at(wl, 2);
            let n_dist1 = d1.len();
            let n_aggr = n_dist1 + d2.len();
            assert!(
                n_aggr <= MAX_AGGRESSORS,
                "a wordline has at most {MAX_AGGRESSORS} aggressors"
            );
            let mut aggr = [0u32; MAX_AGGRESSORS];
            for (slot, a) in d1.iter().chain(d2.iter()).enumerate() {
                aggr[slot] = a.0;
            }
            let sub = layout.subarray_of(wl);
            let polarity = match profile.hidden.polarity {
                PolarityScheme::AllTrue => CellPolarity::True,
                PolarityScheme::SubarrayInterleaved => {
                    if sub.0.is_multiple_of(2) {
                        CellPolarity::True
                    } else {
                        CellPolarity::Anti
                    }
                }
            };
            WlStatic {
                aggr,
                n_dist1: n_dist1 as u8,
                n_aggr: n_aggr as u8,
                is_edge: layout.info(sub).is_edge(),
                polarity,
                companion: layout.companion_wordline(wl).map_or(NO_COMPANION, |c| c.0),
            }
        })
        .collect()
}

/// Aggregate command statistics, including the hidden double activations
/// that the paper proposes as a power side channel (§VI-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipStats {
    /// `ACT` commands accepted (burst activations count individually).
    pub activations: u64,
    /// `RD` commands accepted.
    pub reads: u64,
    /// `WR` commands accepted.
    pub writes: u64,
    /// `REF` commands accepted.
    pub refreshes: u64,
    /// Wordline-activation energy units actually spent: coupled rows and
    /// edge-subarray tandem activations burn extra units per `ACT`.
    pub act_energy_units: u64,
    /// Cells flipped by resolved physics (disturbance and retention
    /// decay), cumulative over the chip's lifetime. Deliberate writes and
    /// RowCopy data movement do not count.
    pub bitflips: u64,
}

/// A read-only snapshot of the chip's hidden microarchitecture.
///
/// Only tests and reports may consult this; reverse-engineering code must
/// work through the command interface.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Repeating subarray-height block (wordlines).
    pub composition: Vec<u32>,
    /// Edge-subarray segment size (wordlines).
    pub edge_interval_wls: u32,
    /// Coupled-row distance in addressable rows, if coupled.
    pub coupled_distance: Option<u32>,
    /// MAT width in cells.
    pub mat_width: u32,
    /// Internal row remap scheme.
    pub remap: RowRemap,
    /// Cell polarity scheme.
    pub polarity: PolarityScheme,
    /// The intra-chip data swizzle.
    pub swizzle: SwizzleMap,
    /// Heights of every subarray in one bank, bottom to top.
    pub subarray_heights: Vec<u32>,
    /// Whether the chip runs on-die ECC.
    pub on_die_ecc: bool,
}

/// A simulated DRAM chip.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct DramChip {
    profile: ChipProfile,
    geom: BankGeometry,
    layout: BankLayout,
    retention: RetentionModel,
    seed: u64,
    banks: Vec<BankState>,
    /// Per-wordline static facts, indexed by wordline.
    wl_static: Vec<WlStatic>,
    /// Flattened swizzle map: physical bitline of `(col, bit)` at index
    /// `col * rd_bits + bit`, covering all raw columns (including the
    /// ECC parity region). Precomputed so the read/write hot loops do a
    /// table load instead of per-bit swizzle arithmetic.
    swz_table: Vec<u32>,
    /// Cached retention-negligibility horizon (ps) at the current
    /// temperature: elapsed times at or below it provably keep the
    /// expected fail fraction under [`NEGLIGIBLE_P`].
    ret_negligible_ps: u64,
    now: Time,
    temperature_c: f64,
    stats: ChipStats,
    /// Rolling `REF` slice pointer (JEDEC: 8192 slices per window).
    ref_counter: u64,
    /// Optional command-boundary observer (trace recorder / verifier).
    sink: SinkSlot,
}

impl DramChip {
    /// Creates a chip from a profile; `seed` selects the specific piece of
    /// "silicon" (which cells are weak).
    pub fn new(profile: ChipProfile, seed: u64) -> Self {
        assert!(
            !profile.hidden.on_die_ecc || profile.io_width.rd_bits() == 32,
            "on-die ECC model supports 32-bit RD_data chips"
        );
        let geom = profile.bank_geometry();
        let layout = BankLayout::build(
            geom.wordlines(),
            profile.hidden.edge_interval,
            &profile.hidden.composition,
        );
        let sampler_cap = if profile.hidden.trr.enabled {
            profile.hidden.trr.sampler_entries
        } else {
            0
        };
        let banks = (0..profile.banks)
            .map(|_| BankState {
                sampler: crate::mitigation::Sampler::new(sampler_cap),
                ..BankState::default()
            })
            .collect();
        let wl_static = build_wl_static(&layout, &profile, geom.wordlines());
        let rd_bits = profile.io_width.rd_bits();
        let raw_cols = geom.row_bits / rd_bits;
        let swz_table: Vec<u32> = (0..raw_cols)
            .flat_map(|col| {
                let swz = &profile.hidden.swizzle;
                (0..rd_bits).map(move |bit| swz.bitline_of(col, bit).0)
            })
            .collect();
        let retention = RetentionModel::default();
        let temperature_c = 75.0;
        let ret_negligible_ps = retention.negligible_elapsed_ps(temperature_c, NEGLIGIBLE_P);
        DramChip {
            geom,
            layout,
            retention,
            seed,
            banks,
            wl_static,
            ret_negligible_ps,
            now: Time::ZERO,
            temperature_c,
            stats: ChipStats::default(),
            ref_counter: 0,
            sink: SinkSlot::empty(),
            swz_table,
            profile,
        }
    }

    /// Attaches a [`CommandSink`] that will observe every subsequent
    /// command (with outcome), burst, refresh window, temperature change,
    /// and marker. Replaces any previously attached sink.
    pub fn set_sink(&mut self, sink: Box<dyn CommandSink + Send>) {
        self.sink = SinkSlot(Some(sink));
    }

    /// Detaches and returns the current sink, if any.
    pub fn clear_sink(&mut self) -> Option<Box<dyn CommandSink + Send>> {
        self.sink.0.take()
    }

    /// Whether a sink is currently attached.
    pub fn has_sink(&self) -> bool {
        self.sink.0.is_some()
    }

    /// Emits an out-of-band marker through the attached sink (no-op when
    /// none is attached). Markers never change chip state; they let a
    /// trace carry experiment structure such as characterization phases.
    pub fn mark(&mut self, label: &str) {
        if let Some(s) = self.sink.0.as_mut() {
            s.record(ChipEvent::Marker { label });
        }
    }

    #[inline]
    fn record(&mut self, event: ChipEvent<'_>) {
        if let Some(s) = self.sink.0.as_mut() {
            s.record(event);
        }
    }

    /// The chip's (public) profile.
    pub fn profile(&self) -> &ChipProfile {
        &self.profile
    }

    /// The chip's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.profile.timing
    }

    /// The current simulated time (timestamp of the last command).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current die temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the die temperature (driven by the testbed's thermal plant).
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature_c = celsius;
        self.ret_negligible_ps = self.retention.negligible_elapsed_ps(celsius, NEGLIGIBLE_P);
        self.record(ChipEvent::SetTemperature { celsius });
    }

    /// Cumulative command statistics.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// The hidden microarchitecture, for test verification only.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth {
            composition: self.profile.hidden.composition.clone(),
            edge_interval_wls: self.profile.hidden.edge_interval,
            coupled_distance: self.geom.coupled_row_distance(),
            mat_width: self.profile.hidden.mat_width,
            remap: self.profile.hidden.remap,
            polarity: self.profile.hidden.polarity,
            swizzle: self.profile.hidden.swizzle.clone(),
            subarray_heights: (0..self.layout.subarray_count())
                .map(|i| self.layout.info(crate::geometry::SubarrayId(i)).height)
                .collect(),
            on_die_ecc: self.profile.hidden.on_die_ecc,
        }
    }

    /// Issues one command at timestamp `at`.
    ///
    /// # Errors
    ///
    /// Returns a [`CommandError`] when the command is malformed for the
    /// current state (addresses out of range, protocol-order violations,
    /// non-monotonic timestamps, or `RD`/`WR` before `tRCD`).
    pub fn issue(&mut self, cmd: Command, at: Time) -> Result<Option<ReadData>, CommandError> {
        let result = self.issue_inner(cmd, at);
        self.record(ChipEvent::Command {
            cmd,
            at,
            outcome: CommandOutcome::of_issue(&result),
        });
        result
    }

    fn issue_inner(&mut self, cmd: Command, at: Time) -> Result<Option<ReadData>, CommandError> {
        if at < self.now {
            return Err(CommandError::TimeReversed);
        }
        self.now = at;
        match cmd {
            Command::Activate { bank, row } => {
                self.cmd_activate(bank, row, at)?;
                Ok(None)
            }
            Command::Precharge { bank } => {
                self.cmd_precharge(bank, at)?;
                Ok(None)
            }
            Command::Read { bank, col } => Ok(Some(self.cmd_read(bank, col, at)?)),
            Command::Write { bank, col, data } => {
                self.cmd_write(bank, col, data, at)?;
                Ok(None)
            }
            Command::Refresh => {
                self.cmd_refresh(at)?;
                Ok(None)
            }
            Command::Rfm { bank } => {
                self.cmd_rfm(bank, at)?;
                Ok(None)
            }
        }
    }

    /// Runs `count` back-to-back `ACT`(`row`)-`PRE` pairs, each holding the
    /// row open for `each_on`, starting at `at`. Returns the time after the
    /// final precharge completes (`tRP` honored, so no RowCopy leaks out).
    ///
    /// This is the loop-accelerated equivalent of issuing the commands one
    /// by one (see the module docs); it requires the bank to be precharged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`issue`](Self::issue) for the first `ACT`.
    pub fn activate_burst(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        each_on: Time,
        at: Time,
    ) -> Result<Time, CommandError> {
        let result = self.activate_burst_inner(bank, row, count, each_on, at);
        self.record(ChipEvent::Burst {
            bank,
            row,
            count,
            each_on,
            at,
            outcome: CommandOutcome::of_unit(&result),
        });
        result
    }

    fn activate_burst_inner(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        each_on: Time,
        at: Time,
    ) -> Result<Time, CommandError> {
        if at < self.now {
            return Err(CommandError::TimeReversed);
        }
        self.check_bank(bank)?;
        self.check_row(row)?;
        if self.banks[bank as usize].open.is_some() {
            return Err(CommandError::RowAlreadyOpen);
        }
        if count == 0 {
            self.now = at;
            return Ok(at);
        }
        let (wl, _half) = self.resolve(LogicalRow(row));
        let companion = self.companion_of(wl);
        let cycle = each_on + self.profile.timing.trp;
        let end = at + cycle * count;
        self.now = end;

        let on_total = each_on.as_ns() * count as f64;
        let last_pre_at = elapsed(end, self.profile.timing.trp)?;
        let wls = wi(self.geom.wordlines());
        {
            let b = &mut self.banks[bank as usize];
            if self.profile.hidden.trr.enabled {
                b.sampler.observe(wl.0, count);
            }
            let a = b.wl_act_mut(wl.0, wls);
            a.acts += count;
            a.on_ns += on_total;
            if let Some(c) = companion {
                let ca = b.wl_act_mut(c.0, wls);
                ca.comp_acts += count;
                ca.comp_on_ns += on_total;
            }
            b.last_pre = Some(PreEvent {
                at: last_pre_at,
                wl,
            });
        }
        // The hammered row (and its companion) are restored on every
        // activation; settle them once at the end.
        self.settle_and_restore(bank, wl, end)?;
        if let Some(c) = companion {
            self.settle_and_restore(bank, c, end)?;
        }
        self.stats.activations += count;
        self.stats.act_energy_units += count * self.act_energy_per_activation(companion);
        Ok(end)
    }

    fn act_energy_per_activation(&self, companion: Option<Wordline>) -> u64 {
        let coupled = if self.geom.has_coupled_rows() { 2 } else { 1 };
        let tandem = if companion.is_some() { 2 } else { 1 };
        coupled * tandem
    }

    fn check_bank(&self, bank: u32) -> Result<(), CommandError> {
        if bank >= self.profile.banks {
            Err(CommandError::BankOutOfRange {
                bank,
                banks: self.profile.banks,
            })
        } else {
            Ok(())
        }
    }

    fn check_row(&self, row: u32) -> Result<(), CommandError> {
        if row >= self.profile.rows_per_bank {
            Err(CommandError::RowOutOfRange {
                row,
                rows: self.profile.rows_per_bank,
            })
        } else {
            Ok(())
        }
    }

    /// Pin row → (wordline, coupled half) through remap and fold.
    fn resolve(&self, row: LogicalRow) -> (Wordline, u32) {
        let phys = self.profile.hidden.remap.to_physical(row);
        self.geom.fold(phys)
    }

    fn cmd_activate(&mut self, bank: u32, row: u32, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        if self.banks[bank as usize].open.is_some() {
            return Err(CommandError::RowAlreadyOpen);
        }
        let (wl, half) = self.resolve(LogicalRow(row));

        // RowCopy: an ACT inside the precharge window latches the old
        // bitline state into the new row wherever sense amplifiers are
        // shared (paper §III-B).
        let copy_from = match self.banks[bank as usize].last_pre {
            Some(pre) => {
                let window = Time::from_ps(
                    (self.profile.timing.trp.as_ps() as f64 * COPY_WINDOW_FRACTION) as u64,
                );
                if elapsed(at, pre.at)? < window {
                    Some(pre.wl)
                } else {
                    None
                }
            }
            None => None,
        };

        // Settle pending physics on the destination, then apply the copy,
        // then the activation restore.
        self.settle_and_restore(bank, wl, at)?;
        if let Some(src) = copy_from {
            self.apply_rowcopy(bank, src, wl)?;
        }

        let companion = self.companion_of(wl);
        if let Some(c) = companion {
            if c != wl {
                self.settle_and_restore(bank, c, at)?;
            }
        }
        let b = &mut self.banks[bank as usize];
        if self.profile.hidden.trr.enabled {
            b.sampler.observe(wl.0, 1);
        }
        b.open = Some(OpenRow {
            wl,
            half,
            since: at,
            companion,
        });
        self.stats.activations += 1;
        self.stats.act_energy_units += self.act_energy_per_activation(companion);
        Ok(())
    }

    fn cmd_precharge(&mut self, bank: u32, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        let wls = wi(self.geom.wordlines());
        let b = &mut self.banks[bank as usize];
        let open = b.open.ok_or(CommandError::NoOpenRow)?;
        let on_ns = elapsed(at, open.since)?.as_ns();
        b.open = None;
        let a = b.wl_act_mut(open.wl.0, wls);
        a.acts += 1;
        a.on_ns += on_ns;
        if let Some(c) = open.companion {
            let ca = b.wl_act_mut(c.0, wls);
            ca.comp_acts += 1;
            ca.comp_on_ns += on_ns;
        }
        b.last_pre = Some(PreEvent { at, wl: open.wl });
        Ok(())
    }

    fn open_row(&self, bank: u32) -> Result<OpenRow, CommandError> {
        self.banks[bank as usize]
            .open
            .ok_or(CommandError::NoOpenRow)
    }

    fn check_col(&self, col: u32) -> Result<(), CommandError> {
        let cols = self.profile.cols_per_row();
        if col >= cols {
            Err(CommandError::ColOutOfRange { col, cols })
        } else {
            Ok(())
        }
    }

    fn cmd_read(&mut self, bank: u32, col: u32, at: Time) -> Result<ReadData, CommandError> {
        self.check_bank(bank)?;
        self.check_col(col)?;
        let open = self.open_row(bank)?;
        if elapsed(at, open.since)? < self.profile.timing.trcd {
            return Err(CommandError::TrcdViolation);
        }
        let rd_bits = self.profile.io_width.rd_bits();
        let base = open.half * self.geom.row_bits;
        let default = self.default_bit(open.wl);
        let row = self.banks[bank as usize].row(open.wl.0);
        let mut out = 0u64;
        for bit in 0..rd_bits {
            let bl = self.swz_table[wi(col * rd_bits + bit)];
            let v = match row {
                Some(r) => r.data.get(base + bl),
                None => default,
            };
            if v {
                out |= 1 << bit;
            }
        }
        if self.profile.hidden.on_die_ecc {
            let data_cols = self.profile.cols_per_row();
            let mut parity = 0u8;
            for j in 0..crate::ecc::PARITY_BITS {
                let (pc, pb) = crate::ecc::parity_cell(data_cols, rd_bits, col, j);
                let bl = self.swz_table[wi(pc * rd_bits + pb)];
                let v = match row {
                    Some(r) => r.data.get(base + bl),
                    None => default,
                };
                if v {
                    parity |= 1 << j;
                }
            }
            // The constructor asserts on-die ECC implies 32-bit RD_data,
            // so `out` fits; surface a violation as an error, not a panic.
            let code = u32::try_from(out)
                .map_err(|_| CommandError::Internal("ECC read assembled more than 32 data bits"))?;
            let (corrected, _what) = crate::ecc::decode(code, parity);
            out = u64::from(corrected);
        }
        self.stats.reads += 1;
        Ok(ReadData(out))
    }

    fn cmd_write(&mut self, bank: u32, col: u32, data: u64, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        self.check_col(col)?;
        let open = self.open_row(bank)?;
        if elapsed(at, open.since)? < self.profile.timing.trcd {
            return Err(CommandError::TrcdViolation);
        }
        let rd_bits = self.profile.io_width.rd_bits();
        let base = open.half * self.geom.row_bits;
        let wl = open.wl;
        self.ensure_row(bank, wl, at);
        // Collect swizzle targets without holding a borrow conflict.
        let mut targets: Vec<(u32, bool)> = (0..rd_bits)
            .map(|bit| {
                let bl = self.swz_table[wi(col * rd_bits + bit)];
                (base + bl, data & (1 << bit) != 0)
            })
            .collect();
        if self.profile.hidden.on_die_ecc {
            let data_cols = self.profile.cols_per_row();
            // Only the 32 data lanes exist on an ECC chip; upper payload
            // bits are not stored, so the parity covers the stored low
            // half exactly.
            let parity = crate::ecc::encode((data & u64::from(u32::MAX)) as u32);
            for j in 0..crate::ecc::PARITY_BITS {
                let (pc, pb) = crate::ecc::parity_cell(data_cols, rd_bits, col, j);
                let bl = self.swz_table[wi(pc * rd_bits + pb)];
                targets.push((base + bl, parity & (1 << j) != 0));
            }
        }
        let row = self.banks[bank as usize]
            .rows
            .get_mut(wi(wl.0))
            .and_then(|r| r.as_deref_mut())
            .ok_or(CommandError::Internal(
                "written row missing after ensure_row",
            ))?;
        for (idx, v) in targets {
            row.data.set(idx, v);
        }
        self.stats.writes += 1;
        Ok(())
    }

    /// One `REF` covers the next 1/8192 slice of the wordlines (JEDEC
    /// granularity): an attack squeezed between two `REF`s hits victims
    /// whose refresh turn has not yet come — the reason RowHammer works
    /// at all, and the window the TRR engine plugs.
    fn cmd_refresh(&mut self, at: Time) -> Result<(), CommandError> {
        for b in 0..self.banks.len() {
            if self.banks[b].open.is_some() {
                return Err(CommandError::RefreshWhileOpen);
            }
        }
        let wls_total = u64::from(self.geom.wordlines());
        let slice_size = wls_total.div_ceil(REF_SLICES).max(1);
        let slice = self.ref_counter % REF_SLICES;
        // Both bounds are clamped to `wls_total`, which is itself a u32
        // widened above; a failed narrowing can only mean that invariant
        // broke, so report it instead of panicking.
        let lo = u32::try_from((slice * slice_size).min(wls_total))
            .map_err(|_| CommandError::Internal("REF slice bound exceeds u32 wordline count"))?;
        let hi = u32::try_from(((slice + 1) * slice_size).min(wls_total))
            .map_err(|_| CommandError::Internal("REF slice bound exceeds u32 wordline count"))?;
        self.ref_counter += 1;
        for bi in 0..self.banks.len() {
            let b =
                u32::try_from(bi).map_err(|_| CommandError::Internal("bank count exceeds u32"))?;
            // The dirty list is sorted, so the slice's wordlines come out
            // in the same ascending order the old map iteration used.
            let dirty = &self.banks[bi].dirty;
            let start = dirty.partition_point(|&wl| wl < lo);
            let end = dirty.partition_point(|&wl| wl < hi);
            let wls: Vec<u32> = dirty[start..end].to_vec();
            for wl in wls {
                self.settle_and_restore(b, Wordline(wl), at)?;
            }
            self.banks[bi].last_pre = None;
            if self.profile.hidden.trr.enabled {
                self.run_in_dram_mitigation(b, at)?;
            }
        }
        self.stats.refreshes += 1;
        Ok(())
    }

    /// The loop-accelerated equivalent of one full refresh window
    /// (8192 `REF` commands): restores every row and resets all retention
    /// clocks in one call.
    ///
    /// # Errors
    ///
    /// Same conditions as a `REF` command.
    pub fn refresh_window(&mut self, at: Time) -> Result<(), CommandError> {
        let result = self.refresh_window_inner(at);
        self.record(ChipEvent::RefreshWindow {
            at,
            outcome: CommandOutcome::of_unit(&result),
        });
        result
    }

    fn refresh_window_inner(&mut self, at: Time) -> Result<(), CommandError> {
        if at < self.now {
            return Err(CommandError::TimeReversed);
        }
        self.now = at;
        for b in 0..self.banks.len() {
            if self.banks[b].open.is_some() {
                return Err(CommandError::RefreshWhileOpen);
            }
        }
        for bi in 0..self.banks.len() {
            let b =
                u32::try_from(bi).map_err(|_| CommandError::Internal("bank count exceeds u32"))?;
            let wls: Vec<u32> = self.banks[bi].dirty.clone();
            for wl in wls {
                self.settle_and_restore(b, Wordline(wl), at)?;
            }
            self.banks[bi].last_pre = None;
            if self.profile.hidden.trr.enabled {
                self.run_in_dram_mitigation(b, at)?;
            }
        }
        self.ref_counter = self.ref_counter.next_multiple_of(REF_SLICES);
        self.stats.refreshes += REF_SLICES;
        Ok(())
    }

    fn cmd_rfm(&mut self, bank: u32, at: Time) -> Result<(), CommandError> {
        self.check_bank(bank)?;
        if self.banks[bank as usize].open.is_some() {
            return Err(CommandError::RefreshWhileOpen);
        }
        if self.profile.hidden.trr.enabled {
            self.run_in_dram_mitigation(bank, at)?;
        }
        Ok(())
    }

    /// One round of in-DRAM mitigation for a bank: the sampler's hottest
    /// rows get their *physical* neighbours restored. The device knows
    /// its own remapping, coupling (the sampler works on wordlines), and
    /// tandem structure, which is exactly why the paper recommends
    /// DRFM-class mitigation for coupled-row attacks (§VI-B).
    fn run_in_dram_mitigation(&mut self, bank: u32, at: Time) -> Result<(), CommandError> {
        let n = self.profile.hidden.trr.mitigations_per_ref;
        let hottest = self.banks[bank as usize].sampler.take_hottest(n);
        for wl in hottest {
            let mut targets = self.layout.neighbors_at(Wordline(wl), 1);
            if let Some(c) = self.layout.companion_wordline(Wordline(wl)) {
                targets.extend(self.layout.neighbors_at(c, 1));
            }
            for v in targets {
                self.settle_and_restore(bank, v, at)?;
            }
        }
        Ok(())
    }

    /// The default (never-written) logical bit of a cell: the discharged
    /// state under the wordline's polarity.
    fn default_bit(&self, wl: Wordline) -> bool {
        self.polarity_of(wl).discharged_bit()
    }

    #[inline]
    fn polarity_of(&self, wl: Wordline) -> CellPolarity {
        self.wl_static[wi(wl.0)].polarity
    }

    /// The tandem companion of a wordline, from the static table.
    #[inline]
    fn companion_of(&self, wl: Wordline) -> Option<Wordline> {
        match self.wl_static[wi(wl.0)].companion {
            NO_COMPANION => None,
            c => Some(Wordline(c)),
        }
    }

    fn default_row(&self, wl: Wordline) -> RowBits {
        let cells = self.geom.cells_per_wordline();
        if self.default_bit(wl) {
            RowBits::ones(cells)
        } else {
            RowBits::zeros(cells)
        }
    }

    /// Allocates the bank's dense row table on first touch.
    #[inline]
    fn ensure_rows_table(&mut self, bank: u32) {
        let b = &mut self.banks[bank as usize];
        if b.rows.is_empty() {
            b.rows = vec![None; wi(self.geom.wordlines())];
        }
    }

    fn ensure_row(&mut self, bank: u32, wl: Wordline, at: Time) {
        self.ensure_rows_table(bank);
        if self.banks[bank as usize].row(wl.0).is_none() {
            let snapshot = self.snapshot_for(bank, wl);
            let state = Box::new(RowState {
                data: self.default_row(wl),
                snapshot,
                last_restore: at,
            });
            let b = &mut self.banks[bank as usize];
            b.rows[wi(wl.0)] = Some(state);
            b.mark_dirty(wl.0);
        }
    }

    /// Current counters of the wordline's aggressors, slot-aligned to
    /// [`WlStatic::aggr`]. Unused slots stay zeroed and are never read.
    fn snapshot_for(&self, bank: u32, wl: Wordline) -> [WlActivity; MAX_AGGRESSORS] {
        let ws = &self.wl_static[wi(wl.0)];
        let b = &self.banks[bank as usize];
        let mut snap = [WlActivity::default(); MAX_AGGRESSORS];
        for (slot, a) in snap.iter_mut().zip(&ws.aggr).take(usize::from(ws.n_aggr)) {
            *slot = b.wl_act(*a);
        }
        snap
    }

    /// Resolves all pending physics for a wordline (disturbance since its
    /// last restore, retention decay) and restores it: snapshots aggressor
    /// counters and resets the retention clock.
    ///
    /// # Errors
    ///
    /// [`CommandError::TimeReversed`] when `at` precedes the row's last
    /// restore (an out-of-order command reached the physics layer).
    fn settle_and_restore(
        &mut self,
        bank: u32,
        wl: Wordline,
        at: Time,
    ) -> Result<(), CommandError> {
        let bi = bank as usize;
        let w = wi(wl.0);
        let ws = self.wl_static[w];
        self.ensure_rows_table(bank);
        if self.banks[bi].row(wl.0).is_none() {
            // The row physically existed since t = 0 holding the default
            // (discharged) pattern; start from a zero counter baseline so
            // disturbance accumulated before the first touch still lands.
            let state = Box::new(RowState {
                data: self.default_row(wl),
                snapshot: [WlActivity::default(); MAX_AGGRESSORS],
                last_restore: Time::ZERO,
            });
            let b = &mut self.banks[bi];
            b.rows[w] = Some(state);
            b.mark_dirty(wl.0);
        }

        let companion_dose = self.profile.hidden.disturb.companion_dose;
        let dist2_dose = self.profile.hidden.disturb.distance_two_dose;

        // Read phase: elapsed time, current aggressor counters, and
        // slot-aligned deltas, without touching the row. The current
        // counters double as the restore snapshot: settling never
        // modifies counters, so they are exactly what `snapshot_for`
        // would re-read afterwards.
        let (elapsed, curs, deltas, any_delta) = {
            let b = &self.banks[bi];
            let row = b
                .row(wl.0)
                .ok_or(CommandError::Internal("settled row missing after insert"))?;
            let elapsed = elapsed(at, row.last_restore)?;
            let mut curs = [WlActivity::default(); MAX_AGGRESSORS];
            let mut deltas = [WlActivity::default(); MAX_AGGRESSORS];
            let mut any = false;
            for slot in 0..usize::from(ws.n_aggr) {
                let cur = b.wl_act(ws.aggr[slot]);
                let d = cur.delta(&row.snapshot[slot]);
                any |= !d.is_zero();
                curs[slot] = cur;
                deltas[slot] = d;
            }
            (elapsed, curs, deltas, any)
        };

        // Retention only matters if the row currently stores any charge;
        // a default discharged row created at t = 0 never decays. Below
        // the cached horizon the expected fail fraction provably stays
        // under NEGLIGIBLE_P, so the CDF and popcount are skipped.
        let do_retention = if elapsed.as_ps() <= self.ret_negligible_ps {
            false
        } else {
            let ret_frac = self
                .retention
                .expected_fail_fraction(self.temperature_c, elapsed);
            ret_frac > NEGLIGIBLE_P && {
                let row = self.banks[bi]
                    .row(wl.0)
                    .ok_or(CommandError::Internal("settled row missing after insert"))?;
                match ws.polarity {
                    CellPolarity::True => row.data.count_ones() > 0,
                    CellPolarity::Anti => row.data.count_ones() < row.data.len(),
                }
            }
        };

        // Bound the best-case flip probability of the accumulated dose;
        // skip the per-cell pass when no cell could plausibly flip
        // (p ≤ NEGLIGIBLE_P even under a generous context-multiplier
        // bound). Ordinary command traffic (a handful of incidental
        // activations) always lands here, which keeps non-attack
        // operation O(1); the cubic pre-filter avoids even the `powf`
        // of the exact bound on that path.
        let worth_evaluating = if !any_delta {
            false
        } else {
            let mut dose_h = 0.0f64;
            let mut dose_p = 0.0f64;
            for (slot, d) in deltas.iter().enumerate().take(usize::from(ws.n_aggr)) {
                if d.is_zero() {
                    continue;
                }
                let s = if slot < usize::from(ws.n_dist1) {
                    1.0
                } else {
                    dist2_dose
                };
                dose_h += s * (d.acts as f64 + companion_dose * d.comp_acts as f64);
                dose_p += s * (d.on_ns + companion_dose * d.comp_on_ns);
            }
            let model = &self.profile.hidden.disturb;
            if model.dose_bound_negligible(dose_h, dose_p, MAX_CONTEXT_MULTIPLIER, NEGLIGIBLE_P) {
                false
            } else {
                let bound =
                    model.flip_probability(Mechanism::Hammer, dose_h, MAX_CONTEXT_MULTIPLIER)
                        + model.flip_probability(Mechanism::Press, dose_p, MAX_CONTEXT_MULTIPLIER);
                bound > NEGLIGIBLE_P
            }
        };

        if do_retention || worth_evaluating {
            // Slow path: the filtered aggressor list in static-slot order
            // is exactly what the map-backed implementation built.
            let mut aggr: Vec<(Wordline, f64, WlActivity)> = Vec::with_capacity(MAX_AGGRESSORS);
            for (slot, d) in deltas.iter().enumerate().take(usize::from(ws.n_aggr)) {
                if d.is_zero() {
                    continue;
                }
                let s = if slot < usize::from(ws.n_dist1) {
                    1.0
                } else {
                    dist2_dose
                };
                aggr.push((Wordline(ws.aggr[slot]), s, *d));
            }
            let mut row = self.banks[bi]
                .rows
                .get_mut(w)
                .and_then(Option::take)
                .ok_or(CommandError::Internal("settled row missing after insert"))?;
            let flipped = self.apply_physics(bank, wl, &mut row, &aggr, do_retention, elapsed);
            self.stats.bitflips += flipped;
            self.banks[bi].rows[w] = Some(row);
        }

        // Restore: snapshot current aggressor counters, reset the clock.
        let row = self.banks[bi]
            .rows
            .get_mut(w)
            .and_then(|r| r.as_deref_mut())
            .ok_or(CommandError::Internal("settled row missing after insert"))?;
        row.snapshot = curs;
        row.last_restore = at;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_physics(
        &self,
        bank: u32,
        wl: Wordline,
        row: &mut RowState,
        aggr: &[(Wordline, f64, WlActivity)],
        do_retention: bool,
        elapsed: Time,
    ) -> u64 {
        let mut flipped = 0u64;
        let model = &self.profile.hidden.disturb;
        let ws = &self.wl_static[wi(wl.0)];
        let polarity = ws.polarity;
        let is_edge = ws.is_edge;
        let cells = self.geom.cells_per_wordline();
        let orig = row.data.clone();

        // Aggressor row data (default pattern when never touched).
        let aggr_rows: Vec<(Wordline, f64, WlActivity, RowBits)> = aggr
            .iter()
            .map(|(a, scale, d)| {
                let bits = self.banks[bank as usize]
                    .row(a.0)
                    .map(|r| r.data.clone())
                    .unwrap_or_else(|| self.default_row(*a));
                (*a, *scale, *d, bits)
            })
            .collect();

        for bl in 0..cells {
            let bit = orig.get(bl);
            let charged = polarity.is_charged(bit);

            // Retention: charged cells decay toward the discharged state.
            if do_retention && charged {
                let u_ret = unit_open(
                    self.seed,
                    bank as u64,
                    wl.0 as u64,
                    bl as u64,
                    TAG_RETENTION,
                );
                if self.retention.fails(u_ret, self.temperature_c, elapsed) {
                    row.data.set(bl, polarity.discharged_bit());
                    flipped += 1;
                    continue;
                }
            }

            if aggr_rows.is_empty() {
                continue;
            }

            // Horizontal victim context (distance −2, −1, +1, +2).
            let mut vic_diff = [None; 4];
            for (i, off) in [-2i64, -1, 1, 2].iter().enumerate() {
                if let Some(n) = bl_offset(bl, *off, cells) {
                    if self.geom.same_mat(Bitline(bl), Bitline(n)) {
                        vic_diff[i] = Some(orig.get(n) != bit);
                    }
                }
            }

            let mut survive_h = 1.0f64;
            let mut survive_p = 1.0f64;
            for (a, scale, d, a_bits) in &aggr_rows {
                let dir = if a.0 > wl.0 {
                    AggressorDir::Upper
                } else {
                    AggressorDir::Lower
                };
                let gate = gate_type(wl, Bitline(bl), dir);

                let mut aggr_same = [None; 5];
                for (i, off) in [-2i64, -1, 0, 1, 2].iter().enumerate() {
                    if let Some(n) = bl_offset(bl, *off, cells) {
                        if self.geom.same_mat(Bitline(bl), Bitline(n)) {
                            aggr_same[i] = Some(a_bits.get(n) == bit);
                        }
                    }
                }

                let ctx = FlipContext {
                    gate,
                    charged,
                    vic_data: bit,
                    vic_neighbor_differs: vic_diff,
                    aggr_same,
                    edge: is_edge,
                    aggr0_data: a_bits.get(bl),
                    dose_scale: *scale,
                };
                let m_h = model.dose_multiplier(Mechanism::Hammer, &ctx);
                let m_p = model.dose_multiplier(Mechanism::Press, &ctx);
                let dose_h = d.acts as f64 + model.companion_dose * d.comp_acts as f64;
                let dose_p = d.on_ns + model.companion_dose * d.comp_on_ns;
                let p_h = model.flip_probability(Mechanism::Hammer, dose_h, m_h);
                let p_p = model.flip_probability(Mechanism::Press, dose_p, m_p);
                survive_h *= 1.0 - p_h;
                survive_p *= 1.0 - p_p;
            }
            let p_hammer = 1.0 - survive_h;
            let p_press = 1.0 - survive_p;
            let flips = (p_hammer > 0.0
                && unit_open(self.seed, bank as u64, wl.0 as u64, bl as u64, TAG_HAMMER)
                    < p_hammer)
                || (p_press > 0.0
                    && unit_open(self.seed, bank as u64, wl.0 as u64, bl as u64, TAG_PRESS)
                        < p_press);
            if flips {
                row.data.set(bl, !bit);
                flipped += 1;
            }
        }
        flipped
    }

    /// Applies a RowCopy from the latched bitline state of `src` into
    /// `dst`, according to the sense-amplifier sharing between their
    /// subarrays.
    fn apply_rowcopy(
        &mut self,
        bank: u32,
        src: Wordline,
        dst: Wordline,
    ) -> Result<(), CommandError> {
        let relation = self.layout.copy_relation(src, dst);
        if relation == CopyRelation::Unrelated || src == dst {
            return Ok(());
        }
        let src_bits = self.banks[bank as usize]
            .row(src.0)
            .map(|r| r.data.clone())
            .unwrap_or_else(|| self.default_row(src));
        let src_pol = self.polarity_of(src);
        let dst_pol = self.polarity_of(dst);
        self.ensure_row(bank, dst, self.now);
        let cells = self.geom.cells_per_wordline();

        // Map of (dst bitline ← src bitline, crosses an SA) pairs.
        let transfer = |dst_bl: u32, src_bl: u32, crosses_sa: bool, row: &mut RowState| {
            let src_bit = src_bits.get(src_bl);
            let src_charge = src_pol.is_charged(src_bit);
            let dst_charge = if crosses_sa { !src_charge } else { src_charge };
            let dst_bit = match (dst_pol, dst_charge) {
                (crate::cell::CellPolarity::True, c) => c,
                (crate::cell::CellPolarity::Anti, c) => !c,
            };
            row.data.set(dst_bl, dst_bit);
        };

        let mut row = self.banks[bank as usize]
            .rows
            .get_mut(wi(dst.0))
            .and_then(Option::take)
            .ok_or(CommandError::Internal(
                "copy destination missing after ensure_row",
            ))?;
        match relation {
            CopyRelation::SameSubarray if src_pol == dst_pol => {
                // Whole-row fast path: same polarity, no SA crossing.
                row.data = src_bits.clone();
            }
            CopyRelation::SameSubarray => {
                for bl in 0..cells {
                    transfer(bl, bl, false, &mut row);
                }
            }
            CopyRelation::AdjacentAbove => {
                // Shared stripe: src odd ↔ dst even, complementary node.
                for p in 0..cells / 2 {
                    transfer(2 * p, 2 * p + 1, true, &mut row);
                }
            }
            CopyRelation::AdjacentBelow => {
                for p in 0..cells / 2 {
                    transfer(2 * p + 1, 2 * p, true, &mut row);
                }
            }
            CopyRelation::TandemLowToHigh => {
                // Wrap stripe: low-edge even ↔ high-edge odd.
                for p in 0..cells / 2 {
                    transfer(2 * p + 1, 2 * p, true, &mut row);
                }
            }
            CopyRelation::TandemHighToLow => {
                for p in 0..cells / 2 {
                    transfer(2 * p, 2 * p + 1, true, &mut row);
                }
            }
            // Filtered out at the top of the function; return the
            // invariant as an error rather than unwinding mid-copy.
            CopyRelation::Unrelated => {
                return Err(CommandError::Internal("unrelated copy reached transfer"))
            }
        }
        self.banks[bank as usize].rows[wi(dst.0)] = Some(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ChipProfile;

    fn chip() -> DramChip {
        DramChip::new(ChipProfile::test_small(), 7)
    }

    /// Write a full row through commands, honoring timing.
    fn write_row(chip: &mut DramChip, bank: u32, row: u32, pattern: u64) -> Time {
        let t = chip.now() + chip.timing().trp;
        chip.issue(Command::Activate { bank, row }, t).unwrap();
        let mut tc = t + chip.timing().trcd;
        for col in 0..chip.profile().cols_per_row() {
            chip.issue(
                Command::Write {
                    bank,
                    col,
                    data: pattern,
                },
                tc,
            )
            .unwrap();
            tc += chip.timing().tck;
        }
        let tp = tc.max(t + chip.timing().tras);
        chip.issue(Command::Precharge { bank }, tp).unwrap();
        tp + chip.timing().trp
    }

    fn read_row(chip: &mut DramChip, bank: u32, row: u32) -> Vec<u64> {
        let t = chip.now() + chip.timing().trp;
        chip.issue(Command::Activate { bank, row }, t).unwrap();
        let mut tc = t + chip.timing().trcd;
        let mut out = Vec::new();
        for col in 0..chip.profile().cols_per_row() {
            let d = chip
                .issue(Command::Read { bank, col }, tc)
                .unwrap()
                .unwrap();
            out.push(d.0);
            tc += chip.timing().tck;
        }
        let tp = tc.max(t + chip.timing().tras);
        chip.issue(Command::Precharge { bank }, tp).unwrap();
        out
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut c = chip();
        write_row(&mut c, 0, 10, 0xDEAD_BEEF);
        let data = read_row(&mut c, 0, 10);
        assert!(data.iter().all(|&d| d == 0xDEAD_BEEF));
    }

    #[test]
    fn unwritten_rows_read_as_discharged() {
        let mut c = chip();
        let data = read_row(&mut c, 0, 77);
        assert!(data.iter().all(|&d| d == 0), "all-true chip defaults to 0");
    }

    #[test]
    fn protocol_violations_are_rejected() {
        let mut c = chip();
        let t = Time::from_ns(100);
        assert_eq!(
            c.issue(Command::Read { bank: 0, col: 0 }, t),
            Err(CommandError::NoOpenRow)
        );
        c.issue(Command::Activate { bank: 0, row: 1 }, t).unwrap();
        assert_eq!(
            c.issue(Command::Activate { bank: 0, row: 2 }, t + c.timing().tck),
            Err(CommandError::RowAlreadyOpen)
        );
        assert_eq!(
            c.issue(Command::Read { bank: 0, col: 0 }, t + c.timing().tck),
            Err(CommandError::TrcdViolation)
        );
        assert_eq!(
            c.issue(Command::Activate { bank: 9, row: 0 }, t + c.timing().trcd),
            Err(CommandError::BankOutOfRange { bank: 9, banks: 2 })
        );
        assert_eq!(
            c.issue(
                Command::Activate {
                    bank: 1,
                    row: 99_999
                },
                t + c.timing().trcd
            ),
            Err(CommandError::RowOutOfRange {
                row: 99_999,
                rows: 2048
            })
        );
        assert_eq!(
            c.issue(Command::Refresh, Time::ZERO),
            Err(CommandError::TimeReversed)
        );
    }

    #[test]
    fn hammering_flips_victim_bits() {
        let mut c = chip();
        // Victim rows around aggressor 20, all inside subarray 0 (0..40).
        write_row(&mut c, 0, 19, u64::MAX);
        write_row(&mut c, 0, 21, u64::MAX);
        write_row(&mut c, 0, 20, 0);
        let t = c.now() + c.timing().trp;
        c.activate_burst(0, 20, 2_000_000, Time::from_ns(35), t)
            .unwrap();
        let flips: u32 = read_row(&mut c, 0, 19)
            .iter()
            .map(|d| d.count_zeros() - 32)
            .sum();
        assert!(flips > 0, "2M activations must flip some victim bits");
    }

    #[test]
    fn hammering_does_not_cross_subarray_boundaries() {
        let mut c = chip();
        // Subarray 0 = wordlines [0, 40); row 40 starts subarray 1.
        write_row(&mut c, 0, 40, u64::MAX);
        write_row(&mut c, 0, 41, u64::MAX);
        write_row(&mut c, 0, 39, 0);
        let t = c.now() + c.timing().trp;
        c.activate_burst(0, 39, 2_000_000, Time::from_ns(35), t)
            .unwrap();
        let flips: u32 = read_row(&mut c, 0, 40)
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum();
        assert_eq!(flips, 0, "SA stripe must block disturbance");
        let flips41: u32 = read_row(&mut c, 0, 41)
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum();
        assert_eq!(flips41, 0);
    }

    #[test]
    fn rowcopy_within_subarray_copies_everything() {
        let mut c = chip();
        write_row(&mut c, 0, 5, 0x1234_5678);
        // ACT(5) → PRE → fast ACT(9) inside the precharge window.
        let t0 = c.now() + c.timing().trp;
        c.issue(Command::Activate { bank: 0, row: 5 }, t0).unwrap();
        let tp = t0 + c.timing().tras;
        c.issue(Command::Precharge { bank: 0 }, tp).unwrap();
        let quick = tp + Time::from_ps(c.timing().trp.as_ps() / 10);
        c.issue(Command::Activate { bank: 0, row: 9 }, quick)
            .unwrap();
        let tr = quick + c.timing().tras;
        c.issue(Command::Precharge { bank: 0 }, tr).unwrap();
        let copied = read_row(&mut c, 0, 9);
        assert!(copied.iter().all(|&d| d == 0x1234_5678));
    }

    #[test]
    fn slow_reactivation_does_not_copy() {
        let mut c = chip();
        write_row(&mut c, 0, 5, 0xFFFF_FFFF);
        write_row(&mut c, 0, 9, 0);
        let t0 = c.now() + c.timing().trp;
        c.issue(Command::Activate { bank: 0, row: 5 }, t0).unwrap();
        c.issue(Command::Precharge { bank: 0 }, t0 + c.timing().tras)
            .unwrap();
        // Wait the full tRP: bitlines fully precharged, no copy.
        let slow = t0 + c.timing().tras + c.timing().trp * 2;
        c.issue(Command::Activate { bank: 0, row: 9 }, slow)
            .unwrap();
        c.issue(Command::Precharge { bank: 0 }, slow + c.timing().tras)
            .unwrap();
        assert!(read_row(&mut c, 0, 9).iter().all(|&d| d == 0));
    }

    #[test]
    fn rowcopy_to_adjacent_subarray_copies_half_inverted() {
        let mut c = chip();
        // src row 30 in subarray 0 ([0,40)), dst row 45 in subarray 1.
        write_row(&mut c, 0, 30, 0xFFFF_FFFF);
        write_row(&mut c, 0, 45, 0);
        let t0 = c.now() + c.timing().trp;
        c.issue(Command::Activate { bank: 0, row: 30 }, t0).unwrap();
        c.issue(Command::Precharge { bank: 0 }, t0 + c.timing().tras)
            .unwrap();
        let quick = t0 + c.timing().tras + Time::from_ps(c.timing().trp.as_ps() / 10);
        c.issue(Command::Activate { bank: 0, row: 45 }, quick)
            .unwrap();
        c.issue(Command::Precharge { bank: 0 }, quick + c.timing().tras)
            .unwrap();
        let copied = read_row(&mut c, 0, 45);
        let ones: u32 = copied.iter().map(|d| d.count_ones()).sum();
        // Half the cells receive the inverted source (1 → charge-inverted
        // → 0 on an all-true chip), half keep their old value (0).
        assert_eq!(ones, 0, "all-true adjacent copy of ones lands as zeros");
        // Now copy zeros: half the dst cells must become 1.
        write_row(&mut c, 0, 30, 0);
        write_row(&mut c, 0, 45, 0);
        let t1 = c.now() + c.timing().trp;
        c.issue(Command::Activate { bank: 0, row: 30 }, t1).unwrap();
        c.issue(Command::Precharge { bank: 0 }, t1 + c.timing().tras)
            .unwrap();
        let quick = t1 + c.timing().tras + Time::from_ps(c.timing().trp.as_ps() / 10);
        c.issue(Command::Activate { bank: 0, row: 45 }, quick)
            .unwrap();
        c.issue(Command::Precharge { bank: 0 }, quick + c.timing().tras)
            .unwrap();
        let copied = read_row(&mut c, 0, 45);
        let ones: u32 = copied.iter().map(|d| d.count_ones()).sum();
        let total = c.profile().row_bits;
        assert_eq!(ones, total / 2, "exactly half the row copies, inverted");
    }

    #[test]
    fn coupled_rows_share_data() {
        let mut c = DramChip::new(ChipProfile::test_small_coupled(), 3);
        let dist = c.profile().bank_geometry().coupled_row_distance().unwrap();
        // Row 45 resolves to an interior subarray (no tandem energy).
        write_row(&mut c, 0, 45, 0xAAAA_5555);
        // The coupled alias shows distinct data (its own half) but the
        // activation counters alias — checked via stats below.
        let alias = 45 + dist;
        let before = c.stats().activations;
        let _ = read_row(&mut c, 0, alias);
        assert_eq!(c.stats().activations, before + 1);
        // Energy: coupled chips burn 2 units per activation.
        let e0 = c.stats().act_energy_units;
        let _ = read_row(&mut c, 0, 45);
        assert_eq!(c.stats().act_energy_units - e0, 2);
    }

    #[test]
    fn retention_decays_charged_cells() {
        let mut c = chip();
        c.set_temperature(85.0);
        write_row(&mut c, 0, 50, u64::MAX);
        // Wait 500 seconds without refresh, then read.
        let late = c.now() + Time::from_ms(500_000);
        c.issue(Command::Activate { bank: 0, row: 50 }, late)
            .unwrap();
        let mut tc = late + c.timing().trcd;
        let mut zeros = 0;
        for col in 0..c.profile().cols_per_row() {
            let d = c
                .issue(Command::Read { bank: 0, col }, tc)
                .unwrap()
                .unwrap();
            zeros += d.0.count_zeros() - 32;
            tc += c.timing().tck;
        }
        c.issue(Command::Precharge { bank: 0 }, tc + c.timing().tras)
            .unwrap();
        assert!(zeros > 0, "500 s unrefreshed at 85 °C must lose bits");
    }

    #[test]
    fn refresh_prevents_retention_decay() {
        let mut c = chip();
        write_row(&mut c, 0, 50, u64::MAX);
        // One full refresh window every 64 ms for ~20 simulated minutes.
        let mut t = c.now();
        for _ in 0..20_000 {
            t += Time::from_ms(64);
            c.refresh_window(t).unwrap();
        }
        let data = read_row(&mut c, 0, 50);
        assert!(
            data.iter().all(|&d| d == 0xFFFF_FFFF),
            "refreshed row must not decay"
        );
    }

    #[test]
    fn single_ref_covers_only_its_slice() {
        let mut c = chip();
        write_row(&mut c, 0, 50, u64::MAX);
        // 2048 wordlines / 8192 slices: most REFs touch nothing, and one
        // REF is never a full-window refresh.
        let t = c.now() + Time::from_ms(400_000);
        c.issue(Command::Refresh, t).unwrap();
        let late = t + Time::from_ms(400_000);
        let mut tc = late;
        c.issue(Command::Activate { bank: 0, row: 50 }, tc).unwrap();
        tc += c.timing().trcd;
        let d = c
            .issue(Command::Read { bank: 0, col: 0 }, tc)
            .unwrap()
            .unwrap();
        assert!(
            d.0.count_zeros() > 32,
            "800 s with a single sliced REF must still decay"
        );
    }

    #[test]
    fn trr_engine_rescues_victims_between_sliced_refs() {
        let with_trr = ChipProfile::test_small().with_trr(2);
        // Attack in four bursts with a sliced REF between bursts: the TRR
        // engine samples the aggressor and refreshes its neighbours.
        let run = |profile: ChipProfile| -> u32 {
            let mut c = DramChip::new(profile, 7);
            write_row(&mut c, 0, 19, u64::MAX);
            write_row(&mut c, 0, 21, u64::MAX);
            write_row(&mut c, 0, 20, 0);
            let mut t = c.now() + c.timing().trp;
            for _ in 0..12 {
                t = c
                    .activate_burst(0, 20, 200_000, Time::from_ns(35), t)
                    .unwrap();
                t += c.timing().trfc;
                c.issue(Command::Refresh, t).unwrap();
                t += c.timing().trfc;
            }
            read_row(&mut c, 0, 19)
                .iter()
                .map(|d| (!d & 0xFFFF_FFFF).count_ones())
                .sum()
        };
        let unprotected = run(ChipProfile::test_small());
        let protected = run(with_trr);
        assert!(
            unprotected > 0,
            "2.4M total activations must flip without TRR"
        );
        assert_eq!(protected, 0, "TRR must rescue the victims at each REF");
    }

    #[test]
    fn rfm_command_triggers_mitigation_on_demand() {
        let mut c = DramChip::new(ChipProfile::test_small().with_trr(2), 7);
        write_row(&mut c, 0, 19, u64::MAX);
        write_row(&mut c, 0, 21, u64::MAX);
        write_row(&mut c, 0, 20, 0);
        let mut t = c.now() + c.timing().trp;
        for _ in 0..12 {
            t = c
                .activate_burst(0, 20, 200_000, Time::from_ns(35), t)
                .unwrap();
            t += c.timing().trfc;
            c.issue(Command::Rfm { bank: 0 }, t).unwrap();
        }
        let flips: u32 = read_row(&mut c, 0, 19)
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum();
        assert_eq!(flips, 0, "RFM between bursts must prevent flips");
        // RFM on a TRR-less chip is accepted but inert.
        let mut plain = DramChip::new(ChipProfile::test_small(), 7);
        plain
            .issue(Command::Rfm { bank: 0 }, Time::from_ns(100))
            .unwrap();
    }

    #[test]
    fn edge_activation_burns_double_energy() {
        let mut c = chip();
        // Row 0 is in the low-edge subarray of segment 0.
        let e0 = c.stats().act_energy_units;
        let _ = read_row(&mut c, 0, 0);
        let edge_cost = c.stats().act_energy_units - e0;
        let e1 = c.stats().act_energy_units;
        let _ = read_row(&mut c, 0, 60); // interior subarray 1 ([40,64))
        let mid_cost = c.stats().act_energy_units - e1;
        assert_eq!(
            edge_cost,
            2 * mid_cost,
            "tandem edge doubles activation power"
        );
    }

    #[test]
    fn ground_truth_matches_profile() {
        let c = chip();
        let gt = c.ground_truth();
        assert_eq!(gt.composition, vec![40, 24]);
        assert_eq!(gt.edge_interval_wls, 256);
        assert_eq!(gt.coupled_distance, None);
        assert_eq!(gt.mat_width, 64);
        assert_eq!(gt.subarray_heights.len(), 64);
    }

    #[test]
    fn on_die_ecc_round_trips_and_hides_parity_columns() {
        let mut c = DramChip::new(ChipProfile::test_small().with_on_die_ecc(), 7);
        assert_eq!(c.profile().cols_per_row(), 6, "8 raw cols -> 6 data cols");
        assert!(c.ground_truth().on_die_ecc);
        write_row(&mut c, 0, 10, 0xDEAD_BEEF);
        assert!(read_row(&mut c, 0, 10).iter().all(|&d| d == 0xDEAD_BEEF));
        // The host cannot address the parity region.
        let t = c.now() + c.timing().trp;
        c.issue(Command::Activate { bank: 0, row: 11 }, t).unwrap();
        assert_eq!(
            c.issue(Command::Read { bank: 0, col: 6 }, t + c.timing().trcd),
            Err(CommandError::ColOutOfRange { col: 6, cols: 6 })
        );
        c.issue(Command::Precharge { bank: 0 }, t + c.timing().tras)
            .unwrap();
    }

    #[test]
    fn on_die_ecc_masks_sparse_disturbance() {
        // At the raw chip's first-flip dose the row holds very few
        // physical errors; on-die ECC must hide (or at least reduce)
        // them. Both chips share the same seed, hence the same silicon.
        let raw_flips_at = |n: u64, ecc: bool| -> u32 {
            let profile = if ecc {
                ChipProfile::test_small().with_on_die_ecc()
            } else {
                ChipProfile::test_small()
            };
            let mut c = DramChip::new(profile, 7);
            write_row(&mut c, 0, 19, u64::MAX);
            write_row(&mut c, 0, 20, 0);
            let t = c.now() + c.timing().trp;
            c.activate_burst(0, 20, n, Time::from_ns(35), t).unwrap();
            read_row(&mut c, 0, 19)
                .iter()
                .map(|d| (!d & 0xFFFF_FFFF).count_ones())
                .sum()
        };
        // Bisect the minimal dose with at least one raw flip.
        let (mut lo, mut hi) = (0u64, 8_000_000u64);
        assert!(raw_flips_at(hi, false) > 0);
        while hi - lo > 50_000 {
            let mid = lo + (hi - lo) / 2;
            if raw_flips_at(mid, false) > 0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let raw = raw_flips_at(hi, false);
        let corrected = raw_flips_at(hi, true);
        assert!(raw >= 1);
        if raw == 1 {
            assert_eq!(corrected, 0, "a single error must be invisible");
        } else {
            assert!(corrected < raw, "ECC must reduce sparse errors");
        }
    }

    #[test]
    fn chip_is_send() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<DramChip>();
    }

    #[test]
    fn time_reversed_commands_error_explicitly() {
        let mut c = chip();
        let t = Time::from_ns(200);
        c.issue(Command::Activate { bank: 0, row: 1 }, t).unwrap();
        assert_eq!(
            c.issue(Command::Read { bank: 0, col: 0 }, t - Time::from_ns(50)),
            Err(CommandError::TimeReversed)
        );
        // Loop-accelerated entry points reject reversed timestamps too.
        assert_eq!(
            c.activate_burst(1, 0, 10, Time::from_ns(35), Time::from_ns(10)),
            Err(CommandError::TimeReversed)
        );
        assert_eq!(
            c.refresh_window(Time::from_ns(10)),
            Err(CommandError::TimeReversed)
        );
        // The chip state survives a rejected command.
        c.issue(Command::Precharge { bank: 0 }, t + c.timing().tras)
            .unwrap();
    }

    #[test]
    fn physics_flips_are_counted_in_stats() {
        let mut c = chip();
        assert_eq!(c.stats().bitflips, 0);
        write_row(&mut c, 0, 19, u64::MAX);
        write_row(&mut c, 0, 21, u64::MAX);
        write_row(&mut c, 0, 20, 0);
        let t = c.now() + c.timing().trp;
        c.activate_burst(0, 20, 2_000_000, Time::from_ns(35), t)
            .unwrap();
        let mut rows = read_row(&mut c, 0, 19);
        rows.extend(read_row(&mut c, 0, 21));
        let observed: u32 = rows.iter().map(|d| (!d & 0xFFFF_FFFF).count_ones()).sum();
        assert!(observed > 0);
        assert!(c.stats().bitflips >= u64::from(observed));
    }

    #[test]
    fn command_errors_display_their_cause() {
        assert_eq!(
            CommandError::TimeReversed.to_string(),
            "command timestamp precedes previous command"
        );
        assert_eq!(
            CommandError::Internal("x missing").to_string(),
            "internal simulator invariant failed: x missing"
        );
        assert!(CommandError::BankOutOfRange { bank: 9, banks: 2 }
            .to_string()
            .contains("bank 9"));
        use std::error::Error;
        assert!(CommandError::TimeReversed.source().is_none());
    }

    /// Every entry point reports to the attached sink, after execution,
    /// including rejected commands and out-of-band markers.
    #[test]
    fn sink_observes_every_entry_point() {
        use crate::sink::{ChipEvent, CommandSink};
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Log(Vec<String>);
        impl CommandSink for Arc<Mutex<Log>> {
            fn record(&mut self, ev: ChipEvent<'_>) {
                let line = match ev {
                    ChipEvent::Command { cmd, outcome, .. } => format!("{cmd:?} -> {outcome}"),
                    ChipEvent::Burst { count, outcome, .. } => {
                        format!("burst x{count} -> {outcome}")
                    }
                    ChipEvent::RefreshWindow { outcome, .. } => format!("refw -> {outcome}"),
                    ChipEvent::SetTemperature { celsius } => format!("temp {celsius}"),
                    ChipEvent::Marker { label } => format!("mark {label}"),
                };
                self.lock().unwrap().0.push(line);
            }
        }

        let log = Arc::new(Mutex::new(Log::default()));
        let mut c = chip();
        assert!(!c.has_sink());
        c.set_sink(Box::new(Arc::clone(&log)));
        assert!(c.has_sink());

        let t = Time::from_ns(100);
        c.issue(Command::Activate { bank: 0, row: 1 }, t).unwrap();
        // A rejected command is still reported (it can advance the clock).
        let _ = c.issue(Command::Read { bank: 0, col: 0 }, t + c.timing().tck);
        c.issue(Command::Precharge { bank: 0 }, t + c.timing().tras)
            .unwrap();
        c.mark("phase:test");
        c.set_temperature(85.0);
        let t2 = c.now() + c.timing().trp;
        c.activate_burst(0, 5, 3, Time::from_ns(35), t2).unwrap();
        c.refresh_window(c.now() + c.timing().trfc).unwrap();

        c.clear_sink().expect("sink was attached");
        assert!(!c.has_sink());
        // Untracked traffic after clear_sink leaves the log unchanged.
        let t3 = c.now() + c.timing().trp;
        c.issue(Command::Activate { bank: 0, row: 9 }, t3).unwrap();

        let lines = log.lock().unwrap().0.clone();
        assert_eq!(lines.len(), 7, "{lines:?}");
        assert!(lines[0].starts_with("Activate"));
        assert!(lines[1].contains("rejected: read/write issued before tRCD"));
        assert_eq!(lines[3], "mark phase:test");
        assert_eq!(lines[4], "temp 85");
        assert_eq!(lines[5], "burst x3 -> ok");
        assert_eq!(lines[6], "refw -> ok");
    }

    /// Attaching a sink must not perturb the physics: same seed, same
    /// commands, same data with and without a recorder watching.
    #[test]
    fn sink_does_not_change_behavior() {
        use crate::sink::{ChipEvent, CommandSink};
        struct Null;
        impl CommandSink for Null {
            fn record(&mut self, _ev: ChipEvent<'_>) {}
        }
        let run = |with_sink: bool| -> Vec<u64> {
            let mut c = chip();
            if with_sink {
                c.set_sink(Box::new(Null));
            }
            write_row(&mut c, 0, 19, u64::MAX);
            write_row(&mut c, 0, 20, 0);
            let t = c.now() + c.timing().trp;
            c.activate_burst(0, 20, 2_000_000, Time::from_ns(35), t)
                .unwrap();
            read_row(&mut c, 0, 19)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn burst_equals_individual_activations() {
        // The burst API and an explicit command loop must leave identical
        // victim damage.
        let mk = |seed| DramChip::new(ChipProfile::test_small(), seed);
        let n = 300_000u64;
        let on = Time::from_ns(35);

        let mut a = mk(42);
        write_row(&mut a, 0, 19, u64::MAX);
        write_row(&mut a, 0, 20, 0);
        let t = a.now() + a.timing().trp;
        a.activate_burst(0, 20, n, on, t).unwrap();
        let burst_read = read_row(&mut a, 0, 19);

        let mut b = mk(42);
        write_row(&mut b, 0, 19, u64::MAX);
        write_row(&mut b, 0, 20, 0);
        let mut t = b.now() + b.timing().trp;
        for _ in 0..n {
            b.issue(Command::Activate { bank: 0, row: 20 }, t).unwrap();
            t += on;
            b.issue(Command::Precharge { bank: 0 }, t).unwrap();
            t += b.timing().trp;
        }
        let loop_read = read_row(&mut b, 0, 19);
        assert_eq!(burst_read, loop_read);
    }
}
