//! Intra-chip data swizzling (paper §IV-A, O1).
//!
//! The bits of one RD_data burst are not stored contiguously: they are
//! collected from multiple MATs and reorganized on the way to the I/O pins
//! (paper Fig. 7). Each vendor style in this module defines a bijection
//!
//! ```text
//! (column address, RD_data bit) ⇄ physical bitline within the row
//! ```
//!
//! composed of a *bit→MAT assignment* and an *intra-group permutation*.
//! The concrete permutations are model choices (the paper could not recover
//! the physical MAT ordering either); what matters for the reproduction is
//! that the mapping is non-trivial, vendor-specific, spreads one RD_data
//! over many MATs, and is recoverable by the DRAMScope pipeline.

use crate::geometry::Bitline;

/// Vendor flavor of the swizzle bijection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwizzleStyle {
    /// Mfr. A: paired-bit interleave across MATs
    /// (`mat = (b mod 2·mats) / 2`), bit-reversal within the group.
    VendorA,
    /// Mfr. B: stride interleave (`mat = b mod mats`), bit-reversal of the
    /// slot XOR 1 within the group.
    VendorB,
    /// Mfr. C: contiguous nibbles (`mat = b / bits_per_mat`), pair-swap
    /// within the group.
    VendorC,
    /// No swizzling: bit `b` of column `c` sits at bitline `c·rd + b`.
    /// Not used by any preset; useful as an experimental control.
    Identity,
}

/// A concrete swizzle bijection for one chip.
///
/// # Example
///
/// ```
/// use dram_sim::swizzle::{SwizzleMap, SwizzleStyle};
/// let s = SwizzleMap::new(SwizzleStyle::VendorA, 32, 4096, 512);
/// let bl = s.bitline_of(3, 17);
/// let (col, bit) = s.rd_bit_of(bl);
/// assert_eq!((col, bit), (3, 17));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwizzleMap {
    style: SwizzleStyle,
    rd_bits: u32,
    row_bits: u32,
    mat_width: u32,
    mats: u32,
    bits_per_mat: u32,
}

fn bit_reverse(x: u32, bits: u32) -> u32 {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (32 - bits)
}

impl SwizzleMap {
    /// Creates a swizzle map.
    ///
    /// `rd_bits` is the RD_data width of the chip, `row_bits` the data bits
    /// per addressable row, `mat_width` the (hidden) MAT width.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not tile: `row_bits` must be a multiple
    /// of `mat_width` and of `rd_bits`, every MAT must receive the same
    /// number of bits per RD_data, and the group size must be a power of
    /// two (all real configurations satisfy this).
    pub fn new(style: SwizzleStyle, rd_bits: u32, row_bits: u32, mat_width: u32) -> Self {
        assert!(rd_bits > 0 && row_bits > 0 && mat_width > 0);
        assert_eq!(row_bits % mat_width, 0, "row must tile into MATs");
        assert_eq!(row_bits % rd_bits, 0, "row must tile into RD_data bursts");
        let mats = row_bits / mat_width;
        assert_eq!(rd_bits % mats, 0, "RD_data must spread evenly over MATs");
        let bits_per_mat = rd_bits / mats;
        assert!(
            bits_per_mat.is_power_of_two(),
            "group size must be a power of two"
        );
        if style == SwizzleStyle::VendorA {
            assert_eq!(rd_bits % (2 * mats), 0, "vendor A needs paired groups");
        }
        SwizzleMap {
            style,
            rd_bits,
            row_bits,
            mat_width,
            mats,
            bits_per_mat,
        }
    }

    /// Mfr. A-style map.
    pub fn vendor_a(rd_bits: u32, row_bits: u32, mat_width: u32) -> Self {
        Self::new(SwizzleStyle::VendorA, rd_bits, row_bits, mat_width)
    }

    /// Mfr. B-style map.
    pub fn vendor_b(rd_bits: u32, row_bits: u32, mat_width: u32) -> Self {
        Self::new(SwizzleStyle::VendorB, rd_bits, row_bits, mat_width)
    }

    /// Mfr. C-style map.
    pub fn vendor_c(rd_bits: u32, row_bits: u32, mat_width: u32) -> Self {
        Self::new(SwizzleStyle::VendorC, rd_bits, row_bits, mat_width)
    }

    /// RD_data width in bits.
    pub fn rd_bits(&self) -> u32 {
        self.rd_bits
    }

    /// MATs spanned by one addressable row.
    pub fn mats(&self) -> u32 {
        self.mats
    }

    /// Bits each MAT contributes to one RD_data.
    pub fn bits_per_mat(&self) -> u32 {
        self.bits_per_mat
    }

    /// The swizzle style.
    pub fn style(&self) -> SwizzleStyle {
        self.style
    }

    fn group_of(&self, bit: u32) -> (u32, u32) {
        let m = self.mats;
        let k = self.bits_per_mat;
        match self.style {
            SwizzleStyle::VendorA => ((bit % (2 * m)) / 2, (bit / (2 * m)) * 2 + (bit % 2)),
            SwizzleStyle::VendorB => (bit % m, bit / m),
            SwizzleStyle::VendorC | SwizzleStyle::Identity => (bit / k, bit % k),
        }
    }

    fn slot_to_pos(&self, slot: u32) -> u32 {
        let k = self.bits_per_mat;
        let lg = k.trailing_zeros();
        match self.style {
            SwizzleStyle::VendorA => bit_reverse(slot, lg),
            SwizzleStyle::VendorB => bit_reverse(slot ^ 1, lg),
            SwizzleStyle::VendorC => {
                if k >= 2 {
                    slot ^ 1
                } else {
                    slot
                }
            }
            SwizzleStyle::Identity => slot,
        }
    }

    fn pos_to_slot(&self, pos: u32) -> u32 {
        let k = self.bits_per_mat;
        let lg = k.trailing_zeros();
        match self.style {
            SwizzleStyle::VendorA => bit_reverse(pos, lg),
            SwizzleStyle::VendorB => bit_reverse(pos, lg) ^ 1,
            SwizzleStyle::VendorC => {
                if k >= 2 {
                    pos ^ 1
                } else {
                    pos
                }
            }
            SwizzleStyle::Identity => pos,
        }
    }

    /// Physical bitline (within the row's half of the wordline) that stores
    /// `bit` of the RD_data at column address `col`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= rd_bits` or the column is out of range.
    pub fn bitline_of(&self, col: u32, bit: u32) -> Bitline {
        assert!(bit < self.rd_bits, "bit {bit} out of range");
        assert!(col < self.row_bits / self.rd_bits, "col {col} out of range");
        if self.style == SwizzleStyle::Identity {
            return Bitline(col * self.rd_bits + bit);
        }
        let (mat, slot) = self.group_of(bit);
        let pos = self.slot_to_pos(slot);
        Bitline(mat * self.mat_width + col * self.bits_per_mat + pos)
    }

    /// Inverse of [`bitline_of`](Self::bitline_of): the `(column, bit)` that
    /// a physical bitline belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the bitline is outside the row.
    pub fn rd_bit_of(&self, bl: Bitline) -> (u32, u32) {
        assert!(bl.0 < self.row_bits, "bitline {bl} out of range");
        if self.style == SwizzleStyle::Identity {
            return (bl.0 / self.rd_bits, bl.0 % self.rd_bits);
        }
        let mat = bl.0 / self.mat_width;
        let within = bl.0 % self.mat_width;
        let col = within / self.bits_per_mat;
        let pos = within % self.bits_per_mat;
        let slot = self.pos_to_slot(pos);
        let m = self.mats;
        let bit = match self.style {
            SwizzleStyle::VendorA => (slot / 2) * 2 * m + mat * 2 + (slot % 2),
            SwizzleStyle::VendorB => slot * m + mat,
            SwizzleStyle::VendorC | SwizzleStyle::Identity => mat * self.bits_per_mat + slot,
        };
        (col, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn styles() -> Vec<SwizzleMap> {
        vec![
            SwizzleMap::vendor_a(32, 4096, 512),
            SwizzleMap::vendor_b(32, 4096, 1024),
            SwizzleMap::vendor_c(32, 4096, 512),
            SwizzleMap::vendor_a(64, 8192, 512),
            SwizzleMap::vendor_b(64, 8192, 1024),
            SwizzleMap::vendor_c(64, 8192, 512),
            SwizzleMap::new(SwizzleStyle::Identity, 32, 4096, 512),
            SwizzleMap::vendor_a(32, 256, 64),
            SwizzleMap::vendor_a(32, 128, 32),
        ]
    }

    #[test]
    fn round_trips_for_every_style() {
        for s in styles() {
            let cols = s.row_bits / s.rd_bits;
            for col in 0..cols.min(8) {
                for bit in 0..s.rd_bits {
                    let bl = s.bitline_of(col, bit);
                    assert_eq!(
                        s.rd_bit_of(bl),
                        (col, bit),
                        "style {:?} col {col} bit {bit}",
                        s.style
                    );
                }
            }
        }
    }

    #[test]
    fn map_is_a_bijection_over_the_row() {
        for s in styles() {
            let cols = s.row_bits / s.rd_bits;
            let mut seen = vec![false; s.row_bits as usize];
            for col in 0..cols {
                for bit in 0..s.rd_bits {
                    let bl = s.bitline_of(col, bit);
                    assert!(!seen[bl.0 as usize], "style {:?} duplicate {bl}", s.style);
                    seen[bl.0 as usize] = true;
                }
            }
            assert!(seen.iter().all(|&v| v), "style {:?} not onto", s.style);
        }
    }

    #[test]
    fn vendor_a_spreads_one_rd_over_all_mats() {
        let s = SwizzleMap::vendor_a(32, 4096, 512);
        let mut mats = std::collections::BTreeSet::new();
        for bit in 0..32 {
            mats.insert(s.bitline_of(0, bit).0 / 512);
        }
        assert_eq!(mats.len(), 8, "32-bit RD_data must come from 8 MATs");
    }

    #[test]
    fn vendor_a_groups_paired_bits_in_one_mat() {
        // Bits {0, 1, 16, 17} of a RD_data share a MAT (paper's Mfr. A
        // example in §IV-A).
        let s = SwizzleMap::vendor_a(32, 4096, 512);
        let mat_of = |b: u32| s.bitline_of(0, b).0 / 512;
        assert_eq!(mat_of(0), mat_of(1));
        assert_eq!(mat_of(0), mat_of(16));
        assert_eq!(mat_of(0), mat_of(17));
        assert_ne!(mat_of(0), mat_of(2));
    }

    #[test]
    fn swizzled_bits_are_physically_adjacent_within_a_column_group() {
        // The 4 bits a MAT contributes to one column sit in one 4-cell
        // physical run — that is what makes horizontal AIB influence
        // cross RD_data bit indices.
        let s = SwizzleMap::vendor_a(32, 4096, 512);
        let group = [0u32, 1, 16, 17];
        let mut pos: Vec<u32> = group.iter().map(|&b| s.bitline_of(5, b).0).collect();
        pos.sort_unstable();
        assert_eq!(pos[3] - pos[0], 3, "group must occupy 4 adjacent cells");
    }

    #[test]
    fn identity_style_is_trivial() {
        let s = SwizzleMap::new(SwizzleStyle::Identity, 32, 4096, 512);
        assert_eq!(s.bitline_of(2, 7), Bitline(2 * 32 + 7));
    }

    #[test]
    fn vendor_styles_differ() {
        let a = SwizzleMap::vendor_a(32, 4096, 512);
        let c = SwizzleMap::vendor_c(32, 4096, 512);
        let diffs = (0..32)
            .filter(|&b| a.bitline_of(0, b) != c.bitline_of(0, b))
            .count();
        assert!(diffs > 16, "styles A and C too similar: {diffs} diffs");
    }
}
