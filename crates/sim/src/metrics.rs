//! Command-boundary telemetry: a [`CommandSink`] that folds a chip's
//! event stream into a `dram-telemetry` [`Registry`].
//!
//! The [`MetricsSink`] observes everything the trace recorder observes —
//! it attaches at the same [`CommandSink`] hook — which gives the stack
//! a useful invariant for free: metrics derived from a *recorded trace*
//! equal metrics collected during the *live run*, because both sinks see
//! the identical event stream. `characterize stats <trace>` relies on
//! this to render run telemetry with no re-simulation.
//!
//! Everything recorded here is a function of the (deterministic) event
//! stream: simulated timestamps, command payloads, outcomes. No host
//! clocks, no allocation-order dependence — snapshots are byte-stable.
//!
//! # Metric vocabulary (schema v1)
//!
//! | metric | kind | labels | meaning |
//! |---|---|---|---|
//! | `commands_total` | counter | `kind` = `act`/`pre`/`rd`/`wr`/`ref`/`rfm` | accepted pin-level commands; a burst adds its activation count, a refresh window adds [`REF_SLICES`] |
//! | `bank_commands_total` | counter | `bank`, `kind` | per-bank slice of the above (all-bank `REF` has no bank) |
//! | `outcomes_total` | counter | `outcome` = `accepted`/`data`/`rejected` | chip entry-point invocations by result |
//! | `rejects_total` | counter | `kind`, `error` | rejected invocations by command kind and [`CommandError::kind`] |
//! | `read_data_bytes_total` | counter | — | 8 bytes per `RD` burst that returned data |
//! | `bursts_total` | counter | — | accepted loop-accelerated ACT-PRE bursts |
//! | `burst_activations` | histogram | — | activations per accepted burst |
//! | `refresh_windows_total` | counter | — | accepted full refresh windows |
//! | `act_to_act_ps` | histogram | — | same-bank explicit-`ACT` spacing, ps |
//! | `row_open_ps` | histogram | — | explicit `ACT`→`PRE` row-open time, ps |
//! | `clock_anomalies_total` | counter | `interval` = `act_to_act`/`row_open` | accepted-event timestamps that ran backwards; the interval is dropped, not clamped |
//! | `markers_total` | counter | — | all marker events, telemetry-bearing or not |
//! | `die_temperature_mc` | gauge | — | last die temperature, milli-°C |
//! | `phase_*`, `span_*` | counter | `phase` / `span` | see [`dram_telemetry::SpanSet`] |

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dram_telemetry::{parse_marker, Key, MarkerKind, Registry, SpanSet};

use crate::chip::{CommandError, REF_SLICES};
use crate::sink::{ChipEvent, CommandOutcome, CommandSink};
use crate::time::Time;

/// A [`CommandSink`] that accumulates the schema-v1 metric vocabulary
/// from a chip's event stream.
#[derive(Debug, Default)]
pub struct MetricsSink {
    reg: Registry,
    spans: SpanSet,
    /// Last accepted explicit-`ACT` timestamp per bank, ps.
    last_act_ps: BTreeMap<u32, u64>,
    /// Accepted explicit-`ACT` timestamp of the currently open row per
    /// bank, ps (cleared by the matching `PRE`).
    open_since_ps: BTreeMap<u32, u64>,
    /// Accepted pin-level commands so far (the span "command" unit).
    commands: u64,
    /// Latest simulated timestamp seen, ps (markers carry no timestamp;
    /// they are attributed to this clock).
    now_ps: u64,
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Closes any open phase/spans and returns the finished registry.
    pub fn into_registry(mut self) -> Registry {
        self.spans.finish(self.now_ps, self.commands, &mut self.reg);
        self.reg
    }

    /// The registry as accumulated so far (open phases/spans not yet
    /// folded in — use [`MetricsSink::into_registry`] for the final
    /// state).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    fn record_accepted(&mut self, kind: &'static str, bank: Option<u32>, count: u64, at: Time) {
        self.now_ps = self.now_ps.max(at.as_ps());
        self.commands += count;
        self.reg
            .inc(Key::of("commands_total", &[("kind", kind)]), count);
        if let Some(bank) = bank {
            let bank = bank.to_string();
            self.reg.inc(
                Key::of("bank_commands_total", &[("bank", &bank), ("kind", kind)]),
                count,
            );
        }
    }

    fn record_outcome(&mut self, kind: &'static str, outcome: CommandOutcome) {
        let bucket = match outcome {
            CommandOutcome::Accepted => "accepted",
            CommandOutcome::Data(_) => "data",
            CommandOutcome::Rejected(_) => "rejected",
        };
        self.reg
            .inc(Key::of("outcomes_total", &[("outcome", bucket)]), 1);
        if let CommandOutcome::Rejected(err) = outcome {
            self.record_reject(kind, err);
        }
    }

    fn record_reject(&mut self, kind: &'static str, err: CommandError) {
        self.reg.inc(
            Key::of("rejects_total", &[("kind", kind), ("error", err.kind())]),
            1,
        );
    }

    /// A timestamp on an accepted event ran backwards relative to the
    /// interval it closes. A live chip never produces this — reversed
    /// commands are rejected with `TimeReversed` before they reach any
    /// sink — so seeing one means the sink is being fed a synthetic or
    /// corrupted event stream. The bogus interval is dropped and counted
    /// here rather than clamped into the histogram as a silent zero.
    fn record_clock_anomaly(&mut self, interval: &str) {
        self.reg.inc(
            Key::of("clock_anomalies_total", &[("interval", interval)]),
            1,
        );
    }

    fn record_marker(&mut self, label: &str) {
        self.reg.inc(Key::name("markers_total"), 1);
        match parse_marker(label) {
            Some(MarkerKind::Phase(name)) => {
                self.spans
                    .phase_enter(name, self.now_ps, self.commands, &mut self.reg)
            }
            Some(MarkerKind::SpanEnter(name)) => {
                self.spans.span_enter(name, self.now_ps, self.commands)
            }
            Some(MarkerKind::SpanExit(name)) => {
                self.spans
                    .span_exit(name, self.now_ps, self.commands, &mut self.reg)
            }
            None => {}
        }
    }
}

impl CommandSink for MetricsSink {
    fn record(&mut self, event: ChipEvent<'_>) {
        match event {
            ChipEvent::Command { cmd, at, outcome } => {
                let kind = cmd.mnemonic();
                self.record_outcome(kind, outcome);
                if matches!(outcome, CommandOutcome::Rejected(_)) {
                    // Rejected commands can still advance the chip clock.
                    self.now_ps = self.now_ps.max(at.as_ps());
                    return;
                }
                self.record_accepted(kind, cmd.bank(), 1, at);
                match cmd {
                    crate::chip::Command::Activate { bank, .. } => {
                        let at_ps = at.as_ps();
                        if let Some(prev) = self.last_act_ps.insert(bank, at_ps) {
                            match at_ps.checked_sub(prev) {
                                Some(gap) => self.reg.observe(Key::name("act_to_act_ps"), gap),
                                None => self.record_clock_anomaly("act_to_act"),
                            }
                        }
                        self.open_since_ps.insert(bank, at_ps);
                    }
                    crate::chip::Command::Precharge { bank } => {
                        if let Some(opened) = self.open_since_ps.remove(&bank) {
                            match at.as_ps().checked_sub(opened) {
                                Some(open) => self.reg.observe(Key::name("row_open_ps"), open),
                                None => self.record_clock_anomaly("row_open"),
                            }
                        }
                    }
                    crate::chip::Command::Read { .. } => {
                        if let CommandOutcome::Data(_) = outcome {
                            self.reg.inc(Key::name("read_data_bytes_total"), 8);
                        }
                    }
                    _ => {}
                }
            }
            ChipEvent::Burst {
                bank,
                count,
                at,
                outcome,
                ..
            } => {
                self.record_outcome("burst", outcome);
                if matches!(outcome, CommandOutcome::Rejected(_)) {
                    self.now_ps = self.now_ps.max(at.as_ps());
                    return;
                }
                // Mirrors `ChipStats`: a burst counts as `count`
                // activations. Burst-internal ACT/PRE pairs are
                // self-contained, so they do not perturb the explicit
                // act-to-act / row-open interval tracking.
                self.record_accepted("act", Some(bank), count, at);
                self.reg.inc(Key::name("bursts_total"), 1);
                self.reg.observe(Key::name("burst_activations"), count);
            }
            ChipEvent::RefreshWindow { at, outcome } => {
                self.record_outcome("refresh_window", outcome);
                if matches!(outcome, CommandOutcome::Rejected(_)) {
                    self.now_ps = self.now_ps.max(at.as_ps());
                    return;
                }
                self.record_accepted("ref", None, REF_SLICES, at);
                self.reg.inc(Key::name("refresh_windows_total"), 1);
            }
            ChipEvent::SetTemperature { celsius } => {
                self.reg
                    .set_gauge(Key::name("die_temperature_mc"), (celsius * 1000.0) as i64);
            }
            ChipEvent::Marker { label } => self.record_marker(label),
        }
    }
}

/// A shareable handle over a [`MetricsSink`]: the chip owns one clone as
/// its boxed sink while the caller keeps another to harvest the registry
/// after the run. The mutex is uncontended in practice (one chip, one
/// thread) and exists only to satisfy `Send` for the sink slot.
#[derive(Debug, Clone, Default)]
pub struct SharedMetrics(Arc<Mutex<MetricsSink>>);

impl SharedMetrics {
    /// Creates a handle over a fresh sink.
    pub fn new() -> SharedMetrics {
        SharedMetrics::default()
    }

    /// Closes open phases/spans and returns the finished registry,
    /// resetting the shared sink to empty.
    pub fn take_registry(&self) -> Registry {
        let mut sink = self.0.lock().expect("metrics mutex poisoned");
        std::mem::take(&mut *sink).into_registry()
    }
}

impl CommandSink for SharedMetrics {
    fn record(&mut self, event: ChipEvent<'_>) {
        self.0.lock().expect("metrics mutex poisoned").record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Command;

    fn cmd(cmd: Command, at_ns: u64, outcome: CommandOutcome) -> ChipEvent<'static> {
        ChipEvent::Command {
            cmd,
            at: Time::from_ns(at_ns),
            outcome,
        }
    }

    #[test]
    fn command_mix_bank_counters_and_row_cycles() {
        let mut sink = MetricsSink::new();
        sink.record(cmd(
            Command::Activate { bank: 0, row: 5 },
            100,
            CommandOutcome::Accepted,
        ));
        sink.record(cmd(
            Command::Read { bank: 0, col: 0 },
            130,
            CommandOutcome::Data(0xdead),
        ));
        sink.record(cmd(
            Command::Precharge { bank: 0 },
            150,
            CommandOutcome::Accepted,
        ));
        sink.record(cmd(
            Command::Activate { bank: 0, row: 6 },
            200,
            CommandOutcome::Accepted,
        ));
        let reg = sink.into_registry();

        assert_eq!(
            reg.counter(&Key::of("commands_total", &[("kind", "act")])),
            2
        );
        assert_eq!(
            reg.counter(&Key::of(
                "bank_commands_total",
                &[("bank", "0"), ("kind", "rd")]
            )),
            1
        );
        assert_eq!(reg.counter(&Key::name("read_data_bytes_total")), 8);
        // ACT@100ns → PRE@150ns: one 50 000 ps row-open interval.
        let open = reg.histogram(&Key::name("row_open_ps")).unwrap();
        assert_eq!((open.count(), open.sum()), (1, 50_000));
        // ACT@100ns → ACT@200ns same bank: one 100 000 ps spacing.
        let a2a = reg.histogram(&Key::name("act_to_act_ps")).unwrap();
        assert_eq!((a2a.count(), a2a.sum()), (1, 100_000));
        assert_eq!(
            reg.counter(&Key::of("outcomes_total", &[("outcome", "data")])),
            1
        );
    }

    #[test]
    fn rejects_bucket_by_kind_and_error_and_do_not_count_as_commands() {
        let mut sink = MetricsSink::new();
        sink.record(cmd(
            Command::Read { bank: 0, col: 0 },
            50,
            CommandOutcome::Rejected(CommandError::NoOpenRow),
        ));
        let reg = sink.into_registry();
        assert_eq!(
            reg.counter(&Key::of(
                "rejects_total",
                &[("kind", "rd"), ("error", "no_open_row")]
            )),
            1
        );
        assert_eq!(reg.sum_counters("commands_total"), 0);
        assert_eq!(
            reg.counter(&Key::of("outcomes_total", &[("outcome", "rejected")])),
            1
        );
    }

    #[test]
    fn bursts_and_refresh_windows_scale_like_chip_stats() {
        let mut sink = MetricsSink::new();
        sink.record(ChipEvent::Burst {
            bank: 2,
            row: 9,
            count: 4000,
            each_on: Time::from_ns(30),
            at: Time::from_ns(1_000),
            outcome: CommandOutcome::Accepted,
        });
        sink.record(ChipEvent::RefreshWindow {
            at: Time::from_ms(64),
            outcome: CommandOutcome::Accepted,
        });
        let reg = sink.into_registry();
        assert_eq!(
            reg.counter(&Key::of("commands_total", &[("kind", "act")])),
            4000
        );
        assert_eq!(
            reg.counter(&Key::of("commands_total", &[("kind", "ref")])),
            REF_SLICES
        );
        assert_eq!(reg.counter(&Key::name("bursts_total")), 1);
        assert_eq!(reg.counter(&Key::name("refresh_windows_total")), 1);
        assert_eq!(
            reg.histogram(&Key::name("burst_activations"))
                .unwrap()
                .max(),
            Some(4000)
        );
    }

    #[test]
    fn markers_drive_phases_and_spans_on_the_sim_clock() {
        let mut sink = MetricsSink::new();
        sink.record(ChipEvent::Marker {
            label: "phase:structure",
        });
        sink.record(cmd(
            Command::Activate { bank: 0, row: 0 },
            1_000,
            CommandOutcome::Accepted,
        ));
        sink.record(ChipEvent::Marker {
            label: "span:probe:enter",
        });
        sink.record(cmd(
            Command::Precharge { bank: 0 },
            3_000,
            CommandOutcome::Accepted,
        ));
        sink.record(ChipEvent::Marker {
            label: "span:probe:exit",
        });
        sink.record(ChipEvent::Marker {
            label: "free-form note",
        });
        let reg = sink.into_registry();
        assert_eq!(reg.counter(&Key::name("markers_total")), 4);
        assert_eq!(
            reg.counter(&Key::of("span_commands_total", &[("span", "probe")])),
            1
        );
        assert_eq!(
            reg.counter(&Key::of("span_sim_ps_total", &[("span", "probe")])),
            2_000_000
        );
        assert_eq!(
            reg.counter(&Key::of("phase_commands_total", &[("phase", "structure")])),
            2
        );
    }

    #[test]
    fn reversed_timestamps_are_counted_not_clamped() {
        // A live chip rejects reversed commands, so this stream can only
        // come from synthetic or corrupted input — the sink must not
        // fold a clamped zero into the histograms.
        let mut sink = MetricsSink::new();
        sink.record(cmd(
            Command::Activate { bank: 0, row: 5 },
            200,
            CommandOutcome::Accepted,
        ));
        sink.record(cmd(
            Command::Precharge { bank: 0 },
            100,
            CommandOutcome::Accepted,
        ));
        sink.record(cmd(
            Command::Activate { bank: 0, row: 6 },
            150,
            CommandOutcome::Accepted,
        ));
        let reg = sink.into_registry();
        assert!(reg.histogram(&Key::name("row_open_ps")).is_none());
        assert!(reg.histogram(&Key::name("act_to_act_ps")).is_none());
        assert_eq!(
            reg.counter(&Key::of(
                "clock_anomalies_total",
                &[("interval", "row_open")]
            )),
            1
        );
        assert_eq!(
            reg.counter(&Key::of(
                "clock_anomalies_total",
                &[("interval", "act_to_act")]
            )),
            1
        );
    }

    #[test]
    fn shared_metrics_harvests_after_the_chip_is_done() {
        let shared = SharedMetrics::new();
        let mut chip_half = shared.clone();
        chip_half.record(cmd(Command::Refresh, 500, CommandOutcome::Accepted));
        let reg = shared.take_registry();
        assert_eq!(
            reg.counter(&Key::of("commands_total", &[("kind", "ref")])),
            1
        );
        // The shared sink resets after harvest.
        assert!(shared.take_registry().is_empty());
    }
}
