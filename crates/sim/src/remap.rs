//! Internal row-address remapping (common pitfall 2, paper §III-C).
//!
//! Some vendors' row decoders scramble the order in which pin-level row
//! addresses map onto physical wordlines. The paper found that only
//! Mfr. A's DDR4 and HBM2 parts remap internally; Mfr. B and Mfr. C
//! preserve sequential order.

use crate::geometry::LogicalRow;

/// A chip's internal logical→physical row mapping.
///
/// The mapping is an involution in the Mfr. A style modeled here, but the
/// API keeps separate [`to_physical`](RowRemap::to_physical) and
/// [`to_logical`](RowRemap::to_logical) directions so other schemes can be
/// added.
///
/// # Example
///
/// ```
/// use dram_sim::{RowRemap, LogicalRow};
/// let remap = RowRemap::MfrA;
/// let phys = remap.to_physical(LogicalRow(6));
/// assert_eq!(remap.to_logical(phys), LogicalRow(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowRemap {
    /// Sequential mapping (Mfr. B, Mfr. C).
    #[default]
    Identity,
    /// Mfr. A-style scramble: within every block of 8 rows, the upper half
    /// is bit-twisted (`row XOR 0b011` when bit 2 is set). This mirrors the
    /// MSB-conditional XOR remap reported for real vendor-A parts: rows
    /// appear sequential to the host but physical adjacency differs inside
    /// each 8-row block.
    MfrA,
}

impl RowRemap {
    /// Maps a pin-level row address to the physical wordline-order address.
    pub fn to_physical(self, row: LogicalRow) -> LogicalRow {
        match self {
            RowRemap::Identity => row,
            RowRemap::MfrA => {
                if row.0 & 0b100 != 0 {
                    LogicalRow(row.0 ^ 0b011)
                } else {
                    row
                }
            }
        }
    }

    /// Maps a physical wordline-order address back to the pin-level row.
    pub fn to_logical(self, row: LogicalRow) -> LogicalRow {
        // Both supported schemes are involutions.
        self.to_physical(row)
    }

    /// `true` if the scheme permutes at least one address.
    pub fn is_remapping(self) -> bool {
        self != RowRemap::Identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        for r in 0..64 {
            assert_eq!(RowRemap::Identity.to_physical(LogicalRow(r)), LogicalRow(r));
        }
    }

    #[test]
    fn mfr_a_is_a_bijection_within_blocks() {
        let mut seen = [false; 16];
        for r in 0..16u32 {
            let p = RowRemap::MfrA.to_physical(LogicalRow(r)).0 as usize;
            assert!(p < 16, "remap escaped its block");
            assert!(!seen[p], "collision at {p}");
            seen[p] = true;
            assert_eq!(p / 8, (r / 8) as usize, "remap crossed an 8-row block");
        }
    }

    #[test]
    fn mfr_a_round_trips() {
        for r in 0..1024u32 {
            let p = RowRemap::MfrA.to_physical(LogicalRow(r));
            assert_eq!(RowRemap::MfrA.to_logical(p), LogicalRow(r));
        }
    }

    #[test]
    fn mfr_a_changes_adjacency() {
        // Pin rows 3 and 4 are NOT physically adjacent under the scramble
        // (pin 4 lands on physical 7).
        let p3 = RowRemap::MfrA.to_physical(LogicalRow(3)).0;
        let p4 = RowRemap::MfrA.to_physical(LogicalRow(4)).0;
        assert_eq!(p4, 7);
        assert_ne!(p3.abs_diff(p4), 1);
        assert!(RowRemap::MfrA.is_remapping());
        assert!(!RowRemap::Identity.is_remapping());
    }
}
