//! The command-boundary observation hook: a [`CommandSink`] attached to a
//! [`DramChip`](crate::DramChip) sees every command the chip is asked to
//! execute, in issue order, together with its timestamp and outcome.
//!
//! This is the capture side of the `dram-trace` subsystem: a recorder
//! implementing [`CommandSink`] turns a live run into a replayable trace,
//! and a verifier implementing the same trait checks a live run against a
//! previously captured trace event-by-event. The chip never depends on
//! any concrete sink — when no sink is attached the hook is a single
//! `Option` check per command.
//!
//! Events are reported *after* execution so the outcome (read data,
//! protocol error) is part of the event; rejected commands are reported
//! too, because a rejected command can still advance the chip's internal
//! clock and must therefore be replayed to reproduce a run bit-for-bit.

use crate::chip::{Command, CommandError};
use crate::time::Time;
use std::fmt;

/// The result of one chip entry-point invocation, as seen by a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandOutcome {
    /// The command was accepted and returned no data.
    Accepted,
    /// The command was accepted and returned read data.
    Data(u64),
    /// The chip rejected the command with a protocol error.
    Rejected(CommandError),
}

impl CommandOutcome {
    /// Folds an `issue`-shaped result into an outcome.
    pub fn of_issue(result: &Result<Option<crate::chip::ReadData>, CommandError>) -> Self {
        match result {
            Ok(None) => CommandOutcome::Accepted,
            Ok(Some(d)) => CommandOutcome::Data(d.0),
            Err(e) => CommandOutcome::Rejected(*e),
        }
    }

    /// Folds a unit-or-error result into an outcome.
    pub fn of_unit<T>(result: &Result<T, CommandError>) -> Self {
        match result {
            Ok(_) => CommandOutcome::Accepted,
            Err(e) => CommandOutcome::Rejected(*e),
        }
    }
}

impl fmt::Display for CommandOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandOutcome::Accepted => write!(f, "ok"),
            CommandOutcome::Data(d) => write!(f, "0x{d:016x}"),
            CommandOutcome::Rejected(e) => write!(f, "rejected: {e}"),
        }
    }
}

/// One observable event at the chip's command boundary.
///
/// Borrowed form (marker labels are `&str`); recorders that outlive the
/// call must copy what they keep.
#[derive(Debug, Clone, Copy)]
pub enum ChipEvent<'a> {
    /// A pin-level command went through [`DramChip::issue`](crate::DramChip::issue).
    Command {
        /// The command as issued.
        cmd: Command,
        /// Its timestamp.
        at: Time,
        /// What the chip did with it.
        outcome: CommandOutcome,
    },
    /// A loop-accelerated `ACT`-`PRE` burst
    /// ([`DramChip::activate_burst`](crate::DramChip::activate_burst)).
    Burst {
        /// Bank index.
        bank: u32,
        /// Pin-level row address.
        row: u32,
        /// Activations in the burst.
        count: u64,
        /// Per-activation open time.
        each_on: Time,
        /// Burst start timestamp.
        at: Time,
        /// What the chip did with it.
        outcome: CommandOutcome,
    },
    /// A loop-accelerated full refresh window
    /// ([`DramChip::refresh_window`](crate::DramChip::refresh_window)).
    RefreshWindow {
        /// Timestamp of the window.
        at: Time,
        /// What the chip did with it.
        outcome: CommandOutcome,
    },
    /// The die temperature changed (testbed thermal plant).
    SetTemperature {
        /// New die temperature, °C.
        celsius: f64,
    },
    /// An out-of-band phase marker ([`DramChip::mark`](crate::DramChip::mark));
    /// never affects chip state, but lets traces carry experiment
    /// structure (characterization phases, program boundaries).
    Marker {
        /// The marker label.
        label: &'a str,
    },
}

/// Receives every event at a chip's command boundary, in issue order.
///
/// Implementations must not assume only successful commands arrive; see
/// the [module docs](self).
pub trait CommandSink {
    /// Called once per chip entry-point invocation, after execution.
    fn record(&mut self, event: ChipEvent<'_>);
}

/// Fans one event stream out to two sinks, in order: `first`, then
/// `second`. [`ChipEvent`] is `Copy`, so teeing costs two virtual calls
/// and nothing else. Nest `Tee`s for wider fan-out (e.g. a trace
/// recorder plus a metrics collector on the same run).
pub struct Tee<A, B> {
    /// Receives each event first.
    pub first: A,
    /// Receives each event second.
    pub second: B,
}

impl<A, B> Tee<A, B> {
    /// Builds a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        Tee { first, second }
    }
}

impl<A: CommandSink, B: CommandSink> CommandSink for Tee<A, B> {
    fn record(&mut self, event: ChipEvent<'_>) {
        self.first.record(event);
        self.second.record(event);
    }
}

impl<A, B> fmt::Debug for Tee<A, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tee(..)")
    }
}

/// A boxed sink is itself a sink, so a `Tee` can hold externally
/// supplied `Box<dyn CommandSink + Send>` halves.
impl CommandSink for Box<dyn CommandSink + Send> {
    fn record(&mut self, event: ChipEvent<'_>) {
        (**self).record(event);
    }
}

/// The chip's sink slot; wraps the boxed sink so `DramChip` can keep
/// deriving nothing special and still print with `Debug`.
pub(crate) struct SinkSlot(pub(crate) Option<Box<dyn CommandSink + Send>>);

impl SinkSlot {
    pub(crate) const fn empty() -> Self {
        SinkSlot(None)
    }
}

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(_) => write!(f, "CommandSink(attached)"),
            None => write!(f, "CommandSink(none)"),
        }
    }
}
