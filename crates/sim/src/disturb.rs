//! Activate-induced-bitflip (AIB) physics (paper §II-D, §V).
//!
//! The engine is a **weakest-cell dose/threshold model**. Every cell owns a
//! fixed uniform variate `u` (its process corner). An attack accumulates a
//! *dose* — activation count for RowHammer, wordline-on time for RowPress —
//! and a per-cell *context multiplier* `M` collects every vulnerability
//! factor the paper characterizes. The cell flips iff
//!
//! ```text
//! u < (dose · M / scale) ^ ber_exponent
//! ```
//!
//! which yields two coupled consequences, both matching the paper:
//!
//! * the row BER scales as `M^ber_exponent` — multipliers below are stored
//!   in *BER units* straight out of Fig. 10/13/14 and converted internally;
//! * the first-flip activation count `H_cnt` scales as `1/M_dose`
//!   (`M_dose = M_ber^(1/ber_exponent)`), which reproduces the Fig. 15
//!   H_cnt ratios from the *same* parameters (e.g. Vic±2 opposite:
//!   BER ×1.54 ⇔ H_cnt ×0.87 with `ber_exponent = 3.1`).
//!
//! The context multiplier folds in:
//!
//! * mechanism base rates per (gate type, charge state) — Fig. 13, O9/O10;
//!   RowPress only disturbs charged cells (§II-D);
//! * horizontal victim-neighbour data dependence at cell distance ±1/±2 —
//!   Fig. 14(a), O11;
//! * horizontal aggressor data dependence at distance 0/±1/±2 —
//!   Fig. 14(b), O12;
//! * edge-subarray dummy-bitline damping keyed by aggressor data —
//!   Fig. 10, O6.

use crate::cell::GateType;

/// The two AIB attack mechanisms (paper §II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Repeated short activations (dose = activation count).
    Hammer,
    /// Few, long activations (dose = accumulated on-time in ns).
    Press,
}

/// Base vulnerability rates per gate type and charge state, in BER units
/// relative to the mechanism's strongest class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateRates {
    /// Charged victim, aggressor is the passing gate.
    pub passing_charged: f64,
    /// Discharged victim, aggressor is the passing gate.
    pub passing_discharged: f64,
    /// Charged victim, aggressor is the neighboring gate.
    pub neighboring_charged: f64,
    /// Discharged victim, aggressor is the neighboring gate.
    pub neighboring_discharged: f64,
}

impl GateRates {
    /// The rate for a specific gate/charge combination.
    pub fn rate(&self, gate: GateType, charged: bool) -> f64 {
        match (gate, charged) {
            (GateType::Passing, true) => self.passing_charged,
            (GateType::Passing, false) => self.passing_discharged,
            (GateType::Neighboring, true) => self.neighboring_charged,
            (GateType::Neighboring, false) => self.neighboring_discharged,
        }
    }
}

/// Per-cell context for one (victim cell, aggressor wordline) disturbance
/// evaluation. Assembled by the chip from the hidden layout and the live
/// row data; consumed by [`DisturbModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipContext {
    /// Gate type the aggressor presents to this victim cell.
    pub gate: GateType,
    /// Whether the victim cell currently holds the charged state.
    pub charged: bool,
    /// The victim cell's logical data bit (keys the horizontal tables).
    pub vic_data: bool,
    /// For victim neighbours at distance [-2, -1, +1, +2]: `Some(differs)`
    /// when the neighbour exists inside the same MAT.
    pub vic_neighbor_differs: [Option<bool>; 4],
    /// For aggressor cells at distance [-2, -1, 0, +1, +2]: `Some(same)`
    /// when the aggressor cell exists; `same` means it equals the victim's
    /// data (the baseline in the paper is *opposite*).
    pub aggr_same: [Option<bool>; 5],
    /// Victim sits in an edge subarray (dummy-bitline damping applies).
    pub edge: bool,
    /// Data of the directly adjacent aggressor cell (keys edge damping).
    pub aggr0_data: bool,
    /// Extra dose scaling (victim distance > 1, companion activation, …).
    pub dose_scale: f64,
}

/// The AIB parameter set of one chip.
///
/// All `*_ber` fields are expressed as BER ratios exactly as the paper
/// reports them; the model converts to dose units internally via
/// [`ber_exponent`](Self::ber_exponent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisturbModel {
    /// Exponent relating dose ratios to BER ratios (`BER ∝ dose^exp`).
    pub ber_exponent: f64,
    /// Hammer dose scale: activations at which the strongest class reaches
    /// BER = 1 under the power law (far above any real run).
    pub hammer_scale: f64,
    /// Press dose scale in nanoseconds of accumulated on-time.
    pub press_scale_ns: f64,
    /// RowHammer base rates (BER units, Fig. 13 right).
    pub hammer_rate: GateRates,
    /// RowPress base rates (BER units, Fig. 13 left).
    pub press_rate: GateRates,
    /// BER multiplier when the victim-neighbour *pair* at distance 1 / 2
    /// holds the opposite value, indexed `[distance-1][vic_data]`
    /// (Fig. 14(a): d1 = 1.12/1.10, d2 = 1.54/1.35).
    pub victim_pair_ber: [[f64; 2]; 2],
    /// BER multiplier when aggressor cells hold the *same* value as the
    /// victim, indexed `[distance][vic_data]` with distance 0 a single
    /// cell and 1/2 pairs. Fig. 14(b) reports *cumulative* sets
    /// ({0} → 0.58/0.72, {0,±1} → 0.46/0.58, {0,±1,±2} → 0.38/0.08), so
    /// the stored pair values are the incremental ratios between
    /// consecutive sets.
    pub aggr_same_ber: [[f64; 2]; 3],
    /// Edge-subarray BER damping indexed by the adjacent aggressor cell's
    /// data (Fig. 10: stronger damping when the aggressor writes 1).
    pub edge_damp_ber: [f64; 2],
    /// Extra BER multiplier for the full vertical-checker context of the
    /// paper's worst-case pattern (Fig. 16/17): victim's ±2 neighbours
    /// opposite AND the aggressor's ±2 cells equal to the victim AND the
    /// directly adjacent aggressor cell opposite. The paper's per-factor
    /// ratios (Fig. 14) compose multiplicatively to *less* than 1× for
    /// this pattern, yet the measured whole-row BER is 1.69× — the real
    /// device responds super-multiplicatively, which this term encodes.
    pub pattern_synergy_ber: f64,
    /// Dose multiplier for victims at wordline distance 2 (nearly zero:
    /// the paper debunks direct non-adjacent RowHammer as a mapping
    /// artifact).
    pub distance_two_dose: f64,
    /// Dose multiplier for disturbance caused by a tandem companion
    /// activation in an edge subarray.
    pub companion_dose: f64,
}

impl Default for DisturbModel {
    fn default() -> Self {
        DisturbModel {
            ber_exponent: 3.1,
            hammer_scale: 2.5e6,
            press_scale_ns: 5.0e8,
            hammer_rate: GateRates {
                passing_charged: 1.0,
                passing_discharged: 0.04,
                neighboring_charged: 0.05,
                neighboring_discharged: 0.75,
            },
            press_rate: GateRates {
                passing_charged: 0.5,
                passing_discharged: 0.0,
                neighboring_charged: 1.0,
                neighboring_discharged: 0.0,
            },
            victim_pair_ber: [[1.12, 1.10], [1.54, 1.35]],
            aggr_same_ber: [
                [0.58, 0.72],
                [0.46 / 0.58, 0.58 / 0.72],
                [0.38 / 0.46, 0.08 / 0.58],
            ],
            edge_damp_ber: [0.75, 0.40],
            pattern_synergy_ber: 3.1,
            distance_two_dose: 0.02,
            companion_dose: 1.0,
        }
    }
}

impl DisturbModel {
    /// Converts a BER-unit ratio to a dose-unit multiplier.
    #[inline]
    fn dose_of(&self, ber_ratio: f64) -> f64 {
        if ber_ratio <= 0.0 {
            0.0
        } else {
            ber_ratio.powf(1.0 / self.ber_exponent)
        }
    }

    /// The combined dose multiplier `M` for one victim cell under one
    /// aggressor, for the given mechanism.
    pub fn dose_multiplier(&self, mech: Mechanism, ctx: &FlipContext) -> f64 {
        let base_ber = match mech {
            Mechanism::Hammer => self.hammer_rate.rate(ctx.gate, ctx.charged),
            Mechanism::Press => self.press_rate.rate(ctx.gate, ctx.charged),
        };
        if base_ber <= 0.0 {
            return 0.0;
        }
        let mut m = self.dose_of(base_ber) * ctx.dose_scale;

        let vd = usize::from(ctx.vic_data);
        // Victim horizontal influence: the table stores the *pair* BER
        // ratio, so each satisfied side contributes the square root.
        for (i, diff) in ctx.vic_neighbor_differs.iter().enumerate() {
            if *diff == Some(true) {
                let dist = if i == 0 || i == 3 { 1 } else { 0 };
                m *= self.dose_of(self.victim_pair_ber[dist][vd]).sqrt();
            }
        }
        // Aggressor horizontal influence: baseline is "opposite"; a cell
        // matching the victim reduces the dose.
        for (i, same) in ctx.aggr_same.iter().enumerate() {
            if *same == Some(true) {
                let dist = match i {
                    2 => 0,
                    1 | 3 => 1,
                    _ => 2,
                };
                let pair = self.dose_of(self.aggr_same_ber[dist][vd]);
                m *= if dist == 0 { pair } else { pair.sqrt() };
            }
        }
        if ctx.edge {
            m *= self.dose_of(self.edge_damp_ber[usize::from(ctx.aggr0_data)]);
        }
        // Worst-case vertical-checker synergy (see field docs).
        if ctx.vic_neighbor_differs[0] == Some(true)
            && ctx.vic_neighbor_differs[3] == Some(true)
            && ctx.aggr_same[0] == Some(true)
            && ctx.aggr_same[4] == Some(true)
            && ctx.aggr_same[2] == Some(false)
        {
            m *= self.dose_of(self.pattern_synergy_ber);
        }
        m
    }

    /// The flip probability for an accumulated dose and multiplier.
    ///
    /// `dose` is activations for [`Mechanism::Hammer`] and on-time in
    /// nanoseconds for [`Mechanism::Press`].
    pub fn flip_probability(&self, mech: Mechanism, dose: f64, m: f64) -> f64 {
        if dose <= 0.0 || m <= 0.0 {
            return 0.0;
        }
        let scale = match mech {
            Mechanism::Hammer => self.hammer_scale,
            Mechanism::Press => self.press_scale_ns,
        };
        (dose * m / scale).powf(self.ber_exponent).min(1.0)
    }

    /// A cheap, provably conservative test that the accumulated doses
    /// cannot yield a combined flip probability above `threshold` under
    /// context multiplier `m`.
    ///
    /// Returns `true` only when
    /// `flip_probability(Hammer, dose_h, m) + flip_probability(Press,
    /// dose_p, m) <= threshold` is guaranteed: for a normalized dose
    /// `0 <= x < 1` and `ber_exponent >= 3`, `x.powf(ber_exponent) <=
    /// x³`, so the cube sum bounds the exact `powf` sum from above.
    /// Returns `false` (— "evaluate exactly") whenever the model
    /// parameters fall outside the provable regime.
    ///
    /// The hot settle path calls this with the per-settle dose deltas of
    /// ordinary (non-attack) traffic, which avoids two `powf`
    /// evaluations per command.
    pub fn dose_bound_negligible(&self, dose_h: f64, dose_p: f64, m: f64, threshold: f64) -> bool {
        if self.ber_exponent < 3.0 || self.hammer_scale <= 0.0 || self.press_scale_ns <= 0.0 {
            return false;
        }
        // Negative doses produce a flip probability of exactly 0, so
        // clamping them out keeps the bound one-sided.
        let x_h = (dose_h.max(0.0) * m) / self.hammer_scale;
        let x_p = (dose_p.max(0.0) * m) / self.press_scale_ns;
        if x_h >= 1.0 || x_p >= 1.0 {
            return false;
        }
        x_h * x_h * x_h + x_p * x_p * x_p <= threshold
    }

    /// The activation count at which a cell with process variate `u` first
    /// flips, for a per-activation dose of 1 (RowHammer). Used by tests and
    /// analytical tooling; the chip itself evaluates probabilities.
    pub fn hammer_threshold(&self, u: f64, m: f64) -> f64 {
        if m <= 0.0 {
            return f64::INFINITY;
        }
        self.hammer_scale * u.powf(1.0 / self.ber_exponent) / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_ctx() -> FlipContext {
        FlipContext {
            gate: GateType::Passing,
            charged: true,
            vic_data: true,
            vic_neighbor_differs: [Some(false); 4],
            aggr_same: [Some(false); 5],
            edge: false,
            aggr0_data: false,
            dose_scale: 1.0,
        }
    }

    #[test]
    fn baseline_multiplier_is_one_for_strongest_class() {
        let m = DisturbModel::default();
        assert!((m.dose_multiplier(Mechanism::Hammer, &base_ctx()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn press_ignores_discharged_cells() {
        let m = DisturbModel::default();
        let ctx = FlipContext {
            charged: false,
            gate: GateType::Neighboring,
            ..base_ctx()
        };
        assert_eq!(m.dose_multiplier(Mechanism::Press, &ctx), 0.0);
    }

    #[test]
    fn victim_pair_reproduces_fig14a_ratio() {
        let model = DisturbModel::default();
        let base = base_ctx();
        let mut ctx = base;
        // Both distance-2 neighbours opposite, vic_data = 0.
        ctx.vic_data = false;
        ctx.vic_neighbor_differs = [Some(true), Some(false), Some(false), Some(true)];
        let mut b = base;
        b.vic_data = false;
        let m0 = model.dose_multiplier(Mechanism::Hammer, &b);
        let m1 = model.dose_multiplier(Mechanism::Hammer, &ctx);
        let ber_ratio = (m1 / m0).powf(model.ber_exponent);
        assert!((ber_ratio - 1.54).abs() < 1e-9, "got {ber_ratio}");
    }

    #[test]
    fn hcnt_ratio_follows_from_the_same_parameters() {
        // Vic±2 opposite: BER ×1.54 must imply H_cnt ×~0.87 (Fig. 15).
        let model = DisturbModel::default();
        let m_ratio = 1.54f64.powf(1.0 / model.ber_exponent);
        let hcnt_ratio = 1.0 / m_ratio;
        assert!((hcnt_ratio - 0.87).abs() < 0.01, "got {hcnt_ratio}");
    }

    #[test]
    fn aggressor_same_reduces_ber_per_fig14b() {
        let model = DisturbModel::default();
        let mut b = base_ctx();
        b.vic_data = false;
        let m0 = model.dose_multiplier(Mechanism::Hammer, &b);
        let mut ctx = b;
        ctx.aggr_same = [
            Some(false),
            Some(false),
            Some(true),
            Some(false),
            Some(false),
        ];
        let m1 = model.dose_multiplier(Mechanism::Hammer, &ctx);
        let ber_ratio = (m1 / m0).powf(model.ber_exponent);
        assert!((ber_ratio - 0.58).abs() < 1e-9, "got {ber_ratio}");
    }

    #[test]
    fn aggressor_cumulative_sets_match_fig14b() {
        // Fig. 14(b) reports cumulative sets: {0}, {0,±1}, {0,±1,±2}.
        let model = DisturbModel::default();
        let measure = |same: [Option<bool>; 5], vic: bool| {
            let mut base = base_ctx();
            base.vic_data = vic;
            let m0 = model.dose_multiplier(Mechanism::Hammer, &base);
            let mut ctx = base;
            ctx.aggr_same = same;
            let m1 = model.dose_multiplier(Mechanism::Hammer, &ctx);
            (m1 / m0).powf(model.ber_exponent)
        };
        let f = Some(false);
        let t = Some(true);
        for (vic, d0, d1, d2) in [(false, 0.58, 0.46, 0.38), (true, 0.72, 0.58, 0.08)] {
            assert!((measure([f, f, t, f, f], vic) - d0).abs() < 1e-9);
            assert!((measure([f, t, t, t, f], vic) - d1).abs() < 1e-9);
            assert!((measure([t, t, t, t, t], vic) - d2).abs() < 1e-9);
        }
    }

    #[test]
    fn edge_damping_keyed_by_aggressor_data() {
        let model = DisturbModel::default();
        let mut e0 = base_ctx();
        e0.edge = true;
        e0.aggr0_data = false;
        let mut e1 = e0;
        e1.aggr0_data = true;
        let m0 = model.dose_multiplier(Mechanism::Hammer, &e0);
        let m1 = model.dose_multiplier(Mechanism::Hammer, &e1);
        assert!(m1 < m0, "aggressor 1 must damp harder at the edge");
        let ber1 = (m1).powf(model.ber_exponent);
        assert!((ber1 - 0.40).abs() < 1e-9, "got {ber1}");
    }

    #[test]
    fn flip_probability_is_monotonic_and_clamped() {
        let m = DisturbModel::default();
        let p1 = m.flip_probability(Mechanism::Hammer, 100_000.0, 1.0);
        let p2 = m.flip_probability(Mechanism::Hammer, 300_000.0, 1.0);
        assert!(p2 > p1);
        assert!(p1 > 0.0);
        assert_eq!(m.flip_probability(Mechanism::Hammer, 1e12, 1.0), 1.0);
        assert_eq!(m.flip_probability(Mechanism::Hammer, 0.0, 1.0), 0.0);
    }

    #[test]
    fn operating_point_gives_measurable_ber_at_300k() {
        let m = DisturbModel::default();
        let p = m.flip_probability(Mechanism::Hammer, 300_000.0, 1.0);
        assert!(p > 1e-4 && p < 1e-2, "BER at 300K acts = {p}");
        let pp = m.flip_probability(Mechanism::Press, 8_000.0 * 7_800.0, 1.0);
        assert!(pp > 1e-4 && pp < 1e-2, "press BER = {pp}");
    }

    #[test]
    fn hammer_threshold_inverts_probability() {
        let m = DisturbModel::default();
        let u = 1e-4;
        let n = m.hammer_threshold(u, 1.0);
        // At exactly n activations the probability equals u.
        let p = m.flip_probability(Mechanism::Hammer, n, 1.0);
        assert!((p - u).abs() / u < 1e-6);
    }

    #[test]
    fn hammer_strong_classes_match_o10() {
        // O10: a cell is susceptible to one gate type per data value.
        let r = DisturbModel::default().hammer_rate;
        assert!(r.passing_charged > 10.0 * r.neighboring_charged);
        assert!(r.neighboring_discharged > 10.0 * r.passing_discharged);
    }

    #[test]
    fn press_and_hammer_prefer_opposite_gates_when_charged() {
        // Footnote 7: RowPress's charged-state characteristics are the
        // opposite of RowHammer's.
        let m = DisturbModel::default();
        assert!(m.hammer_rate.passing_charged > m.hammer_rate.neighboring_charged);
        assert!(m.press_rate.neighboring_charged > m.press_rate.passing_charged);
    }
}
