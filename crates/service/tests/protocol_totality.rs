//! Totality fuzz for the request decoder: every byte-level corruption
//! of a valid request line must come back as a structured error (or a
//! valid parse), never a panic. This is the same discipline the trace
//! decoder's `decoder_is_total_on_corrupt_input` test enforces for the
//! binary format, applied to the wire protocol.

use dramscope_service::protocol::{parse_request, MAX_REQUEST_BYTES};
use dramscope_service::Request;

const VALID: &str = r#"{"req":"characterize","id":"j1","profile":"test_small","seed":42,"scan_rows":129,"with_swizzle":false,"probe_start":44,"probe_end":60,"retention_wait_ms":120000,"sharded":false,"progress":true}"#;

/// A valid request whose id exercises the string decoder's hard cases:
/// DEL, a raw astral character, and a reference-encoder surrogate pair.
const VALID_UNICODE: &str = "{\"req\":\"characterize\",\"id\":\"\u{7f}\u{1f600}\\ud83d\\ude00\",\"profile\":\"test_small\",\"seed\":42}";

/// A tiny deterministic PRNG (xorshift64*) so the fuzz corpus is
/// reproducible without any dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn the_reference_line_parses() {
    match parse_request(VALID) {
        Ok(Request::Characterize(c)) => {
            assert_eq!(c.seed, 42);
            assert_eq!(c.opts.scan_rows, 129);
        }
        other => panic!("expected characterize, got {other:?}"),
    }
}

#[test]
fn the_unicode_reference_line_parses() {
    match parse_request(VALID_UNICODE) {
        Ok(Request::Characterize(c)) => {
            // Raw and escaped forms of U+1F600 decode identically.
            assert!(c.id.contains("\u{1f600}\u{1f600}"), "{:?}", c.id);
            assert!(c.id.contains('\u{7f}'), "{:?}", c.id);
        }
        other => panic!("expected characterize, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_byte_is_a_structured_error() {
    for cut in 0..VALID.len() {
        let prefix = &VALID[..cut];
        let result = parse_request(prefix);
        assert!(
            result.is_err(),
            "prefix of {cut} bytes parsed as {result:?}"
        );
    }
    // The unicode line truncates on char boundaries only (the line
    // reader rejects invalid UTF-8 before the parser runs); a cut
    // inside the surrogate-pair escape must still be a structured
    // error, never a panic or a mangled accept.
    for cut in VALID_UNICODE
        .char_indices()
        .map(|(i, _)| i)
        .chain([VALID_UNICODE.len() - 1])
    {
        let prefix = &VALID_UNICODE[..cut];
        let result = parse_request(prefix);
        assert!(
            result.is_err(),
            "unicode prefix of {cut} bytes parsed as {result:?}"
        );
    }
}

#[test]
fn surrogate_counterexamples_are_structured_errors() {
    // The counterexamples that broke the original decoder: lone
    // surrogate halves, swapped pairs, and a high half cut off from
    // its partner in every way.
    let cases = [
        r#"{"req":"characterize","id":"\ud800","profile":"test_small"}"#,
        r#"{"req":"characterize","id":"\udc00","profile":"test_small"}"#,
        r#"{"req":"characterize","id":"\ude00\ud83d","profile":"test_small"}"#,
        r#"{"req":"characterize","id":"\ud83dx","profile":"test_small"}"#,
        r#"{"req":"characterize","id":"\ud83d\n","profile":"test_small"}"#,
        r#"{"req":"characterize","id":"\ud83d\ud83d","profile":"test_small"}"#,
        r#"{"req":"characterize","id":"\ud83d"}"#,
        r#"{"req":"stats","id":"\ud83dA"}"#,
    ];
    for line in cases {
        let err = parse_request(line).expect_err(line);
        assert!(
            err.message.contains("surrogate"),
            "{line} gave {}",
            err.message
        );
    }
    // But a proper pair in any request type parses.
    assert!(parse_request(r#"{"req":"stats","id":"😀"}"#).is_ok());
}

#[test]
fn single_byte_mutations_never_panic() {
    let replacements: &[u8] = b"\0\x01 {}[]\",:xtrue9\\\x7f\xffudc";
    for line in [VALID, VALID_UNICODE] {
        let bytes = line.as_bytes();
        for pos in 0..bytes.len() {
            for &b in replacements {
                let mut mutated = bytes.to_vec();
                mutated[pos] = b;
                // Invalid UTF-8 mutations are the line reader's problem
                // (it answers an error before parsing); the parser only
                // ever sees strings.
                if let Ok(line) = std::str::from_utf8(&mutated) {
                    let _ = parse_request(line);
                }
            }
        }
    }
}

#[test]
fn random_garbage_lines_never_panic() {
    let mut rng = Rng(0x5ca1e);
    for _ in 0..2000 {
        let len = (rng.next() % 256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() % 128) as u8).collect();
        if let Ok(line) = std::str::from_utf8(&bytes) {
            let _ = parse_request(line);
        }
    }
    // Structured garbage: random splices of protocol vocabulary.
    let vocab = [
        "{",
        "}",
        "[",
        "]",
        ":",
        ",",
        "\"req\"",
        "\"characterize\"",
        "\"profile\"",
        "\"test_small\"",
        "\"seed\"",
        "42",
        "null",
        "true",
        "-1",
        "1e999",
        "\"",
        "\\",
    ];
    for _ in 0..2000 {
        let n = (rng.next() % 24) as usize;
        let line: String = (0..n)
            .map(|_| vocab[(rng.next() % vocab.len() as u64) as usize])
            .collect();
        let _ = parse_request(&line);
    }
}

#[test]
fn duplicate_fields_are_handled_without_panicking() {
    // The hand-rolled parser is last-wins on duplicate keys; the
    // decoder must stay total either way and the surviving value must
    // still be validated.
    let line = r#"{"req":"characterize","profile":"test_small","seed":1,"seed":2}"#;
    match parse_request(line) {
        Ok(Request::Characterize(c)) => assert_eq!(c.seed, 2, "last duplicate wins"),
        Ok(other) => panic!("unexpected variant {other:?}"),
        Err(e) => assert!(!e.message.is_empty()),
    }
    // A duplicate that flips the request type entirely.
    let line = r#"{"req":"stats","req":"shutdown"}"#;
    let parsed = parse_request(line);
    assert!(
        matches!(parsed, Ok(Request::Shutdown { .. }) | Err(_)),
        "{parsed:?}"
    );
    // A duplicate whose survivor is invalid must error.
    let line = r#"{"req":"characterize","profile":"test_small","profile":"nope"}"#;
    assert!(parse_request(line).is_err());
}

#[test]
fn deep_nesting_and_oversize_are_rejected_not_fatal() {
    // Deep nesting exercises the JSON parser's recursion guard.
    let mut deep = String::from(r#"{"req":"#);
    for _ in 0..500 {
        deep.push('[');
    }
    assert!(parse_request(&deep).is_err());

    let oversized = format!(
        r#"{{"req":"characterize","profile":"{}"}}"#,
        "x".repeat(MAX_REQUEST_BYTES + 1)
    );
    let err = parse_request(&oversized).unwrap_err();
    assert!(err.message.contains("exceeds"), "{}", err.message);

    // Exactly at the limit is still parsed (and rejected only because
    // the profile is unknown — the size gate itself does not fire).
    let frame = r#"{"req":"characterize","profile":""}"#;
    let pad = MAX_REQUEST_BYTES - frame.len();
    let at_limit = format!(
        r#"{{"req":"characterize","profile":"{}"}}"#,
        "y".repeat(pad)
    );
    assert_eq!(at_limit.len(), MAX_REQUEST_BYTES);
    let err = parse_request(&at_limit).unwrap_err();
    assert!(err.message.contains("unknown profile"), "{}", err.message);
}
