//! End-to-end daemon tests against the *real* characterization runner:
//! the same `test_small` job twice over one connection must run exactly
//! one simulation and answer miss-then-hit with identical dossier
//! digests, and a unix-socket daemon must share that cache across
//! connections.

use dramscope_service::profiles;
use dramscope_service::{handle_connection, CacheStatus, JobSpec, Service};
use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex};

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}")) + tag.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            match c {
                '"' => *in_str = !*in_str,
                ',' | '}' if !*in_str => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .expect("field end");
    &rest[..end]
}

#[test]
fn stdin_pipe_same_job_twice_is_miss_then_hit_with_equal_digests() {
    let input = "\
        {\"req\":\"characterize\",\"id\":\"a\",\"profile\":\"test_small\",\"seed\":7}\n\
        {\"req\":\"characterize\",\"id\":\"b\",\"profile\":\"test_small\",\"seed\":7}\n\
        {\"req\":\"stats\",\"id\":\"s\"}\n";
    let service = Service::new(1);
    let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
    handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
    let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "{lines:?}");

    assert_eq!(field(lines[0], "cache"), "\"miss\"");
    assert_eq!(field(lines[1], "cache"), "\"hit\"");
    let d0 = field(lines[0], "dossier_digest");
    let d1 = field(lines[1], "dossier_digest");
    assert_eq!(d0, d1, "cache hit serves the identical dossier");
    assert!(d0.starts_with("\"0x"), "{d0}");

    // One simulation for two responses, and the library agrees.
    assert_eq!(field(lines[2], "executions"), "1");
    assert_eq!(field(lines[2], "hits"), "1");
    let stats = service.stats();
    assert_eq!(stats.executions, 1);
    assert_eq!(stats.submitted, 2);

    // The served dossier digest matches an out-of-band library run of
    // the same spec (content addressing, not line memoization).
    let (profile, opts) = profiles::named_job("test_small").unwrap();
    let spec = JobSpec {
        profile_name: "test_small".into(),
        profile,
        seed: 7,
        opts,
        sharded: false,
    };
    let (output, status) = service.submit(&spec, None).unwrap();
    assert_eq!(
        status,
        CacheStatus::Hit,
        "library spec hits the daemon's entry"
    );
    assert_eq!(d0, format!("\"0x{:016x}\"", output.digest));
    service.shutdown();
}

#[test]
fn progress_events_stream_before_the_result() {
    let input = "{\"req\":\"characterize\",\"id\":\"p\",\"profile\":\"test_small\",\"seed\":3,\"progress\":true}\n";
    let service = Service::new(1);
    let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
    handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
    service.shutdown();
    let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    let progress: Vec<&str> = lines
        .iter()
        .filter(|l| l.contains("\"resp\":\"progress\""))
        .copied()
        .collect();
    assert!(
        progress.iter().any(|l| l.contains("phase:structure")),
        "{lines:?}"
    );
    assert!(
        lines.last().unwrap().contains("\"resp\":\"result\""),
        "result arrives after progress"
    );
    // Every progress marker is a phase/span label, never raw commands.
    for p in &progress {
        let marker = field(p, "marker");
        assert!(
            marker.starts_with("\"phase:") || marker.starts_with("\"span:"),
            "{marker}"
        );
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_shares_the_cache_across_connections() {
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("dramscoped-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let service = Arc::new(Service::new(1));
    let server = {
        let service = Arc::clone(&service);
        let path = path.clone();
        std::thread::spawn(move || dramscope_service::serve_unix(&service, &path))
    };
    // Wait for the listener to bind.
    let mut tries = 0;
    let connect = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(_) if tries < 200 => {
                tries += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("socket never came up: {e}"),
        }
    };

    let ask = |mut stream: UnixStream, req: &str| -> String {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        line
    };

    let first = ask(
        connect,
        "{\"req\":\"characterize\",\"id\":1,\"profile\":\"test_small\",\"seed\":11}",
    );
    assert_eq!(field(&first, "cache"), "\"miss\"", "{first}");

    let second = ask(
        UnixStream::connect(&path).unwrap(),
        "{\"req\":\"characterize\",\"id\":2,\"profile\":\"test_small\",\"seed\":11}",
    );
    assert_eq!(field(&second, "cache"), "\"hit\"", "{second}");
    assert_eq!(
        field(&first, "dossier_digest"),
        field(&second, "dossier_digest")
    );
    assert_eq!(service.stats().executions, 1);

    let ack = ask(
        UnixStream::connect(&path).unwrap(),
        "{\"req\":\"shutdown\"}",
    );
    assert!(ack.contains("\"drained\":true"), "{ack}");
    server.join().unwrap().expect("server exits cleanly");
    assert!(!path.exists(), "socket file cleaned up");
}
