//! Totality fuzz for the on-disk dossier cache loader: every byte-level
//! corruption of a persisted entry must decode to a structured error (or
//! a clean load), never a panic — the same discipline the trace
//! container's `container_totality` suite enforces for the binary
//! format. Plus the crash-recovery contract of the temp-file-then-
//! rename write protocol: a kill at any point leaves no partial
//! `0x<key>` entry behind.

use dram_telemetry::Registry;
use dramscope_service::cache::{
    decode_entry, encode_entry, key_file_name, persist_entry, probe_disk, DiskProbe, ENTRY_MAGIC,
};
use dramscope_service::{DossierKey, JobOutput};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dramscope_cache_totality_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn sample_output() -> JobOutput {
    JobOutput {
        label: "DDR4-testchip".into(),
        dossier: "## dossier\nrow 17: flips\nrow 44: \"quoted\"\tDEL:\u{7f}\u{1f600}\n".into(),
        digest: 0xdead_beef_cafe_f00d,
        composition: "open-bitline edge=2".into(),
        commands: 123_456,
        bitflips: 789,
        metrics: Registry::new(),
    }
}

fn sample_key() -> DossierKey {
    DossierKey {
        profile_digest: 0x0123_4567_89ab_cdef,
        seed: 42,
        geometry_digest: 0xfeed_face_0000_0001,
        options_digest: 0x7777_0000_1111_2222,
    }
}

#[test]
fn encode_decode_round_trips_exactly() {
    let out = sample_output();
    let bytes = encode_entry(&out);
    let decoded = decode_entry(&bytes).expect("round trip");
    assert_eq!(decoded.label, out.label);
    assert_eq!(decoded.dossier, out.dossier, "byte-identical dossier");
    assert_eq!(decoded.digest, out.digest);
    assert_eq!(decoded.composition, out.composition);
    assert_eq!(decoded.commands, out.commands);
    assert_eq!(decoded.bitflips, out.bitflips);
    // Encoding is deterministic: same output, same bytes.
    assert_eq!(bytes, encode_entry(&out));
}

#[test]
fn truncation_at_every_byte_is_a_structured_error() {
    let bytes = encode_entry(&sample_output());
    for cut in 0..bytes.len() {
        let err = decode_entry(&bytes[..cut]);
        assert!(
            err.is_err(),
            "prefix of {cut}/{} bytes decoded: {err:?}",
            bytes.len()
        );
    }
    // The full entry still decodes (the loop above proves no prefix
    // does, so the checksum line really is load-bearing to the end).
    assert!(decode_entry(&bytes).is_ok());
}

#[test]
fn single_byte_mutations_never_panic_and_never_corrupt_silently() {
    let bytes = encode_entry(&sample_output());
    let replacements: &[u8] = b"\0\x01 {}\",:x9\\\x7f\xffAn";
    for pos in 0..bytes.len() {
        for &b in replacements {
            if bytes[pos] == b {
                continue;
            }
            let mut mutated = bytes.clone();
            mutated[pos] = b;
            // Any mutation must either fail to decode or — only when
            // it touched the checksum's own hex digits in a way that
            // still matches, which FNV makes impossible for a single
            // byte — decode to the original. Silent payload corruption
            // is the one unacceptable outcome.
            if let Ok(decoded) = decode_entry(&mutated) {
                let original = decode_entry(&bytes).unwrap();
                assert_eq!(
                    decoded.dossier, original.dossier,
                    "mutation at byte {pos} to {b:#04x} silently changed the payload"
                );
            }
        }
    }
}

#[test]
fn bit_flips_across_the_payload_are_caught_by_the_checksum() {
    let bytes = encode_entry(&sample_output());
    // Flip each bit of a sample of payload positions; the checksum
    // line must reject every one of them.
    let payload_start = ENTRY_MAGIC.len() + 1;
    let payload_end = bytes.len() - 26; // "fnv1a:0x<16 hex>\n" trailer
    for pos in (payload_start..payload_end).step_by(7) {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            if mutated[pos] == b'\n' || bytes[pos] == b'\n' {
                // Adding/removing line structure changes which bytes
                // are checksummed; still must error, just differently.
                assert!(decode_entry(&mutated).is_err() || pos >= payload_end);
                continue;
            }
            let err = decode_entry(&mutated).expect_err("bit flip caught");
            assert!(!err.is_empty());
        }
    }
}

#[test]
fn alien_files_and_empty_files_salvage_cleanly() {
    let dir = temp_dir("alien");
    let key = sample_key();
    let path = dir.join(key_file_name(&key));
    for contents in [
        &b""[..],
        b"\n",
        b"DSSR1",
        b"DSSR1\n",
        b"DSSR1\n{}\n",
        b"DSSR0\nnot this version\nfnv1a:0x0\n",
        b"\xff\xfe binary garbage \x00\x01",
        b"{\"looks\":\"like json\"}\n",
    ] {
        std::fs::write(&path, contents).unwrap();
        match probe_disk(&dir, &key) {
            DiskProbe::Salvage(reason) => assert!(!reason.is_empty()),
            other => panic!("{contents:?} probed as {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_write_leaves_no_partial_entry() {
    // Simulate a crash at every byte of the temp-file write: the cache
    // directory must never contain a partial `0x<key>` file, because
    // the real name only ever appears via rename of a complete file.
    let dir = temp_dir("crash");
    let key = sample_key();
    let out = sample_output();
    let bytes = encode_entry(&out);
    let name = key_file_name(&key);
    for cut in 0..bytes.len() {
        // A crash after `cut` bytes means the tmp file holds a prefix
        // and the rename never happened.
        let tmp = dir.join(format!(".{name}.tmp"));
        std::fs::write(&tmp, &bytes[..cut]).unwrap();
        match probe_disk(&dir, &key) {
            DiskProbe::Absent => {}
            other => panic!("crash at byte {cut} visible as {other:?}"),
        }
        std::fs::remove_file(&tmp).unwrap();
    }
    // Recovery: a later successful persist simply lands the entry.
    persist_entry(&dir, &key, &out).expect("persisted");
    match probe_disk(&dir, &key) {
        DiskProbe::Loaded(loaded) => assert_eq!(loaded.dossier, out.dossier),
        other => panic!("expected load, got {other:?}"),
    }
    // And re-persisting over an existing entry is atomic replacement,
    // never truncate-in-place: the entry stays readable throughout.
    persist_entry(&dir, &key, &out).expect("re-persisted");
    assert!(matches!(probe_disk(&dir, &key), DiskProbe::Loaded(_)));
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(stray.is_empty(), "{stray:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_entries_are_refused_before_buffering() {
    let dir = temp_dir("oversize");
    let key = sample_key();
    let path = dir.join(key_file_name(&key));
    // A sparse-ish huge file of the right magic but absurd size. Write
    // via set_len to avoid materializing 16 MiB of real bytes.
    let file = std::fs::File::create(&path).unwrap();
    file.set_len(dramscope_service::cache::MAX_ENTRY_FILE_BYTES + 2)
        .unwrap();
    drop(file);
    match probe_disk(&dir, &key) {
        DiskProbe::Salvage(reason) => assert!(reason.contains("entry limit"), "{reason}"),
        other => panic!("expected salvage, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
