//! The characterization service: a job queue over [`FleetPool`] with
//! in-flight dedup and a content-addressed dossier cache.
//!
//! # Cache identity
//!
//! A job's identity is the quadruple
//! `(profile_digest, seed, geometry_digest, options_digest)` — every
//! input that can change a dossier byte, and nothing else. The profile
//! and geometry digests come from the stable FNV-1a identities in
//! `dram_sim::digest`; the options digest folds in the probe options
//! plus the sharded/serial flow choice (the two flows render different
//! dossier shapes, so they must not share cache entries). Two requests
//! with equal keys are guaranteed byte-identical dossiers, so the
//! second is served from cache without touching the pool.
//!
//! # In-flight dedup
//!
//! When an identical request arrives while the first is still running,
//! it does not enqueue a second simulation: it parks on the in-flight
//! entry's condvar and receives the same `Arc`'d output the moment the
//! runner finishes — one simulation, N responses.

use crate::protocol::CharacterizeRequest;
use dram_obs::{render_prometheus, EventBus, EventDraft};
use dram_sim::digest::fnv1a_64;
use dram_sim::{ChipProfile, CommandSink};
use dram_telemetry::{Key, Registry};
use dramscope_core::dossier::{characterize_instrumented, CharacterizeOptions};
use dramscope_core::shard::{characterize_sharded, ShardConfig};
use dramscope_core::{CoreError, FleetPool, PoolStats};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The content address of one characterization job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DossierKey {
    /// FNV-1a digest of the full device profile.
    pub profile_digest: u64,
    /// The run seed.
    pub seed: u64,
    /// FNV-1a digest of the derived bank geometry.
    pub geometry_digest: u64,
    /// FNV-1a digest of the probe options plus the flow choice.
    pub options_digest: u64,
}

/// A fully resolved job: everything the runner needs, everything the
/// cache key is derived from.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The profile name as requested (for response echoes; not part of
    /// the cache key — two names resolving to one profile share cache).
    pub profile_name: String,
    /// The resolved device profile.
    pub profile: ChipProfile,
    /// The run seed.
    pub seed: u64,
    /// The probe options.
    pub opts: CharacterizeOptions,
    /// Run the per-bank sharded flow instead of the serial one.
    pub sharded: bool,
}

impl JobSpec {
    /// Builds a spec from a validated request plus its resolved profile.
    pub fn new(req: &CharacterizeRequest, profile: ChipProfile) -> Self {
        JobSpec {
            profile_name: req.profile_name.clone(),
            profile,
            seed: req.seed,
            opts: req.opts,
            sharded: req.sharded,
        }
    }

    /// Derives the job's content address.
    pub fn key(&self) -> DossierKey {
        let o = self.opts;
        let rendered = format!(
            "scan_rows={} with_swizzle={} probe_range={:?} retention_wait_ps={} sharded={}",
            o.scan_rows,
            o.with_swizzle,
            o.probe_range,
            o.retention_wait.as_ps(),
            self.sharded
        );
        DossierKey {
            profile_digest: self.profile.digest(),
            seed: self.seed,
            geometry_digest: self.profile.bank_geometry().digest(),
            options_digest: fnv1a_64(rendered.as_bytes()),
        }
    }
}

/// The byte-stable output of one characterization job, as cached and
/// as rendered into result responses.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// The device's public label.
    pub label: String,
    /// The full rendered dossier text.
    pub dossier: String,
    /// FNV-1a digest of the dossier text.
    pub digest: u64,
    /// The subarray composition line (first bank's, for sharded runs).
    pub composition: String,
    /// Total DRAM commands the run issued.
    pub commands: u64,
    /// Total bitflips the run resolved.
    pub bitflips: u64,
    /// The run's telemetry registry (merged into the service registry
    /// on completion; kept here for tests and library callers).
    pub metrics: Registry,
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The job ran a fresh simulation.
    Miss,
    /// The dossier was served from the content-addressed cache.
    Hit,
    /// The request joined an identical in-flight job and shares its run.
    Coalesced,
}

impl CacheStatus {
    /// The wire rendering of the marker.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// A service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down; no new jobs are accepted.
    ShutDown,
    /// The characterization itself failed (including worker panics,
    /// which the pool isolates into [`CoreError::WorkerPanic`]).
    Job(CoreError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShutDown => write!(f, "service is shut down"),
            ServiceError::Job(e) => write!(f, "job failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted by [`Service::submit`].
    pub submitted: u64,
    /// Responses served from the dossier cache.
    pub hits: u64,
    /// Requests that ran a fresh simulation.
    pub misses: u64,
    /// Requests that joined an in-flight identical job.
    pub coalesced: u64,
    /// Simulations actually executed (== `misses`; kept separate so the
    /// dedup invariant `submitted == hits + misses + coalesced` and the
    /// execution count are independently observable).
    pub executions: u64,
    /// Jobs that finished with an error (errors are never cached).
    pub errors: u64,
    /// Jobs currently running.
    pub in_flight: u64,
    /// Entries in the dossier cache.
    pub cache_entries: u64,
}

/// The signature jobs run under: a job spec plus an optional command
/// sink for live progress markers, to a job output.
pub type RunnerFn = dyn Fn(&JobSpec, Option<Box<dyn CommandSink + Send>>) -> Result<JobOutput, CoreError>
    + Send
    + Sync;

/// One in-flight job: late arrivals park on `ready` until the runner
/// publishes into `slot`.
struct InFlight {
    slot: Mutex<Option<Result<Arc<JobOutput>, CoreError>>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<JobOutput>, CoreError>) {
        *self.slot.lock().expect("in-flight slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<JobOutput>, CoreError> {
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).expect("in-flight slot poisoned");
        }
    }
}

impl fmt::Debug for InFlight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InFlight").finish_non_exhaustive()
    }
}

#[derive(Default)]
struct Inner {
    cache: BTreeMap<DossierKey, Arc<JobOutput>>,
    in_flight: BTreeMap<DossierKey, Arc<InFlight>>,
    stats: ServiceStats,
    telemetry: Registry,
    /// The pool's final counter snapshot, captured at shutdown so
    /// backlog gauges stay readable after the pool is gone.
    final_pool: Option<PoolStats>,
}

/// The characterization service.
///
/// Wraps a persistent [`FleetPool`] with the dossier cache and the
/// in-flight table. `&Service` is the whole API — it is `Sync`, so the
/// daemon shares one instance across connection threads via `Arc`.
pub struct Service {
    pool: Mutex<Option<FleetPool>>,
    runner: Arc<RunnerFn>,
    inner: Mutex<Inner>,
    events: EventBus,
    /// Directory `query` requests evaluate over; unset answers them
    /// with an error instead of guessing a path.
    trace_dir: Mutex<Option<std::path::PathBuf>>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service").finish_non_exhaustive()
    }
}

/// The default runner: the real characterization flows.
///
/// Serial jobs go through [`characterize_instrumented`] and honor the
/// progress sink. Sharded jobs fan out per bank inside
/// [`characterize_sharded`]'s own scoped pool — the per-bank chips are
/// built worker-side, so a single progress sink cannot observe them;
/// sharded runs simply emit no progress events.
fn real_runner(
    spec: &JobSpec,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<JobOutput, CoreError> {
    if spec.sharded {
        let report =
            characterize_sharded(&spec.profile, spec.seed, spec.opts, ShardConfig::default());
        let dossier = report.dossier()?;
        let text = dossier.to_string();
        Ok(JobOutput {
            label: dossier.label.clone(),
            digest: dossier.digest(),
            composition: dossier
                .banks
                .first()
                .map(|(_, d)| d.composition.clone())
                .unwrap_or_default(),
            dossier: text,
            commands: report.results.iter().map(|r| r.stats.commands()).sum(),
            bitflips: report.results.iter().map(|r| r.stats.bitflips()).sum(),
            metrics: report.merged_metrics(),
        })
    } else {
        let (dossier, stats, metrics) =
            characterize_instrumented(&spec.profile, spec.seed, spec.opts, sink)?;
        Ok(JobOutput {
            label: dossier.label.clone(),
            digest: dossier.digest(),
            composition: dossier.composition.clone(),
            dossier: dossier.to_string(),
            commands: stats.commands(),
            bitflips: stats.bitflips(),
            metrics,
        })
    }
}

impl Service {
    /// Builds a service over a fresh [`FleetPool`] with `workers`
    /// threads (`0` = the machine's available parallelism) and the real
    /// characterization runner.
    pub fn new(workers: usize) -> Self {
        Service::with_runner(workers, Arc::new(real_runner))
    }

    /// [`new`](Self::new) over a caller-supplied [`EventBus`] — the
    /// daemon uses this to attach an on-disk journal before serving.
    pub fn with_events(workers: usize, events: EventBus) -> Self {
        Service::with_runner_and_events(workers, Arc::new(real_runner), events)
    }

    /// Builds a service with an injected runner — tests use this to
    /// count how many simulations actually execute.
    pub fn with_runner(workers: usize, runner: Arc<RunnerFn>) -> Self {
        Service::with_runner_and_events(workers, runner, EventBus::default())
    }

    /// The fully general constructor: injected runner and event bus.
    /// The pool shares the bus, so job lifecycle events interleave with
    /// the service's cache events on one sequence.
    pub fn with_runner_and_events(workers: usize, runner: Arc<RunnerFn>, events: EventBus) -> Self {
        Service {
            pool: Mutex::new(Some(FleetPool::with_events(workers, events.clone()))),
            runner,
            inner: Mutex::new(Inner::default()),
            events,
            trace_dir: Mutex::new(None),
        }
    }

    /// Points `query` requests at a trace directory (or a single trace
    /// file). Unset, the daemon answers queries with an error.
    pub fn set_trace_dir(&self, path: impl Into<std::path::PathBuf>) {
        *self.trace_dir.lock().expect("trace dir poisoned") = Some(path.into());
    }

    /// The configured query directory, if any.
    pub fn trace_dir(&self) -> Option<std::path::PathBuf> {
        self.trace_dir.lock().expect("trace dir poisoned").clone()
    }

    /// The service's event bus: every cache decision, job lifecycle
    /// transition, and drain lands here.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Submits a job, blocking until its output is available.
    ///
    /// Equal-keyed submissions are memoized: the first runs a
    /// simulation on the pool ([`CacheStatus::Miss`]), identical
    /// requests arriving while it runs park and share its output
    /// ([`CacheStatus::Coalesced`]), and later ones are served from the
    /// cache ([`CacheStatus::Hit`]). Errors are never cached — a retry
    /// after a failure runs fresh.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShutDown`] after [`Service::shutdown`];
    /// [`ServiceError::Job`] when the characterization fails (worker
    /// panics arrive as `CoreError::WorkerPanic` — the pool isolates
    /// them, the daemon survives).
    pub fn submit(
        &self,
        spec: &JobSpec,
        sink: Option<Box<dyn CommandSink + Send>>,
    ) -> Result<(Arc<JobOutput>, CacheStatus), ServiceError> {
        self.submit_traced(spec, sink, None)
    }

    /// [`submit`](Self::submit) with a caller-supplied job correlation
    /// id: cache decision events and the pool's lifecycle events all
    /// carry it, so a journal can be filtered down to one request. When
    /// `job_id` is `None` the profile name stands in.
    pub fn submit_traced(
        &self,
        spec: &JobSpec,
        sink: Option<Box<dyn CommandSink + Send>>,
        job_id: Option<&str>,
    ) -> Result<(Arc<JobOutput>, CacheStatus), ServiceError> {
        let key = spec.key();
        let label = job_id.unwrap_or(&spec.profile_name).to_string();
        let cache_event = |kind: &str| {
            EventDraft::info(kind)
                .job(&label)
                .field_str("profile", &spec.profile_name)
                .field_u64("seed", spec.seed)
                .field_bool("sharded", spec.sharded)
        };
        let flight = {
            let mut inner = self.inner.lock().expect("service state poisoned");
            inner.stats.submitted += 1;
            if let Some(cached) = inner.cache.get(&key).map(Arc::clone) {
                inner.stats.hits += 1;
                drop(inner);
                self.events.emit(cache_event("cache.hit"));
                return Ok((cached, CacheStatus::Hit));
            }
            if let Some(flight) = inner.in_flight.get(&key).map(Arc::clone) {
                inner.stats.coalesced += 1;
                drop(inner);
                self.events.emit(cache_event("cache.coalesced"));
                // Park outside the service lock: other keys keep flowing.
                return match flight.wait() {
                    Ok(output) => Ok((output, CacheStatus::Coalesced)),
                    Err(e) => Err(ServiceError::Job(e)),
                };
            }
            inner.stats.misses += 1;
            inner.stats.executions += 1;
            inner.stats.in_flight += 1;
            let flight = Arc::new(InFlight::new());
            inner.in_flight.insert(key, Arc::clone(&flight));
            flight
        };
        // Emitted before the pool's `job.queued` so a tail reads the
        // cache decision, then the lifecycle it caused.
        self.events.emit(cache_event("cache.miss"));

        let result = self.run_on_pool(spec, sink, &label);

        let result = {
            let mut inner = self.inner.lock().expect("service state poisoned");
            inner.in_flight.remove(&key);
            inner.stats.in_flight -= 1;
            match result {
                Ok(output) => {
                    let output = Arc::new(output);
                    inner.telemetry.merge(&output.metrics);
                    inner.cache.insert(key, Arc::clone(&output));
                    inner.stats.cache_entries = inner.cache.len() as u64;
                    Ok(output)
                }
                Err(e) => {
                    inner.stats.errors += 1;
                    Err(e)
                }
            }
        };
        if let Err(e) = &result {
            self.events.emit(
                EventDraft::warn("job.error")
                    .job(&label)
                    .field_str("message", &e.to_string()),
            );
        }
        flight.complete(result.clone());
        match result {
            Ok(output) => Ok((output, CacheStatus::Miss)),
            Err(e) => Err(ServiceError::Job(e)),
        }
    }

    /// Ships the job to the pool and joins its handle. A missing pool
    /// (post-shutdown) surfaces as a `WorkerPanic`-free `CoreError` so
    /// in-flight waiters get a clean error, not a hang.
    fn run_on_pool(
        &self,
        spec: &JobSpec,
        sink: Option<Box<dyn CommandSink + Send>>,
        label: &str,
    ) -> Result<JobOutput, CoreError> {
        let handle = {
            let pool = self.pool.lock().expect("pool handle poisoned");
            let Some(pool) = pool.as_ref() else {
                return Err(CoreError::from("service is shut down".to_string()));
            };
            let runner = Arc::clone(&self.runner);
            let spec = spec.clone();
            pool.submit_labeled(label, move || runner(&spec, sink))
        };
        handle.join()?
    }

    /// Looks up the cache without submitting; does not touch counters.
    pub fn peek(&self, key: &DossierKey) -> Option<Arc<JobOutput>> {
        let inner = self.inner.lock().expect("service state poisoned");
        inner.cache.get(key).cloned()
    }

    /// Snapshots the live counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.lock().expect("service state poisoned").stats
    }

    /// Snapshots the pool's job counters and backlog gauges; after
    /// shutdown the final (fully drained) snapshot keeps being served.
    pub fn pool_stats(&self) -> PoolStats {
        let pool = self.pool.lock().expect("pool handle poisoned");
        if let Some(pool) = pool.as_ref() {
            return pool.stats();
        }
        drop(pool);
        self.inner
            .lock()
            .expect("service state poisoned")
            .final_pool
            .unwrap_or_default()
    }

    /// Renders the merged telemetry registry plus the service and pool
    /// counters in Prometheus text exposition format. Byte-stable for a
    /// given service state — nothing here consults a clock.
    pub fn metrics_prometheus(&self) -> String {
        let mut reg = self.telemetry();
        let s = self.stats();
        let p = self.pool_stats();
        reg.inc(Key::name("dramscoped_submitted_total"), s.submitted);
        reg.inc(Key::name("dramscoped_cache_hits_total"), s.hits);
        reg.inc(Key::name("dramscoped_cache_misses_total"), s.misses);
        reg.inc(Key::name("dramscoped_cache_coalesced_total"), s.coalesced);
        reg.inc(Key::name("dramscoped_executions_total"), s.executions);
        reg.inc(Key::name("dramscoped_errors_total"), s.errors);
        reg.inc(Key::name("dramscoped_jobs_panicked_total"), p.jobs_panicked);
        reg.set_gauge(Key::name("dramscoped_in_flight"), s.in_flight as i64);
        reg.set_gauge(
            Key::name("dramscoped_cache_entries"),
            s.cache_entries as i64,
        );
        reg.set_gauge(Key::name("dramscoped_queue_depth"), p.queue_depth() as i64);
        reg.set_gauge(
            Key::name("dramscoped_jobs_running"),
            p.jobs_running() as i64,
        );
        reg.set_gauge(
            Key::name("dramscoped_uptime_jobs_completed"),
            p.jobs_completed as i64,
        );
        render_prometheus(&reg)
    }

    /// Clones the merged telemetry registry of every completed job.
    pub fn telemetry(&self) -> Registry {
        self.inner
            .lock()
            .expect("service state poisoned")
            .telemetry
            .clone()
    }

    /// Drains the pool deterministically: queued jobs run to
    /// completion, workers join, and later submissions fail with
    /// [`ServiceError::ShutDown`]. Idempotent.
    pub fn shutdown(&self) {
        let pool = self.pool.lock().expect("pool handle poisoned").take();
        if let Some(pool) = pool {
            let final_stats = pool.shutdown_stats();
            self.inner
                .lock()
                .expect("service state poisoned")
                .final_pool = Some(final_stats);
            self.events.emit(
                EventDraft::info("service.drained")
                    .field_u64("jobs_completed", final_stats.jobs_completed)
                    .field_u64("jobs_panicked", final_stats.jobs_panicked),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    fn spec(name: &str, seed: u64) -> JobSpec {
        let (profile, opts) = profiles::named_job(name).expect("known name");
        JobSpec {
            profile_name: name.to_string(),
            profile,
            seed,
            opts,
            sharded: false,
        }
    }

    /// A runner that counts executions and fabricates a deterministic
    /// output from the spec, no simulation.
    fn counting_service(counter: Arc<AtomicU64>) -> Service {
        Service::with_runner(
            2,
            Arc::new(move |spec: &JobSpec, _sink| {
                counter.fetch_add(1, Ordering::SeqCst);
                let text = format!("dossier for {} seed {}", spec.profile_name, spec.seed);
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: fnv1a_64(text.as_bytes()),
                    composition: "test".into(),
                    dossier: text,
                    commands: 1,
                    bitflips: 0,
                    metrics: Registry::new(),
                })
            }),
        )
    }

    #[test]
    fn keys_separate_every_input_dimension() {
        let base = spec("test_small", 1);
        let mut other_seed = base.clone();
        other_seed.seed = 2;
        let mut other_opts = base.clone();
        other_opts.opts.scan_rows += 1;
        let mut other_flow = base.clone();
        other_flow.sharded = true;
        let other_profile = spec("test_small_interleaved", 1);
        let keys = [
            base.key(),
            other_seed.key(),
            other_opts.key(),
            other_flow.key(),
            other_profile.key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Identity is content-addressed: a rebuilt spec agrees.
        assert_eq!(base.key(), spec("test_small", 1).key());
    }

    #[test]
    fn second_identical_submit_is_a_cache_hit() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 42);
        let (first, s1) = svc.submit(&job, None).unwrap();
        let (second, s2) = svc.submit(&job, None).unwrap();
        assert_eq!(s1, CacheStatus::Miss);
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(first.digest, second.digest);
        assert!(Arc::ptr_eq(&first, &second), "hit serves the cached Arc");
        let stats = svc.stats();
        assert_eq!((stats.hits, stats.misses, stats.executions), (1, 1, 1));
        assert_eq!(stats.cache_entries, 1);
    }

    #[test]
    fn concurrent_identical_submits_coalesce_to_one_execution() {
        let count = Arc::new(AtomicU64::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let runner_gate = Arc::clone(&gate);
        let runner_count = Arc::clone(&count);
        // A runner that blocks until released, so the second submit is
        // guaranteed to arrive while the first is still in flight.
        let svc = Arc::new(Service::with_runner(
            2,
            Arc::new(move |spec: &JobSpec, _sink| {
                runner_count.fetch_add(1, Ordering::SeqCst);
                let (lock, cv) = &*runner_gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: 0xd05,
                    composition: String::new(),
                    dossier: "d".into(),
                    commands: 0,
                    bitflips: 0,
                    metrics: Registry::new(),
                })
            }),
        ));
        let job = spec("test_small", 9);
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let job = job.clone();
                thread::spawn(move || svc.submit(&job, None).unwrap())
            })
            .collect();
        // Wait until one execution has started, then until the other
        // submission has parked on the in-flight entry.
        while count.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        while svc.stats().coalesced == 0 {
            thread::yield_now();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let mut statuses: Vec<CacheStatus> =
            threads.into_iter().map(|t| t.join().unwrap().1).collect();
        statuses.sort_by_key(|s| s.as_str());
        assert_eq!(statuses, [CacheStatus::Coalesced, CacheStatus::Miss]);
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "one simulation, two responses"
        );
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn errors_are_not_cached_and_retry_runs_fresh() {
        let count = Arc::new(AtomicU64::new(0));
        let fail_count = Arc::clone(&count);
        let svc = Service::with_runner(
            1,
            Arc::new(move |_spec: &JobSpec, _sink| {
                let n = fail_count.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    Err(CoreError::from("flaky".to_string()))
                } else {
                    Ok(JobOutput {
                        label: "ok".into(),
                        digest: 1,
                        composition: String::new(),
                        dossier: "ok".into(),
                        commands: 0,
                        bitflips: 0,
                        metrics: Registry::new(),
                    })
                }
            }),
        );
        let job = spec("test_small", 3);
        let err = svc.submit(&job, None).unwrap_err();
        assert!(matches!(err, ServiceError::Job(_)));
        let (_, status) = svc.submit(&job, None).unwrap();
        assert_eq!(status, CacheStatus::Miss, "failure was not memoized");
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(svc.stats().errors, 1);
    }

    #[test]
    fn worker_panics_are_isolated_as_job_errors() {
        let svc = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| panic!("runner exploded")),
        );
        let job = spec("test_small", 4);
        match svc.submit(&job, None) {
            Err(ServiceError::Job(CoreError::WorkerPanic(msg))) => {
                assert!(msg.contains("runner exploded"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The pool survives; a healthy retry path still errors (same
        // runner) but the service itself keeps accepting work.
        assert!(svc.submit(&job, None).is_err());
        assert_eq!(svc.stats().errors, 2);
    }

    #[test]
    fn cache_decisions_emit_correlated_events() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 42);
        svc.submit_traced(&job, None, Some("req-1")).unwrap();
        svc.submit_traced(&job, None, Some("req-2")).unwrap();
        let events = svc.events().since(0, 0).events;
        let trace: Vec<(String, String)> = events
            .iter()
            .map(|e| (e.kind.clone(), e.job_id.clone().unwrap_or_default()))
            .collect();
        let expect: Vec<(String, String)> = [
            ("cache.miss", "req-1"),
            ("job.queued", "req-1"),
            ("job.started", "req-1"),
            ("job.finished", "req-1"),
            ("cache.hit", "req-2"),
        ]
        .iter()
        .map(|(k, j)| (k.to_string(), j.to_string()))
        .collect();
        assert_eq!(trace, expect);
        // Cache events carry the request's identity fields.
        assert_eq!(events[0].fields["profile"].as_str(), Some("test_small"));
        assert_eq!(events[0].fields["seed"].as_u64(), Some(42));
        // Sequence numbers are strictly monotonic.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn job_errors_emit_a_warn_event() {
        let svc = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| Err(CoreError::from("boom".to_string()))),
        );
        let job = spec("test_small", 3);
        svc.submit_traced(&job, None, Some("bad")).unwrap_err();
        let events = svc.events().since(0, 0).events;
        let err = events
            .iter()
            .find(|e| e.kind == "job.error")
            .expect("job.error emitted");
        assert_eq!(err.job_id.as_deref(), Some("bad"));
        assert!(err.fields["message"].as_str().unwrap().contains("boom"));
    }

    #[test]
    fn prometheus_metrics_carry_service_and_pool_gauges() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 7);
        svc.submit(&job, None).unwrap();
        svc.submit(&job, None).unwrap();
        let text = svc.metrics_prometheus();
        assert!(text.contains("dramscoped_submitted_total 2"), "{text}");
        assert!(text.contains("dramscoped_cache_hits_total 1"), "{text}");
        assert!(text.contains("dramscoped_cache_misses_total 1"), "{text}");
        assert!(
            text.contains("dramscoped_uptime_jobs_completed 1"),
            "{text}"
        );
        assert!(text.contains("dramscoped_queue_depth 0"), "{text}");
        // Byte-stable: the same state renders the same exposition.
        assert_eq!(svc.metrics_prometheus(), text);
        // The final pool snapshot survives shutdown.
        svc.shutdown();
        assert_eq!(svc.pool_stats().jobs_completed, 1);
        assert!(svc
            .events()
            .since(0, 0)
            .events
            .iter()
            .any(|e| e.kind == "service.drained"));
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 5);
        svc.submit(&job, None).unwrap();
        svc.shutdown();
        svc.shutdown();
        // The same key is still served from cache after shutdown...
        let (_, status) = svc.submit(&job, None).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        // ...but a fresh key needs the pool, which is gone.
        let fresh = spec("test_small", 6);
        match svc.submit(&fresh, None) {
            Err(ServiceError::Job(e)) => {
                assert!(e.to_string().contains("shut down"), "{e}");
            }
            other => panic!("expected shutdown error, got {other:?}"),
        }
        assert!(svc.peek(&fresh.key()).is_none(), "failed submit not cached");
    }
}
