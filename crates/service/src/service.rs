//! The characterization service: a job queue over [`FleetPool`] with
//! in-flight dedup and a content-addressed dossier cache.
//!
//! # Cache identity
//!
//! A job's identity is the quadruple
//! `(profile_digest, seed, geometry_digest, options_digest)` — every
//! input that can change a dossier byte, and nothing else. The profile
//! and geometry digests come from the stable FNV-1a identities in
//! `dram_sim::digest`; the options digest folds in the probe options
//! plus the sharded/serial flow choice (the two flows render different
//! dossier shapes, so they must not share cache entries). Two requests
//! with equal keys are guaranteed byte-identical dossiers, so the
//! second is served from cache without touching the pool.
//!
//! # In-flight dedup
//!
//! When an identical request arrives while the first is still running,
//! it does not enqueue a second simulation: it parks on the in-flight
//! entry's condvar and receives the same `Arc`'d output the moment the
//! runner finishes — one simulation, N responses.

use crate::cache::{self, CacheLimits, DiskProbe, DossierStore, Evicted};
use crate::protocol::CharacterizeRequest;
use dram_obs::{render_prometheus, EventBus, EventDraft};
use dram_sim::digest::fnv1a_64;
use dram_sim::{ChipProfile, CommandSink};
use dram_telemetry::{Key, Registry};
use dramscope_core::dossier::{characterize_instrumented, CharacterizeOptions};
use dramscope_core::shard::{characterize_sharded, ShardConfig};
use dramscope_core::{CoreError, FleetPool, PoolStats};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// The content address of one characterization job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DossierKey {
    /// FNV-1a digest of the full device profile.
    pub profile_digest: u64,
    /// The run seed.
    pub seed: u64,
    /// FNV-1a digest of the derived bank geometry.
    pub geometry_digest: u64,
    /// FNV-1a digest of the probe options plus the flow choice.
    pub options_digest: u64,
}

/// A fully resolved job: everything the runner needs, everything the
/// cache key is derived from.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The profile name as requested (for response echoes; not part of
    /// the cache key — two names resolving to one profile share cache).
    pub profile_name: String,
    /// The resolved device profile.
    pub profile: ChipProfile,
    /// The run seed.
    pub seed: u64,
    /// The probe options.
    pub opts: CharacterizeOptions,
    /// Run the per-bank sharded flow instead of the serial one.
    pub sharded: bool,
}

impl JobSpec {
    /// Builds a spec from a validated request plus its resolved profile.
    pub fn new(req: &CharacterizeRequest, profile: ChipProfile) -> Self {
        JobSpec {
            profile_name: req.profile_name.clone(),
            profile,
            seed: req.seed,
            opts: req.opts,
            sharded: req.sharded,
        }
    }

    /// Derives the job's content address.
    pub fn key(&self) -> DossierKey {
        let o = self.opts;
        let rendered = format!(
            "scan_rows={} with_swizzle={} probe_range={:?} retention_wait_ps={} sharded={}",
            o.scan_rows,
            o.with_swizzle,
            o.probe_range,
            o.retention_wait.as_ps(),
            self.sharded
        );
        DossierKey {
            profile_digest: self.profile.digest(),
            seed: self.seed,
            geometry_digest: self.profile.bank_geometry().digest(),
            options_digest: fnv1a_64(rendered.as_bytes()),
        }
    }
}

/// The byte-stable output of one characterization job, as cached and
/// as rendered into result responses.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// The device's public label.
    pub label: String,
    /// The full rendered dossier text.
    pub dossier: String,
    /// FNV-1a digest of the dossier text.
    pub digest: u64,
    /// The subarray composition line (first bank's, for sharded runs).
    pub composition: String,
    /// Total DRAM commands the run issued.
    pub commands: u64,
    /// Total bitflips the run resolved.
    pub bitflips: u64,
    /// The run's telemetry registry (merged into the service registry
    /// on completion; kept here for tests and library callers).
    pub metrics: Registry,
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// The job ran a fresh simulation.
    Miss,
    /// The dossier was served from the content-addressed cache.
    Hit,
    /// The request joined an identical in-flight job and shares its run.
    Coalesced,
}

impl CacheStatus {
    /// The wire rendering of the marker.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// A service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been shut down; no new jobs are accepted.
    ShutDown,
    /// The characterization itself failed (including worker panics,
    /// which the pool isolates into [`CoreError::WorkerPanic`]).
    Job(CoreError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShutDown => write!(f, "service is shut down"),
            ServiceError::Job(e) => write!(f, "job failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted by [`Service::submit`].
    pub submitted: u64,
    /// Responses served from the dossier cache.
    pub hits: u64,
    /// Requests that ran a fresh simulation.
    pub misses: u64,
    /// Requests that joined an in-flight identical job.
    pub coalesced: u64,
    /// Simulations actually executed (== `misses`; kept separate so the
    /// dedup invariant `submitted == hits + misses + coalesced` and the
    /// execution count are independently observable).
    pub executions: u64,
    /// Jobs that finished with an error (errors are never cached).
    pub errors: u64,
    /// Jobs currently running.
    pub in_flight: u64,
    /// Entries resident in the in-memory dossier cache.
    pub cache_entries: u64,
    /// Payload bytes resident in the in-memory dossier cache.
    pub cache_bytes: u64,
    /// Memory-tier entries evicted to honor the capacity bounds.
    pub evictions: u64,
    /// Cache hits served by lazily loading a persisted on-disk entry
    /// (a subset of `hits`).
    pub disk_hits: u64,
    /// On-disk entries that existed but failed to decode (corrupt or
    /// truncated files treated as misses and later rewritten).
    pub salvaged: u64,
}

/// The signature jobs run under: a job spec plus an optional command
/// sink for live progress markers, to a job output.
pub type RunnerFn = dyn Fn(&JobSpec, Option<Box<dyn CommandSink + Send>>) -> Result<JobOutput, CoreError>
    + Send
    + Sync;

/// One in-flight job: late arrivals park on `ready` until the runner
/// publishes into `slot`.
struct InFlight {
    slot: Mutex<Option<Result<Arc<JobOutput>, CoreError>>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the result and wakes every parked waiter. The slot
    /// mutex is recovered from poisoning (`PoisonError::into_inner`)
    /// rather than propagated: a panic on some other thread while it
    /// held this lock must not cascade into killing the waiters too —
    /// the slot's `Option` is valid either way.
    fn complete(&self, result: Result<Arc<JobOutput>, CoreError>) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.ready.notify_all();
    }

    /// Parks until [`complete`](Self::complete) publishes, recovering
    /// from a poisoned slot the same way.
    fn wait(&self) -> Result<Arc<JobOutput>, CoreError> {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl fmt::Debug for InFlight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InFlight").finish_non_exhaustive()
    }
}

#[derive(Default)]
struct Inner {
    cache: DossierStore,
    in_flight: BTreeMap<DossierKey, Arc<InFlight>>,
    stats: ServiceStats,
    telemetry: Registry,
    /// The pool's final counter snapshot, captured at shutdown so
    /// backlog gauges stay readable after the pool is gone.
    final_pool: Option<PoolStats>,
}

impl Inner {
    /// Records a batch of evictions in the counters; the caller emits
    /// the matching `cache.evict` events after releasing the lock.
    fn account_evictions(&mut self, evicted: &[Evicted]) {
        self.stats.evictions += evicted.len() as u64;
        self.stats.cache_entries = self.cache.len();
        self.stats.cache_bytes = self.cache.bytes();
    }
}

/// The characterization service.
///
/// Wraps a persistent [`FleetPool`] with the dossier cache and the
/// in-flight table. `&Service` is the whole API — it is `Sync`, so the
/// daemon shares one instance across connection threads via `Arc`.
pub struct Service {
    pool: Mutex<Option<FleetPool>>,
    runner: Arc<RunnerFn>,
    inner: Mutex<Inner>,
    events: EventBus,
    /// Directory `query` requests evaluate over; unset answers them
    /// with an error instead of guessing a path.
    trace_dir: Mutex<Option<std::path::PathBuf>>,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service").finish_non_exhaustive()
    }
}

/// The default runner: the real characterization flows.
///
/// Serial jobs go through [`characterize_instrumented`] and honor the
/// progress sink. Sharded jobs fan out per bank inside
/// [`characterize_sharded`]'s own scoped pool — the per-bank chips are
/// built worker-side, so a single progress sink cannot observe them;
/// sharded runs simply emit no progress events.
fn real_runner(
    spec: &JobSpec,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<JobOutput, CoreError> {
    if spec.sharded {
        let report =
            characterize_sharded(&spec.profile, spec.seed, spec.opts, ShardConfig::default());
        let dossier = report.dossier()?;
        let text = dossier.to_string();
        Ok(JobOutput {
            label: dossier.label.clone(),
            digest: dossier.digest(),
            composition: dossier
                .banks
                .first()
                .map(|(_, d)| d.composition.clone())
                .unwrap_or_default(),
            dossier: text,
            commands: report.results.iter().map(|r| r.stats.commands()).sum(),
            bitflips: report.results.iter().map(|r| r.stats.bitflips()).sum(),
            metrics: report.merged_metrics(),
        })
    } else {
        let (dossier, stats, metrics) =
            characterize_instrumented(&spec.profile, spec.seed, spec.opts, sink)?;
        Ok(JobOutput {
            label: dossier.label.clone(),
            digest: dossier.digest(),
            composition: dossier.composition.clone(),
            dossier: dossier.to_string(),
            commands: stats.commands(),
            bitflips: stats.bitflips(),
            metrics,
        })
    }
}

impl Service {
    /// Builds a service over a fresh [`FleetPool`] with `workers`
    /// threads (`0` = the machine's available parallelism) and the real
    /// characterization runner.
    pub fn new(workers: usize) -> Self {
        Service::with_runner(workers, Arc::new(real_runner))
    }

    /// [`new`](Self::new) over a caller-supplied [`EventBus`] — the
    /// daemon uses this to attach an on-disk journal before serving.
    pub fn with_events(workers: usize, events: EventBus) -> Self {
        Service::with_runner_and_events(workers, Arc::new(real_runner), events)
    }

    /// Builds a service with an injected runner — tests use this to
    /// count how many simulations actually execute.
    pub fn with_runner(workers: usize, runner: Arc<RunnerFn>) -> Self {
        Service::with_runner_and_events(workers, runner, EventBus::default())
    }

    /// The fully general constructor: injected runner and event bus.
    /// The pool shares the bus, so job lifecycle events interleave with
    /// the service's cache events on one sequence.
    pub fn with_runner_and_events(workers: usize, runner: Arc<RunnerFn>, events: EventBus) -> Self {
        Service {
            pool: Mutex::new(Some(FleetPool::with_events(workers, events.clone()))),
            runner,
            inner: Mutex::new(Inner::default()),
            events,
            trace_dir: Mutex::new(None),
        }
    }

    /// Locks the service state, recovering from poisoning: every
    /// mutation under this lock leaves the maps and counters valid at
    /// every step, so a panic on another thread while it held the lock
    /// records a poisoned flag and nothing worse — one crashed request
    /// must not take the whole daemon's state hostage.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Points `query` requests at a trace directory (or a single trace
    /// file). Unset, the daemon answers queries with an error.
    pub fn set_trace_dir(&self, path: impl Into<std::path::PathBuf>) {
        *self
            .trace_dir
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(path.into());
    }

    /// The configured query directory, if any.
    pub fn trace_dir(&self) -> Option<std::path::PathBuf> {
        self.trace_dir
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Points the dossier cache's persistence tier at `dir`, creating
    /// the directory if needed. Completed jobs are written there as
    /// `0x<key>` files (temp-file-then-rename) and later requests —
    /// including after a restart — load them lazily instead of
    /// re-simulating.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn set_cache_dir(&self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.lock_inner().cache.set_dir(dir);
        Ok(())
    }

    /// Bounds the in-memory cache tier (`0` = unbounded), evicting
    /// immediately if the store is already over the new limits.
    /// Eviction is a deterministic LRU on the hit sequence; evicted
    /// entries count in [`ServiceStats::evictions`] and are narrated
    /// as `cache.evict` events. Disk entries are unaffected.
    pub fn set_cache_limits(&self, max_entries: u64, max_bytes: u64) {
        let evicted = {
            let mut inner = self.lock_inner();
            let evicted = inner.cache.set_limits(CacheLimits {
                max_entries,
                max_bytes,
            });
            inner.account_evictions(&evicted);
            evicted
        };
        self.emit_evictions(&evicted);
    }

    /// Narrates a batch of evictions on the event bus.
    fn emit_evictions(&self, evicted: &[Evicted]) {
        for e in evicted {
            self.events.emit(
                EventDraft::info("cache.evict")
                    .field_str("key", &cache::key_file_name(&e.key))
                    .field_u64("bytes", e.bytes),
            );
        }
    }

    /// The service's event bus: every cache decision, job lifecycle
    /// transition, and drain lands here.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Submits a job, blocking until its output is available.
    ///
    /// Equal-keyed submissions are memoized: the first runs a
    /// simulation on the pool ([`CacheStatus::Miss`]), identical
    /// requests arriving while it runs park and share its output
    /// ([`CacheStatus::Coalesced`]), and later ones are served from the
    /// cache ([`CacheStatus::Hit`]). Errors are never cached — a retry
    /// after a failure runs fresh.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShutDown`] after [`Service::shutdown`];
    /// [`ServiceError::Job`] when the characterization fails (worker
    /// panics arrive as `CoreError::WorkerPanic` — the pool isolates
    /// them, the daemon survives).
    pub fn submit(
        &self,
        spec: &JobSpec,
        sink: Option<Box<dyn CommandSink + Send>>,
    ) -> Result<(Arc<JobOutput>, CacheStatus), ServiceError> {
        self.submit_traced(spec, sink, None)
    }

    /// [`submit`](Self::submit) with a caller-supplied job correlation
    /// id: cache decision events and the pool's lifecycle events all
    /// carry it, so a journal can be filtered down to one request. When
    /// `job_id` is `None` the profile name stands in.
    pub fn submit_traced(
        &self,
        spec: &JobSpec,
        sink: Option<Box<dyn CommandSink + Send>>,
        job_id: Option<&str>,
    ) -> Result<(Arc<JobOutput>, CacheStatus), ServiceError> {
        let key = spec.key();
        let label = job_id.unwrap_or(&spec.profile_name).to_string();
        let cache_event = |kind: &str| {
            EventDraft::info(kind)
                .job(&label)
                .field_str("profile", &spec.profile_name)
                .field_u64("seed", spec.seed)
                .field_bool("sharded", spec.sharded)
        };
        // Phase 1: the memory tier and the in-flight table, under one
        // lock.
        let (flight, cache_dir) = {
            let mut inner = self.lock_inner();
            inner.stats.submitted += 1;
            if let Some(cached) = inner.cache.get(&key) {
                inner.stats.hits += 1;
                drop(inner);
                self.events.emit(cache_event("cache.hit"));
                return Ok((cached, CacheStatus::Hit));
            }
            if let Some(flight) = inner.in_flight.get(&key).map(Arc::clone) {
                inner.stats.coalesced += 1;
                drop(inner);
                self.events.emit(cache_event("cache.coalesced"));
                // Park outside the service lock: other keys keep flowing.
                return match flight.wait() {
                    Ok(output) => Ok((output, CacheStatus::Coalesced)),
                    Err(e) => Err(ServiceError::Job(e)),
                };
            }
            // This request owns the key from here: identical requests
            // arriving during the disk probe or the simulation park on
            // this slot. Whether it is a hit or a miss is settled below.
            inner.stats.in_flight += 1;
            let flight = Arc::new(InFlight::new());
            inner.in_flight.insert(key, Arc::clone(&flight));
            (flight, inner.cache.dir().cloned())
        };
        // From here on the slot must be resolved on *every* path — an
        // unwind included — or coalesced waiters would park forever and
        // every retry would join the dead slot instead of re-running.
        // `finish`/`finish_disk_hit` are the deliberate resolutions;
        // the guard's `Drop` is the backstop for unwinds.
        let guard = FlightGuard {
            service: self,
            key,
            label: label.clone(),
            flight,
            armed: true,
        };
        // Phase 2: the persistence tier, outside the state lock so
        // file IO cannot stall unrelated keys.
        if let Some(dir) = &cache_dir {
            match cache::probe_disk(dir, &key) {
                DiskProbe::Loaded(output) => {
                    self.events.emit(cache_event("cache.hit"));
                    self.events.emit(
                        EventDraft::info("cache.load")
                            .job(&label)
                            .field_str("key", &cache::key_file_name(&key)),
                    );
                    return Ok((guard.finish_disk_hit(output), CacheStatus::Hit));
                }
                DiskProbe::Salvage(reason) => {
                    self.lock_inner().stats.salvaged += 1;
                    self.events.emit(
                        EventDraft::warn("cache.salvage")
                            .job(&label)
                            .field_str("message", &reason),
                    );
                }
                DiskProbe::Absent => {}
            }
        }
        // Phase 3: a genuine miss — simulate on the pool.
        {
            let mut inner = self.lock_inner();
            inner.stats.misses += 1;
            inner.stats.executions += 1;
        }
        // Emitted before the pool's `job.queued` so a tail reads the
        // cache decision, then the lifecycle it caused.
        self.events.emit(cache_event("cache.miss"));

        let result = self.run_on_pool(spec, sink, &label);

        if let Err(e) = &result {
            self.events.emit(
                EventDraft::warn("job.error")
                    .job(&label)
                    .field_str("message", &e.to_string()),
            );
        }
        match guard.finish(result, cache_dir.as_deref()) {
            Ok(output) => Ok((output, CacheStatus::Miss)),
            Err(e) => Err(ServiceError::Job(e)),
        }
    }

    /// Ships the job to the pool and joins its handle. A missing pool
    /// (post-shutdown) surfaces as a `WorkerPanic`-free `CoreError` so
    /// in-flight waiters get a clean error, not a hang.
    fn run_on_pool(
        &self,
        spec: &JobSpec,
        sink: Option<Box<dyn CommandSink + Send>>,
        label: &str,
    ) -> Result<JobOutput, CoreError> {
        let handle = {
            let pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(pool) = pool.as_ref() else {
                return Err(CoreError::from("service is shut down".to_string()));
            };
            let runner = Arc::clone(&self.runner);
            let spec = spec.clone();
            pool.submit_labeled(label, move || runner(&spec, sink))
        };
        handle.join()?
    }

    /// Looks up the memory tier without submitting; does not touch
    /// counters or the LRU hit sequence.
    pub fn peek(&self, key: &DossierKey) -> Option<Arc<JobOutput>> {
        self.lock_inner().cache.peek(key)
    }

    /// Snapshots the live counters.
    pub fn stats(&self) -> ServiceStats {
        self.lock_inner().stats
    }

    /// Snapshots the pool's job counters and backlog gauges; after
    /// shutdown the final (fully drained) snapshot keeps being served.
    pub fn pool_stats(&self) -> PoolStats {
        let pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pool) = pool.as_ref() {
            return pool.stats();
        }
        drop(pool);
        self.lock_inner().final_pool.unwrap_or_default()
    }

    /// Renders the merged telemetry registry plus the service and pool
    /// counters in Prometheus text exposition format. Byte-stable for a
    /// given service state — nothing here consults a clock.
    pub fn metrics_prometheus(&self) -> String {
        let mut reg = self.telemetry();
        let s = self.stats();
        let p = self.pool_stats();
        reg.inc(Key::name("dramscoped_submitted_total"), s.submitted);
        reg.inc(Key::name("dramscoped_cache_hits_total"), s.hits);
        reg.inc(Key::name("dramscoped_cache_misses_total"), s.misses);
        reg.inc(Key::name("dramscoped_cache_coalesced_total"), s.coalesced);
        reg.inc(Key::name("dramscoped_executions_total"), s.executions);
        reg.inc(Key::name("dramscoped_errors_total"), s.errors);
        reg.inc(Key::name("dramscoped_jobs_panicked_total"), p.jobs_panicked);
        reg.inc(Key::name("dramscoped_cache_evictions_total"), s.evictions);
        reg.inc(Key::name("dramscoped_cache_disk_hits_total"), s.disk_hits);
        reg.inc(Key::name("dramscoped_cache_salvaged_total"), s.salvaged);
        reg.set_gauge(Key::name("dramscoped_in_flight"), s.in_flight as i64);
        reg.set_gauge(
            Key::name("dramscoped_cache_entries"),
            s.cache_entries as i64,
        );
        reg.set_gauge(Key::name("dramscoped_cache_bytes"), s.cache_bytes as i64);
        reg.set_gauge(Key::name("dramscoped_queue_depth"), p.queue_depth() as i64);
        reg.set_gauge(
            Key::name("dramscoped_jobs_running"),
            p.jobs_running() as i64,
        );
        reg.set_gauge(
            Key::name("dramscoped_uptime_jobs_completed"),
            p.jobs_completed as i64,
        );
        render_prometheus(&reg)
    }

    /// Clones the merged telemetry registry of every completed job.
    pub fn telemetry(&self) -> Registry {
        self.lock_inner().telemetry.clone()
    }

    /// Drains the pool deterministically: queued jobs run to
    /// completion, workers join, and later submissions fail with
    /// [`ServiceError::ShutDown`]. Idempotent.
    pub fn shutdown(&self) {
        let pool = self
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(pool) = pool {
            let final_stats = pool.shutdown_stats();
            self.lock_inner().final_pool = Some(final_stats);
            self.events.emit(
                EventDraft::info("service.drained")
                    .field_u64("jobs_completed", final_stats.jobs_completed)
                    .field_u64("jobs_panicked", final_stats.jobs_panicked),
            );
        }
    }
}

/// Resolves an owned in-flight slot on every exit path.
///
/// Between claiming a key's slot and publishing its result, the
/// submitting thread runs event emission, disk IO, and the pool
/// round-trip; if any of that unwound with the slot still in the
/// table, coalesced waiters would park forever and every retry would
/// join the dead slot instead of re-running. [`finish`](Self::finish)
/// and [`finish_disk_hit`](Self::finish_disk_hit) are the deliberate
/// resolutions; `Drop` is the backstop that turns an unexpected unwind
/// into a clean error for the waiters and an empty slot for retries.
struct FlightGuard<'a> {
    service: &'a Service,
    key: DossierKey,
    label: String,
    flight: Arc<InFlight>,
    armed: bool,
}

impl FlightGuard<'_> {
    /// Publishes a disk-loaded output: the memory tier adopts it, hit
    /// counters tick, and parked waiters receive it.
    fn finish_disk_hit(mut self, output: Arc<JobOutput>) -> Arc<JobOutput> {
        self.armed = false;
        let evicted = {
            let mut inner = self.service.lock_inner();
            inner.in_flight.remove(&self.key);
            inner.stats.in_flight = inner.stats.in_flight.saturating_sub(1);
            inner.stats.hits += 1;
            inner.stats.disk_hits += 1;
            let evicted = inner.cache.insert(self.key, Arc::clone(&output));
            inner.account_evictions(&evicted);
            evicted
        };
        self.service.emit_evictions(&evicted);
        self.flight.complete(Ok(Arc::clone(&output)));
        output
    }

    /// Publishes a simulation result: successes land in the memory
    /// tier and (best-effort) on disk, failures tick the error
    /// counter; waiters get the result either way. Errors are never
    /// cached, so a retry after a failure runs fresh.
    fn finish(
        mut self,
        result: Result<JobOutput, CoreError>,
        dir: Option<&std::path::Path>,
    ) -> Result<Arc<JobOutput>, CoreError> {
        self.armed = false;
        let (result, evicted) = {
            let mut inner = self.service.lock_inner();
            inner.in_flight.remove(&self.key);
            inner.stats.in_flight = inner.stats.in_flight.saturating_sub(1);
            match result {
                Ok(output) => {
                    let output = Arc::new(output);
                    inner.telemetry.merge(&output.metrics);
                    let evicted = inner.cache.insert(self.key, Arc::clone(&output));
                    inner.account_evictions(&evicted);
                    (Ok(output), evicted)
                }
                Err(e) => {
                    inner.stats.errors += 1;
                    (Err(e), Vec::new())
                }
            }
        };
        self.service.emit_evictions(&evicted);
        if let (Ok(output), Some(dir)) = (&result, dir) {
            if let Err(e) = cache::persist_entry(dir, &self.key, output) {
                // Persistence is best-effort: the in-memory entry is
                // live either way, and the next miss rewrites the file.
                self.service.events.emit(
                    EventDraft::warn("cache.persist_error")
                        .job(&self.label)
                        .field_str("message", &e.to_string()),
                );
            }
        }
        self.flight.complete(result.clone());
        result
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // The submitter unwound without resolving the slot.
        let mut inner = self.service.lock_inner();
        inner.in_flight.remove(&self.key);
        inner.stats.in_flight = inner.stats.in_flight.saturating_sub(1);
        inner.stats.errors += 1;
        drop(inner);
        self.flight.complete(Err(CoreError::WorkerPanic(format!(
            "job \"{}\" abandoned: submitter unwound before completing",
            self.label
        ))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    fn spec(name: &str, seed: u64) -> JobSpec {
        let (profile, opts) = profiles::named_job(name).expect("known name");
        JobSpec {
            profile_name: name.to_string(),
            profile,
            seed,
            opts,
            sharded: false,
        }
    }

    /// A runner that counts executions and fabricates a deterministic
    /// output from the spec, no simulation.
    fn counting_service(counter: Arc<AtomicU64>) -> Service {
        Service::with_runner(
            2,
            Arc::new(move |spec: &JobSpec, _sink| {
                counter.fetch_add(1, Ordering::SeqCst);
                let text = format!("dossier for {} seed {}", spec.profile_name, spec.seed);
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: fnv1a_64(text.as_bytes()),
                    composition: "test".into(),
                    dossier: text,
                    commands: 1,
                    bitflips: 0,
                    metrics: Registry::new(),
                })
            }),
        )
    }

    #[test]
    fn keys_separate_every_input_dimension() {
        let base = spec("test_small", 1);
        let mut other_seed = base.clone();
        other_seed.seed = 2;
        let mut other_opts = base.clone();
        other_opts.opts.scan_rows += 1;
        let mut other_flow = base.clone();
        other_flow.sharded = true;
        let other_profile = spec("test_small_interleaved", 1);
        let keys = [
            base.key(),
            other_seed.key(),
            other_opts.key(),
            other_flow.key(),
            other_profile.key(),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Identity is content-addressed: a rebuilt spec agrees.
        assert_eq!(base.key(), spec("test_small", 1).key());
    }

    #[test]
    fn second_identical_submit_is_a_cache_hit() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 42);
        let (first, s1) = svc.submit(&job, None).unwrap();
        let (second, s2) = svc.submit(&job, None).unwrap();
        assert_eq!(s1, CacheStatus::Miss);
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(first.digest, second.digest);
        assert!(Arc::ptr_eq(&first, &second), "hit serves the cached Arc");
        let stats = svc.stats();
        assert_eq!((stats.hits, stats.misses, stats.executions), (1, 1, 1));
        assert_eq!(stats.cache_entries, 1);
    }

    #[test]
    fn concurrent_identical_submits_coalesce_to_one_execution() {
        let count = Arc::new(AtomicU64::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let runner_gate = Arc::clone(&gate);
        let runner_count = Arc::clone(&count);
        // A runner that blocks until released, so the second submit is
        // guaranteed to arrive while the first is still in flight.
        let svc = Arc::new(Service::with_runner(
            2,
            Arc::new(move |spec: &JobSpec, _sink| {
                runner_count.fetch_add(1, Ordering::SeqCst);
                let (lock, cv) = &*runner_gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: 0xd05,
                    composition: String::new(),
                    dossier: "d".into(),
                    commands: 0,
                    bitflips: 0,
                    metrics: Registry::new(),
                })
            }),
        ));
        let job = spec("test_small", 9);
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let job = job.clone();
                thread::spawn(move || svc.submit(&job, None).unwrap())
            })
            .collect();
        // Wait until one execution has started, then until the other
        // submission has parked on the in-flight entry.
        while count.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        while svc.stats().coalesced == 0 {
            thread::yield_now();
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let mut statuses: Vec<CacheStatus> =
            threads.into_iter().map(|t| t.join().unwrap().1).collect();
        statuses.sort_by_key(|s| s.as_str());
        assert_eq!(statuses, [CacheStatus::Coalesced, CacheStatus::Miss]);
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "one simulation, two responses"
        );
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn errors_are_not_cached_and_retry_runs_fresh() {
        let count = Arc::new(AtomicU64::new(0));
        let fail_count = Arc::clone(&count);
        let svc = Service::with_runner(
            1,
            Arc::new(move |_spec: &JobSpec, _sink| {
                let n = fail_count.fetch_add(1, Ordering::SeqCst);
                if n == 0 {
                    Err(CoreError::from("flaky".to_string()))
                } else {
                    Ok(JobOutput {
                        label: "ok".into(),
                        digest: 1,
                        composition: String::new(),
                        dossier: "ok".into(),
                        commands: 0,
                        bitflips: 0,
                        metrics: Registry::new(),
                    })
                }
            }),
        );
        let job = spec("test_small", 3);
        let err = svc.submit(&job, None).unwrap_err();
        assert!(matches!(err, ServiceError::Job(_)));
        let (_, status) = svc.submit(&job, None).unwrap();
        assert_eq!(status, CacheStatus::Miss, "failure was not memoized");
        assert_eq!(count.load(Ordering::SeqCst), 2);
        let stats = svc.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.in_flight, 0, "erroring job removed its slot");
    }

    #[test]
    fn failed_jobs_always_clear_their_in_flight_slot() {
        // A panicking runner is the worst case: the error travels back
        // through catch_unwind, and the slot must still come out of the
        // table so a retry re-runs instead of parking on a dead slot.
        let svc = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| panic!("runner exploded")),
        );
        let job = spec("test_small", 11);
        assert!(svc.submit(&job, None).is_err());
        assert_eq!(svc.stats().in_flight, 0, "panicking job removed its slot");
        // If the slot had leaked, this would block forever on the dead
        // entry; instead it re-runs and errors again.
        assert!(svc.submit(&job, None).is_err());
        let stats = svc.stats();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.executions, 2, "retry ran fresh");
    }

    #[test]
    fn entry_limit_evicts_least_recently_used_with_counters_and_events() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        svc.set_cache_limits(2, 0);
        let a = spec("test_small", 1);
        let b = spec("test_small", 2);
        let c = spec("test_small", 3);
        svc.submit(&a, None).unwrap();
        svc.submit(&b, None).unwrap();
        // Touch `a` so `b` becomes the least recently used entry.
        let (_, status) = svc.submit(&a, None).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        svc.submit(&c, None).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.cache_entries, 2);
        assert!(stats.cache_bytes > 0);
        assert!(svc.peek(&a.key()).is_some(), "recently used entry kept");
        assert!(svc.peek(&b.key()).is_none(), "LRU entry evicted");
        assert!(svc.peek(&c.key()).is_some(), "newest entry kept");
        // The eviction narrated itself with the entry's key and size.
        let evict = svc
            .events()
            .since(0, 0)
            .events
            .into_iter()
            .find(|e| e.kind == "cache.evict")
            .expect("cache.evict event");
        assert_eq!(
            evict.fields["key"].as_str(),
            Some(cache::key_file_name(&b.key()).as_str())
        );
        assert!(evict.fields["bytes"].as_u64().unwrap() > 0);
        // An evicted key re-runs: it is a miss again.
        let (_, status) = svc.submit(&b, None).unwrap();
        assert_eq!(status, CacheStatus::Miss);
        assert_eq!(svc.stats().evictions, 2, "re-inserting evicted the LRU");
    }

    #[test]
    fn byte_limit_is_enforced_at_the_service_level() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        // One dossier is ~100 bytes as charged; a 1-byte budget still
        // keeps the newest entry rather than thrashing to empty.
        svc.set_cache_limits(0, 1);
        let a = spec("test_small", 1);
        let b = spec("test_small", 2);
        svc.submit(&a, None).unwrap();
        svc.submit(&b, None).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.cache_entries, 1, "over-budget LRU evicted");
        assert_eq!(stats.evictions, 1);
        assert!(svc.peek(&b.key()).is_some());
        // Tightening limits on a live service evicts immediately.
        svc.set_cache_limits(0, 0);
        svc.submit(&a, None).unwrap();
        svc.submit(&b, None).unwrap();
        assert_eq!(svc.stats().cache_entries, 2, "limits lifted");
    }

    #[test]
    fn disk_cache_survives_a_restart_with_identical_bytes() {
        let dir =
            std::env::temp_dir().join(format!("dramscope_svc_persist_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let job = spec("test_small", 42);

        let count1 = Arc::new(AtomicU64::new(0));
        let svc1 = counting_service(Arc::clone(&count1));
        svc1.set_cache_dir(&dir).unwrap();
        let (first, s1) = svc1.submit(&job, None).unwrap();
        assert_eq!(s1, CacheStatus::Miss);
        svc1.shutdown();

        // A fresh service on the same directory is a cold memory tier
        // but a warm disk tier: no re-simulation, identical dossier.
        let count2 = Arc::new(AtomicU64::new(0));
        let svc2 = counting_service(Arc::clone(&count2));
        svc2.set_cache_dir(&dir).unwrap();
        let (second, s2) = svc2.submit(&job, None).unwrap();
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(count2.load(Ordering::SeqCst), 0, "served without running");
        assert_eq!(second.dossier, first.dossier, "byte-identical dossier");
        assert_eq!(second.digest, first.digest);
        let stats = svc2.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.executions, 0);
        // The loaded entry joined the memory tier: the next hit is
        // served without touching the disk counters again.
        let (_, s3) = svc2.submit(&job, None).unwrap();
        assert_eq!(s3, CacheStatus::Hit);
        assert_eq!(svc2.stats().disk_hits, 1);
        // The cache decision narrated the load.
        assert!(svc2
            .events()
            .since(0, 0)
            .events
            .iter()
            .any(|e| e.kind == "cache.load"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_entry_salvages_to_a_miss_and_is_rewritten() {
        let dir =
            std::env::temp_dir().join(format!("dramscope_svc_salvage_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let job = spec("test_small", 7);
        let count1 = Arc::new(AtomicU64::new(0));
        let svc1 = counting_service(Arc::clone(&count1));
        svc1.set_cache_dir(&dir).unwrap();
        svc1.submit(&job, None).unwrap();
        svc1.shutdown();

        // Flip one payload byte: the checksum catches it on load.
        let path = dir.join(cache::key_file_name(&job.key()));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let count2 = Arc::new(AtomicU64::new(0));
        let svc2 = counting_service(Arc::clone(&count2));
        svc2.set_cache_dir(&dir).unwrap();
        let (_, status) = svc2.submit(&job, None).unwrap();
        assert_eq!(status, CacheStatus::Miss, "corruption is a miss");
        assert_eq!(count2.load(Ordering::SeqCst), 1, "job re-ran");
        let stats = svc2.stats();
        assert_eq!(stats.salvaged, 1);
        assert!(svc2
            .events()
            .since(0, 0)
            .events
            .iter()
            .any(|e| e.kind == "cache.salvage"));
        // The miss rewrote the entry: it now probes clean again.
        match cache::probe_disk(&dir, &job.key()) {
            DiskProbe::Loaded(output) => assert!(!output.dossier.is_empty()),
            other => panic!("expected rewritten entry, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_panics_are_isolated_as_job_errors() {
        let svc = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| panic!("runner exploded")),
        );
        let job = spec("test_small", 4);
        match svc.submit(&job, None) {
            Err(ServiceError::Job(CoreError::WorkerPanic(msg))) => {
                assert!(msg.contains("runner exploded"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // The pool survives; a healthy retry path still errors (same
        // runner) but the service itself keeps accepting work.
        assert!(svc.submit(&job, None).is_err());
        assert_eq!(svc.stats().errors, 2);
    }

    #[test]
    fn cache_decisions_emit_correlated_events() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 42);
        svc.submit_traced(&job, None, Some("req-1")).unwrap();
        svc.submit_traced(&job, None, Some("req-2")).unwrap();
        let events = svc.events().since(0, 0).events;
        let trace: Vec<(String, String)> = events
            .iter()
            .map(|e| (e.kind.clone(), e.job_id.clone().unwrap_or_default()))
            .collect();
        let expect: Vec<(String, String)> = [
            ("cache.miss", "req-1"),
            ("job.queued", "req-1"),
            ("job.started", "req-1"),
            ("job.finished", "req-1"),
            ("cache.hit", "req-2"),
        ]
        .iter()
        .map(|(k, j)| (k.to_string(), j.to_string()))
        .collect();
        assert_eq!(trace, expect);
        // Cache events carry the request's identity fields.
        assert_eq!(events[0].fields["profile"].as_str(), Some("test_small"));
        assert_eq!(events[0].fields["seed"].as_u64(), Some(42));
        // Sequence numbers are strictly monotonic.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn job_errors_emit_a_warn_event() {
        let svc = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| Err(CoreError::from("boom".to_string()))),
        );
        let job = spec("test_small", 3);
        svc.submit_traced(&job, None, Some("bad")).unwrap_err();
        let events = svc.events().since(0, 0).events;
        let err = events
            .iter()
            .find(|e| e.kind == "job.error")
            .expect("job.error emitted");
        assert_eq!(err.job_id.as_deref(), Some("bad"));
        assert!(err.fields["message"].as_str().unwrap().contains("boom"));
    }

    #[test]
    fn prometheus_metrics_carry_service_and_pool_gauges() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 7);
        svc.submit(&job, None).unwrap();
        svc.submit(&job, None).unwrap();
        let text = svc.metrics_prometheus();
        assert!(text.contains("dramscoped_submitted_total 2"), "{text}");
        assert!(text.contains("dramscoped_cache_hits_total 1"), "{text}");
        assert!(text.contains("dramscoped_cache_misses_total 1"), "{text}");
        assert!(
            text.contains("dramscoped_uptime_jobs_completed 1"),
            "{text}"
        );
        assert!(text.contains("dramscoped_queue_depth 0"), "{text}");
        // Byte-stable: the same state renders the same exposition.
        assert_eq!(svc.metrics_prometheus(), text);
        // The final pool snapshot survives shutdown.
        svc.shutdown();
        assert_eq!(svc.pool_stats().jobs_completed, 1);
        assert!(svc
            .events()
            .since(0, 0)
            .events
            .iter()
            .any(|e| e.kind == "service.drained"));
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let count = Arc::new(AtomicU64::new(0));
        let svc = counting_service(Arc::clone(&count));
        let job = spec("test_small", 5);
        svc.submit(&job, None).unwrap();
        svc.shutdown();
        svc.shutdown();
        // The same key is still served from cache after shutdown...
        let (_, status) = svc.submit(&job, None).unwrap();
        assert_eq!(status, CacheStatus::Hit);
        // ...but a fresh key needs the pool, which is gone.
        let fresh = spec("test_small", 6);
        match svc.submit(&fresh, None) {
            Err(ServiceError::Job(e)) => {
                assert!(e.to_string().contains("shut down"), "{e}");
            }
            other => panic!("expected shutdown error, got {other:?}"),
        }
        assert!(svc.peek(&fresh.key()).is_none(), "failed submit not cached");
    }
}
