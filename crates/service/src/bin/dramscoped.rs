//! `dramscoped` — the characterization daemon.
//!
//! ```text
//! dramscoped [--workers N] [--socket PATH] [--trace-dir PATH]
//! ```
//!
//! With no `--socket`, serves JSON-lines requests from stdin to stdout
//! until EOF or a `shutdown` request. With `--socket PATH`, listens on
//! a unix socket (one thread per connection, shared cache and pool)
//! until a client sends `shutdown`. `--trace-dir PATH` points `query`
//! requests at a directory of recorded traces (without it, queries are
//! answered with an error). Usage errors exit 2; runtime failures
//! exit 1.

use dramscope_service::Service;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: dramscoped [--workers N] [--socket PATH] [--trace-dir PATH]
  --workers N     fleet pool threads (0 = machine parallelism; default 0)
  --socket PATH   serve a unix socket instead of stdin/stdout (unix only)
  --trace-dir PATH directory of *.trace files that query requests scan

Requests are JSON lines, e.g.:
  {\"req\":\"characterize\",\"id\":\"j1\",\"profile\":\"test_small\",\"seed\":42}
  {\"req\":\"query\",\"id\":\"q1\",\"cmd\":\"act\",\"bank\":3}
  {\"req\":\"stats\"}
  {\"req\":\"shutdown\"}";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("dramscoped: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workers = 0usize;
    let mut socket: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--workers" => {
                let Some(n) = args.next() else {
                    return usage_error("--workers needs a thread count");
                };
                match n.parse() {
                    Ok(n) => workers = n,
                    Err(_) => {
                        return usage_error(&format!("invalid --workers value \"{n}\""));
                    }
                }
            }
            "--socket" => {
                let Some(path) = args.next() else {
                    return usage_error("--socket needs a path");
                };
                socket = Some(path);
            }
            "--trace-dir" => {
                let Some(path) = args.next() else {
                    return usage_error("--trace-dir needs a path");
                };
                trace_dir = Some(path);
            }
            other => {
                return usage_error(&format!("unknown argument \"{other}\""));
            }
        }
    }

    let service = Arc::new(Service::new(workers));
    if let Some(dir) = trace_dir {
        service.set_trace_dir(dir);
    }
    let served = match socket {
        None => dramscope_service::serve_stdio(&service),
        Some(path) => serve_socket(&service, &path),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dramscoped: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn serve_socket(service: &Arc<Service>, path: &str) -> std::io::Result<()> {
    dramscope_service::serve_unix(service, std::path::Path::new(path))
}

#[cfg(not(unix))]
fn serve_socket(_service: &Arc<Service>, _path: &str) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a unix platform",
    ))
}
