//! `dramscoped` — the characterization daemon.
//!
//! ```text
//! dramscoped [--workers N] [--socket PATH] [--trace-dir PATH]
//!            [--cache-dir PATH] [--cache-max-entries N]
//!            [--cache-max-bytes N] [--serial]
//! ```
//!
//! With no `--socket`, serves JSON-lines requests from stdin to stdout
//! until EOF or a `shutdown` request. With `--socket PATH`, listens on
//! a unix socket (one thread per connection, shared cache and pool)
//! until a client sends `shutdown`. `--trace-dir PATH` points `query`
//! requests at a directory of recorded traces (without it, queries are
//! answered with an error).
//!
//! Connections are pipelined by default: each request runs on its own
//! handler thread and responses are written, tagged by request id, as
//! they complete — a cached job overtakes a slow miss. `--serial`
//! restores strict request-order responses (byte-stable output for a
//! given input; what the CI smokes pin).
//!
//! `--cache-dir` adds a persistence tier: completed dossiers are
//! written as `0x<key>` files (temp-file-then-rename) and a restarted
//! daemon serves them as cache hits without re-simulating.
//! `--cache-max-entries`/`--cache-max-bytes` bound the in-memory tier
//! with a deterministic LRU (0 = unbounded); evictions are counted in
//! `stats` and narrated as `cache.evict` events.
//!
//! Usage errors exit 2; runtime failures exit 1.

use dramscope_service::{ConnMode, Service};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: dramscoped [--workers N] [--socket PATH] [--trace-dir PATH]
                  [--cache-dir PATH] [--cache-max-entries N] [--cache-max-bytes N] [--serial]
  --workers N     fleet pool threads (0 = machine parallelism; default 0)
  --socket PATH   serve a unix socket instead of stdin/stdout (unix only)
  --trace-dir PATH directory of *.trace files that query requests scan
  --cache-dir PATH persist dossiers as 0x<key> files; restarts serve them as hits
  --cache-max-entries N bound the in-memory cache to N entries (0 = unbounded)
  --cache-max-bytes N   bound the in-memory cache to N payload bytes (0 = unbounded)
  --serial        answer requests strictly in order (byte-stable; default is pipelined)

Requests are JSON lines, e.g.:
  {\"req\":\"characterize\",\"id\":\"j1\",\"profile\":\"test_small\",\"seed\":42}
  {\"req\":\"query\",\"id\":\"q1\",\"cmd\":\"act\",\"bank\":3}
  {\"req\":\"stats\"}
  {\"req\":\"shutdown\"}";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("dramscoped: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut workers = 0usize;
    let mut socket: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_max_entries = 0u64;
    let mut cache_max_bytes = 0u64;
    let mut mode = ConnMode::Pipelined;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--workers" => {
                let Some(n) = args.next() else {
                    return usage_error("--workers needs a thread count");
                };
                match n.parse() {
                    Ok(n) => workers = n,
                    Err(_) => {
                        return usage_error(&format!("invalid --workers value \"{n}\""));
                    }
                }
            }
            "--socket" => {
                let Some(path) = args.next() else {
                    return usage_error("--socket needs a path");
                };
                socket = Some(path);
            }
            "--trace-dir" => {
                let Some(path) = args.next() else {
                    return usage_error("--trace-dir needs a path");
                };
                trace_dir = Some(path);
            }
            "--cache-dir" => {
                let Some(path) = args.next() else {
                    return usage_error("--cache-dir needs a path");
                };
                cache_dir = Some(path);
            }
            "--cache-max-entries" => {
                let Some(n) = args.next() else {
                    return usage_error("--cache-max-entries needs a count");
                };
                match n.parse() {
                    Ok(n) => cache_max_entries = n,
                    Err(_) => {
                        return usage_error(&format!("invalid --cache-max-entries value \"{n}\""));
                    }
                }
            }
            "--cache-max-bytes" => {
                let Some(n) = args.next() else {
                    return usage_error("--cache-max-bytes needs a byte count");
                };
                match n.parse() {
                    Ok(n) => cache_max_bytes = n,
                    Err(_) => {
                        return usage_error(&format!("invalid --cache-max-bytes value \"{n}\""));
                    }
                }
            }
            "--serial" => mode = ConnMode::Serial,
            other => {
                return usage_error(&format!("unknown argument \"{other}\""));
            }
        }
    }

    let service = Arc::new(Service::new(workers));
    if let Some(dir) = trace_dir {
        service.set_trace_dir(dir);
    }
    if let Some(dir) = cache_dir {
        if let Err(e) = service.set_cache_dir(&dir) {
            eprintln!("dramscoped: --cache-dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cache_max_entries != 0 || cache_max_bytes != 0 {
        service.set_cache_limits(cache_max_entries, cache_max_bytes);
    }
    let served = match socket {
        None => dramscope_service::serve_stdio_mode(&service, mode),
        Some(path) => serve_socket(&service, &path, mode),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dramscoped: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn serve_socket(service: &Arc<Service>, path: &str, mode: ConnMode) -> std::io::Result<()> {
    dramscope_service::serve_unix_mode(service, std::path::Path::new(path), mode)
}

#[cfg(not(unix))]
fn serve_socket(_service: &Arc<Service>, _path: &str, _mode: ConnMode) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a unix platform",
    ))
}
