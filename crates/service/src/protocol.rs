//! The `dramscoped` wire protocol: JSON-lines requests and responses.
//!
//! One request per line, one or more response lines per request, every
//! line a single JSON object. Decoding is **total** — the same
//! discipline as `dram-trace`'s binary decoder: any malformed line
//! (truncated JSON, wrong types, unknown fields, oversized input) maps
//! to a structured [`ProtocolError`] that the daemon answers with an
//! `{"resp":"error",...}` line; nothing a client sends can panic the
//! server or kill the process.
//!
//! # Requests
//!
//! ```json
//! {"req":"characterize","id":"job-1","profile":"test_small","seed":42}
//! {"req":"characterize","id":"j2","profile":"mfr_a_x4_2016","scan_rows":8193,"with_swizzle":true}
//! {"req":"stats","id":"s1"}
//! {"req":"events","id":"e1","since_seq":0,"max":100,"stable":true}
//! {"req":"metrics","id":"m1"}
//! {"req":"query","id":"q1","cmd":["act"],"bank":[3],"marker":"span:trr_window"}
//! {"req":"shutdown"}
//! ```
//!
//! `characterize` accepts the option overrides `seed`, `scan_rows`,
//! `with_swizzle`, `probe_start`, `probe_end`, `retention_wait_ms`,
//! `sharded` (run the per-bank sharded flow), `progress` (stream
//! `phase:`/`span:` marker events as they happen), and `spans` (profile
//! the run and attach its span-tree JSON to the result — the key is not
//! named `profile` because that field already carries the profile
//! name). Omitted options use the named profile's canonical values —
//! the same per-device defaults as the `characterize` CLI, so service
//! and CLI runs share cache identity.
//!
//! `events` tails the daemon's in-memory event ring from a `since_seq`
//! cursor (default 0), `max` bounding the batch (default 0 =
//! unlimited); `stable:true` renders events without their wall-clock
//! map, making the tail byte-stable for a given request history.
//! `metrics` returns the merged telemetry registry plus service gauges
//! in Prometheus text exposition format.
//!
//! `query` evaluates a trace-lake predicate over the daemon's
//! configured trace directory (`--trace-dir`): `bank` (a bank number or
//! array), `cmd` (a mnemonic or array — `act`, `pre`, `rd`, `wr`,
//! `ref`, `rfm`, `burst`, `refw`, `temp`, `mark`), `marker` (a segment
//! label prefix), `from_ps`/`to_ps` (an inclusive time window), and
//! `min_count`/`max_count` (matched-event bounds per segment). Only
//! segments whose index metadata can match are decoded.
//!
//! # Responses
//!
//! Results are byte-stable: the same request against the same engine
//! always renders the identical result line except for the `cache`
//! marker (`"miss"`, `"hit"`, or `"coalesced"`), which records how the
//! response was produced. Wall-clock numbers are deliberately excluded
//! from result lines (the `stats` response carries live counters
//! instead).

use crate::profiles;
use dram_perf::json::{self, Value};
use dram_sim::Time;
use dramscope_core::dossier::CharacterizeOptions;
use std::collections::BTreeMap;
use std::fmt;

/// Hard ceiling on one request line, bytes. Lines longer than this are
/// answered with an error and discarded without buffering the excess.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// The default seed when a request omits `seed` — the same constant the
/// bench binaries use, so daemon results line up with CLI runs.
pub const DEFAULT_SEED: u64 = 0x5ca1e;

/// A decoded, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Characterize a device (or serve the dossier from cache).
    Characterize(CharacterizeRequest),
    /// Report live service counters and the merged telemetry registry.
    Stats {
        /// Echoed request id, pre-rendered as a JSON token.
        id: String,
    },
    /// Tail the daemon's event ring from a sequence cursor.
    Events {
        /// Echoed request id, pre-rendered as a JSON token.
        id: String,
        /// Resume cursor: only events with `seq >= since_seq` are sent.
        since_seq: u64,
        /// Batch bound; `0` means unlimited.
        max: u64,
        /// Render events without their wall-clock map (byte-stable).
        stable: bool,
    },
    /// Report the telemetry registry in Prometheus text format.
    Metrics {
        /// Echoed request id, pre-rendered as a JSON token.
        id: String,
    },
    /// Evaluate a trace-lake query over the daemon's trace directory.
    Query(QueryRequest),
    /// Drain the queue and stop the daemon.
    Shutdown {
        /// Echoed request id, pre-rendered as a JSON token.
        id: String,
    },
}

/// A validated `characterize` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeRequest {
    /// Echoed request id, pre-rendered as a JSON token (`"job-1"` stays
    /// `"\"job-1\""`, a missing id renders `null`).
    pub id: String,
    /// The profile name as requested (already validated to resolve).
    pub profile_name: String,
    /// Seed for the run.
    pub seed: u64,
    /// Fully resolved probe options.
    pub opts: CharacterizeOptions,
    /// Run the per-bank sharded flow instead of the serial one.
    pub sharded: bool,
    /// Stream `phase:`/`span:` marker events while the job runs.
    pub progress: bool,
    /// Profile the run and attach its span-tree JSON to the result.
    pub spans: bool,
}

/// A validated `query` request: the trace-lake predicate, ready to
/// convert into a [`dram_trace::Query`] against the daemon's trace
/// directory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryRequest {
    /// Echoed request id, pre-rendered as a JSON token.
    pub id: String,
    /// Restrict to events addressing one of these banks.
    pub bank: Option<Vec<u32>>,
    /// Restrict to these command mnemonics (validated against
    /// [`dram_trace::SEGMENT_MNEMONICS`]).
    pub cmd: Option<Vec<String>>,
    /// Restrict to segments whose label starts with this prefix.
    pub marker: Option<String>,
    /// Inclusive lower time bound, picoseconds.
    pub from_ps: Option<u64>,
    /// Inclusive upper time bound, picoseconds.
    pub to_ps: Option<u64>,
    /// Minimum matched events for a segment to count as a hit.
    pub min_count: Option<u64>,
    /// Maximum matched events for a segment to count as a hit.
    pub max_count: Option<u64>,
}

impl QueryRequest {
    /// Converts the request into the trace-lake query it describes.
    pub fn to_query(&self) -> dram_trace::Query {
        dram_trace::Query {
            from_ps: self.from_ps,
            to_ps: self.to_ps,
            banks: self.bank.clone(),
            mnemonics: self.cmd.clone(),
            marker_prefix: self.marker.clone(),
            min_count: self.min_count,
            max_count: self.max_count,
        }
    }
}

/// A structured decode/validation failure. The daemon renders it as an
/// `error` response; it never escapes as a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// Echoed request id when one was recoverable, pre-rendered.
    pub id: String,
    /// Human-readable description of what was wrong.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Escapes a string into a JSON string literal (quotes included).
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `{"resp":"error",...}` line (no trailing newline).
pub fn error_line(err: &ProtocolError) -> String {
    format!(
        "{{\"resp\":\"error\",\"id\":{},\"error\":{}}}",
        err.id,
        json_string(&err.message)
    )
}

fn err(id: &str, message: impl Into<String>) -> ProtocolError {
    ProtocolError {
        id: id.to_string(),
        message: message.into(),
    }
}

/// Extracts the request id as a pre-rendered JSON token: strings stay
/// strings, non-negative integers stay numbers, everything else (or a
/// missing id) is `null`.
fn render_id(obj: &BTreeMap<String, Value>) -> String {
    match obj.get("id") {
        Some(Value::String(s)) => json_string(s),
        Some(v) => v.as_u64().map_or_else(|| "null".into(), |n| n.to_string()),
        None => "null".into(),
    }
}

fn want_bool(
    obj: &BTreeMap<String, Value>,
    id: &str,
    key: &str,
) -> Result<Option<bool>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(err(id, format!("\"{key}\" must be a boolean"))),
    }
}

fn want_u64(
    obj: &BTreeMap<String, Value>,
    id: &str,
    key: &str,
) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(err(id, format!("\"{key}\" must be a non-negative integer"))),
        },
    }
}

fn want_u32(
    obj: &BTreeMap<String, Value>,
    id: &str,
    key: &str,
) -> Result<Option<u32>, ProtocolError> {
    match want_u64(obj, id, key)? {
        None => Ok(None),
        Some(n) => u32::try_from(n)
            .map(Some)
            .map_err(|_| err(id, format!("\"{key}\" exceeds 32 bits"))),
    }
}

/// Accepts a scalar or an array of scalars: `"bank":3` and
/// `"bank":[3,4]` both parse. Rejects empty arrays — an empty
/// restriction would silently match nothing.
fn want_u32_list(
    obj: &BTreeMap<String, Value>,
    id: &str,
    key: &str,
) -> Result<Option<Vec<u32>>, ProtocolError> {
    let scalar = |v: &Value| {
        v.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| {
                err(
                    id,
                    format!("\"{key}\" must be a 32-bit non-negative integer or an array of them"),
                )
            })
    };
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Array(items)) => {
            if items.is_empty() {
                return Err(err(id, format!("\"{key}\" must not be an empty array")));
            }
            items.iter().map(scalar).collect::<Result<_, _>>().map(Some)
        }
        Some(v) => Ok(Some(vec![scalar(v)?])),
    }
}

/// Accepts a string or an array of strings, rejecting empty arrays.
fn want_string_list(
    obj: &BTreeMap<String, Value>,
    id: &str,
    key: &str,
) -> Result<Option<Vec<String>>, ProtocolError> {
    let scalar = |v: &Value| {
        v.as_str().map(str::to_string).ok_or_else(|| {
            err(
                id,
                format!("\"{key}\" must be a string or an array of strings"),
            )
        })
    };
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Array(items)) => {
            if items.is_empty() {
                return Err(err(id, format!("\"{key}\" must not be an empty array")));
            }
            items.iter().map(scalar).collect::<Result<_, _>>().map(Some)
        }
        Some(v) => Ok(Some(vec![scalar(v)?])),
    }
}

fn want_string(
    obj: &BTreeMap<String, Value>,
    id: &str,
    key: &str,
) -> Result<Option<String>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(err(id, format!("\"{key}\" must be a string"))),
    }
}

/// The complete field vocabulary of a `query` request.
const QUERY_KEYS: [&str; 9] = [
    "req",
    "id",
    "bank",
    "cmd",
    "marker",
    "from_ps",
    "to_ps",
    "min_count",
    "max_count",
];

/// The complete field vocabulary of a `characterize` request; anything
/// else is rejected so typos fail loudly instead of silently running
/// with defaults.
const CHARACTERIZE_KEYS: [&str; 12] = [
    "req",
    "id",
    "profile",
    "seed",
    "scan_rows",
    "with_swizzle",
    "probe_start",
    "probe_end",
    "retention_wait_ms",
    "sharded",
    "progress",
    "spans",
];

/// Decodes and validates one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] (carrying the request id when one was
/// recoverable) for every malformed or invalid line. Never panics.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(err(
            "null",
            format!(
                "request line of {} bytes exceeds the {MAX_REQUEST_BYTES}-byte limit",
                line.len()
            ),
        ));
    }
    let value = json::parse("request", line).map_err(|e| err("null", e.to_string()))?;
    let Some(obj) = value.as_object() else {
        return Err(err("null", "request must be a JSON object"));
    };
    let id = render_id(obj);
    let req = match obj.get("req") {
        Some(Value::String(s)) => s.as_str(),
        Some(_) => return Err(err(&id, "\"req\" must be a string")),
        None => return Err(err(&id, "missing \"req\" field")),
    };
    match req {
        "characterize" => parse_characterize(obj, id),
        "stats" => {
            reject_unknown(obj, &id, &["req", "id"])?;
            Ok(Request::Stats { id })
        }
        "events" => {
            reject_unknown(obj, &id, &["req", "id", "since_seq", "max", "stable"])?;
            Ok(Request::Events {
                since_seq: want_u64(obj, &id, "since_seq")?.unwrap_or(0),
                max: want_u64(obj, &id, "max")?.unwrap_or(0),
                stable: want_bool(obj, &id, "stable")?.unwrap_or(false),
                id,
            })
        }
        "metrics" => {
            reject_unknown(obj, &id, &["req", "id"])?;
            Ok(Request::Metrics { id })
        }
        "query" => parse_query(obj, id),
        "shutdown" => {
            reject_unknown(obj, &id, &["req", "id"])?;
            Ok(Request::Shutdown { id })
        }
        other => Err(err(
            &id,
            format!(
                "unknown request \"{other}\" \
                 (try characterize, stats, events, metrics, query, shutdown)"
            ),
        )),
    }
}

fn parse_query(obj: &BTreeMap<String, Value>, id: String) -> Result<Request, ProtocolError> {
    reject_unknown(obj, &id, &QUERY_KEYS)?;
    let cmd = want_string_list(obj, &id, "cmd")?;
    if let Some(cmds) = &cmd {
        for c in cmds {
            if !dram_trace::SEGMENT_MNEMONICS.contains(&c.as_str()) {
                return Err(err(
                    &id,
                    format!(
                        "unknown command mnemonic \"{c}\" (try one of: {})",
                        dram_trace::SEGMENT_MNEMONICS.join(", ")
                    ),
                ));
            }
        }
    }
    let from_ps = want_u64(obj, &id, "from_ps")?;
    let to_ps = want_u64(obj, &id, "to_ps")?;
    if let (Some(from), Some(to)) = (from_ps, to_ps) {
        if from > to {
            return Err(err(
                &id,
                format!("time window [{from}, {to}] is empty (from_ps > to_ps)"),
            ));
        }
    }
    Ok(Request::Query(QueryRequest {
        bank: want_u32_list(obj, &id, "bank")?,
        cmd,
        marker: want_string(obj, &id, "marker")?,
        from_ps,
        to_ps,
        min_count: want_u64(obj, &id, "min_count")?,
        max_count: want_u64(obj, &id, "max_count")?,
        id,
    }))
}

fn reject_unknown(
    obj: &BTreeMap<String, Value>,
    id: &str,
    allowed: &[&str],
) -> Result<(), ProtocolError> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(err(id, format!("unknown field \"{key}\"")));
        }
    }
    Ok(())
}

fn parse_characterize(obj: &BTreeMap<String, Value>, id: String) -> Result<Request, ProtocolError> {
    reject_unknown(obj, &id, &CHARACTERIZE_KEYS)?;
    let profile_name = match obj.get("profile") {
        Some(Value::String(s)) => s.clone(),
        Some(_) => return Err(err(&id, "\"profile\" must be a string")),
        None => return Err(err(&id, "missing \"profile\" field")),
    };
    let Some((_, defaults)) = profiles::named_job(&profile_name) else {
        return Err(err(
            &id,
            format!(
                "unknown profile \"{profile_name}\" (known: {})",
                profiles::known_names().join(", ")
            ),
        ));
    };
    let seed = want_u64(obj, &id, "seed")?.unwrap_or(DEFAULT_SEED);
    let scan_rows = want_u32(obj, &id, "scan_rows")?.unwrap_or(defaults.scan_rows);
    if scan_rows == 0 {
        return Err(err(&id, "\"scan_rows\" must be at least 1"));
    }
    let with_swizzle = want_bool(obj, &id, "with_swizzle")?.unwrap_or(defaults.with_swizzle);
    let probe_start = want_u32(obj, &id, "probe_start")?.unwrap_or(defaults.probe_range.0);
    let probe_end = want_u32(obj, &id, "probe_end")?.unwrap_or(defaults.probe_range.1);
    if probe_start >= probe_end {
        return Err(err(
            &id,
            format!("probe range [{probe_start}, {probe_end}) is empty"),
        ));
    }
    let retention_wait = match want_u64(obj, &id, "retention_wait_ms")? {
        Some(ms) => Time::from_ms(ms),
        None => defaults.retention_wait,
    };
    let sharded = want_bool(obj, &id, "sharded")?.unwrap_or(false);
    let progress = want_bool(obj, &id, "progress")?.unwrap_or(false);
    let spans = want_bool(obj, &id, "spans")?.unwrap_or(false);
    Ok(Request::Characterize(CharacterizeRequest {
        id,
        profile_name,
        seed,
        opts: CharacterizeOptions {
            scan_rows,
            with_swizzle,
            probe_range: (probe_start, probe_end),
            retention_wait,
        },
        sharded,
        progress,
        spans,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Request {
        parse_request(line).unwrap_or_else(|e| panic!("{line} -> {e}"))
    }

    #[test]
    fn minimal_characterize_uses_profile_defaults() {
        let Request::Characterize(c) = parse_ok(r#"{"req":"characterize","profile":"test_small"}"#)
        else {
            panic!("wrong variant");
        };
        assert_eq!(c.id, "null");
        assert_eq!(c.seed, DEFAULT_SEED);
        let (_, defaults) = profiles::named_job("test_small").unwrap();
        assert_eq!(c.opts, defaults);
        assert!(!c.sharded);
        assert!(!c.progress);
        assert!(!c.spans);
    }

    #[test]
    fn events_and_metrics_requests_parse_with_defaults() {
        let Request::Events {
            id,
            since_seq,
            max,
            stable,
        } = parse_ok(r#"{"req":"events"}"#)
        else {
            panic!("wrong variant");
        };
        assert_eq!((id.as_str(), since_seq, max, stable), ("null", 0, 0, false));
        let Request::Events {
            id,
            since_seq,
            max,
            stable,
        } = parse_ok(r#"{"req":"events","id":"e1","since_seq":17,"max":5,"stable":true}"#)
        else {
            panic!("wrong variant");
        };
        assert_eq!(
            (id.as_str(), since_seq, max, stable),
            ("\"e1\"", 17, 5, true)
        );
        let Request::Metrics { id } = parse_ok(r#"{"req":"metrics","id":"m"}"#) else {
            panic!("wrong variant");
        };
        assert_eq!(id, "\"m\"");
    }

    #[test]
    fn spans_flag_parses_and_rejects_non_booleans() {
        let Request::Characterize(c) =
            parse_ok(r#"{"req":"characterize","profile":"test_small","spans":true}"#)
        else {
            panic!("wrong variant");
        };
        assert!(c.spans);
        let e = parse_request(r#"{"req":"characterize","profile":"test_small","spans":1}"#)
            .unwrap_err();
        assert!(e.message.contains("must be a boolean"), "{}", e.message);
    }

    #[test]
    fn overrides_and_ids_round_trip() {
        let Request::Characterize(c) = parse_ok(
            r#"{"req":"characterize","id":"j-1","profile":"mfr_a_x4_2016","seed":7,
                "scan_rows":100,"with_swizzle":true,"probe_start":10,"probe_end":20,
                "retention_wait_ms":5,"sharded":true,"progress":true}"#,
        ) else {
            panic!("wrong variant");
        };
        assert_eq!(c.id, "\"j-1\"");
        assert_eq!(c.seed, 7);
        assert_eq!(c.opts.scan_rows, 100);
        assert!(c.opts.with_swizzle);
        assert_eq!(c.opts.probe_range, (10, 20));
        assert_eq!(c.opts.retention_wait, Time::from_ms(5));
        assert!(c.sharded && c.progress);
        // Numeric ids stay numeric.
        let Request::Stats { id } = parse_ok(r#"{"req":"stats","id":17}"#) else {
            panic!("wrong variant");
        };
        assert_eq!(id, "17");
    }

    #[test]
    fn query_requests_parse_scalars_and_arrays() {
        let Request::Query(q) = parse_ok(r#"{"req":"query","id":"q1"}"#) else {
            panic!("wrong variant");
        };
        assert_eq!(q.id, "\"q1\"");
        assert_eq!(q.to_query(), dram_trace::Query::default());

        let Request::Query(q) = parse_ok(
            r#"{"req":"query","id":"q2","bank":3,"cmd":"act","marker":"span:",
                "from_ps":10,"to_ps":20,"min_count":2,"max_count":9}"#,
        ) else {
            panic!("wrong variant");
        };
        assert_eq!(q.bank.as_deref(), Some(&[3u32][..]));
        assert_eq!(q.cmd.as_deref(), Some(&["act".to_string()][..]));
        assert_eq!(q.marker.as_deref(), Some("span:"));
        assert_eq!((q.from_ps, q.to_ps), (Some(10), Some(20)));
        assert_eq!((q.min_count, q.max_count), (Some(2), Some(9)));

        let Request::Query(q) = parse_ok(r#"{"req":"query","bank":[0,3],"cmd":["act","rd"]}"#)
        else {
            panic!("wrong variant");
        };
        assert_eq!(q.bank.as_deref(), Some(&[0u32, 3][..]));
        assert_eq!(
            q.cmd.as_deref(),
            Some(&["act".to_string(), "rd".to_string()][..])
        );
    }

    #[test]
    fn malformed_lines_yield_structured_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "unexpected end of input"),
            ("{", "expected"),
            ("[1,2]", "must be a JSON object"),
            ("42", "must be a JSON object"),
            (r#"{"id":"x"}"#, "missing \"req\""),
            (r#"{"req":7}"#, "\"req\" must be a string"),
            (r#"{"req":"frobnicate"}"#, "unknown request"),
            (r#"{"req":"characterize"}"#, "missing \"profile\""),
            (
                r#"{"req":"characterize","profile":"nope"}"#,
                "unknown profile",
            ),
            (r#"{"req":"characterize","profile":7}"#, "must be a string"),
            (
                r#"{"req":"characterize","profile":"test_small","seed":-1}"#,
                "non-negative integer",
            ),
            (
                r#"{"req":"characterize","profile":"test_small","scan_rows":0}"#,
                "at least 1",
            ),
            (
                r#"{"req":"characterize","profile":"test_small","scan_rows":4294967296}"#,
                "exceeds 32 bits",
            ),
            (
                r#"{"req":"characterize","profile":"test_small","probe_start":60,"probe_end":44}"#,
                "is empty",
            ),
            (
                r#"{"req":"characterize","profile":"test_small","sharded":"yes"}"#,
                "must be a boolean",
            ),
            (
                r#"{"req":"characterize","profile":"test_small","banana":1}"#,
                "unknown field",
            ),
            (r#"{"req":"stats","profile":"x"}"#, "unknown field"),
            (r#"{"req":"events","since_seq":-1}"#, "non-negative integer"),
            (r#"{"req":"events","stable":"yes"}"#, "must be a boolean"),
            (r#"{"req":"events","tail":true}"#, "unknown field"),
            (r#"{"req":"metrics","format":"text"}"#, "unknown field"),
            (
                r#"{"req":"query","cmd":"bogus"}"#,
                "unknown command mnemonic",
            ),
            (r#"{"req":"query","cmd":[]}"#, "must not be an empty array"),
            (r#"{"req":"query","bank":[-1]}"#, "32-bit non-negative"),
            (r#"{"req":"query","bank":"three"}"#, "32-bit non-negative"),
            (r#"{"req":"query","marker":7}"#, "must be a string"),
            (r#"{"req":"query","from_ps":9,"to_ps":3}"#, "is empty"),
            (r#"{"req":"query","path":"/x"}"#, "unknown field"),
        ];
        for (line, needle) in cases {
            let e = parse_request(line).expect_err(line);
            assert!(e.message.contains(needle), "{line:?} gave {:?}", e.message);
        }
    }

    #[test]
    fn error_ids_survive_when_recoverable() {
        let e = parse_request(r#"{"req":"characterize","id":"j9"}"#).unwrap_err();
        assert_eq!(e.id, "\"j9\"");
        assert_eq!(
            error_line(&e),
            "{\"resp\":\"error\",\"id\":\"j9\",\"error\":\"missing \\\"profile\\\" field\"}"
        );
    }

    #[test]
    fn oversized_lines_are_rejected_without_parsing() {
        let line = format!(
            "{{\"req\":\"characterize\",\"profile\":\"{}\"}}",
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let e = parse_request(&line).unwrap_err();
        assert!(e.message.contains("exceeds"), "{}", e.message);
    }

    #[test]
    fn json_string_escapes_the_awkward_cases() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("héllo"), "\"héllo\"");
    }

    #[test]
    fn del_and_non_bmp_round_trip_through_encode_and_decode() {
        // DEL (0x7f) and astral-plane characters are legal unescaped
        // in JSON strings; the encoder passes them raw and the decoder
        // must return them unchanged.
        let cases = [
            "\u{7f}",
            "del\u{7f}del",
            "\u{1f600}",
            "a\u{1f600}b",
            "\u{10000}\u{10ffff}",
            "mixed\t\u{7f}\u{1f4a9}\"quoted\"",
        ];
        for original in cases {
            let encoded = json_string(original);
            let decoded = dram_perf::json::parse("roundtrip", &encoded)
                .unwrap_or_else(|e| panic!("{original:?} encoded as {encoded:?}: {e}"));
            assert_eq!(decoded.as_str(), Some(original), "{encoded:?}");
        }
    }

    #[test]
    fn reference_surrogate_pair_escapes_decode_to_the_same_string() {
        // Reference JSON encoders (serde_json, python's json, JS'
        // JSON.stringify with default settings on non-BMP input) may
        // emit astral characters as \uD8xx\uDCxx pairs. Whichever form
        // a client sends, the daemon must read the same request string.
        let pairs = [
            ("\"\\ud83d\\ude00\"", "\u{1f600}"),
            ("\"\\ud800\\udc00\"", "\u{10000}"),
            ("\"\\udbff\\udfff\"", "\u{10ffff}"),
            ("\"\\u007f\"", "\u{7f}"),
        ];
        for (escaped, expected) in pairs {
            let decoded = dram_perf::json::parse("reference", escaped).expect(escaped);
            assert_eq!(decoded.as_str(), Some(expected), "{escaped}");
            // And the decoded string re-encodes to something that
            // decodes back to itself (full round trip).
            let re = json_string(expected);
            let again = dram_perf::json::parse("reference", &re).expect("re-encode");
            assert_eq!(again.as_str(), Some(expected));
        }
    }

    #[test]
    fn characterize_ids_with_non_bmp_content_survive_the_wire() {
        // End to end at the request layer: a profile label with DEL
        // and an emoji comes back out of parse_request intact.
        let line =
            "{\"req\":\"characterize\",\"id\":\"\\ud83d\\ude00\u{7f}\",\"profile\":\"test_small\"}";
        match parse_request(line).expect("request parses") {
            Request::Characterize(req) => {
                assert_eq!(req.id, json_string("\u{1f600}\u{7f}"));
            }
            other => panic!("expected characterize, got {other:?}"),
        }
    }
}
