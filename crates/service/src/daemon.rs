//! The `dramscoped` daemon loop: JSON-lines over any `BufRead`/`Write`
//! pair, plus a unix-socket listener wrapping the same handler.
//!
//! A connection runs in one of two modes ([`ConnMode`]):
//!
//! * **Serial** — a sequential REPL: one request is processed to
//!   completion (progress lines streaming while it runs) before the
//!   next line is read. Single-connection behavior is deterministic:
//!   piping the same job twice over stdin always yields a `miss` then
//!   a `hit`, byte-for-byte. CI smokes pin this mode.
//! * **Pipelined** — the default for the `dramscoped` binary: each
//!   decoded request is dispatched onto its own handler thread and the
//!   response is written (tagged by the request's id) as soon as it
//!   completes, so a fast cached job overtakes a slow miss on the same
//!   connection. Responses interleave; clients correlate by `id`. A
//!   `shutdown` request (or EOF) first joins every in-flight request,
//!   so the drain is still deterministic and no response is lost.
//!
//! In both modes, concurrency across clients (and therefore in-flight
//! coalescing) comes from multiple connections on the socket listener,
//! or from library callers sharing one [`Service`] across threads.
//!
//! The read loop is total: oversized lines are drained and answered
//! with an error, invalid UTF-8 is answered with an error, malformed
//! JSON is answered with an error — nothing a client writes terminates
//! the daemon. Only a well-formed `shutdown` request (or EOF on stdin)
//! ends a serve loop, and both paths drain the pool deterministically.
//!
//! Every connection narrates itself onto the service's [`EventBus`]:
//! `conn.open`/`conn.close`, one `request.received` per well-formed
//! request (except `events`, which must not mutate the ring it tails),
//! `request.decode_error` for every line that would not parse, and the
//! cache/lifecycle events the service and pool emit underneath. The
//! `events` request reads that bus back; `metrics` renders the
//! telemetry registry plus service gauges as Prometheus text.
//!
//! [`EventBus`]: dram_obs::EventBus

use crate::profiles;
use crate::protocol::{
    error_line, json_string, parse_request, CharacterizeRequest, ProtocolError, QueryRequest,
    Request, MAX_REQUEST_BYTES,
};
use crate::service::{CacheStatus, JobOutput, JobSpec, Service, ServiceError};
use dram_obs::EventDraft;
use dram_perf::SharedProfiler;
use dram_sim::{ChipEvent, CommandSink, Tee};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// How a connection schedules its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// One request at a time, in arrival order — byte-stable for a
    /// given input, the mode CI smokes pin with `--serial`.
    Serial,
    /// Each request on its own handler thread; responses are written
    /// as they complete, tagged by request id.
    Pipelined,
}

/// Streams `phase:`/`span:` markers from a running job as
/// `{"resp":"progress",...}` lines on the connection's writer.
struct ProgressSink<W: Write> {
    writer: Arc<Mutex<W>>,
    id: String,
}

impl<W: Write> CommandSink for ProgressSink<W> {
    fn record(&mut self, event: ChipEvent<'_>) {
        let ChipEvent::Marker { label } = event else {
            return;
        };
        if !(label.starts_with("phase:") || label.starts_with("span:")) {
            return;
        }
        let line = format!(
            "{{\"resp\":\"progress\",\"id\":{},\"marker\":{}}}\n",
            self.id,
            json_string(label)
        );
        // A panic elsewhere while the writer was held must not mute
        // progress for every later job: take the lock poisoned or not.
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// Renders a byte-stable result line. Field order is fixed; wall-clock
/// numbers are deliberately absent, so identical jobs render identical
/// lines except for the `cache` marker. The one opt-in exception is
/// `spans` (a profiled run's span tree), whose `wall_ns`/`self_ns`
/// numbers are host-dependent by design — a result line carries it only
/// when the request set `"spans":true` and the job actually ran.
fn result_line(
    id: &str,
    status: CacheStatus,
    spec: &JobSpec,
    output: &JobOutput,
    spans: Option<&str>,
) -> String {
    let key = spec.key();
    let mut line = format!(
        concat!(
            "{{\"resp\":\"result\",\"id\":{},\"cache\":\"{}\",\"profile\":{},",
            "\"label\":{},\"seed\":{},\"sharded\":{},",
            "\"profile_digest\":\"0x{:016x}\",\"geometry_digest\":\"0x{:016x}\",",
            "\"dossier_digest\":\"0x{:016x}\",\"composition\":{},",
            "\"commands\":{},\"bitflips\":{},\"dossier\":{}}}"
        ),
        id,
        status.as_str(),
        json_string(&spec.profile_name),
        json_string(&output.label),
        spec.seed,
        spec.sharded,
        key.profile_digest,
        key.geometry_digest,
        output.digest,
        json_string(&output.composition),
        output.commands,
        output.bitflips,
        json_string(&output.dossier),
    );
    if let Some(spans) = spans {
        line.pop();
        line.push_str(",\"spans\":");
        line.push_str(spans);
        line.push('}');
    }
    line
}

/// Renders the `stats` response: service counters plus the merged
/// telemetry registry spliced in as a JSON array of its JSON-lines
/// objects.
fn stats_line(id: &str, service: &Service) -> String {
    let s = service.stats();
    let p = service.pool_stats();
    let telemetry: Vec<String> = service
        .telemetry()
        .to_json_lines()
        .lines()
        .map(str::to_string)
        .collect();
    format!(
        concat!(
            "{{\"resp\":\"stats\",\"id\":{},\"submitted\":{},\"hits\":{},",
            "\"misses\":{},\"coalesced\":{},\"executions\":{},\"errors\":{},",
            "\"in_flight\":{},\"cache_entries\":{},\"cache_bytes\":{},",
            "\"evictions\":{},\"disk_hits\":{},\"salvaged\":{},",
            "\"uptime_jobs_completed\":{},\"queue_depth\":{},",
            "\"jobs_queued\":{},\"jobs_running\":{},\"jobs_panicked\":{},",
            "\"telemetry\":[{}]}}"
        ),
        id,
        s.submitted,
        s.hits,
        s.misses,
        s.coalesced,
        s.executions,
        s.errors,
        s.in_flight,
        s.cache_entries,
        s.cache_bytes,
        s.evictions,
        s.disk_hits,
        s.salvaged,
        p.jobs_completed,
        p.queue_depth(),
        p.jobs_queued,
        p.jobs_running(),
        p.jobs_panicked,
        telemetry.join(","),
    )
}

/// Renders an `events` tail: one `{"resp":"event",...}` line per ring
/// event at or past the cursor, then a final `{"resp":"events",...}`
/// cursor line carrying `next_seq` for resumption and `dropped` (events
/// evicted from the ring before they could be read). `stable` renders
/// events without their wall-clock map, making the whole tail
/// byte-stable for a given request history.
fn events_lines(id: &str, service: &Service, since_seq: u64, max: u64, stable: bool) -> String {
    let max = usize::try_from(max).unwrap_or(usize::MAX);
    let tail = service.events().since(since_seq, max);
    let mut out = String::new();
    for event in &tail.events {
        let rendered = if stable {
            event.stable_line()
        } else {
            event.line()
        };
        out.push_str(&format!(
            "{{\"resp\":\"event\",\"id\":{id},\"event\":{rendered}}}\n"
        ));
    }
    out.push_str(&format!(
        "{{\"resp\":\"events\",\"id\":{},\"count\":{},\"dropped\":{},\"next_seq\":{}}}",
        id,
        tail.events.len(),
        tail.dropped,
        tail.next_seq,
    ));
    out
}

/// Renders the `query` response: the trace-lake report of evaluating
/// the predicate over the daemon's configured trace directory, embedded
/// as the deterministic JSON that [`dram_trace::QueryReport::to_json`]
/// renders. An unconfigured directory or a failing scan answers with an
/// error line — never a panic, never a partial report.
fn query_line(id: &str, service: &Service, req: &QueryRequest) -> String {
    let Some(dir) = service.trace_dir() else {
        return error_line(&ProtocolError {
            id: id.to_string(),
            message: "no trace directory configured (start the daemon with --trace-dir)".into(),
        });
    };
    match dram_trace::query_path(&dir, &req.to_query()) {
        Ok(report) => format!(
            "{{\"resp\":\"query\",\"id\":{},\"dir\":{},\"matched\":{},\"report\":{}}}",
            id,
            json_string(&dir.display().to_string()),
            report.is_match(),
            report.to_json(),
        ),
        Err(message) => error_line(&ProtocolError {
            id: id.to_string(),
            message,
        }),
    }
}

/// Renders the `metrics` response: the Prometheus text exposition as an
/// escaped JSON string body, with its content type alongside so HTTP
/// gateways can forward it verbatim.
fn metrics_line(id: &str, service: &Service) -> String {
    format!(
        "{{\"resp\":\"metrics\",\"id\":{},\"content_type\":\"text/plain; version=0.0.4\",\"body\":{}}}",
        id,
        json_string(&service.metrics_prometheus()),
    )
}

/// One bounded request line, or `Ok(None)` at EOF.
///
/// Lines longer than [`MAX_REQUEST_BYTES`] are consumed to their
/// newline and reported as `Err(total_bytes)` so the caller can answer
/// with an error and keep the connection alive. Invalid UTF-8 is
/// reported the same way (`Err(0)`); the broken line is already
/// consumed by the failed read.
fn read_request_line<R: BufRead>(reader: &mut R) -> io::Result<Option<Result<String, usize>>> {
    let mut line = String::new();
    let n = match reader
        .by_ref()
        .take(MAX_REQUEST_BYTES as u64 + 1)
        .read_line(&mut line)
    {
        Ok(n) => n,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => return Ok(Some(Err(0))),
        Err(e) => return Err(e),
    };
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && n > MAX_REQUEST_BYTES {
        // Oversized: drain the rest of the line without buffering it.
        let mut dropped = n;
        loop {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                break;
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    dropped += pos + 1;
                    reader.consume(pos + 1);
                    break;
                }
                None => {
                    let len = buf.len();
                    dropped += len;
                    reader.consume(len);
                }
            }
        }
        return Ok(Some(Err(dropped)));
    }
    Ok(Some(Ok(line)))
}

fn write_line<W: Write>(writer: &Arc<Mutex<W>>, line: &str) -> io::Result<()> {
    // A handler thread that panicked mid-write poisons this mutex; the
    // bytes it wrote are already flushed or lost either way, so later
    // responses keep the connection alive instead of unwinding it.
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn run_characterize<W: Write + Send + 'static>(
    service: &Service,
    writer: &Arc<Mutex<W>>,
    req: &CharacterizeRequest,
) -> String {
    // The parser already validated the name; re-resolve for the profile.
    let Some((profile, _)) = profiles::named_job(&req.profile_name) else {
        return error_line(&ProtocolError {
            id: req.id.clone(),
            message: format!("unknown profile \"{}\"", req.profile_name),
        });
    };
    let spec = JobSpec::new(req, profile);
    // Both live sinks observe the serial flow only: sharded runs build
    // their per-bank chips worker-side, out of one sink's reach.
    let progress = (req.progress && !req.sharded).then(|| ProgressSink {
        writer: Arc::clone(writer),
        id: req.id.clone(),
    });
    let profiler = (req.spans && !req.sharded).then(SharedProfiler::new);
    let sink: Option<Box<dyn CommandSink + Send>> = match (progress, profiler.clone()) {
        (Some(p), Some(prof)) => Some(Box::new(Tee::new(p, prof))),
        (Some(p), None) => Some(Box::new(p)),
        (None, Some(prof)) => Some(prof.sink()),
        (None, None) => None,
    };
    // Correlate service/pool events with the request id; an absent id
    // falls back to the profile name inside `submit_traced`.
    let job_id = (req.id != "null").then(|| req.id.trim_matches('"').to_string());
    match service.submit_traced(&spec, sink, job_id.as_deref()) {
        Ok((output, status)) => {
            // The profiler only observed anything when the job actually
            // ran on this request; cached/coalesced results carry none.
            let spans = profiler
                .filter(|_| status == CacheStatus::Miss)
                .map(|p| p.finish().to_json());
            result_line(&req.id, status, &spec, &output, spans.as_deref())
        }
        Err(e) => error_line(&ProtocolError {
            id: req.id.clone(),
            message: match e {
                ServiceError::ShutDown => "service is shut down".to_string(),
                ServiceError::Job(e) => format!("job failed: {e}"),
            },
        }),
    }
}

/// The raw id token of any request (already JSON-rendered: a quoted
/// string, a number, or `null`).
fn request_id(req: &Request) -> &str {
    match req {
        Request::Characterize(req) => &req.id,
        Request::Stats { id }
        | Request::Events { id, .. }
        | Request::Metrics { id }
        | Request::Shutdown { id } => id,
        Request::Query(req) => &req.id,
    }
}

/// Emits the `request.received` event for a decoded request. `events`
/// deliberately emits nothing: tailing the ring must not mutate it, so
/// repeating the same tail is idempotent and byte-stable.
fn note_received(service: &Service, req: &Request) {
    let kind = match req {
        Request::Characterize(_) => "characterize",
        Request::Stats { .. } => "stats",
        Request::Events { .. } => return,
        Request::Metrics { .. } => "metrics",
        Request::Query(_) => "query",
        Request::Shutdown { .. } => "shutdown",
    };
    service
        .events()
        .emit(EventDraft::info("request.received").field_str("req", kind));
}

/// Computes the response line(s) for any request except `shutdown`,
/// whose drain protocol belongs to the connection loop.
fn respond<W: Write + Send + 'static>(
    service: &Service,
    writer: &Arc<Mutex<W>>,
    req: &Request,
) -> String {
    match req {
        Request::Characterize(req) => run_characterize(service, writer, req),
        Request::Stats { id } => stats_line(id, service),
        Request::Events {
            id,
            since_seq,
            max,
            stable,
        } => events_lines(id, service, *since_seq, *max, *stable),
        Request::Metrics { id } => metrics_line(id, service),
        Request::Query(req) => query_line(&req.id, service, req),
        Request::Shutdown { .. } => unreachable!("shutdown is handled by the connection loop"),
    }
}

/// Computes and writes one response, absorbing a panicking handler
/// into an error line so the connection (and its writer lock) survive.
fn respond_and_write<W: Write + Send + 'static>(
    service: &Service,
    writer: &Arc<Mutex<W>>,
    req: &Request,
) -> io::Result<()> {
    let line =
        catch_unwind(AssertUnwindSafe(|| respond(service, writer, req))).unwrap_or_else(|_| {
            error_line(&ProtocolError {
                id: request_id(req).to_string(),
                message: "request handler panicked; connection stays open".into(),
            })
        });
    write_line(writer, &line)
}

/// Serves one connection until EOF or a `shutdown` request, in
/// [`ConnMode::Serial`] order. Kept as the byte-stable entry point:
/// existing embedders and CI smokes rely on responses landing in
/// request order.
///
/// Returns `Ok(true)` when the client asked for shutdown (the service
/// queue is already drained by then), `Ok(false)` at EOF.
///
/// # Errors
///
/// Only transport failures (broken pipe, etc.) — never anything the
/// client wrote.
pub fn handle_connection<R: BufRead, W: Write + Send + 'static>(
    service: &Service,
    reader: R,
    writer: &Arc<Mutex<W>>,
) -> io::Result<bool> {
    handle_connection_mode(service, reader, writer, ConnMode::Serial)
}

/// Serves one connection in the given [`ConnMode`].
///
/// Serial mode answers each request before reading the next.
/// Pipelined mode dispatches each decoded request onto its own handler
/// thread and writes responses as they complete; a `shutdown` request
/// or EOF joins every in-flight request before draining, so no
/// response is ever dropped. Malformed lines are answered inline in
/// both modes.
///
/// # Errors
///
/// Only transport failures — never anything the client wrote, and
/// never a panicking job (those answer an error line instead).
pub fn handle_connection_mode<R: BufRead, W: Write + Send + 'static>(
    service: &Service,
    mut reader: R,
    writer: &Arc<Mutex<W>>,
    mode: ConnMode,
) -> io::Result<bool> {
    service.events().emit(EventDraft::info("conn.open"));
    let mut requests: u64 = 0;
    let close = |requests: u64| {
        service
            .events()
            .emit(EventDraft::info("conn.close").field_u64("requests", requests));
    };
    std::thread::scope(|scope| {
        let mut handles: Vec<std::thread::ScopedJoinHandle<'_, io::Result<()>>> = Vec::new();
        // Joins every in-flight handler before a drain point (shutdown
        // ack or EOF), surfacing the first transport error any of them
        // hit. Handler panics cannot reach here: `respond_and_write`
        // converts them to error lines.
        let join_all = |handles: &mut Vec<std::thread::ScopedJoinHandle<'_, io::Result<()>>>| {
            let mut first_err = None;
            for handle in handles.drain(..) {
                if let Ok(Err(e)) = handle.join() {
                    first_err.get_or_insert(e);
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        };
        loop {
            let line = match read_request_line(&mut reader)? {
                None => {
                    join_all(&mut handles)?;
                    close(requests);
                    return Ok(false);
                }
                Some(Err(0)) => {
                    let e = ProtocolError {
                        id: "null".into(),
                        message: "request line is not valid UTF-8".into(),
                    };
                    service.events().emit(
                        EventDraft::warn("request.decode_error").field_str("message", &e.message),
                    );
                    write_line(writer, &error_line(&e))?;
                    continue;
                }
                Some(Err(bytes)) => {
                    let e = ProtocolError {
                        id: "null".into(),
                        message: format!(
                            "request line of {bytes} bytes exceeds the {MAX_REQUEST_BYTES}-byte limit"
                        ),
                    };
                    service.events().emit(
                        EventDraft::warn("request.decode_error").field_str("message", &e.message),
                    );
                    write_line(writer, &error_line(&e))?;
                    continue;
                }
                Some(Ok(line)) => line,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            requests += 1;
            let req = match parse_request(line) {
                Err(e) => {
                    service.events().emit(
                        EventDraft::warn("request.decode_error").field_str("message", &e.message),
                    );
                    write_line(writer, &error_line(&e))?;
                    continue;
                }
                Ok(req) => req,
            };
            note_received(service, &req);
            if let Request::Shutdown { id } = &req {
                // Outstanding responses first, then the drain, then the
                // ack — a client that waits for the ack has seen every
                // response it is owed.
                join_all(&mut handles)?;
                service.shutdown();
                close(requests);
                write_line(
                    writer,
                    &format!("{{\"resp\":\"shutdown\",\"id\":{id},\"drained\":true}}"),
                )?;
                return Ok(true);
            }
            match mode {
                ConnMode::Serial => respond_and_write(service, writer, &req)?,
                ConnMode::Pipelined => {
                    let writer = Arc::clone(writer);
                    handles.push(scope.spawn(move || respond_and_write(service, &writer, &req)));
                }
            }
        }
    })
}

/// Serves requests from stdin to stdout until EOF or `shutdown`, then
/// drains the pool, answering in request order ([`ConnMode::Serial`]).
///
/// # Errors
///
/// Transport failures on stdin/stdout only.
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    serve_stdio_mode(service, ConnMode::Serial)
}

/// Serves requests from stdin to stdout in the given [`ConnMode`]
/// until EOF or `shutdown`, then drains the pool.
///
/// # Errors
///
/// Transport failures on stdin/stdout only.
pub fn serve_stdio_mode(service: &Service, mode: ConnMode) -> io::Result<()> {
    let reader = BufReader::new(io::stdin().lock());
    let writer = Arc::new(Mutex::new(io::stdout()));
    handle_connection_mode(service, reader, &writer, mode)?;
    service.shutdown();
    Ok(())
}

/// Serves a unix-socket listener at `path`, one thread per connection,
/// all connections sharing `service` (so identical jobs on different
/// connections coalesce). A `shutdown` request on any connection stops
/// the listener, joins every connection thread, and drains the pool.
///
/// # Errors
///
/// Socket bind/accept failures.
#[cfg(unix)]
pub fn serve_unix(service: &Arc<Service>, path: &std::path::Path) -> io::Result<()> {
    serve_unix_mode(service, path, ConnMode::Serial)
}

/// [`serve_unix`] with an explicit per-connection [`ConnMode`].
///
/// # Errors
///
/// Socket bind/accept failures.
#[cfg(unix)]
pub fn serve_unix_mode(
    service: &Arc<Service>,
    path: &std::path::Path,
    mode: ConnMode,
) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        let stream = stream?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let service = Arc::clone(service);
        let stop = Arc::clone(&stop);
        let poke = path.to_path_buf();
        handles.push(std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(_) => return,
            };
            let writer = Arc::new(Mutex::new(stream));
            let shutdown = handle_connection_mode(&service, reader, &writer, mode).unwrap_or(false);
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the stop flag.
                let _ = UnixStream::connect(&poke);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    service.shutdown();
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use dram_sim::digest::fnv1a_64;
    use dram_telemetry::Registry;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Runs `input` through a fresh service with a counting stub runner
    /// and returns the response lines plus the execution count.
    fn drive(input: &str) -> (Vec<String>, u64) {
        let count = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&count);
        let service = Service::with_runner(
            1,
            Arc::new(move |spec: &JobSpec, sink| {
                counter.fetch_add(1, Ordering::SeqCst);
                if let Some(mut sink) = sink {
                    sink.record(ChipEvent::Marker {
                        label: "phase:structure",
                    });
                    sink.record(ChipEvent::Marker { label: "act:17" });
                }
                let text = format!("dossier {} {}", spec.profile_name, spec.seed);
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: fnv1a_64(text.as_bytes()),
                    composition: "c".into(),
                    dossier: text,
                    commands: 2,
                    bitflips: 1,
                    metrics: Registry::new(),
                })
            }),
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
        let bytes = writer.lock().unwrap().clone();
        let lines = String::from_utf8(bytes)
            .expect("utf8 responses")
            .lines()
            .map(str::to_string)
            .collect();
        (lines, count.load(Ordering::SeqCst))
    }

    #[test]
    fn same_job_twice_is_one_simulation_and_a_cache_hit() {
        let input = "\
            {\"req\":\"characterize\",\"id\":\"a\",\"profile\":\"test_small\",\"seed\":1}\n\
            {\"req\":\"characterize\",\"id\":\"b\",\"profile\":\"test_small\",\"seed\":1}\n";
        let (lines, executions) = drive(input);
        assert_eq!(executions, 1, "second request served from cache");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
        let digest_of = |line: &str| {
            let idx = line.find("\"dossier_digest\":").expect("digest field");
            line[idx..idx + 40].to_string()
        };
        assert_eq!(digest_of(&lines[0]), digest_of(&lines[1]));
        // Byte-stable apart from the id and the cache marker.
        let canon = |line: &str| {
            line.replace("\"id\":\"a\"", "\"id\":X")
                .replace("\"id\":\"b\"", "\"id\":X")
                .replace("\"cache\":\"miss\"", "\"cache\":Y")
                .replace("\"cache\":\"hit\"", "\"cache\":Y")
        };
        assert_eq!(canon(&lines[0]), canon(&lines[1]));
    }

    #[test]
    fn malformed_lines_answer_errors_and_never_kill_the_loop() {
        let input = "\
            not json at all\n\
            {\"req\":\"characterize\"}\n\
            \n\
            {\"req\":\"characterize\",\"id\":\"ok\",\"profile\":\"test_small\"}\n";
        let (lines, executions) = drive(input);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with("{\"resp\":\"error\""));
        assert!(lines[1].starts_with("{\"resp\":\"error\""));
        assert!(lines[2].contains("\"resp\":\"result\""), "{}", lines[2]);
        assert_eq!(executions, 1);
    }

    #[test]
    fn oversized_and_invalid_utf8_lines_are_survivable() {
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"req\":\"stats\",\"pad\":\"");
        input.extend(vec![b'x'; MAX_REQUEST_BYTES + 10]);
        input.extend_from_slice(b"\"}\n");
        input.extend_from_slice(b"\xff\xfe not utf8\n");
        input.extend_from_slice(b"{\"req\":\"stats\",\"id\":\"s\"}\n");
        let service = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| unreachable!("no jobs submitted")),
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        handle_connection(&service, input.as_slice(), &writer).expect("transport ok");
        let bytes = writer.lock().unwrap().clone();
        let out = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("exceeds"), "{}", lines[0]);
        assert!(lines[1].contains("not valid UTF-8"), "{}", lines[1]);
        assert!(lines[2].starts_with("{\"resp\":\"stats\""), "{}", lines[2]);
    }

    #[test]
    fn progress_markers_stream_for_phase_labels_only() {
        let input = "{\"req\":\"characterize\",\"id\":\"p\",\"profile\":\"test_small\",\"progress\":true}\n";
        let (lines, _) = drive(input);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert_eq!(
            lines[0],
            "{\"resp\":\"progress\",\"id\":\"p\",\"marker\":\"phase:structure\"}"
        );
        assert!(lines[1].contains("\"resp\":\"result\""));
        assert!(!lines.iter().any(|l| l.contains("act:17")));
    }

    #[test]
    fn shutdown_acks_drains_and_ends_the_connection() {
        let input = "\
            {\"req\":\"shutdown\",\"id\":\"z\"}\n\
            {\"req\":\"stats\"}\n";
        let count = Arc::new(AtomicU64::new(0));
        let service = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| unreachable!("no jobs submitted")),
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shutdown =
            handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
        assert!(shutdown, "handler reports the shutdown request");
        let bytes = writer.lock().unwrap().clone();
        let out = String::from_utf8(bytes).unwrap();
        assert_eq!(
            out,
            "{\"resp\":\"shutdown\",\"id\":\"z\",\"drained\":true}\n"
        );
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn stats_response_carries_counters_and_telemetry_array() {
        let (lines, _) = drive("{\"req\":\"stats\",\"id\":1}\n");
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"resp\":\"stats\",\"id\":1,"), "{line}");
        for field in [
            "submitted",
            "hits",
            "misses",
            "coalesced",
            "uptime_jobs_completed",
            "queue_depth",
            "jobs_running",
            "telemetry",
        ] {
            assert!(line.contains(&format!("\"{field}\":")), "{line}");
        }
        // The whole stats line must itself parse as JSON.
        dram_perf::json::parse("stats", line).expect("stats line is valid JSON");
    }

    #[test]
    fn events_tail_shows_miss_then_hit_and_is_idempotent() {
        let input = "\
            {\"req\":\"characterize\",\"id\":\"a\",\"profile\":\"test_small\",\"seed\":1}\n\
            {\"req\":\"characterize\",\"id\":\"b\",\"profile\":\"test_small\",\"seed\":1}\n\
            {\"req\":\"events\",\"id\":\"e\",\"since_seq\":0,\"stable\":true}\n\
            {\"req\":\"events\",\"id\":\"e\",\"since_seq\":0,\"stable\":true}\n";
        let (lines, _) = drive(input);
        let tails: Vec<Vec<&String>> = {
            let mut tails = Vec::new();
            let mut current = Vec::new();
            let mut in_tail = false;
            for line in &lines {
                if line.starts_with("{\"resp\":\"event\",") {
                    in_tail = true;
                    current.push(line);
                } else if in_tail {
                    current.push(line);
                    tails.push(std::mem::take(&mut current));
                    in_tail = false;
                }
            }
            tails
        };
        assert_eq!(tails.len(), 2, "{lines:?}");
        // Tailing must not grow the ring: both tails are byte-identical.
        assert_eq!(tails[0], tails[1]);
        let joined: Vec<String> = tails[0].iter().map(|l| l.to_string()).collect();
        let miss = joined
            .iter()
            .position(|l| l.contains("\"kind\":\"cache.miss\"") && l.contains("\"job\":\"a\""))
            .expect("miss event for job a");
        let hit = joined
            .iter()
            .position(|l| l.contains("\"kind\":\"cache.hit\"") && l.contains("\"job\":\"b\""))
            .expect("hit event for job b");
        assert!(miss < hit, "miss precedes hit: {joined:?}");
        // Lifecycle events for the executed job carry its correlation id.
        for kind in ["job.queued", "job.started", "job.finished"] {
            assert!(
                joined
                    .iter()
                    .any(|l| l.contains(&format!("\"kind\":\"{kind}\""))
                        && l.contains("\"job\":\"a\"")),
                "{kind} for job a in {joined:?}"
            );
        }
        // Stable mode excludes every wall-clock key.
        assert!(joined.iter().all(|l| !l.contains("\"wall\"")), "{joined:?}");
        // The cursor line closes the tail.
        let last = joined.last().unwrap();
        assert!(
            last.starts_with("{\"resp\":\"events\",\"id\":\"e\","),
            "{last}"
        );
        assert!(last.contains("\"next_seq\":"), "{last}");
        // Each event line parses as JSON.
        for line in &joined {
            dram_perf::json::parse("events", line).expect("event line is valid JSON");
        }
    }

    #[test]
    fn metrics_response_embeds_prometheus_text() {
        let input = "\
            {\"req\":\"characterize\",\"id\":\"a\",\"profile\":\"test_small\",\"seed\":1}\n\
            {\"req\":\"metrics\",\"id\":\"m\"}\n";
        let (lines, _) = drive(input);
        let line = lines.last().unwrap();
        assert!(
            line.starts_with("{\"resp\":\"metrics\",\"id\":\"m\","),
            "{line}"
        );
        assert!(
            line.contains("\"content_type\":\"text/plain; version=0.0.4\""),
            "{line}"
        );
        let parsed = dram_perf::json::parse("metrics", line).expect("valid JSON");
        let body = parsed
            .as_object()
            .and_then(|o| o.get("body"))
            .and_then(|v| v.as_str())
            .expect("body string")
            .to_string();
        assert!(
            body.contains("# TYPE dramscoped_submitted_total counter"),
            "{body}"
        );
        assert!(
            body.contains("dramscoped_uptime_jobs_completed 1"),
            "{body}"
        );
    }

    #[test]
    fn query_without_a_trace_dir_answers_an_error() {
        let service = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| unreachable!("no jobs submitted")),
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let input = "{\"req\":\"query\",\"id\":\"q\",\"cmd\":\"act\"}\n";
        handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
        let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
        assert!(out.contains("\"resp\":\"error\""), "{out}");
        assert!(out.contains("no trace directory configured"), "{out}");
    }

    #[test]
    fn query_answers_from_the_configured_trace_dir() {
        use dram_sim::chip::Command;
        use dram_sim::sink::CommandOutcome;
        use dram_sim::Time;
        use dram_trace::{Trace, TraceEvent, TraceHeader};

        // One indexed trace with a marked segment holding two ACTs to
        // bank 3 and one to bank 0.
        let trace = Trace {
            header: TraceHeader {
                profile_label: "daemon-query".into(),
                seed: 9,
                geometry_hash: 0xabc,
                dossier_digest: None,
                dropped: 0,
                meta: vec![],
            },
            events: vec![
                TraceEvent::Marker {
                    label: "span:trr_window:enter".into(),
                },
                TraceEvent::Command {
                    cmd: Command::Activate { bank: 3, row: 1 },
                    at: Time::from_ns(10),
                    outcome: CommandOutcome::Accepted,
                },
                TraceEvent::Command {
                    cmd: Command::Activate { bank: 3, row: 2 },
                    at: Time::from_ns(20),
                    outcome: CommandOutcome::Accepted,
                },
                TraceEvent::Command {
                    cmd: Command::Activate { bank: 0, row: 3 },
                    at: Time::from_ns(30),
                    outcome: CommandOutcome::Accepted,
                },
            ],
        };
        let dir = std::env::temp_dir().join(format!("dramscoped_query_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::fs::write(dir.join("run.trace"), trace.to_bytes_indexed()).expect("trace written");

        let service = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| unreachable!("no jobs submitted")),
        );
        service.set_trace_dir(&dir);
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let input = "\
            {\"req\":\"query\",\"id\":\"q1\",\"cmd\":\"act\",\"bank\":3,\"marker\":\"span:trr_window\"}\n\
            {\"req\":\"query\",\"id\":\"q2\",\"cmd\":\"rfm\"}\n";
        handle_connection(&service, input.as_bytes(), &writer).expect("transport ok");
        let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].starts_with("{\"resp\":\"query\",\"id\":\"q1\","),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"matched\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"matched\":2"), "{}", lines[0]);
        assert!(
            lines[0].contains("\"label\":\"span:trr_window:enter\""),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"matched\":false"), "{}", lines[1]);
        // Both lines parse as JSON and the tail is byte-stable.
        for line in &lines {
            dram_perf::json::parse("query", line).expect("query line is valid JSON");
        }
        let writer2 = Arc::new(Mutex::new(Vec::<u8>::new()));
        handle_connection(&service, input.as_bytes(), &writer2).expect("transport ok");
        assert_eq!(
            out,
            String::from_utf8(writer2.lock().unwrap().clone()).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_cached_response_overtakes_a_slow_miss() {
        use std::sync::Condvar;

        // A runner that parks seed-1 jobs on a gate; everything else
        // returns immediately.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let runner_gate = Arc::clone(&gate);
        let count = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&count);
        let service = Service::with_runner(
            1,
            Arc::new(move |spec: &JobSpec, _sink| {
                counter.fetch_add(1, Ordering::SeqCst);
                if spec.seed == 1 {
                    let (lock, cv) = &*runner_gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
                let text = format!("dossier {}", spec.seed);
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: fnv1a_64(text.as_bytes()),
                    composition: "c".into(),
                    dossier: text,
                    commands: 1,
                    bitflips: 0,
                    metrics: Registry::new(),
                })
            }),
        );
        // Warm the cache with seed 2 so the second request on the wire
        // is a pure cache hit that never needs the (occupied) pool.
        let (profile, opts) = profiles::named_job("test_small").unwrap();
        let warm = JobSpec {
            profile_name: "test_small".into(),
            profile,
            seed: 2,
            opts,
            sharded: false,
        };
        service.submit(&warm, None).unwrap();

        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        // Open the gate only once the cached response is on the wire,
        // so the slow job cannot finish before the fast one is written.
        let monitor_writer = Arc::clone(&writer);
        let monitor_gate = Arc::clone(&gate);
        let monitor = std::thread::spawn(move || loop {
            let seen = {
                let buf = monitor_writer.lock().unwrap();
                String::from_utf8_lossy(&buf).contains("\"id\":\"fast\"")
            };
            if seen {
                let (lock, cv) = &*monitor_gate;
                *lock.lock().unwrap() = true;
                cv.notify_all();
                return;
            }
            std::thread::yield_now();
        });

        let input = "\
            {\"req\":\"characterize\",\"id\":\"slow\",\"profile\":\"test_small\",\"seed\":1}\n\
            {\"req\":\"characterize\",\"id\":\"fast\",\"profile\":\"test_small\",\"seed\":2}\n";
        handle_connection_mode(&service, input.as_bytes(), &writer, ConnMode::Pipelined)
            .expect("transport ok");
        monitor.join().unwrap();

        let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("\"id\":\"fast\"") && lines[0].contains("\"cache\":\"hit\""),
            "cached response overtook the slow miss: {}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"id\":\"slow\"") && lines[1].contains("\"cache\":\"miss\""),
            "{}",
            lines[1]
        );
        assert_eq!(count.load(Ordering::SeqCst), 2, "warm + slow, no rerun");
    }

    #[test]
    fn panicking_job_answers_an_error_and_the_daemon_keeps_serving() {
        let service = Service::with_runner(
            1,
            Arc::new(|spec: &JobSpec, _sink| {
                if spec.seed == 666 {
                    panic!("synthetic panic for seed 666");
                }
                Ok(JobOutput {
                    label: spec.profile.label(),
                    digest: 7,
                    composition: "c".into(),
                    dossier: "ok".into(),
                    commands: 1,
                    bitflips: 0,
                    metrics: Registry::new(),
                })
            }),
        );
        let input = "\
            {\"req\":\"characterize\",\"id\":\"boom\",\"profile\":\"test_small\",\"seed\":666}\n\
            {\"req\":\"stats\",\"id\":\"s\"}\n\
            {\"req\":\"characterize\",\"id\":\"ok\",\"profile\":\"test_small\",\"seed\":1}\n";
        for mode in [ConnMode::Serial, ConnMode::Pipelined] {
            let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
            handle_connection_mode(&service, input.as_bytes(), &writer, mode)
                .expect("transport ok");
            let out = String::from_utf8(writer.lock().unwrap().clone()).unwrap();
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 3, "{mode:?}: {lines:?}");
            let boom = lines
                .iter()
                .find(|l| l.contains("\"id\":\"boom\""))
                .expect("panicking job answered");
            assert!(boom.contains("\"resp\":\"error\""), "{boom}");
            assert!(boom.contains("panic"), "{boom}");
            assert!(
                lines.iter().any(|l| l.starts_with("{\"resp\":\"stats\"")),
                "{mode:?}: stats still answered: {lines:?}"
            );
            let ok = lines
                .iter()
                .find(|l| l.contains("\"id\":\"ok\""))
                .expect("later job answered");
            assert!(ok.contains("\"resp\":\"result\""), "{ok}");
        }
        // No stuck slot either: the service is idle after both drives.
        assert_eq!(service.stats().in_flight, 0);
    }

    #[test]
    fn poisoned_writer_does_not_kill_the_connection() {
        // Poison the writer mutex the way a panicking handler would.
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let poisoner = Arc::clone(&writer);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the writer");
        })
        .join();
        assert!(writer.lock().is_err(), "mutex is poisoned");
        let service = Service::with_runner(
            1,
            Arc::new(|_spec: &JobSpec, _sink| unreachable!("no jobs submitted")),
        );
        handle_connection(
            &service,
            "{\"req\":\"stats\",\"id\":1}\n".as_bytes(),
            &writer,
        )
        .expect("transport ok");
        let bytes = writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let out = String::from_utf8(bytes).unwrap();
        assert!(out.starts_with("{\"resp\":\"stats\""), "{out}");
    }

    #[test]
    fn pipelined_shutdown_joins_outstanding_requests_before_the_ack() {
        let (lines, executions) = {
            let count = Arc::new(AtomicU64::new(0));
            let counter = Arc::clone(&count);
            let service = Service::with_runner(
                1,
                Arc::new(move |spec: &JobSpec, _sink| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(JobOutput {
                        label: spec.profile.label(),
                        digest: 7,
                        composition: "c".into(),
                        dossier: "d".into(),
                        commands: 1,
                        bitflips: 0,
                        metrics: Registry::new(),
                    })
                }),
            );
            let input = "\
                {\"req\":\"characterize\",\"id\":\"a\",\"profile\":\"test_small\",\"seed\":1}\n\
                {\"req\":\"shutdown\",\"id\":\"z\"}\n";
            let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
            let shutdown =
                handle_connection_mode(&service, input.as_bytes(), &writer, ConnMode::Pipelined)
                    .expect("transport ok");
            assert!(shutdown);
            let bytes = writer.lock().unwrap().clone();
            let lines: Vec<String> = String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect();
            (lines, count.load(Ordering::SeqCst))
        };
        assert_eq!(executions, 1);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"id\":\"a\""), "response before ack");
        assert_eq!(
            lines[1],
            "{\"resp\":\"shutdown\",\"id\":\"z\",\"drained\":true}"
        );
    }

    #[test]
    fn spans_flag_attaches_a_span_tree_on_miss_only() {
        let input = "\
            {\"req\":\"characterize\",\"id\":\"s1\",\"profile\":\"test_small\",\"spans\":true}\n\
            {\"req\":\"characterize\",\"id\":\"s2\",\"profile\":\"test_small\",\"spans\":true}\n";
        let (lines, executions) = drive(input);
        assert_eq!(executions, 1);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("\"spans\":{\"schema\":\"dramscope.perf.spans\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[0].contains("\"name\":\"phase:structure\""),
            "profiled tree observed the marker: {}",
            lines[0]
        );
        // The cached response ran nothing, so it carries no span tree.
        assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
        assert!(!lines[1].contains("\"spans\":"), "{}", lines[1]);
        dram_perf::json::parse("result", &lines[0]).expect("result with spans is valid JSON");
    }
}
