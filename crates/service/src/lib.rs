//! # dramscope-service
//!
//! Characterization-as-a-service: the [`dramscoped`](crate::daemon)
//! daemon and the library engine behind it — a job queue over the
//! persistent [`FleetPool`](dramscope_core::FleetPool), in-flight
//! request coalescing, and a content-addressed dossier cache keyed on
//! `(profile_digest, seed, geometry_digest, options_digest)`.
//!
//! The wire protocol is JSON lines ([`protocol`]): one request per
//! line, byte-stable result lines, structured errors for every
//! malformed input (decoding is total — a client cannot crash the
//! daemon). The same handler serves stdin/stdout and a unix-socket
//! listener ([`daemon`]).
//!
//! # Example: two identical jobs, one simulation
//!
//! ```
//! use dramscope_service::{profiles, CacheStatus, JobSpec, Service};
//!
//! let service = Service::new(1);
//! let (profile, opts) = profiles::named_job("test_small").unwrap();
//! let spec = JobSpec {
//!     profile_name: "test_small".into(),
//!     profile,
//!     seed: 7,
//!     opts,
//!     sharded: false,
//! };
//! let (first, s1) = service.submit(&spec, None).unwrap();
//! let (second, s2) = service.submit(&spec, None).unwrap();
//! assert_eq!(s1, CacheStatus::Miss);
//! assert_eq!(s2, CacheStatus::Hit);
//! assert_eq!(first.digest, second.digest);
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod daemon;
pub mod profiles;
pub mod protocol;
pub mod service;

pub use daemon::{
    handle_connection, handle_connection_mode, serve_stdio, serve_stdio_mode, ConnMode,
};
#[cfg(unix)]
pub use daemon::{serve_unix, serve_unix_mode};
pub use protocol::{parse_request, ProtocolError, Request, DEFAULT_SEED, MAX_REQUEST_BYTES};
pub use service::{
    CacheStatus, DossierKey, JobOutput, JobSpec, Service, ServiceError, ServiceStats,
};
