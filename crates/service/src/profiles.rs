//! The canonical profile-name table shared by the daemon and the CLI.
//!
//! A characterization request names its device by a short snake-case
//! name (`"mfr_a_x4_2016"`, `"test_small"`, …). This module maps those
//! names to a [`ChipProfile`] plus the canonical [`CharacterizeOptions`]
//! for that device — the same per-device probe ranges the bench binaries
//! have always used — so a service request and a CLI run of the same
//! name characterize identically and therefore share cache entries.

use dram_sim::{ChipProfile, Time};
use dramscope_core::dossier::CharacterizeOptions;
use dramscope_core::fleet;

/// Preset names, index-aligned with [`fleet::table1_jobs`] (which
/// follows `ChipProfile::all_presets` order).
pub const PRESET_NAMES: [&str; 16] = [
    "mfr_a_x4_2016",
    "mfr_a_x4_2017",
    "mfr_a_x4_2018",
    "mfr_a_x4_2021",
    "mfr_a_x8_2017",
    "mfr_a_x8_2018",
    "mfr_a_x8_2019",
    "mfr_b_x4_2019",
    "mfr_b_x8_2017",
    "mfr_b_x8_2018",
    "mfr_b_x8_2019",
    "mfr_c_x4_2018",
    "mfr_c_x4_2021",
    "mfr_c_x8_2016",
    "mfr_c_x8_2019",
    "hbm2",
];

/// The small test profiles accepted alongside the Table I presets
/// (golden traces and CI smoke are built from these).
pub const TEST_PROFILE_NAMES: [&str; 4] = [
    "test_small",
    "test_small_interleaved",
    "test_small_coupled",
    "test_small_hbm2",
];

/// Resolves a Table I preset by name (the special name `"default"` is
/// `mfr_a_x4_2016`), paired with its canonical interior probe range.
pub fn preset_job(name: &str) -> Option<(ChipProfile, CharacterizeOptions)> {
    let name = if name == "default" {
        "mfr_a_x4_2016"
    } else {
        name
    };
    let idx = PRESET_NAMES.iter().position(|n| *n == name)?;
    let job = fleet::table1_jobs().swap_remove(idx);
    Some((job.profile, job.opts))
}

/// Options sized for the small CI/test profiles.
fn small_opts(scan_rows: u32) -> CharacterizeOptions {
    CharacterizeOptions {
        scan_rows,
        with_swizzle: false,
        probe_range: (44, 60),
        retention_wait: Time::from_ms(120_000),
    }
}

/// Resolves any characterizable profile name: every Table I preset plus
/// the small test profiles.
pub fn named_job(name: &str) -> Option<(ChipProfile, CharacterizeOptions)> {
    match name {
        "test_small" => Some((ChipProfile::test_small(), small_opts(129))),
        "test_small_interleaved" => Some((ChipProfile::test_small_interleaved(), small_opts(129))),
        // The coupled profile aliases rows at distance 1024; scanning one
        // extra block keeps the structure probe on real subarrays.
        "test_small_coupled" => Some((ChipProfile::test_small_coupled(), small_opts(257))),
        "test_small_hbm2" => Some((ChipProfile::test_small_hbm2(), small_opts(129))),
        _ => preset_job(name),
    }
}

/// Every name [`named_job`] accepts, for error messages.
pub fn known_names() -> Vec<&'static str> {
    PRESET_NAMES
        .iter()
        .chain(TEST_PROFILE_NAMES.iter())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in known_names() {
            let (profile, opts) = named_job(name).unwrap_or_else(|| panic!("{name} resolves"));
            assert!(opts.probe_range.0 < opts.probe_range.1, "{name}");
            assert!(opts.scan_rows > 0, "{name}");
            assert!(profile.banks > 0, "{name}");
        }
        assert!(named_job("no_such_device").is_none());
    }

    #[test]
    fn default_is_the_first_preset() {
        let (profile, _) = named_job("default").expect("default resolves");
        assert_eq!(profile.label(), ChipProfile::mfr_a_x4_2016().label());
    }

    #[test]
    fn preset_jobs_match_the_fleet_table() {
        for (name, job) in PRESET_NAMES.iter().zip(fleet::table1_jobs()) {
            let (profile, opts) = preset_job(name).expect("preset resolves");
            assert_eq!(profile.digest(), job.profile.digest(), "{name}");
            assert_eq!(opts, job.opts, "{name}");
        }
    }
}
