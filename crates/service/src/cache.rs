//! The dossier store: a capacity-bounded in-memory cache with an
//! optional on-disk persistence tier.
//!
//! # Bounded memory tier
//!
//! Entries live in a `BTreeMap` keyed by [`DossierKey`] alongside a
//! monotonically increasing *hit sequence*: every lookup or insert
//! stamps the entry with the next sequence number, and when a limit
//! ([`CacheLimits::max_entries`] or [`CacheLimits::max_bytes`]) is
//! exceeded the entry with the **smallest** stamp is evicted first —
//! a deterministic LRU. Determinism matters here the same way it does
//! everywhere else in the repo: for a given request history the set of
//! cached entries (and therefore every `stats` counter and `cache.*`
//! event) is reproducible byte for byte. The most recently touched
//! entry is never evicted, so a single oversized dossier parks at one
//! entry over budget rather than thrashing.
//!
//! # Persistence tier
//!
//! With a cache directory configured, every completed job is also
//! written to `<dir>/0x<key>` where `<key>` is the 64-hex-digit
//! concatenation of the four [`DossierKey`] digests. The file format
//! is three lines:
//!
//! ```text
//! DSSR1
//! {"label":...,"composition":...,"digest":"0x…",(…),"dossier":...}
//! fnv1a:0x<16 hex digits over the payload line>
//! ```
//!
//! Writes go to a hidden temp file in the same directory first and are
//! `rename`d into place, so a crash mid-write can never leave a
//! half-written `0x<key>` entry for a restart to trip over — the worst
//! case is a stray `.tmp` file the loader never looks at. Loading is
//! lazy (first request for a key probes the disk) and **total**: a
//! truncated, corrupt, or alien file decodes to a structured error
//! that the service treats as a miss (with a `cache.salvage` event),
//! never a panic. Memory-tier eviction leaves disk files in place;
//! they are the restart story, not the memory-bound story.

use crate::service::{DossierKey, JobOutput};
use dram_perf::json::{self, Value};
use dram_sim::digest::fnv1a_64;
use dram_telemetry::Registry;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic first line of a persisted dossier entry.
pub const ENTRY_MAGIC: &str = "DSSR1";

/// Hard ceiling on one persisted entry file, bytes. Anything larger is
/// refused by the loader before buffering (a corrupt or hostile cache
/// directory must not OOM the daemon).
pub const MAX_ENTRY_FILE_BYTES: u64 = 16 * 1024 * 1024;

/// Capacity bounds for the in-memory tier. `0` means unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum resident entries (`0` = unbounded).
    pub max_entries: u64,
    /// Maximum resident payload bytes (`0` = unbounded), measured by
    /// [`entry_bytes`].
    pub max_bytes: u64,
}

/// One eviction the store performed, reported back so the service can
/// count it and narrate it on the event bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The key that was dropped from the memory tier.
    pub key: DossierKey,
    /// The payload bytes it was charged for.
    pub bytes: u64,
}

/// The outcome of probing the persistence tier for a key.
#[derive(Debug)]
pub enum DiskProbe {
    /// No directory configured, or no file for this key.
    Absent,
    /// The entry decoded cleanly.
    Loaded(Arc<JobOutput>),
    /// A file exists but could not be decoded; the message says why.
    /// The caller treats this as a miss (the entry will be rewritten
    /// when the job completes).
    Salvage(String),
}

struct StoreEntry {
    output: Arc<JobOutput>,
    /// Hit-sequence stamp of the last lookup or insert.
    last_used: u64,
    bytes: u64,
}

/// The bytes an entry is charged for under [`CacheLimits::max_bytes`]:
/// its variable-length payload strings plus a fixed overhead for the
/// key and counters.
pub fn entry_bytes(output: &JobOutput) -> u64 {
    (output.dossier.len() + output.label.len() + output.composition.len() + 64) as u64
}

/// Renders a key as its cache file name: `0x` plus the 64-hex-digit
/// concatenation of `(profile, seed, geometry, options)`.
pub fn key_file_name(key: &DossierKey) -> String {
    format!(
        "0x{:016x}{:016x}{:016x}{:016x}",
        key.profile_digest, key.seed, key.geometry_digest, key.options_digest
    )
}

/// Encodes one cache entry in the persisted file format (magic line,
/// payload line, checksum line). The inverse of [`decode_entry`].
pub fn encode_entry(output: &JobOutput) -> Vec<u8> {
    let payload = format!(
        concat!(
            "{{\"label\":{},\"composition\":{},\"digest\":\"0x{:016x}\",",
            "\"commands\":{},\"bitflips\":{},\"dossier\":{}}}"
        ),
        json_string(&output.label),
        json_string(&output.composition),
        output.digest,
        output.commands,
        output.bitflips,
        json_string(&output.dossier),
    );
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(ENTRY_MAGIC.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(format!("fnv1a:0x{:016x}\n", fnv1a_64(payload.as_bytes())).as_bytes());
    out
}

/// Decodes a persisted cache entry. **Total**: every malformed input —
/// truncation at any byte, bit rot, an alien file — maps to an `Err`
/// with a human-readable reason; nothing panics. The checksum line is
/// verified before the payload is parsed, so single-byte corruption
/// anywhere in the payload is caught even when it would still be valid
/// JSON. The loaded entry carries an empty telemetry registry (its
/// metrics were merged into the service registry when it was first
/// computed; they are not part of the byte-stable dossier contract).
pub fn decode_entry(bytes: &[u8]) -> Result<JobOutput, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "entry is not valid UTF-8".to_string())?;
    let rest = text
        .strip_prefix(ENTRY_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or_else(|| format!("missing {ENTRY_MAGIC} magic line"))?;
    let (payload, trailer) = rest
        .split_once('\n')
        .ok_or_else(|| "missing payload line terminator".to_string())?;
    let sum = trailer
        .strip_prefix("fnv1a:0x")
        .and_then(|t| t.strip_suffix('\n'))
        .ok_or_else(|| "missing or truncated checksum line".to_string())?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| "malformed checksum".to_string())?;
    let actual = fnv1a_64(payload.as_bytes());
    if sum != actual {
        return Err(format!(
            "checksum mismatch: trailer 0x{sum:016x}, payload 0x{actual:016x}"
        ));
    }
    let value = json::parse("cache entry", payload).map_err(|e| format!("payload parse: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| "payload is not a JSON object".to_string())?;
    let want_str = |key: &str| -> Result<String, String> {
        match obj.get(key) {
            Some(Value::String(s)) => Ok(s.clone()),
            _ => Err(format!("missing or non-string \"{key}\"")),
        }
    };
    let want_u64 = |key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing or non-integer \"{key}\""))
    };
    // The dossier digest is a full 64-bit value; it travels as a hex
    // string because a JSON number would round through f64.
    let digest = want_str("digest")?;
    let digest = digest
        .strip_prefix("0x")
        .and_then(|d| u64::from_str_radix(d, 16).ok())
        .ok_or_else(|| "malformed \"digest\"".to_string())?;
    Ok(JobOutput {
        label: want_str("label")?,
        composition: want_str("composition")?,
        dossier: want_str("dossier")?,
        digest,
        commands: want_u64("commands")?,
        bitflips: want_u64("bitflips")?,
        metrics: Registry::new(),
    })
}

/// Persists one entry under `dir` using the temp-file-then-rename
/// protocol: the bytes are fully written and flushed to
/// `.{file}.tmp`, then renamed to `0x<key>`. A crash at any point
/// leaves either the old entry, no entry, or a stray temp file — never
/// a partial `0x<key>` file.
pub fn persist_entry(dir: &Path, key: &DossierKey, output: &JobOutput) -> std::io::Result<PathBuf> {
    let name = key_file_name(key);
    let path = dir.join(&name);
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&encode_entry(output))?;
        file.sync_all()?;
    }
    match std::fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            // Leave nothing behind on a failed rename.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads and decodes the persisted entry for `key` under `dir`.
/// A missing file is `Absent`; anything else that fails is `Salvage`
/// with the reason — the caller never sees an error it must handle
/// beyond "treat as miss".
pub fn probe_disk(dir: &Path, key: &DossierKey) -> DiskProbe {
    let path = dir.join(key_file_name(key));
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskProbe::Absent,
        Err(e) => return DiskProbe::Salvage(format!("open {}: {e}", path.display())),
    };
    let mut bytes = Vec::new();
    if let Err(e) = file.take(MAX_ENTRY_FILE_BYTES + 1).read_to_end(&mut bytes) {
        return DiskProbe::Salvage(format!("read {}: {e}", path.display()));
    }
    if bytes.len() as u64 > MAX_ENTRY_FILE_BYTES {
        return DiskProbe::Salvage(format!(
            "{} exceeds the {MAX_ENTRY_FILE_BYTES}-byte entry limit",
            path.display()
        ));
    }
    match decode_entry(&bytes) {
        Ok(output) => DiskProbe::Loaded(Arc::new(output)),
        Err(reason) => DiskProbe::Salvage(format!("{}: {reason}", path.display())),
    }
}

/// The in-memory tier: a deterministic-LRU bounded map.
#[derive(Default)]
pub(crate) struct DossierStore {
    entries: BTreeMap<DossierKey, StoreEntry>,
    limits: CacheLimits,
    dir: Option<PathBuf>,
    /// The hit-sequence counter; strictly increasing across every
    /// lookup and insert, so LRU stamps are never tied.
    tick: u64,
    bytes: u64,
}

impl DossierStore {
    /// Resident entries.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Resident payload bytes, as charged by [`entry_bytes`].
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The persistence directory, if configured.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Points the persistence tier at `dir`.
    pub fn set_dir(&mut self, dir: PathBuf) {
        self.dir = Some(dir);
    }

    /// Installs capacity bounds and immediately enforces them,
    /// returning anything evicted to get under the new limits.
    pub fn set_limits(&mut self, limits: CacheLimits) -> Vec<Evicted> {
        self.limits = limits;
        self.enforce()
    }

    /// Looks up a key without stamping the hit sequence: a peek never
    /// changes which entry the next eviction selects.
    pub fn peek(&self, key: &DossierKey) -> Option<Arc<JobOutput>> {
        self.entries.get(key).map(|e| Arc::clone(&e.output))
    }

    /// Looks up a key, stamping the entry as most recently used.
    pub fn get(&mut self, key: &DossierKey) -> Option<Arc<JobOutput>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.output))
    }

    /// Inserts (or replaces) an entry as most recently used and
    /// enforces the capacity bounds, returning what was evicted.
    pub fn insert(&mut self, key: DossierKey, output: Arc<JobOutput>) -> Vec<Evicted> {
        self.tick += 1;
        let bytes = entry_bytes(&output);
        if let Some(old) = self.entries.insert(
            key,
            StoreEntry {
                output,
                last_used: self.tick,
                bytes,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.enforce()
    }

    /// Evicts least-recently-used entries until both limits hold (or
    /// only the most recently touched entry remains).
    fn enforce(&mut self) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        loop {
            if self.entries.len() <= 1 {
                break;
            }
            let over_entries = self.limits.max_entries != 0 && self.len() > self.limits.max_entries;
            let over_bytes = self.limits.max_bytes != 0 && self.bytes > self.limits.max_bytes;
            if !over_entries && !over_bytes {
                break;
            }
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            let entry = self
                .entries
                .remove(&oldest)
                .expect("key came from this map");
            self.bytes -= entry.bytes;
            evicted.push(Evicted {
                key: oldest,
                bytes: entry.bytes,
            });
        }
        evicted
    }
}

/// Escapes a string into a JSON string literal — the same rendering as
/// [`crate::protocol::json_string`], re-exported here so the cache file
/// format has no dependency on the wire protocol module.
fn json_string(value: &str) -> String {
    crate::protocol::json_string(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(text: &str) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            label: "lab".into(),
            dossier: text.to_string(),
            digest: fnv1a_64(text.as_bytes()),
            composition: "comp".into(),
            commands: 7,
            bitflips: 2,
            metrics: Registry::new(),
        })
    }

    fn key(n: u64) -> DossierKey {
        DossierKey {
            profile_digest: n,
            seed: n.wrapping_mul(3),
            geometry_digest: n.wrapping_mul(5),
            options_digest: n.wrapping_mul(7),
        }
    }

    #[test]
    fn entry_round_trips_through_the_file_format() {
        let original = output("dossier text with \"quotes\", a \u{7f} DEL and a 😀");
        let bytes = encode_entry(&original);
        let decoded = decode_entry(&bytes).expect("clean decode");
        assert_eq!(decoded.dossier, original.dossier);
        assert_eq!(decoded.label, original.label);
        assert_eq!(decoded.composition, original.composition);
        assert_eq!(decoded.digest, original.digest);
        assert_eq!(decoded.commands, original.commands);
        assert_eq!(decoded.bitflips, original.bitflips);
    }

    #[test]
    fn key_file_names_are_sixty_six_chars_and_unique_per_field() {
        let name = key_file_name(&key(1));
        assert_eq!(name.len(), 2 + 64);
        assert!(name.starts_with("0x"));
        let mut variants = vec![key(1)];
        let mut k = key(1);
        k.seed += 1;
        variants.push(k);
        let mut k = key(1);
        k.options_digest += 1;
        variants.push(k);
        let names: std::collections::BTreeSet<String> =
            variants.iter().map(key_file_name).collect();
        assert_eq!(names.len(), variants.len());
    }

    #[test]
    fn lru_eviction_is_deterministic_by_hit_sequence() {
        let mut store = DossierStore::default();
        store.set_limits(CacheLimits {
            max_entries: 2,
            max_bytes: 0,
        });
        assert!(store.insert(key(1), output("a")).is_empty());
        assert!(store.insert(key(2), output("b")).is_empty());
        // Touch key 1 so key 2 becomes the LRU.
        assert!(store.get(&key(1)).is_some());
        let evicted = store.insert(key(3), output("c"));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(2));
        assert!(store.get(&key(2)).is_none());
        assert!(store.get(&key(1)).is_some());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn byte_limit_evicts_but_never_drops_the_newest_entry() {
        let mut store = DossierStore::default();
        store.set_limits(CacheLimits {
            max_entries: 0,
            max_bytes: 1,
        });
        assert!(store.insert(key(1), output("aaaa")).is_empty());
        let evicted = store.insert(key(2), output("bbbb"));
        assert_eq!(evicted.len(), 1, "over-budget LRU evicted");
        assert_eq!(evicted[0].key, key(1));
        assert_eq!(store.len(), 1, "newest entry survives over budget");
    }

    #[test]
    fn persist_and_probe_round_trip_with_no_stray_temp_files() {
        let dir = std::env::temp_dir().join(format!("dramscope_cachemod_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = output("persisted dossier");
        let k = key(9);
        let path = persist_entry(&dir, &k, &out).expect("persisted");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            key_file_name(&k)
        );
        match probe_disk(&dir, &k) {
            DiskProbe::Loaded(loaded) => assert_eq!(loaded.dossier, out.dossier),
            other => panic!("expected load, got {other:?}"),
        }
        // No temp residue, and an absent key is Absent, not an error.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        assert!(matches!(probe_disk(&dir, &key(10)), DiskProbe::Absent));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_probe_as_salvage_not_panic() {
        let dir = std::env::temp_dir().join(format!("dramscope_salvage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(4);
        std::fs::write(dir.join(key_file_name(&k)), b"DSSR1\n{\"label\":").unwrap();
        match probe_disk(&dir, &k) {
            DiskProbe::Salvage(reason) => {
                assert!(
                    reason.contains("terminator")
                        || reason.contains("checksum")
                        || reason.contains("truncated"),
                    "{reason}"
                );
            }
            other => panic!("expected salvage, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
