//! Golden-trace workflows over whole characterizations: record a run into
//! a trace, replay it with full verification, and benchmark raw replay
//! throughput.
//!
//! The contract these functions implement is the regression invariant the
//! test suite and CI assert on:
//!
//! 1. [`record_characterization`] runs the standard flow with a recorder
//!    attached to the primary testbed and stores the characterization
//!    options and the dossier digest in the trace header.
//! 2. [`replay_characterization`] re-runs the *same* flow from nothing
//!    but the trace — profile found by label, options parsed back from
//!    header meta — while a verifier checks the live command stream
//!    against the recording event-by-event. The replayed dossier must
//!    render byte-identically (same digest).
//! 3. [`replay_benchmark`] re-drives a bare chip from the trace (no
//!    characterization logic at all) and reports commands/second through
//!    the same [`RunStats`] machinery the fleet engine uses.

use crate::dossier::{
    characterize_bank_instrumented, characterize_instrumented, CharacterizeOptions, ChipDossier,
    PhaseStat, RunStats,
};
use crate::error::CoreError;
use crate::fleet::parallel_map;
use crate::shard::{ShardConfig, ShardedDossier};
use dram_sim::{ChipProfile, Time};
use dram_telemetry::Registry;
use dram_trace::{
    geometry_hash, replay_on_chip, SharedRecorder, SharedVerifier, Trace, TraceEvent,
};
use std::time::Instant;

/// Meta keys under which [`record_characterization`] stores its options.
const META_SCAN_ROWS: &str = "scan_rows";
const META_WITH_SWIZZLE: &str = "with_swizzle";
const META_PROBE_LO: &str = "probe_lo";
const META_PROBE_HI: &str = "probe_hi";
const META_RETENTION_WAIT_PS: &str = "retention_wait_ps";
/// Meta key for the bank count of a sharded recording; its presence is
/// what marks a trace as sharded.
const META_SHARD_BANKS: &str = "shard_banks";

/// The marker label prefix every bank shard's stream opens with.
/// Canonically defined in `dram_trace` alongside the other
/// segment-boundary prefixes ([`dram_trace::DEFAULT_SEGMENT_PREFIXES`])
/// so the trace-lake index splits sharded streams exactly where
/// [`replay_characterization_sharded`] does.
pub use dram_trace::SHARD_MARKER_PREFIX;

/// Runs a full characterization with a recorder attached and returns the
/// dossier, its run stats, and the captured trace.
///
/// The trace header carries the profile label, seed, geometry hash, the
/// dossier digest, and the characterization options as meta pairs — i.e.
/// everything [`replay_characterization`] needs to reproduce and verify
/// the run from the trace alone.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn record_characterization(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> Result<(ChipDossier, RunStats, Trace), CoreError> {
    record_characterization_instrumented(profile, seed, opts).map(|(d, s, t, _)| (d, s, t))
}

/// [`record_characterization`] plus telemetry: also returns the metrics
/// [`Registry`] collected live during the recorded run.
///
/// The recorder and the metrics sink ride the same testbed, so
/// `dram_trace::trace_metrics` over the returned trace reproduces the
/// returned registry byte-for-byte — the invariant `characterize stats`
/// builds on.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn record_characterization_instrumented(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> Result<(ChipDossier, RunStats, Trace, Registry), CoreError> {
    let recorder = SharedRecorder::unbounded();
    let (dossier, stats, metrics) =
        characterize_instrumented(profile, seed, opts, Some(recorder.sink()))?;
    let mut trace = recorder.finish(profile, seed);
    trace.header.dossier_digest = Some(dossier.digest());
    trace.header.meta = opts_to_meta(&opts);
    Ok((dossier, stats, trace, metrics))
}

/// Records a bank-sharded characterization: every bank shard runs with
/// its own recorder, and the per-bank trace segments concatenate in bank
/// order into ONE device trace.
///
/// The byte-identity contract extends to the trace itself: because each
/// segment opens with its `shard:bank=N` marker, carries timestamps as
/// signed deltas, and segments merge in bank order, the returned trace's
/// bytes depend only on `(profile, seed, opts)` — never on the shard
/// count or completion order. The header stores the merged
/// [`ShardedDossier`] digest plus a `shard_banks` meta pair, which is
/// what [`replay_characterization_sharded`] keys on.
///
/// # Errors
///
/// Propagates the first failed bank's characterization error.
pub fn record_characterization_sharded(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
    config: ShardConfig,
) -> Result<(ShardedDossier, Trace, Registry), CoreError> {
    let banks: Vec<u32> = (0..profile.banks).collect();
    let outcomes = parallel_map(&banks, config.shards, |&bank| {
        let recorder = SharedRecorder::unbounded();
        let (dossier, _, metrics) =
            characterize_bank_instrumented(profile, seed, bank, opts, Some(recorder.sink()))?;
        Ok((dossier, recorder.finish(profile, seed), metrics))
    });
    let mut dossiers = Vec::with_capacity(banks.len());
    let mut segments = Vec::with_capacity(banks.len());
    let mut registries = Vec::with_capacity(banks.len());
    for (&bank, outcome) in banks.iter().zip(outcomes) {
        let (dossier, segment, metrics) =
            outcome.map_err(|e| CoreError::from(format!("bank {bank} failed: {e}")))?;
        dossiers.push((bank, dossier));
        segments.push(segment);
        registries.push(metrics);
    }
    let sharded = ShardedDossier {
        label: profile.label(),
        banks: dossiers,
    };
    let mut trace = Trace::concat(&segments)
        .map_err(|e| CoreError::from(format!("merging shard traces failed: {e}")))?;
    trace.header.dossier_digest = Some(sharded.digest());
    trace.header.meta = opts_to_meta(&opts);
    trace
        .header
        .meta
        .push((META_SHARD_BANKS.into(), profile.banks.to_string()));
    Ok((sharded, trace, Registry::merged(registries.iter())))
}

/// Re-runs the sharded characterization a trace captured and verifies it
/// reproduces bit-for-bit.
///
/// The trace is split back into bank segments at the `shard:bank=`
/// markers [`record_characterization_sharded`] wrote; each segment is
/// replayed through the same bank-local flow with a verifier checking
/// every live command against the recording, and the merged dossier's
/// digest must equal the recorded one.
///
/// # Errors
///
/// Fails on traces without the `shard_banks` meta key, unknown profiles,
/// changed geometry, partial traces, segment-count mismatches, malformed
/// markers, command-stream divergence, and digest mismatches.
pub fn replay_characterization_sharded(
    trace: &Trace,
) -> Result<(ShardedDossier, Registry), CoreError> {
    let profile = profile_for(trace)?;
    let opts = opts_from_meta(trace)?;
    let raw = trace
        .header
        .meta(META_SHARD_BANKS)
        .ok_or_else(|| CoreError::from("trace is not sharded (missing \"shard_banks\" meta)"))?;
    let n: usize = raw.parse().map_err(|_| {
        CoreError::from(format!(
            "trace meta \"shard_banks\" has unparseable value {raw:?}"
        ))
    })?;
    let segments = trace.split_at_markers(SHARD_MARKER_PREFIX);
    if segments.len() != n {
        return Err(format!(
            "sharded trace should split into {n} bank segments, got {}",
            segments.len()
        )
        .into());
    }
    let mut banks = Vec::with_capacity(n);
    let mut registries = Vec::with_capacity(n);
    for segment in &segments {
        let bank = segment_bank(segment)?;
        let verifier = SharedVerifier::new(segment);
        let (dossier, _, metrics) = characterize_bank_instrumented(
            &profile,
            trace.header.seed,
            bank,
            opts,
            Some(verifier.sink()),
        )?;
        verifier
            .finish()
            .map_err(|d| CoreError::from(format!("bank {bank} replay diverged from trace: {d}")))?;
        banks.push((bank, dossier));
        registries.push(metrics);
    }
    let sharded = ShardedDossier {
        label: profile.label(),
        banks,
    };
    if let Some(expected) = trace.header.dossier_digest {
        let got = sharded.digest();
        if got != expected {
            return Err(format!(
                "sharded dossier digest mismatch after replay: \
                 trace {expected:#018x}, replay {got:#018x}"
            )
            .into());
        }
    }
    Ok((sharded, Registry::merged(registries.iter())))
}

/// Reads which bank a shard segment belongs to from its opening marker.
fn segment_bank(segment: &Trace) -> Result<u32, CoreError> {
    let Some(TraceEvent::Marker { label }) = segment.events.first() else {
        return Err("shard segment does not open with a marker event".into());
    };
    label
        .strip_prefix(SHARD_MARKER_PREFIX)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CoreError::from(format!("malformed shard marker {label:?}")))
}

/// Re-runs the characterization a trace captured and verifies it
/// reproduces bit-for-bit.
///
/// The profile is resolved from the trace's label, the options from its
/// meta pairs. A [`SharedVerifier`] rides along on the primary testbed
/// and checks every live command (timestamp, payload, and outcome —
/// read data included) against the recording; afterwards the replayed
/// dossier's digest must equal the recorded one.
///
/// # Errors
///
/// Fails on unknown profile labels, changed geometry, partial traces,
/// malformed meta, any command-stream divergence, and digest mismatches.
pub fn replay_characterization(trace: &Trace) -> Result<(ChipDossier, RunStats), CoreError> {
    replay_characterization_instrumented(trace).map(|(d, s, _)| (d, s))
}

/// [`replay_characterization`] plus telemetry: also returns the metrics
/// [`Registry`] collected during the verified re-run. Identical to what
/// the original recorded run would have collected (and to
/// `dram_trace::trace_metrics` over the trace), since all three consume
/// the same event stream.
///
/// # Errors
///
/// Same failure modes as [`replay_characterization`].
pub fn replay_characterization_instrumented(
    trace: &Trace,
) -> Result<(ChipDossier, RunStats, Registry), CoreError> {
    let profile = profile_for(trace)?;
    let opts = opts_from_meta(trace)?;
    let verifier = SharedVerifier::new(trace);
    let (dossier, stats, metrics) =
        characterize_instrumented(&profile, trace.header.seed, opts, Some(verifier.sink()))?;
    verifier
        .finish()
        .map_err(|d| CoreError::from(format!("replay diverged from trace: {d}")))?;
    if let Some(expected) = trace.header.dossier_digest {
        let got = dossier.digest();
        if got != expected {
            return Err(format!(
                "dossier digest mismatch after replay: trace {expected:#018x}, replay {got:#018x}"
            )
            .into());
        }
    }
    Ok((dossier, stats, metrics))
}

/// Replays a trace `repeats` times on bare chips and reports throughput.
///
/// Each repetition is one `"replay"` phase in the returned [`RunStats`]:
/// wall time, pin-level commands executed (burst activations counted
/// individually), and bitflips resolved. Feeding these through the fleet
/// run-report table gives commands-replayed-per-second directly.
///
/// # Errors
///
/// Fails on unknown profile labels or any replay error.
pub fn replay_benchmark(trace: &Trace, repeats: u32) -> Result<RunStats, CoreError> {
    let profile = profile_for(trace)?;
    let mut stats = RunStats::default();
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        let replay = replay_on_chip(trace, &profile)
            .map_err(|e| CoreError::from(format!("trace replay failed: {e}")))?;
        stats.phases.push(PhaseStat {
            name: "replay",
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            commands: replay.commands,
            bitflips: replay.bitflips,
        });
    }
    Ok(stats)
}

/// Resolves and validates the chip profile a trace was recorded against.
fn profile_for(trace: &Trace) -> Result<ChipProfile, CoreError> {
    let label = &trace.header.profile_label;
    let profile = ChipProfile::by_label(label)
        .ok_or_else(|| CoreError::from(format!("trace profile {label:?} is not a known preset")))?;
    let hash = geometry_hash(&profile);
    if hash != trace.header.geometry_hash {
        return Err(format!(
            "profile {label:?} geometry changed since recording \
             (trace {:#018x}, current {hash:#018x})",
            trace.header.geometry_hash
        )
        .into());
    }
    if trace.header.dropped > 0 {
        return Err(format!(
            "trace is partial ({} events dropped by the recorder) and cannot be replayed",
            trace.header.dropped
        )
        .into());
    }
    Ok(profile)
}

fn opts_to_meta(opts: &CharacterizeOptions) -> Vec<(String, String)> {
    vec![
        (META_SCAN_ROWS.into(), opts.scan_rows.to_string()),
        (META_WITH_SWIZZLE.into(), opts.with_swizzle.to_string()),
        (META_PROBE_LO.into(), opts.probe_range.0.to_string()),
        (META_PROBE_HI.into(), opts.probe_range.1.to_string()),
        (
            META_RETENTION_WAIT_PS.into(),
            opts.retention_wait.as_ps().to_string(),
        ),
    ]
}

fn opts_from_meta(trace: &Trace) -> Result<CharacterizeOptions, CoreError> {
    fn field<T: std::str::FromStr>(trace: &Trace, key: &str) -> Result<T, CoreError> {
        let raw = trace
            .header
            .meta(key)
            .ok_or_else(|| CoreError::from(format!("trace meta is missing {key:?}")))?;
        raw.parse().map_err(|_| {
            CoreError::from(format!("trace meta {key:?} has unparseable value {raw:?}"))
        })
    }
    Ok(CharacterizeOptions {
        scan_rows: field(trace, META_SCAN_ROWS)?,
        with_swizzle: field(trace, META_WITH_SWIZZLE)?,
        probe_range: (field(trace, META_PROBE_LO)?, field(trace, META_PROBE_HI)?),
        retention_wait: Time::from_ps(field(trace, META_RETENTION_WAIT_PS)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_trace::TraceEvent;

    fn small_opts() -> CharacterizeOptions {
        CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        }
    }

    #[test]
    fn record_then_verify_replay_round_trips() {
        let profile = ChipProfile::test_small();
        let (dossier, _, trace) =
            record_characterization(&profile, 123, small_opts()).expect("record");
        assert_eq!(trace.header.profile_label, profile.label());
        assert_eq!(trace.header.dossier_digest, Some(dossier.digest()));
        assert!(trace.events.len() > 100, "{} events", trace.events.len());
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Marker { label } if label == "phase:retention")));

        // Through bytes, then a full verified re-characterization.
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("decode");
        assert_eq!(decoded, trace);
        let (replayed, _) = replay_characterization(&decoded).expect("replay verifies");
        assert_eq!(replayed.to_string(), dossier.to_string());
        assert_eq!(replayed.digest(), dossier.digest());
    }

    #[test]
    fn replay_rejects_bad_identity_and_tampered_digest() {
        let profile = ChipProfile::test_small();
        let (_, _, trace) = record_characterization(&profile, 5, small_opts()).expect("record");

        let mut unknown = trace.clone();
        unknown.header.profile_label = "No Such Chip".into();
        let err = replay_characterization(&unknown).expect_err("unknown label");
        assert!(err.to_string().contains("not a known preset"), "{err}");

        let mut geo = trace.clone();
        geo.header.geometry_hash ^= 1;
        let err = replay_characterization(&geo).expect_err("geometry mismatch");
        assert!(err.to_string().contains("geometry changed"), "{err}");

        let mut partial = trace.clone();
        partial.header.dropped = 1;
        let err = replay_characterization(&partial).expect_err("partial trace");
        assert!(err.to_string().contains("partial"), "{err}");

        let mut missing = trace.clone();
        missing.header.meta.retain(|(k, _)| k != "scan_rows");
        let err = replay_characterization(&missing).expect_err("missing meta");
        assert!(err.to_string().contains("missing \"scan_rows\""), "{err}");

        let mut digest = trace.clone();
        digest.header.dossier_digest = Some(0xbad);
        let err = replay_characterization(&digest).expect_err("digest mismatch");
        assert!(err.to_string().contains("digest mismatch"), "{err}");
    }

    #[test]
    fn wrong_seed_diverges_during_verified_replay() {
        let profile = ChipProfile::test_small();
        let (_, _, mut trace) = record_characterization(&profile, 9, small_opts()).expect("record");
        trace.header.seed ^= 1;
        trace.header.dossier_digest = None;
        let err = replay_characterization(&trace).expect_err("reseeded replay");
        assert!(err.to_string().contains("diverged"), "{err}");
    }

    #[test]
    fn record_replay_and_trace_derived_metrics_agree() {
        let profile = ChipProfile::test_small();
        let (_, _, trace, live) =
            record_characterization_instrumented(&profile, 123, small_opts()).expect("record");
        let live_snap = live.to_json_lines();
        // The same registry falls out of a verified replay…
        let (_, _, replayed) =
            replay_characterization_instrumented(&trace).expect("replay verifies");
        assert_eq!(replayed.to_json_lines(), live_snap);
        // …and out of a pure trace pass with no simulation at all.
        assert_eq!(dram_trace::trace_metrics(&trace).to_json_lines(), live_snap);
        // Span markers made it into the trace and the registry.
        assert!(live.sum_counters("span_count") > 0);
    }

    #[test]
    fn sharded_record_then_verify_replay_round_trips() {
        let profile = ChipProfile::test_small();
        let (sharded, trace, metrics) =
            record_characterization_sharded(&profile, 123, small_opts(), ShardConfig::default())
                .expect("record");
        assert_eq!(sharded.banks.len(), profile.banks as usize);
        assert_eq!(trace.header.dossier_digest, Some(sharded.digest()));
        assert_eq!(
            trace.header.meta("shard_banks"),
            Some(profile.banks.to_string().as_str())
        );
        // One opening marker per bank shard survives concatenation.
        let markers: Vec<&str> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Marker { label } if label.starts_with("shard:bank=") => {
                    Some(label.as_str())
                }
                _ => None,
            })
            .collect();
        assert_eq!(markers, vec!["shard:bank=0", "shard:bank=1"]);

        // Through bytes, then a fully verified sharded re-run.
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("decode");
        assert_eq!(decoded, trace);
        let (replayed, replayed_metrics) =
            replay_characterization_sharded(&decoded).expect("replay verifies");
        assert_eq!(replayed.to_string(), sharded.to_string());
        assert_eq!(replayed.digest(), sharded.digest());
        assert_eq!(replayed_metrics.to_json_lines(), metrics.to_json_lines());
    }

    #[test]
    fn sharded_trace_bytes_are_identical_for_any_shard_count() {
        let profile = ChipProfile::test_small();
        let (_, serial, _) =
            record_characterization_sharded(&profile, 7, small_opts(), ShardConfig { shards: 1 })
                .expect("serial record");
        let (_, wide, _) = record_characterization_sharded(
            &profile,
            7,
            small_opts(),
            ShardConfig {
                shards: profile.banks as usize,
            },
        )
        .expect("parallel record");
        assert_eq!(serial.to_bytes(), wide.to_bytes());
    }

    #[test]
    fn sharded_replay_rejects_unsharded_and_tampered_traces() {
        let profile = ChipProfile::test_small();
        let (_, _, plain) = record_characterization(&profile, 5, small_opts()).expect("record");
        let err = replay_characterization_sharded(&plain).expect_err("unsharded trace");
        assert!(err.to_string().contains("not sharded"), "{err}");

        let (_, trace, _) =
            record_characterization_sharded(&profile, 5, small_opts(), ShardConfig::default())
                .expect("record");
        let mut miscounted = trace.clone();
        for (k, v) in &mut miscounted.header.meta {
            if k == "shard_banks" {
                *v = "3".into();
            }
        }
        let err = replay_characterization_sharded(&miscounted).expect_err("segment count");
        assert!(err.to_string().contains("3 bank segments"), "{err}");

        let mut digest = trace.clone();
        digest.header.dossier_digest = Some(0xbad);
        let err = replay_characterization_sharded(&digest).expect_err("digest mismatch");
        assert!(err.to_string().contains("digest mismatch"), "{err}");
    }

    #[test]
    fn replay_benchmark_reports_throughput_phases() {
        let profile = ChipProfile::test_small();
        let (_, _, trace) = record_characterization(&profile, 1, small_opts()).expect("record");
        let stats = replay_benchmark(&trace, 2).expect("benchmark");
        assert_eq!(stats.phases.len(), 2);
        assert!(stats.phases.iter().all(|p| p.name == "replay"));
        assert!(stats.commands() > 0);
    }
}
