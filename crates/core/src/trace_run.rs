//! Golden-trace workflows over whole characterizations: record a run into
//! a trace, replay it with full verification, and benchmark raw replay
//! throughput.
//!
//! The contract these functions implement is the regression invariant the
//! test suite and CI assert on:
//!
//! 1. [`record_characterization`] runs the standard flow with a recorder
//!    attached to the primary testbed and stores the characterization
//!    options and the dossier digest in the trace header.
//! 2. [`replay_characterization`] re-runs the *same* flow from nothing
//!    but the trace — profile found by label, options parsed back from
//!    header meta — while a verifier checks the live command stream
//!    against the recording event-by-event. The replayed dossier must
//!    render byte-identically (same digest).
//! 3. [`replay_benchmark`] re-drives a bare chip from the trace (no
//!    characterization logic at all) and reports commands/second through
//!    the same [`RunStats`] machinery the fleet engine uses.

use crate::dossier::{
    characterize_instrumented, CharacterizeOptions, ChipDossier, PhaseStat, RunStats,
};
use crate::error::CoreError;
use dram_sim::{ChipProfile, Time};
use dram_telemetry::Registry;
use dram_trace::{geometry_hash, replay_on_chip, SharedRecorder, SharedVerifier, Trace};
use std::time::Instant;

/// Meta keys under which [`record_characterization`] stores its options.
const META_SCAN_ROWS: &str = "scan_rows";
const META_WITH_SWIZZLE: &str = "with_swizzle";
const META_PROBE_LO: &str = "probe_lo";
const META_PROBE_HI: &str = "probe_hi";
const META_RETENTION_WAIT_PS: &str = "retention_wait_ps";

/// Runs a full characterization with a recorder attached and returns the
/// dossier, its run stats, and the captured trace.
///
/// The trace header carries the profile label, seed, geometry hash, the
/// dossier digest, and the characterization options as meta pairs — i.e.
/// everything [`replay_characterization`] needs to reproduce and verify
/// the run from the trace alone.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn record_characterization(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> Result<(ChipDossier, RunStats, Trace), CoreError> {
    record_characterization_instrumented(profile, seed, opts).map(|(d, s, t, _)| (d, s, t))
}

/// [`record_characterization`] plus telemetry: also returns the metrics
/// [`Registry`] collected live during the recorded run.
///
/// The recorder and the metrics sink ride the same testbed, so
/// `dram_trace::trace_metrics` over the returned trace reproduces the
/// returned registry byte-for-byte — the invariant `characterize stats`
/// builds on.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn record_characterization_instrumented(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> Result<(ChipDossier, RunStats, Trace, Registry), CoreError> {
    let recorder = SharedRecorder::unbounded();
    let (dossier, stats, metrics) =
        characterize_instrumented(profile, seed, opts, Some(recorder.sink()))?;
    let mut trace = recorder.finish(profile, seed);
    trace.header.dossier_digest = Some(dossier.digest());
    trace.header.meta = opts_to_meta(&opts);
    Ok((dossier, stats, trace, metrics))
}

/// Re-runs the characterization a trace captured and verifies it
/// reproduces bit-for-bit.
///
/// The profile is resolved from the trace's label, the options from its
/// meta pairs. A [`SharedVerifier`] rides along on the primary testbed
/// and checks every live command (timestamp, payload, and outcome —
/// read data included) against the recording; afterwards the replayed
/// dossier's digest must equal the recorded one.
///
/// # Errors
///
/// Fails on unknown profile labels, changed geometry, partial traces,
/// malformed meta, any command-stream divergence, and digest mismatches.
pub fn replay_characterization(trace: &Trace) -> Result<(ChipDossier, RunStats), CoreError> {
    replay_characterization_instrumented(trace).map(|(d, s, _)| (d, s))
}

/// [`replay_characterization`] plus telemetry: also returns the metrics
/// [`Registry`] collected during the verified re-run. Identical to what
/// the original recorded run would have collected (and to
/// `dram_trace::trace_metrics` over the trace), since all three consume
/// the same event stream.
///
/// # Errors
///
/// Same failure modes as [`replay_characterization`].
pub fn replay_characterization_instrumented(
    trace: &Trace,
) -> Result<(ChipDossier, RunStats, Registry), CoreError> {
    let profile = profile_for(trace)?;
    let opts = opts_from_meta(trace)?;
    let verifier = SharedVerifier::new(trace);
    let (dossier, stats, metrics) =
        characterize_instrumented(&profile, trace.header.seed, opts, Some(verifier.sink()))?;
    verifier
        .finish()
        .map_err(|d| CoreError::from(format!("replay diverged from trace: {d}")))?;
    if let Some(expected) = trace.header.dossier_digest {
        let got = dossier.digest();
        if got != expected {
            return Err(format!(
                "dossier digest mismatch after replay: trace {expected:#018x}, replay {got:#018x}"
            )
            .into());
        }
    }
    Ok((dossier, stats, metrics))
}

/// Replays a trace `repeats` times on bare chips and reports throughput.
///
/// Each repetition is one `"replay"` phase in the returned [`RunStats`]:
/// wall time, pin-level commands executed (burst activations counted
/// individually), and bitflips resolved. Feeding these through the fleet
/// run-report table gives commands-replayed-per-second directly.
///
/// # Errors
///
/// Fails on unknown profile labels or any replay error.
pub fn replay_benchmark(trace: &Trace, repeats: u32) -> Result<RunStats, CoreError> {
    let profile = profile_for(trace)?;
    let mut stats = RunStats::default();
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        let replay = replay_on_chip(trace, &profile)
            .map_err(|e| CoreError::from(format!("trace replay failed: {e}")))?;
        stats.phases.push(PhaseStat {
            name: "replay",
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            commands: replay.commands,
            bitflips: replay.bitflips,
        });
    }
    Ok(stats)
}

/// Resolves and validates the chip profile a trace was recorded against.
fn profile_for(trace: &Trace) -> Result<ChipProfile, CoreError> {
    let label = &trace.header.profile_label;
    let profile = ChipProfile::by_label(label)
        .ok_or_else(|| CoreError::from(format!("trace profile {label:?} is not a known preset")))?;
    let hash = geometry_hash(&profile);
    if hash != trace.header.geometry_hash {
        return Err(format!(
            "profile {label:?} geometry changed since recording \
             (trace {:#018x}, current {hash:#018x})",
            trace.header.geometry_hash
        )
        .into());
    }
    if trace.header.dropped > 0 {
        return Err(format!(
            "trace is partial ({} events dropped by the recorder) and cannot be replayed",
            trace.header.dropped
        )
        .into());
    }
    Ok(profile)
}

fn opts_to_meta(opts: &CharacterizeOptions) -> Vec<(String, String)> {
    vec![
        (META_SCAN_ROWS.into(), opts.scan_rows.to_string()),
        (META_WITH_SWIZZLE.into(), opts.with_swizzle.to_string()),
        (META_PROBE_LO.into(), opts.probe_range.0.to_string()),
        (META_PROBE_HI.into(), opts.probe_range.1.to_string()),
        (
            META_RETENTION_WAIT_PS.into(),
            opts.retention_wait.as_ps().to_string(),
        ),
    ]
}

fn opts_from_meta(trace: &Trace) -> Result<CharacterizeOptions, CoreError> {
    fn field<T: std::str::FromStr>(trace: &Trace, key: &str) -> Result<T, CoreError> {
        let raw = trace
            .header
            .meta(key)
            .ok_or_else(|| CoreError::from(format!("trace meta is missing {key:?}")))?;
        raw.parse().map_err(|_| {
            CoreError::from(format!("trace meta {key:?} has unparseable value {raw:?}"))
        })
    }
    Ok(CharacterizeOptions {
        scan_rows: field(trace, META_SCAN_ROWS)?,
        with_swizzle: field(trace, META_WITH_SWIZZLE)?,
        probe_range: (field(trace, META_PROBE_LO)?, field(trace, META_PROBE_HI)?),
        retention_wait: Time::from_ps(field(trace, META_RETENTION_WAIT_PS)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_trace::TraceEvent;

    fn small_opts() -> CharacterizeOptions {
        CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        }
    }

    #[test]
    fn record_then_verify_replay_round_trips() {
        let profile = ChipProfile::test_small();
        let (dossier, _, trace) =
            record_characterization(&profile, 123, small_opts()).expect("record");
        assert_eq!(trace.header.profile_label, profile.label());
        assert_eq!(trace.header.dossier_digest, Some(dossier.digest()));
        assert!(trace.events.len() > 100, "{} events", trace.events.len());
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Marker { label } if label == "phase:retention")));

        // Through bytes, then a full verified re-characterization.
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("decode");
        assert_eq!(decoded, trace);
        let (replayed, _) = replay_characterization(&decoded).expect("replay verifies");
        assert_eq!(replayed.to_string(), dossier.to_string());
        assert_eq!(replayed.digest(), dossier.digest());
    }

    #[test]
    fn replay_rejects_bad_identity_and_tampered_digest() {
        let profile = ChipProfile::test_small();
        let (_, _, trace) = record_characterization(&profile, 5, small_opts()).expect("record");

        let mut unknown = trace.clone();
        unknown.header.profile_label = "No Such Chip".into();
        let err = replay_characterization(&unknown).expect_err("unknown label");
        assert!(err.to_string().contains("not a known preset"), "{err}");

        let mut geo = trace.clone();
        geo.header.geometry_hash ^= 1;
        let err = replay_characterization(&geo).expect_err("geometry mismatch");
        assert!(err.to_string().contains("geometry changed"), "{err}");

        let mut partial = trace.clone();
        partial.header.dropped = 1;
        let err = replay_characterization(&partial).expect_err("partial trace");
        assert!(err.to_string().contains("partial"), "{err}");

        let mut missing = trace.clone();
        missing.header.meta.retain(|(k, _)| k != "scan_rows");
        let err = replay_characterization(&missing).expect_err("missing meta");
        assert!(err.to_string().contains("missing \"scan_rows\""), "{err}");

        let mut digest = trace.clone();
        digest.header.dossier_digest = Some(0xbad);
        let err = replay_characterization(&digest).expect_err("digest mismatch");
        assert!(err.to_string().contains("digest mismatch"), "{err}");
    }

    #[test]
    fn wrong_seed_diverges_during_verified_replay() {
        let profile = ChipProfile::test_small();
        let (_, _, mut trace) = record_characterization(&profile, 9, small_opts()).expect("record");
        trace.header.seed ^= 1;
        trace.header.dossier_digest = None;
        let err = replay_characterization(&trace).expect_err("reseeded replay");
        assert!(err.to_string().contains("diverged"), "{err}");
    }

    #[test]
    fn record_replay_and_trace_derived_metrics_agree() {
        let profile = ChipProfile::test_small();
        let (_, _, trace, live) =
            record_characterization_instrumented(&profile, 123, small_opts()).expect("record");
        let live_snap = live.to_json_lines();
        // The same registry falls out of a verified replay…
        let (_, _, replayed) =
            replay_characterization_instrumented(&trace).expect("replay verifies");
        assert_eq!(replayed.to_json_lines(), live_snap);
        // …and out of a pure trace pass with no simulation at all.
        assert_eq!(dram_trace::trace_metrics(&trace).to_json_lines(), live_snap);
        // Span markers made it into the trace and the registry.
        assert!(live.sum_counters("span_count") > 0);
    }

    #[test]
    fn replay_benchmark_reports_throughput_phases() {
        let profile = ChipProfile::test_small();
        let (_, _, trace) = record_characterization(&profile, 1, small_opts()).expect("record");
        let stats = replay_benchmark(&trace, 2).expect("benchmark");
        assert_eq!(stats.phases.len(), 2);
        assert!(stats.phases.iter().all(|p| p.name == "replay"));
        assert!(stats.commands() > 0);
    }
}
