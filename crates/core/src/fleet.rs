//! Parallel fleet characterization: run [`characterize`](crate::dossier::characterize) over a whole
//! device population concurrently.
//!
//! The paper characterizes 376 DDR4 chips and 4 HBM2 stacks (Table I);
//! this module is the reproduction's equivalent of wiring many devices
//! to many testbeds at once. Each profile gets its own simulated chip,
//! its own worker, and a deterministic seed derived from the fleet's
//! base seed and the profile's label — so a parallel run produces
//! byte-identical dossiers to a serial run of the same jobs.
//!
//! Failure isolation: a panic inside one worker (a simulator fault, a
//! violated invariant) is caught and reported as that profile's
//! [`CoreError::WorkerPanic`]; every other profile still completes.
//!
//! # Example
//!
//! ```no_run
//! use dramscope_core::fleet::{self, FleetConfig};
//!
//! let jobs = fleet::table1_jobs();
//! let report = fleet::run_fleet(&jobs, 0x5ca1e, FleetConfig::default());
//! println!("{}", report.table());
//! println!("{}", report.json_lines());
//! ```

use crate::dossier::{characterize_instrumented, CharacterizeOptions, ChipDossier, RunStats};
use crate::error::CoreError;
use crate::shard::ShardedReport;
use dram_obs::{EventBus, EventDraft};
use dram_sim::rng::mix64;
use dram_sim::ChipProfile;
use dram_telemetry::Registry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

/// One unit of fleet work: a device profile plus its probe options.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// The device to characterize.
    pub profile: ChipProfile,
    /// Probe options (interior probe range, scan depth, swizzle).
    pub opts: CharacterizeOptions,
}

/// Configuration for [`run_fleet`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetConfig {
    /// Worker threads. `0` (the default) uses the machine's available
    /// parallelism, capped at the job count.
    pub workers: usize,
}

/// The outcome of characterizing one profile.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// The profile's public label.
    pub label: String,
    /// The derived per-profile seed actually used.
    pub seed: u64,
    /// The dossier, or the error/panic that stopped this profile.
    pub outcome: Result<ChipDossier, CoreError>,
    /// Per-phase run statistics (empty when the worker panicked).
    pub stats: RunStats,
    /// Wall-clock time this whole job spent on its worker, milliseconds
    /// — characterization plus engine overhead, measured even when the
    /// job errored (zero only when the worker panicked, because the
    /// unwind destroys the job's clock). The sum across profiles is the
    /// serial-equivalent cost a parallel run's speedup is judged
    /// against.
    pub job_wall_ms: f64,
    /// Telemetry collected on the profile's primary testbed (empty when
    /// the worker failed). Deterministic for a given `(profile, seed)`.
    pub metrics: Registry,
}

impl ProfileResult {
    /// One JSON object (a single line, no trailing newline) describing
    /// this profile's run: status, per-phase wall/command/bitflip
    /// numbers, and the dossier fields on success.
    pub fn json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_str_field(&mut s, "label", &self.label);
        s.push_str(&format!(",\"seed\":{}", self.seed));
        s.push_str(&format!(",\"wall_ms\":{:.3}", self.stats.wall_ms()));
        s.push_str(&format!(",\"job_wall_ms\":{:.3}", self.job_wall_ms));
        s.push_str(&format!(",\"commands\":{}", self.stats.commands()));
        s.push_str(&format!(",\"bitflips\":{}", self.stats.bitflips()));
        s.push_str(",\"phases\":[");
        for (i, p) in self.stats.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_str_field(&mut s, "name", p.name);
            s.push_str(&format!(
                ",\"wall_ms\":{:.3},\"commands\":{},\"bitflips\":{}}}",
                p.wall_ms, p.commands, p.bitflips
            ));
        }
        s.push(']');
        match &self.outcome {
            Ok(d) => {
                s.push_str(",\"status\":\"ok\",\"dossier\":{");
                push_str_field(&mut s, "composition", &d.composition);
                s.push_str(&format!(",\"edge_interval\":{}", opt_json(d.edge_interval)));
                s.push_str(&format!(
                    ",\"edge_interval_from_power\":{}",
                    opt_json(d.edge_interval_from_power)
                ));
                s.push_str(&format!(
                    ",\"coupled_distance\":{}",
                    opt_json(d.coupled_distance)
                ));
                s.push_str(&format!(
                    ",\"copy_inverted\":{}",
                    d.copy_inverted.map_or("null".into(), |b| b.to_string())
                ));
                s.push(',');
                push_str_field(&mut s, "polarity", &format!("{:?}", d.polarity));
                s.push(',');
                push_str_field(&mut s, "remap", &format!("{:?}", d.remap));
                s.push_str(&format!(",\"mats_per_rd\":{}", opt_json(d.mats_per_rd)));
                s.push_str(&format!(",\"mat_width\":{}", opt_json(d.mat_width)));
                s.push(',');
                push_str_field(&mut s, "trr", &format!("{:?}", d.trr));
                s.push(',');
                push_str_field(&mut s, "on_die_ecc", &format!("{:?}", d.on_die_ecc));
                s.push('}');
            }
            Err(e) => {
                s.push_str(",\"status\":\"error\",");
                push_str_field(&mut s, "error", &e.to_string());
            }
        }
        s.push('}');
        s
    }
}

fn opt_json(v: Option<u32>) -> String {
    v.map_or("null".into(), |x| x.to_string())
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Everything a fleet run produced, in job order.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-profile results, index-aligned with the submitted jobs.
    pub results: Vec<ProfileResult>,
    /// End-to-end wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Worker threads actually used.
    pub workers: usize,
}

impl FleetReport {
    /// The machine-readable run report: one JSON object per profile,
    /// newline-separated (JSON-lines).
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.json_line());
            out.push('\n');
        }
        out
    }

    /// A human-readable summary table (CSV via [`crate::report::Table`]).
    pub fn table(&self) -> String {
        let mut t = crate::report::Table::new(vec![
            "device",
            "status",
            "wall_ms",
            "job_ms",
            "commands",
            "bitflips",
            "composition",
        ]);
        for r in &self.results {
            let (status, composition) = match &r.outcome {
                Ok(d) => ("ok".to_string(), d.composition.clone()),
                Err(e) => (format!("error: {e}"), String::new()),
            };
            t.row(vec![
                r.label.clone(),
                status,
                format!("{:.1}", r.stats.wall_ms()),
                format!("{:.1}", r.job_wall_ms),
                r.stats.commands().to_string(),
                r.stats.bitflips().to_string(),
                composition,
            ]);
        }
        t.to_csv()
    }

    /// Total worker-side wall time across every job, milliseconds — what
    /// the run would have cost serially on one of this machine's cores.
    pub fn jobs_wall_ms(&self) -> f64 {
        self.results.iter().map(|r| r.job_wall_ms).sum()
    }

    /// Observed parallel speedup: summed per-job wall time over the
    /// run's end-to-end wall time. `≈ 1.0` on one worker (engine
    /// overhead can push it slightly below), approaching the worker
    /// count when jobs are long and balanced. `None` when the run's
    /// wall time rounds to zero.
    pub fn speedup(&self) -> Option<f64> {
        (self.wall_ms > 0.0).then(|| self.jobs_wall_ms() / self.wall_ms)
    }

    /// One JSON object summarizing the run as a whole: worker count
    /// actually used, job/ok counts, end-to-end and summed per-job wall
    /// times, and the observed parallel speedup (`null` when the run was
    /// too fast to time).
    pub fn summary_json(&self) -> String {
        let ok = self.results.iter().filter(|r| r.outcome.is_ok()).count();
        let speedup = self
            .speedup()
            .map_or("null".to_string(), |s| format!("{s:.2}"));
        format!(
            "{{\"workers\":{},\"jobs\":{},\"ok\":{},\"wall_ms\":{:.3},\"jobs_wall_ms\":{:.3},\"speedup\":{}}}",
            self.workers,
            self.results.len(),
            ok,
            self.wall_ms,
            self.jobs_wall_ms(),
            speedup
        )
    }

    /// `true` when every profile produced a dossier.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.outcome.is_ok())
    }

    /// Folds every profile's telemetry into one fleet-wide registry.
    ///
    /// Merging happens in job order regardless of which worker finished
    /// first, and counter/histogram merging is commutative anyway, so
    /// the merged snapshot is byte-identical between parallel and serial
    /// runs of the same jobs — the same determinism contract the
    /// dossiers obey.
    pub fn merged_metrics(&self) -> Registry {
        let mut merged = Registry::new();
        for r in &self.results {
            merged.merge(&r.metrics);
        }
        merged
    }
}

/// Derives the per-profile seed from the fleet's base seed and the
/// profile's label. Deterministic and order-independent: the same
/// `(base, label)` pair always gives the same seed, regardless of which
/// worker runs the job or in which order jobs complete.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    let mut h = mix64(base ^ 0x000F_1EE7_C0DE);
    for b in label.bytes() {
        h = mix64(h ^ u64::from(b));
    }
    h
}

/// The Table I population: every preset profile paired with an interior
/// probe range inside a non-edge subarray of its layout.
pub fn table1_jobs() -> Vec<FleetJob> {
    // Probe ranges by subarray family (the range must sit inside the
    // second subarray, clear of the low-edge one): 640-row family →
    // (648, 704), 832-row family → (840, 896), 688-row family →
    // (696, 752). These mirror the per-device ranges the bench binaries
    // have always used.
    let ranged = |profile: ChipProfile, probe_range: (u32, u32)| FleetJob {
        opts: CharacterizeOptions {
            probe_range,
            ..CharacterizeOptions::default()
        },
        profile,
    };
    vec![
        ranged(ChipProfile::mfr_a_x4_2016(), (648, 704)),
        ranged(ChipProfile::mfr_a_x4_2017(), (648, 704)),
        ranged(ChipProfile::mfr_a_x4_2018(), (840, 896)),
        ranged(ChipProfile::mfr_a_x4_2021(), (840, 896)),
        ranged(ChipProfile::mfr_a_x8_2017(), (648, 704)),
        ranged(ChipProfile::mfr_a_x8_2018(), (840, 896)),
        ranged(ChipProfile::mfr_a_x8_2019(), (648, 704)),
        ranged(ChipProfile::mfr_b_x4_2019(), (840, 896)),
        ranged(ChipProfile::mfr_b_x8_2017(), (840, 896)),
        ranged(ChipProfile::mfr_b_x8_2018(), (840, 896)),
        ranged(ChipProfile::mfr_b_x8_2019(), (840, 896)),
        ranged(ChipProfile::mfr_c_x4_2018(), (696, 752)),
        ranged(ChipProfile::mfr_c_x4_2021(), (696, 752)),
        ranged(ChipProfile::mfr_c_x8_2016(), (696, 752)),
        ranged(ChipProfile::mfr_c_x8_2019(), (696, 752)),
        ranged(ChipProfile::hbm2_mfr_a(), (840, 896)),
    ]
}

/// Characterizes every job concurrently on a `std::thread::scope` worker
/// pool. Results come back in job order; a worker panic costs only the
/// offending profile.
pub fn run_fleet(jobs: &[FleetJob], base_seed: u64, config: FleetConfig) -> FleetReport {
    run_fleet_with_events(jobs, base_seed, config, None)
}

/// [`run_fleet`] with per-job lifecycle events: every job emits
/// `job.queued` / `job.started` / `job.finished` (or `job.panicked`)
/// onto `events`, correlated by the profile label as `job_id`. The
/// report — and every dossier in it — is byte-identical with or without
/// a bus; events are pure observation.
pub fn run_fleet_with_events(
    jobs: &[FleetJob],
    base_seed: u64,
    config: FleetConfig,
    events: Option<&EventBus>,
) -> FleetReport {
    let workers = effective_workers(config.workers, jobs.len());
    if let Some(bus) = events {
        for job in jobs {
            bus.emit(EventDraft::info("job.queued").job(&job.profile.label()));
        }
    }
    let report = run_with(jobs, base_seed, workers, |profile, seed, opts| {
        let label = profile.label();
        if let Some(bus) = events {
            bus.emit(
                EventDraft::info("job.started")
                    .job(&label)
                    .field_u64("seed", seed),
            );
        }
        let job_started = Instant::now();
        let outcome = characterize_instrumented(profile, seed, opts, None);
        if let Some(bus) = events {
            bus.emit(
                EventDraft::info("job.finished")
                    .job(&label)
                    .field_bool("ok", outcome.is_ok())
                    .wall_ms(job_started.elapsed().as_millis() as u64),
            );
        }
        outcome
    });
    if let Some(bus) = events {
        // A panic unwound past the in-job `job.finished` emission, so
        // its event is emitted here instead.
        for r in &report.results {
            if let Err(e @ CoreError::WorkerPanic(_)) = &r.outcome {
                bus.emit(
                    EventDraft::error("job.panicked")
                        .job(&r.label)
                        .field_str("message", &e.to_string()),
                );
            }
        }
    }
    report
}

/// The strictly serial reference path: identical jobs, identical derived
/// seeds, one at a time on the calling thread. Exists so determinism can
/// be asserted (`run_fleet` output must match byte-for-byte) and as the
/// baseline for the parallel speedup.
pub fn run_fleet_serial(jobs: &[FleetJob], base_seed: u64) -> FleetReport {
    run_with(jobs, base_seed, 1, |profile, seed, opts| {
        characterize_instrumented(profile, seed, opts, None)
    })
}

fn effective_workers(requested: usize, jobs: usize) -> usize {
    let hw = thread::available_parallelism().map_or(1, |n| n.get());
    let w = if requested == 0 { hw } else { requested };
    w.clamp(1, jobs.max(1))
}

/// Everything a two-level sharded fleet run produced: one
/// [`ShardedReport`] per job, in job order, each with its banks in bank
/// order.
#[derive(Debug, Clone)]
pub struct ShardedFleetReport {
    /// Per-profile sharded reports, index-aligned with the submitted
    /// jobs. Each report's `wall_ms` is its summed per-bank worker time
    /// (a per-profile end-to-end time does not exist on a shared pool).
    pub profiles: Vec<ShardedReport>,
    /// End-to-end wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Total `(profile, bank)` tasks scheduled.
    pub tasks: usize,
}

impl ShardedFleetReport {
    /// `true` when every bank of every profile produced a dossier.
    pub fn all_ok(&self) -> bool {
        self.profiles.iter().all(ShardedReport::all_ok)
    }

    /// Total worker-side wall time across every task, milliseconds.
    pub fn tasks_wall_ms(&self) -> f64 {
        self.profiles.iter().map(ShardedReport::banks_wall_ms).sum()
    }

    /// Observed parallel speedup: summed per-task wall time over the
    /// run's end-to-end wall time. `None` when the run's wall time
    /// rounds to zero.
    pub fn speedup(&self) -> Option<f64> {
        (self.wall_ms > 0.0).then(|| self.tasks_wall_ms() / self.wall_ms)
    }

    /// Folds every profile's every bank's telemetry into one fleet-wide
    /// registry, in job order then bank order — deterministic regardless
    /// of which worker finished which task first.
    pub fn merged_metrics(&self) -> Registry {
        Registry::merged(
            self.profiles
                .iter()
                .flat_map(|p| p.results.iter().map(|r| &r.metrics)),
        )
    }

    /// A human-readable per-(device, bank) summary table (CSV via
    /// [`crate::report::Table`]).
    pub fn table(&self) -> String {
        let mut t = crate::report::Table::new(vec![
            "device",
            "bank",
            "status",
            "wall_ms",
            "bank_ms",
            "commands",
            "composition",
        ]);
        for p in &self.profiles {
            for r in &p.results {
                let (status, composition) = match &r.outcome {
                    Ok(d) => ("ok".to_string(), d.composition.clone()),
                    Err(e) => (format!("error: {e}"), String::new()),
                };
                t.row(vec![
                    p.label.clone(),
                    r.bank.to_string(),
                    status,
                    format!("{:.1}", r.stats.wall_ms()),
                    format!("{:.1}", r.bank_wall_ms),
                    r.stats.commands().to_string(),
                    composition,
                ]);
            }
        }
        t.to_csv()
    }

    /// One JSON object summarizing the run as a whole.
    pub fn summary_json(&self) -> String {
        let ok = self
            .profiles
            .iter()
            .flat_map(|p| &p.results)
            .filter(|r| r.outcome.is_ok())
            .count();
        let speedup = self
            .speedup()
            .map_or("null".to_string(), |s| format!("{s:.2}"));
        format!(
            "{{\"workers\":{},\"jobs\":{},\"tasks\":{},\"ok\":{},\"wall_ms\":{:.3},\"tasks_wall_ms\":{:.3},\"speedup\":{}}}",
            self.workers,
            self.profiles.len(),
            self.tasks,
            ok,
            self.wall_ms,
            self.tasks_wall_ms(),
            speedup
        )
    }
}

/// The two-level scheduler: every `(profile, bank)` pair across all
/// jobs becomes one task on a single shared worker pool, so a fleet of
/// few (or one) big devices still saturates a multi-core machine —
/// per-bank sharding *inside* each device supplies the parallelism that
/// profile-level fan-out alone cannot.
///
/// Seeds derive per profile exactly as in [`run_fleet`]; every bank
/// shard of one profile runs against a fresh chip clone built from that
/// same seed (the clone-per-shard contract of [`crate::shard`]).
/// Results group back per profile in bank order, so the output is
/// byte-identical to running
/// [`characterize_sharded_serial`](crate::shard::characterize_sharded_serial) over the jobs one
/// at a time, regardless of worker count or completion order. A panic
/// costs only its own `(profile, bank)` task.
pub fn run_fleet_sharded(
    jobs: &[FleetJob],
    base_seed: u64,
    config: FleetConfig,
) -> ShardedFleetReport {
    run_fleet_sharded_with_events(jobs, base_seed, config, None)
}

/// [`run_fleet_sharded`] with per-task lifecycle events: every
/// `(profile, bank)` task emits `job.queued` / `job.started` /
/// `job.finished` (or `job.panicked`) onto `events`, correlated by the
/// profile label as `job_id` and the bank as `shard`. The report — and
/// every dossier in it — is byte-identical with or without a bus;
/// events are pure observation.
pub fn run_fleet_sharded_with_events(
    jobs: &[FleetJob],
    base_seed: u64,
    config: FleetConfig,
    events: Option<&EventBus>,
) -> ShardedFleetReport {
    let started = Instant::now();
    let tasks: Vec<(usize, u32)> = jobs
        .iter()
        .enumerate()
        .flat_map(|(job_idx, job)| (0..job.profile.banks).map(move |bank| (job_idx, bank)))
        .collect();
    if let Some(bus) = events {
        for &(job_idx, bank) in &tasks {
            bus.emit(
                EventDraft::info("job.queued")
                    .job(&jobs[job_idx].profile.label())
                    .shard(bank),
            );
        }
    }
    let workers = effective_workers(config.workers, tasks.len());
    let outcomes = parallel_map(&tasks, workers, |&(job_idx, bank)| {
        let job = &jobs[job_idx];
        let label = job.profile.label();
        let seed = derive_seed(base_seed, &label);
        if let Some(bus) = events {
            bus.emit(
                EventDraft::info("job.started")
                    .job(&label)
                    .shard(bank)
                    .field_u64("seed", seed),
            );
        }
        let task_started = Instant::now();
        let outcome = crate::dossier::characterize_bank_instrumented(
            &job.profile,
            seed,
            bank,
            job.opts,
            None,
        );
        let wall_ms = task_started.elapsed().as_secs_f64() * 1e3;
        if let Some(bus) = events {
            bus.emit(
                EventDraft::info("job.finished")
                    .job(&label)
                    .shard(bank)
                    .field_bool("ok", outcome.is_ok())
                    .wall_ms(wall_ms as u64),
            );
        }
        Ok((wall_ms, outcome))
    });
    // Group the flat outcomes back per profile, in bank order. The task
    // list was built job-major, so each job's banks are contiguous.
    let mut outcomes = outcomes.into_iter();
    let profiles = jobs
        .iter()
        .map(|job| {
            let label = job.profile.label();
            let seed = derive_seed(base_seed, &label);
            let results: Vec<crate::shard::BankResult> = (0..job.profile.banks)
                .map(|bank| {
                    let outcome = outcomes
                        .next()
                        .expect("one outcome exists per scheduled task");
                    // A panic unwound past the in-task `job.finished`
                    // emission, so its event is emitted here instead.
                    if let (Some(bus), Err(e)) = (events, &outcome) {
                        bus.emit(
                            EventDraft::error("job.panicked")
                                .job(&label)
                                .shard(bank)
                                .field_str("message", &e.to_string()),
                        );
                    }
                    crate::shard::bank_result(bank, outcome)
                })
                .collect();
            let wall_ms = results.iter().map(|r| r.bank_wall_ms).sum();
            ShardedReport {
                label,
                seed,
                results,
                wall_ms,
                shards: workers,
            }
        })
        .collect();
    ShardedFleetReport {
        profiles,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        workers,
        tasks: tasks.len(),
    }
}

/// One boxed unit of pool work.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// Lifetime job counters shared between a [`FleetPool`] and its workers.
#[derive(Debug, Default)]
struct PoolCounters {
    queued: AtomicU64,
    started: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
}

/// A point-in-time view of a [`FleetPool`]'s backlog and history,
/// derived from monotonic per-state counters so the derived gauges can
/// never go negative even when read mid-transition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs ever submitted.
    pub jobs_queued: u64,
    /// Jobs a worker has picked up.
    pub jobs_started: u64,
    /// Jobs that ran to completion (panic-free).
    pub jobs_completed: u64,
    /// Jobs that panicked (isolated into their handle's error).
    pub jobs_panicked: u64,
}

impl PoolStats {
    /// Submitted jobs not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.jobs_queued.saturating_sub(self.jobs_started)
    }

    /// Jobs currently executing on a worker.
    pub fn jobs_running(&self) -> u64 {
        self.jobs_started
            .saturating_sub(self.jobs_completed + self.jobs_panicked)
    }
}

/// Attaches an optional job correlation id to a draft.
fn correlate(draft: EventDraft, job_id: &Option<String>) -> EventDraft {
    match job_id {
        Some(id) => draft.job(id),
        None => draft,
    }
}

/// A persistent worker pool for long-running job streams.
///
/// [`run_fleet`] and friends are batch engines: they spin a scoped pool
/// up, drain a fixed job list, and tear the pool down. A daemon serving
/// characterization requests needs the opposite shape — workers that
/// outlive any one submission — so `FleetPool` keeps the same contracts
/// (panic isolation per job, deterministic drain) on a long-lived pool.
///
/// * [`submit`](Self::submit) hands a closure to the pool and returns a
///   [`JobHandle`] immediately; jobs run in submission order (a single
///   shared queue) on whichever worker frees up first.
/// * A panic inside a job is caught and surfaced as that job's
///   [`CoreError::WorkerPanic`]; the worker survives and keeps serving.
/// * [`shutdown`](Self::shutdown) (and `Drop`) closes the queue and
///   joins every worker — every job already submitted still runs to
///   completion, so shutdown drains deterministically: no submitted job
///   is ever silently dropped.
///
/// # Example
///
/// ```
/// use dramscope_core::fleet::FleetPool;
///
/// let pool = FleetPool::new(2);
/// let handle = pool.submit(|| 6 * 7);
/// assert_eq!(handle.join().unwrap(), 42);
/// pool.shutdown();
/// ```
#[derive(Debug)]
pub struct FleetPool {
    queue: Option<mpsc::Sender<PoolTask>>,
    workers: Vec<thread::JoinHandle<()>>,
    counters: Arc<PoolCounters>,
    events: Option<EventBus>,
}

/// The receipt for one [`FleetPool::submit`]: join it to collect the
/// job's result (or the panic it was isolated into).
#[derive(Debug)]
pub struct JobHandle<R> {
    rx: mpsc::Receiver<Result<R, CoreError>>,
}

impl<R> JobHandle<R> {
    /// Blocks until the job completes and returns its result. A job that
    /// panicked yields [`CoreError::WorkerPanic`] instead of poisoning
    /// anything.
    pub fn join(self) -> Result<R, CoreError> {
        self.rx.recv().unwrap_or_else(|_| {
            // Unreachable by construction (the worker always sends,
            // panic or not), but a dead pool must read as an error, not
            // a crash in the caller.
            Err(CoreError::WorkerPanic(
                "worker pool dropped the job before completion".into(),
            ))
        })
    }
}

impl FleetPool {
    /// Spawns a pool of `workers` threads (`0` uses the machine's
    /// available parallelism, minimum one).
    pub fn new(workers: usize) -> FleetPool {
        FleetPool::build(workers, None)
    }

    /// Like [`new`](Self::new), but every job's lifecycle
    /// (`job.queued` → `job.started` → `job.finished` / `job.panicked`)
    /// is emitted onto `events`. Use [`submit_labeled`](Self::submit_labeled)
    /// to correlate those events with a job id.
    pub fn with_events(workers: usize, events: EventBus) -> FleetPool {
        FleetPool::build(workers, Some(events))
    }

    fn build(workers: usize, events: Option<EventBus>) -> FleetPool {
        let hw = thread::available_parallelism().map_or(1, |n| n.get());
        let count = if workers == 0 { hw } else { workers }.max(1);
        let (tx, rx) = mpsc::channel::<PoolTask>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..count)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || loop {
                    // Lock only to receive; a poisoned queue lock means a
                    // sibling worker died mid-recv (impossible by
                    // construction, but recoverable either way).
                    let task = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match task {
                        Ok(task) => task(),
                        Err(_) => break, // queue closed: pool shut down
                    }
                })
            })
            .collect();
        FleetPool {
            queue: Some(tx),
            workers,
            counters: Arc::new(PoolCounters::default()),
            events,
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The pool's lifetime job counters and derived backlog gauges.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs_queued: self.counters.queued.load(Ordering::Relaxed),
            jobs_started: self.counters.started.load(Ordering::Relaxed),
            jobs_completed: self.counters.completed.load(Ordering::Relaxed),
            jobs_panicked: self.counters.panicked.load(Ordering::Relaxed),
        }
    }

    /// Enqueues one job and returns its handle. The closure runs exactly
    /// once, on some pool worker, with any panic isolated into the
    /// handle's result.
    pub fn submit<R, F>(&self, job: F) -> JobHandle<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        self.submit_inner(None, job)
    }

    /// [`submit`](Self::submit) with a job correlation id: lifecycle
    /// events (on a pool built with [`with_events`](Self::with_events))
    /// carry `job_id` so a journal can be filtered down to one job.
    pub fn submit_labeled<R, F>(&self, job_id: &str, job: F) -> JobHandle<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        self.submit_inner(Some(job_id.to_string()), job)
    }

    fn submit_inner<R, F>(&self, job_id: Option<String>, job: F) -> JobHandle<R>
    where
        F: FnOnce() -> R + Send + 'static,
        R: Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let counters = Arc::clone(&self.counters);
        counters.queued.fetch_add(1, Ordering::Relaxed);
        let events = self.events.clone();
        if let Some(bus) = &events {
            bus.emit(correlate(EventDraft::info("job.queued"), &job_id));
        }
        let task: PoolTask = Box::new(move || {
            counters.started.fetch_add(1, Ordering::Relaxed);
            if let Some(bus) = &events {
                bus.emit(correlate(EventDraft::info("job.started"), &job_id));
            }
            let job_started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(job))
                .map_err(|payload| CoreError::WorkerPanic(panic_message(payload)));
            let wall_ms = job_started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
            match &outcome {
                Ok(_) => {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    if let Some(bus) = &events {
                        bus.emit(
                            correlate(EventDraft::info("job.finished"), &job_id).wall_ms(wall_ms),
                        );
                    }
                }
                Err(e) => {
                    counters.panicked.fetch_add(1, Ordering::Relaxed);
                    if let Some(bus) = &events {
                        bus.emit(
                            correlate(EventDraft::error("job.panicked"), &job_id)
                                .field_str("message", &e.to_string())
                                .wall_ms(wall_ms),
                        );
                    }
                }
            }
            // A receiver that hung up (caller dropped the handle) is
            // fine; the job still ran.
            let _ = tx.send(outcome);
        });
        // A missing queue (submit racing shutdown/drop) or dead workers
        // must not take the submitter down: hand back a handle whose
        // `join` reads a clean error instead of panicking mid-submit.
        let rejected = || {
            self.counters.queued.fetch_sub(1, Ordering::Relaxed);
            let (tx, rx) = mpsc::channel();
            let _ = tx.send(Err(CoreError::from(
                "pool is shut down; job was not queued".to_string(),
            )));
            JobHandle { rx }
        };
        let Some(queue) = self.queue.as_ref() else {
            return rejected();
        };
        if queue.send(task).is_err() {
            return rejected();
        }
        JobHandle { rx }
    }

    /// Closes the queue and joins every worker. Every already-submitted
    /// job runs to completion first — the drain is deterministic.
    pub fn shutdown(mut self) {
        self.drain();
    }

    /// [`shutdown`](Self::shutdown) that also returns the final counter
    /// snapshot, taken *after* the drain so queued jobs are counted as
    /// completed (or panicked), never as still running.
    pub fn shutdown_stats(mut self) -> PoolStats {
        self.drain();
        self.stats()
    }

    fn drain(&mut self) {
        // Dropping the sender closes the channel; workers finish the
        // queued backlog, then their `recv` errors and they exit.
        drop(self.queue.take());
        for worker in self.workers.drain(..) {
            // A worker thread's main loop cannot panic (jobs are caught
            // inside), so join failures are unreachable; ignore rather
            // than double-panic during drop.
            let _ = worker.join();
        }
    }
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        self.drain();
    }
}

/// The raw fan-out engine under [`run_fleet`], public so other
/// per-device sweeps (the bench tables, custom experiment loops) can
/// parallelize the same way. Runs `f` over every item on a
/// `std::thread::scope` worker pool and returns the outcomes in input
/// order; a panic inside `f` becomes that item's
/// [`CoreError::WorkerPanic`] while every other item still completes.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<Result<R, CoreError>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, CoreError> + Sync,
{
    let workers = effective_workers(workers, items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, CoreError>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A panicking run leaves only its own item's state
                // inconsistent; nothing shared survives the catch, so
                // the unwind is safe to absorb.
                let outcome = match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(result) => result,
                    Err(payload) => Err(CoreError::WorkerPanic(panic_message(payload))),
                };
                // A slot mutex can only be poisoned by a panic inside
                // this store — the data is a plain Option we are about
                // to overwrite, so recover it rather than letting one
                // poisoned slot (a second panic escaping the catch
                // above) abort the whole fleet.
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| recover_slot(slot).expect("every item index was claimed by a worker"))
        .collect()
}

/// Extracts a slot's stored outcome, recovering the data from a
/// poisoned mutex: poisoning only records that a panic unwound while
/// the lock was held, and the stored `Option` is valid either way —
/// panic isolation must not turn into a whole-fleet abort.
fn recover_slot<R>(slot: Mutex<Option<R>>) -> Option<R> {
    slot.into_inner().unwrap_or_else(|p| p.into_inner())
}

/// The engine proper, generic over the per-job runner so tests can
/// inject faults (panics, errors) without manufacturing a broken chip.
fn run_with<F>(jobs: &[FleetJob], base_seed: u64, workers: usize, run: F) -> FleetReport
where
    F: Fn(
            &ChipProfile,
            u64,
            CharacterizeOptions,
        ) -> Result<(ChipDossier, RunStats, Registry), CoreError>
        + Sync,
{
    let started = Instant::now();
    // Each worker times its own job around `run`, so errored jobs keep
    // their cost; only a panic (which unwinds past the timer) reads as
    // zero. The inner Result is re-wrapped in Ok so `parallel_map`'s
    // error arm stays reserved for panics.
    let outcomes = parallel_map(jobs, workers, |job| {
        let seed = derive_seed(base_seed, &job.profile.label());
        let job_started = Instant::now();
        let outcome = run(&job.profile, seed, job.opts);
        Ok((job_started.elapsed().as_secs_f64() * 1e3, outcome))
    });
    let results = jobs
        .iter()
        .zip(outcomes)
        .map(|(job, outcome)| {
            let label = job.profile.label();
            let seed = derive_seed(base_seed, &label);
            match outcome {
                Ok((job_wall_ms, Ok((dossier, stats, metrics)))) => ProfileResult {
                    label,
                    seed,
                    outcome: Ok(dossier),
                    stats,
                    job_wall_ms,
                    metrics,
                },
                Ok((job_wall_ms, Err(e))) => ProfileResult {
                    label,
                    seed,
                    outcome: Err(e),
                    stats: RunStats::default(),
                    job_wall_ms,
                    metrics: Registry::new(),
                },
                Err(e) => ProfileResult {
                    label,
                    seed,
                    outcome: Err(e),
                    stats: RunStats::default(),
                    job_wall_ms: 0.0,
                    metrics: Registry::new(),
                },
            }
        })
        .collect();
    FleetReport {
        results,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        workers,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::Time;

    fn small_jobs() -> Vec<FleetJob> {
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        vec![
            FleetJob {
                profile: ChipProfile::test_small(),
                opts,
            },
            FleetJob {
                profile: ChipProfile::test_small_coupled(),
                opts: CharacterizeOptions {
                    scan_rows: 257,
                    ..opts
                },
            },
            FleetJob {
                profile: ChipProfile::test_small().with_trr(2),
                opts,
            },
            FleetJob {
                profile: ChipProfile::test_small().with_on_die_ecc(),
                opts,
            },
        ]
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = derive_seed(1, "Mfr. A x4 2016");
        assert_eq!(a, derive_seed(1, "Mfr. A x4 2016"));
        assert_ne!(a, derive_seed(2, "Mfr. A x4 2016"));
        assert_ne!(a, derive_seed(1, "Mfr. A x4 2017"));
    }

    #[test]
    fn table1_covers_all_presets() {
        let jobs = table1_jobs();
        assert_eq!(jobs.len(), ChipProfile::all_presets().len());
        let labels: Vec<String> = jobs.iter().map(|j| j.profile.label()).collect();
        let preset_labels: Vec<String> = ChipProfile::all_presets()
            .iter()
            .map(|p| p.label())
            .collect();
        assert_eq!(labels, preset_labels);
    }

    #[test]
    fn parallel_matches_serial_byte_for_byte() {
        let jobs = small_jobs();
        let par = run_fleet(&jobs, 77, FleetConfig { workers: 4 });
        let ser = run_fleet_serial(&jobs, 77);
        assert!(par.all_ok(), "{}", par.table());
        assert!(ser.all_ok(), "{}", ser.table());
        for (p, s) in par.results.iter().zip(&ser.results) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.seed, s.seed);
            // The dossiers (not the timings) must be byte-identical.
            assert_eq!(
                format!("{}", p.outcome.as_ref().unwrap()),
                format!("{}", s.outcome.as_ref().unwrap())
            );
            assert_eq!(
                p.stats
                    .phases
                    .iter()
                    .map(|x| x.commands)
                    .collect::<Vec<_>>(),
                s.stats
                    .phases
                    .iter()
                    .map(|x| x.commands)
                    .collect::<Vec<_>>(),
            );
            assert_eq!(
                p.stats
                    .phases
                    .iter()
                    .map(|x| x.bitflips)
                    .collect::<Vec<_>>(),
                s.stats
                    .phases
                    .iter()
                    .map(|x| x.bitflips)
                    .collect::<Vec<_>>(),
            );
            // Per-profile telemetry snapshots are byte-identical too.
            assert_eq!(p.metrics.to_json_lines(), s.metrics.to_json_lines());
            assert!(p.metrics.sum_counters("commands_total") > 0);
        }
        // The merged fleet-wide snapshot obeys the same contract: a
        // parallel run and a serial run of the same jobs render the
        // identical bytes.
        let merged_par = par.merged_metrics().to_json_lines();
        let merged_ser = ser.merged_metrics().to_json_lines();
        assert_eq!(merged_par, merged_ser);
        // And the merge really is the sum of the parts.
        assert_eq!(
            par.merged_metrics().sum_counters("commands_total"),
            par.results
                .iter()
                .map(|r| r.metrics.sum_counters("commands_total"))
                .sum::<u64>()
        );
    }

    #[test]
    fn sharded_fleet_matches_per_device_serial_reference() {
        // Two-level scheduling contract: flattening (profile, bank)
        // tasks onto one pool must regroup into exactly what running
        // the serial sharded path per job would produce.
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let jobs = vec![
            FleetJob {
                profile: ChipProfile::test_small(),
                opts,
            },
            FleetJob {
                profile: ChipProfile::test_small_hbm2(),
                opts,
            },
        ];
        let report = run_fleet_sharded(&jobs, 77, FleetConfig { workers: 4 });
        assert!(report.all_ok(), "{}", report.table());
        assert_eq!(report.profiles.len(), 2);
        assert_eq!(report.tasks, 2 + 4, "one task per (profile, bank)");
        for (job, sharded) in jobs.iter().zip(&report.profiles) {
            let seed = derive_seed(77, &job.profile.label());
            assert_eq!(sharded.seed, seed);
            let reference = crate::shard::characterize_sharded_serial(&job.profile, seed, job.opts);
            assert_eq!(
                sharded.dossier().unwrap().to_string(),
                reference.dossier().unwrap().to_string()
            );
            assert_eq!(
                sharded.merged_metrics().to_json_lines(),
                reference.merged_metrics().to_json_lines()
            );
        }
        // Summary and table carry the two-level shape.
        let summary = report.summary_json();
        assert!(summary.contains("\"jobs\":2"), "{summary}");
        assert!(summary.contains("\"tasks\":6"), "{summary}");
        assert!(summary.contains("\"ok\":6"), "{summary}");
        assert!(report.tasks_wall_ms() > 0.0);
        let table = report.table();
        assert!(table.lines().next().unwrap().contains("bank"));
        assert_eq!(table.lines().count(), 1 + 6, "{table}");
    }

    #[test]
    fn injected_panic_is_isolated_to_its_profile() {
        let jobs = small_jobs();
        let report = run_with(&jobs, 9, 4, |profile, seed, opts| {
            if profile.label() == ChipProfile::test_small_coupled().label() {
                panic!("injected fault");
            }
            characterize_instrumented(profile, seed, opts, None)
        });
        assert_eq!(report.results.len(), jobs.len());
        let failed: Vec<&ProfileResult> = report
            .results
            .iter()
            .filter(|r| r.outcome.is_err())
            .collect();
        assert_eq!(failed.len(), 1, "{}", report.table());
        assert_eq!(
            failed[0].outcome.as_ref().unwrap_err(),
            &CoreError::WorkerPanic("injected fault".into())
        );
        assert!(failed[0].metrics.is_empty());
        // Every other profile completed normally.
        assert_eq!(
            report.results.iter().filter(|r| r.outcome.is_ok()).count(),
            jobs.len() - 1
        );
        // The failure shows up in both report formats.
        assert!(report.table().contains("worker panicked"));
        assert!(report
            .json_lines()
            .lines()
            .any(|l| l.contains("\"status\":\"error\"") && l.contains("injected fault")));
    }

    #[test]
    fn poisoned_slot_mutex_still_yields_its_data() {
        // The "job panics mid-store" scenario: a panic unwinds while the
        // slot guard is held, poisoning the mutex after the outcome was
        // written. Recovery must hand the stored data back instead of
        // turning one isolated panic into a whole-fleet abort.
        let slot = Mutex::new(None::<Result<u32, CoreError>>);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let mut guard = slot.lock().unwrap();
            *guard = Some(Ok(7));
            panic!("mid-store fault");
        }));
        assert!(slot.is_poisoned(), "the mid-store panic must poison");
        assert_eq!(recover_slot(slot), Some(Ok(7)));
    }

    #[test]
    fn parallel_map_preserves_order_and_isolates_panics() {
        let items: Vec<u64> = (0..24).collect();
        let out = parallel_map(&items, 8, |&x| {
            if x == 13 {
                panic!("unlucky item");
            }
            Ok(x * x)
        });
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                assert_eq!(
                    r.as_ref().unwrap_err(),
                    &CoreError::WorkerPanic("unlucky item".into())
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i * i) as u64);
            }
        }
    }

    #[test]
    fn job_wall_clock_and_summary_are_reported() {
        let jobs = small_jobs();
        let report = run_fleet_serial(&jobs, 77);
        assert!(report.all_ok(), "{}", report.table());
        for r in &report.results {
            // Every job ran real work, so its worker-side clock moved,
            // and a job can't cost less than its instrumented phases.
            assert!(r.job_wall_ms > 0.0, "{}: {}", r.label, r.job_wall_ms);
            assert!(
                r.job_wall_ms >= r.stats.wall_ms(),
                "{}: job {} < phases {}",
                r.label,
                r.job_wall_ms,
                r.stats.wall_ms()
            );
        }
        assert!(report.jobs_wall_ms() > 0.0);
        // Serial run: summed job time can't exceed end-to-end time.
        assert!(report.jobs_wall_ms() <= report.wall_ms);
        let summary = report.summary_json();
        assert!(summary.contains("\"workers\":1"), "{summary}");
        assert!(
            summary.contains(&format!("\"jobs\":{}", jobs.len())),
            "{summary}"
        );
        assert!(
            summary.contains(&format!("\"ok\":{}", jobs.len())),
            "{summary}"
        );
        assert!(summary.contains("\"speedup\":"), "{summary}");
        assert!(
            report
                .json_lines()
                .lines()
                .all(|l| l.contains("\"job_wall_ms\":")),
            "every profile line carries its job wall time"
        );
        assert!(report.table().lines().next().unwrap().contains("job_ms"));
    }

    #[test]
    fn panicked_jobs_report_zero_job_wall_time() {
        let jobs = small_jobs();
        let report = run_with(&jobs, 9, 2, |profile, seed, opts| {
            if profile.label() == ChipProfile::test_small_coupled().label() {
                panic!("injected fault");
            }
            characterize_instrumented(profile, seed, opts, None)
        });
        for r in &report.results {
            match &r.outcome {
                Ok(_) => assert!(r.job_wall_ms > 0.0, "{}", r.label),
                Err(_) => assert_eq!(r.job_wall_ms, 0.0, "{}", r.label),
            }
        }
    }

    #[test]
    fn pool_runs_jobs_and_isolates_panics() {
        let pool = FleetPool::new(3);
        assert_eq!(pool.workers(), 3);
        let handles: Vec<JobHandle<u64>> = (0..16u64)
            .map(|i| {
                pool.submit(move || {
                    if i == 11 {
                        panic!("unlucky job");
                    }
                    i * i
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.join();
            if i == 11 {
                assert_eq!(
                    out.unwrap_err(),
                    CoreError::WorkerPanic("unlucky job".into())
                );
            } else {
                assert_eq!(out.unwrap(), (i * i) as u64);
            }
        }
        // The panic did not kill its worker: the pool keeps serving.
        assert_eq!(pool.submit(|| 7u64).join().unwrap(), 7);
        pool.shutdown();
    }

    #[test]
    fn pool_shutdown_drains_the_queued_backlog() {
        use std::sync::atomic::AtomicU64;
        // One worker, many queued jobs: shutdown must run every one of
        // them before returning (deterministic drain, no silent drops).
        let ran = Arc::new(AtomicU64::new(0));
        let pool = FleetPool::new(1);
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            // Handles dropped on purpose: drain must not depend on a
            // caller joining.
            let _ = pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn pool_submit_after_queue_death_errors_instead_of_panicking() {
        // Force the post-shutdown state directly: a submit racing a
        // drain must hand back an erroring handle, never unwind.
        let mut pool = FleetPool::new(1);
        pool.queue = None;
        let handle: JobHandle<u32> = pool.submit(|| 7);
        match handle.join() {
            Err(e) => assert!(e.to_string().contains("shut down"), "{e}"),
            Ok(v) => panic!("job ran on a dead pool: {v}"),
        }
        // The rejected job does not distort the backlog gauges.
        assert_eq!(pool.stats().jobs_queued, 0);
        assert_eq!(pool.stats().queue_depth(), 0);
    }

    #[test]
    fn pool_drop_is_a_drain_too() {
        use std::sync::atomic::AtomicU64;
        let ran = Arc::new(AtomicU64::new(0));
        {
            let pool = FleetPool::new(1);
            for _ in 0..8 {
                let ran = Arc::clone(&ran);
                let _ = pool.submit(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn pool_stats_track_the_lifecycle() {
        let pool = FleetPool::new(1);
        assert_eq!(pool.stats(), PoolStats::default());
        let handles: Vec<JobHandle<u32>> = (0..4)
            .map(|i| {
                pool.submit_labeled(&format!("j{i}"), move || {
                    if i == 2 {
                        panic!("boom");
                    }
                    i
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_queued, 4);
        assert_eq!(stats.jobs_started, 4);
        assert_eq!(stats.jobs_completed, 3);
        assert_eq!(stats.jobs_panicked, 1);
        assert_eq!(stats.queue_depth(), 0);
        assert_eq!(stats.jobs_running(), 0);
    }

    #[test]
    fn pool_with_events_emits_matched_lifecycles() {
        let bus = dram_obs::EventBus::new(64);
        // One worker: events interleave deterministically per job.
        let pool = FleetPool::with_events(1, bus.clone());
        pool.submit_labeled("alpha", || 1u32).join().unwrap();
        let err = pool
            .submit_labeled("beta", || -> u32 { panic!("sim fault") })
            .join()
            .unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanic(_)));
        pool.shutdown();
        let events = bus.since(0, 0).events;
        let kinds: Vec<(&str, Option<&str>)> = events
            .iter()
            .map(|e| (e.kind.as_str(), e.job_id.as_deref()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("job.queued", Some("alpha")),
                ("job.started", Some("alpha")),
                ("job.finished", Some("alpha")),
                ("job.queued", Some("beta")),
                ("job.started", Some("beta")),
                ("job.panicked", Some("beta")),
            ]
        );
        // Wall time is quarantined: the deterministic rendering of a
        // finished event carries no wall keys.
        let finished = &events[2];
        assert!(finished.wall.contains_key("ms"));
        assert!(!finished.stable_line().contains("wall"));
        // The panic message rides in deterministic fields.
        assert!(events[5]
            .field("message")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains("sim fault"));
    }

    #[test]
    fn sharded_fleet_events_reconstruct_every_task() {
        let bus = dram_obs::EventBus::new(256);
        let jobs = small_jobs();
        let report =
            run_fleet_sharded_with_events(&jobs, 77, FleetConfig { workers: 2 }, Some(&bus));
        assert!(report.all_ok());
        let events = bus.since(0, 0).events;
        // Every (job, bank) task has matched queued, started, and
        // finished events with consistent correlation ids. Several test
        // jobs share a profile label, so counts are per (label, bank).
        for job in &jobs {
            let label = job.profile.label();
            let same_label = jobs.iter().filter(|j| j.profile.label() == label).count();
            for bank in 0..job.profile.banks {
                for kind in ["job.queued", "job.started", "job.finished"] {
                    let matching = events
                        .iter()
                        .filter(|e| {
                            e.kind == kind
                                && e.job_id.as_deref() == Some(label.as_str())
                                && e.shard == Some(bank)
                        })
                        .count();
                    assert_eq!(matching, same_label, "{label} bank {bank} {kind}");
                }
            }
        }
        // And the report itself is byte-identical to an event-free run.
        let quiet = run_fleet_sharded(&jobs, 77, FleetConfig { workers: 2 });
        assert_eq!(
            report.merged_metrics().to_json_lines(),
            quiet.merged_metrics().to_json_lines()
        );
    }

    #[test]
    fn plain_fleet_events_reconstruct_every_job() {
        let bus = dram_obs::EventBus::new(256);
        let jobs = small_jobs();
        let report = run_fleet_with_events(&jobs, 77, FleetConfig { workers: 2 }, Some(&bus));
        assert!(report.results.iter().all(|r| r.outcome.is_ok()));
        let events = bus.since(0, 0).events;
        // Every job has matched queued, started, and finished events
        // with consistent correlation ids. Several test jobs share a
        // profile label, so counts are per label.
        for job in &jobs {
            let label = job.profile.label();
            let same_label = jobs.iter().filter(|j| j.profile.label() == label).count();
            for kind in ["job.queued", "job.started", "job.finished"] {
                let matching = events
                    .iter()
                    .filter(|e| e.kind == kind && e.job_id.as_deref() == Some(label.as_str()))
                    .count();
                assert_eq!(matching, same_label, "{label} {kind}");
            }
        }
        // Finished events carry their ok flag and quarantine wall time.
        let finished = events
            .iter()
            .find(|e| e.kind == "job.finished")
            .expect("a job finished");
        assert!(matches!(
            finished.field("ok"),
            Some(dram_obs::FieldValue::Bool(true))
        ));
        assert!(!finished.stable_line().contains("wall"));
        // And the report itself is byte-identical to an event-free run.
        let quiet = run_fleet(&jobs, 77, FleetConfig { workers: 2 });
        assert_eq!(
            report.merged_metrics().to_json_lines(),
            quiet.merged_metrics().to_json_lines()
        );
    }

    #[test]
    fn pool_zero_workers_uses_machine_parallelism() {
        let pool = FleetPool::new(0);
        assert!(pool.workers() >= 1);
        assert_eq!(pool.submit(|| 1u32).join().unwrap(), 1);
    }

    #[test]
    fn json_lines_are_one_object_per_profile() {
        let jobs = small_jobs();
        let report = run_fleet_serial(&jobs[..1], 77);
        let out = report.json_lines();
        assert_eq!(out.lines().count(), 1);
        let line = out.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"phases\":[{\"name\":\"structure\""));
        assert!(line.contains("\"dossier\":{"));
    }
}
