//! One-call chip characterization: the full DRAMScope flow bundled into
//! a device dossier.
//!
//! [`characterize`] runs every reverse-engineering technique against a
//! fresh chip — RowCopy structure probing, retention polarity, remap
//! detection, optional swizzle recovery, TRR fingerprinting, ECC
//! detection, and the power-rail cross-check — and returns a
//! [`ChipDossier`], the report a downstream user (attack author, defense
//! designer, or PIM researcher) actually wants about an unknown device.

use crate::ecc_probe::{self, EccVerdict};
use crate::error::CoreError;
use crate::hammer::{AibConfig, Attack};
use crate::observations::ObservationSuite;
use crate::power_channel;
use crate::remap_re::{self, RemapVerdict};
use crate::retention_probe::{self, PolarityVerdict};
use crate::rowcopy_probe;
use crate::trr_re::{self, TrrVerdict};
use dram_sim::{ChipProfile, ChipStats, CommandSink, DramChip, SharedMetrics, Tee, Time};
use dram_telemetry::Registry;
use dram_testbed::Testbed;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Summarizes a height sequence the way Table III does
/// (`"11 x 640-row + 2 x 576-row (per 8192)"`).
pub fn summarize_heights(heights: &[u32]) -> String {
    if heights.is_empty() {
        return "(none)".into();
    }
    // Find the shortest repeating block.
    let block_len = (1..=heights.len())
        .find(|&k| {
            heights
                .iter()
                .enumerate()
                .all(|(i, h)| *h == heights[i % k])
        })
        .unwrap_or(heights.len());
    let block = &heights[..block_len];
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &h in block {
        *counts.entry(h).or_default() += 1;
    }
    let body = counts
        .iter()
        .rev()
        .map(|(h, c)| format!("{c} x {h}-row"))
        .collect::<Vec<_>>()
        .join(" + ");
    let total: u32 = block.iter().sum();
    format!("{body} (per {total})")
}

/// Options for [`characterize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharacterizeOptions {
    /// Rows scanned for subarray boundaries (covers ≥ one composition
    /// block on every known device at 8193).
    pub scan_rows: u32,
    /// Also run the (slower) swizzle-recovery pipeline; requires
    /// `probe_range` to lie inside one interior subarray.
    pub with_swizzle: bool,
    /// Interior wordline range for adjacency/swizzle probing.
    pub probe_range: (u32, u32),
    /// Unrefreshed wait for the retention polarity test.
    pub retention_wait: Time,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        CharacterizeOptions {
            scan_rows: 8193,
            with_swizzle: false,
            probe_range: (648, 704),
            retention_wait: Time::from_ms(120_000),
        }
    }
}

/// Everything the toolkit discovered about one device.
#[derive(Debug, Clone)]
pub struct ChipDossier {
    /// The device's public label.
    pub label: String,
    /// Measured subarray heights over the scanned prefix.
    pub subarray_heights: Vec<u32>,
    /// Table III-style composition summary.
    pub composition: String,
    /// Edge-subarray interval (rows), if tandem pairs were found.
    pub edge_interval: Option<u32>,
    /// The same interval recovered independently from activation power.
    pub edge_interval_from_power: Option<u32>,
    /// Coupled-row distance, if the device couples rows.
    pub coupled_distance: Option<u32>,
    /// Whether cross-subarray RowCopy arrives inverted.
    pub copy_inverted: Option<bool>,
    /// Cell polarity scheme.
    pub polarity: PolarityVerdict,
    /// Row-decoder remapping verdict.
    pub remap: RemapVerdict,
    /// MATs feeding one RD_data (only with `with_swizzle`).
    pub mats_per_rd: Option<u32>,
    /// Measured MAT width in cells (only with `with_swizzle`).
    pub mat_width: Option<u32>,
    /// In-DRAM TRR verdict.
    pub trr: TrrVerdict,
    /// On-die ECC verdict.
    pub on_die_ecc: EccVerdict,
}

impl ChipDossier {
    /// FNV-1a 64 digest of the rendered dossier.
    ///
    /// The digest covers every field (via [`fmt::Display`]) and is the
    /// identity golden-trace regression asserts on: two characterizations
    /// reproduced bit-for-bit render byte-identical dossiers and thus
    /// share a digest. Stored in trace headers at record time and
    /// re-checked after replay.
    pub fn digest(&self) -> u64 {
        dram_trace::fnv1a_64(self.to_string().as_bytes())
    }
}

impl fmt::Display for ChipDossier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== device dossier: {} ===", self.label)?;
        writeln!(f, "subarray composition: {}", self.composition)?;
        writeln!(
            f,
            "edge-subarray interval: {} (power cross-check: {})",
            opt(self.edge_interval),
            opt(self.edge_interval_from_power)
        )?;
        writeln!(f, "coupled-row distance: {}", opt(self.coupled_distance))?;
        writeln!(
            f,
            "cross-subarray copy inverted: {}",
            self.copy_inverted.map_or("?".into(), |b| b.to_string())
        )?;
        writeln!(f, "cell polarity: {:?}", self.polarity)?;
        writeln!(f, "row decoder: {:?}", self.remap)?;
        if let (Some(m), Some(w)) = (self.mats_per_rd, self.mat_width) {
            writeln!(f, "data swizzling: RD_data from {m} MATs of {w} cells")?;
        }
        writeln!(f, "in-DRAM TRR: {:?}", self.trr)?;
        writeln!(f, "on-die ECC: {:?}", self.on_die_ecc)
    }
}

fn opt(v: Option<u32>) -> String {
    v.map_or("none".into(), |x| format!("{x} rows"))
}

/// Wall time and primary-testbed activity for one characterization phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase identifier (`"structure"`, `"power"`, `"retention"`,
    /// `"remap"`, `"swizzle"`, `"trr_ecc"`).
    pub name: &'static str,
    /// Wall-clock time spent in the phase, milliseconds.
    pub wall_ms: f64,
    /// Commands issued on the dossier's primary testbed during the phase
    /// (`ACT` + `RD` + `WR` + `REF`).
    pub commands: u64,
    /// Bitflips the primary testbed's chip resolved during the phase.
    pub bitflips: u64,
}

/// Per-phase run statistics for one characterization.
///
/// Command and bitflip counts cover the primary probe testbed; phases
/// that run on fresh chips (`swizzle`, `trr_ecc`) contribute wall time
/// plus whatever adjacency probing they did on the primary testbed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// One entry per phase, in execution order.
    pub phases: Vec<PhaseStat>,
}

impl RunStats {
    /// Total wall time across all phases, milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_ms).sum()
    }

    /// Total commands issued across all phases.
    pub fn commands(&self) -> u64 {
        self.phases.iter().map(|p| p.commands).sum()
    }

    /// Total bitflips resolved across all phases.
    pub fn bitflips(&self) -> u64 {
        self.phases.iter().map(|p| p.bitflips).sum()
    }
}

fn total_commands(s: &ChipStats) -> u64 {
    s.activations + s.reads + s.writes + s.refreshes
}

/// Snapshot-delta phase recorder for [`characterize_with_stats`].
struct PhaseClock {
    started: Instant,
    commands: u64,
    bitflips: u64,
}

impl PhaseClock {
    fn new() -> Self {
        PhaseClock {
            started: Instant::now(),
            commands: 0,
            bitflips: 0,
        }
    }

    fn lap(&mut self, name: &'static str, chip: &DramChip, out: &mut RunStats) {
        let s = chip.stats();
        let commands = total_commands(&s);
        out.phases.push(PhaseStat {
            name,
            wall_ms: self.started.elapsed().as_secs_f64() * 1e3,
            commands: commands - self.commands,
            bitflips: s.bitflips - self.bitflips,
        });
        self.started = Instant::now();
        self.commands = commands;
        self.bitflips = s.bitflips;
    }
}

/// Runs the complete characterization flow against fresh chips built from
/// `(profile, seed)`.
///
/// # Errors
///
/// Propagates chip protocol errors and pipeline failures.
pub fn characterize(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> Result<ChipDossier, CoreError> {
    characterize_with_stats(profile, seed, opts).map(|(d, _)| d)
}

/// [`characterize`], additionally reporting per-phase [`RunStats`]
/// (the machine-readable layer behind the fleet engine's run reports).
///
/// # Errors
///
/// Propagates chip protocol errors and pipeline failures.
pub fn characterize_with_stats(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> Result<(ChipDossier, RunStats), CoreError> {
    characterize_with_stats_traced(profile, seed, opts, None)
}

/// [`characterize_with_stats_traced`] plus telemetry: runs with a
/// [`MetricsSink`](dram_sim::MetricsSink) teed onto the primary probe
/// testbed and additionally returns the finished metrics [`Registry`]
/// (command mix, per-bank counters, row-cycle histograms, phase/span
/// accounting — see `dram_sim::metrics` for the schema).
///
/// When an external sink is supplied (a trace recorder, a replay
/// verifier) it is teed *first*, so it observes exactly the stream it
/// would see without telemetry attached. The registry is a pure function
/// of the deterministic event stream, so its JSON-lines snapshot is
/// byte-identical run to run for the same `(profile, seed, opts)`.
///
/// # Errors
///
/// Propagates chip protocol errors and pipeline failures.
pub fn characterize_instrumented(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<(ChipDossier, RunStats, Registry), CoreError> {
    let metrics = SharedMetrics::new();
    let combined: Box<dyn CommandSink + Send> = match sink {
        Some(external) => Box::new(Tee::new(external, metrics.clone())),
        None => Box::new(metrics.clone()),
    };
    let (dossier, stats) = characterize_with_stats_traced(profile, seed, opts, Some(combined))?;
    Ok((dossier, stats, metrics.take_registry()))
}

/// [`characterize_with_stats`] with an optional [`CommandSink`] attached
/// to the primary probe testbed for the duration of the run.
///
/// With a sink, every command the primary testbed issues is observable —
/// a recorder captures the run into a replayable trace, a verifier checks
/// it live against a previously recorded one. Phase boundaries are
/// announced to the sink as `phase:<name>` markers so traces carry the
/// experiment structure. Phases that run on fresh side chips (`swizzle`
/// internals, `trr_ecc` fingerprinting) are deterministic functions of
/// `(profile, seed)` and are not part of the primary command stream.
///
/// # Errors
///
/// Propagates chip protocol errors and pipeline failures.
pub fn characterize_with_stats_traced(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<(ChipDossier, RunStats), CoreError> {
    characterize_flow(profile, seed, None, opts, sink)
}

/// [`characterize_with_stats_traced`] restricted to one bank of the
/// device: every probe phase targets `bank` instead of bank 0, and the
/// stream opens with a `shard:bank=<bank>` marker so recorded traces
/// stay self-describing when per-bank segments are concatenated.
///
/// This is the per-shard unit of the bank-sharded characterization path
/// (see [`crate::shard`]): each shard runs against a fresh chip built
/// from the *same* `(profile, seed)` — the same simulated silicon — and
/// probes only its own bank, so shards can never observe each other's
/// bank state and their merged output is independent of scheduling.
///
/// # Errors
///
/// Rejects an out-of-range `bank`; otherwise the same failure modes as
/// [`characterize_with_stats_traced`].
pub fn characterize_bank_with_stats_traced(
    profile: &ChipProfile,
    seed: u64,
    bank: u32,
    opts: CharacterizeOptions,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<(ChipDossier, RunStats), CoreError> {
    characterize_flow(profile, seed, Some(bank), opts, sink)
}

/// [`characterize_bank_with_stats_traced`] plus telemetry, mirroring
/// [`characterize_instrumented`]: the external sink (if any) is teed
/// first, and the returned [`Registry`] is a pure function of the
/// deterministic per-bank event stream.
///
/// # Errors
///
/// Same failure modes as [`characterize_bank_with_stats_traced`].
pub fn characterize_bank_instrumented(
    profile: &ChipProfile,
    seed: u64,
    bank: u32,
    opts: CharacterizeOptions,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<(ChipDossier, RunStats, Registry), CoreError> {
    let metrics = SharedMetrics::new();
    let combined: Box<dyn CommandSink + Send> = match sink {
        Some(external) => Box::new(Tee::new(external, metrics.clone())),
        None => Box::new(metrics.clone()),
    };
    let (dossier, stats) = characterize_flow(profile, seed, Some(bank), opts, Some(combined))?;
    Ok((dossier, stats, metrics.take_registry()))
}

/// The shared probe flow behind the whole-device and per-bank entry
/// points. `shard_bank: None` is the legacy path: probe bank 0 and emit
/// exactly the historical marker stream (golden traces depend on it).
/// `Some(bank)` probes that bank and announces it with a leading
/// `shard:bank=<bank>` marker.
fn characterize_flow(
    profile: &ChipProfile,
    seed: u64,
    shard_bank: Option<u32>,
    opts: CharacterizeOptions,
    sink: Option<Box<dyn CommandSink + Send>>,
) -> Result<(ChipDossier, RunStats), CoreError> {
    let bank = shard_bank.unwrap_or(0);
    if bank >= profile.banks {
        return Err(format!(
            "bank {bank} out of range for {} ({} banks)",
            profile.label(),
            profile.banks
        )
        .into());
    }
    let mut tb = Testbed::new(DramChip::new(profile.clone(), seed));
    if let Some(sink) = sink {
        tb.set_sink(sink);
    }
    if shard_bank.is_some() {
        tb.mark(&format!("{}{bank}", dram_trace::SHARD_MARKER_PREFIX));
    }
    let mut stats = RunStats::default();
    let mut clock = PhaseClock::new();

    // Structure via RowCopy.
    tb.mark("phase:structure");
    let scan_end = opts.scan_rows.min(tb.rows());
    let subarray_heights = rowcopy_probe::subarray_heights(&mut tb, bank, 0..scan_end)?;
    let composition = summarize_heights(&subarray_heights);
    let edge_interval = rowcopy_probe::detect_edge_interval(&mut tb, bank)?;
    let coupled_distance = rowcopy_probe::detect_coupled_rows(&mut tb, bank)?;
    let copy_inverted = rowcopy_probe::detect_copy_inversion(&mut tb, bank, 0)?;
    clock.lap("structure", tb.chip(), &mut stats);

    // Power cross-check of the edge interval (stride below the smallest
    // known subarray height).
    tb.mark("phase:power");
    let stride = 64.min(tb.rows() / 32).max(1);
    let edge_interval_from_power = power_channel::edge_interval_from_power(&mut tb, bank, stride)?;
    clock.lap("power", tb.chip(), &mut stats);

    // Retention polarity over a spread of rows.
    tb.mark("phase:retention");
    let rows = tb.rows();
    let sample = [rows / 16, rows / 3, rows / 2 + 7];
    let verdicts = retention_probe::classify_rows(&mut tb, bank, &sample, opts.retention_wait)?;
    let polarity = retention_probe::polarity_scheme(&verdicts);
    clock.lap("retention", tb.chip(), &mut stats);

    // Remap detection on interior rows.
    tb.mark("phase:remap");
    let cfg = AibConfig {
        bank,
        attack: Attack::Hammer { count: 2_600_000 },
    };
    let probe_mid = (opts.probe_range.0 + opts.probe_range.1) / 2;
    let remap = remap_re::detect_remap(&mut tb, cfg, &[probe_mid])?;
    clock.lap("remap", tb.chip(), &mut stats);

    // Optional swizzle recovery via the observation suite's pipeline.
    tb.mark("phase:swizzle");
    let (mats_per_rd, mat_width) = if opts.with_swizzle {
        let mut suite = ObservationSuite::with_profile_range(
            profile.clone(),
            seed,
            opts.probe_range.0,
            opts.probe_range.1,
        );
        let layout = suite.layout()?;
        (
            Some(layout.row_bits() / layout.mat_width()),
            Some(layout.mat_width()),
        )
    } else {
        (None, None)
    };
    clock.lap("swizzle", tb.chip(), &mut stats);

    // TRR and ECC fingerprints on fresh chips. The victims are the rows
    // the adjacency probe actually found — pin neighbours are wrong on
    // remapped devices.
    tb.mark("phase:trr_ecc");
    let aggressor = probe_mid;
    let victims = crate::hammer::adjacent_rows(&mut tb, cfg, aggressor, 8)?;
    if victims.is_empty() {
        return Err("no victims found for the aggressor probe row".into());
    }
    let mut fresh = || Testbed::new(DramChip::new(profile.clone(), seed));
    let trr = trr_re::detect_trr(&mut fresh, bank, aggressor, &victims, 400_000, 12)?;
    let on_die_ecc =
        ecc_probe::detect_on_die_ecc(&mut fresh, bank, aggressor, victims[0], 8_000_000)?;
    clock.lap("trr_ecc", tb.chip(), &mut stats);

    let dossier = ChipDossier {
        label: profile.label(),
        subarray_heights,
        composition,
        edge_interval,
        edge_interval_from_power,
        coupled_distance,
        copy_inverted,
        polarity,
        remap,
        mats_per_rd,
        mat_width,
        trr,
        on_die_ecc,
    };
    Ok((dossier, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_matches_table_iii_style() {
        let mut block = vec![640u32; 11];
        block.extend([576, 576]);
        assert_eq!(
            summarize_heights(&block),
            "11 x 640-row + 2 x 576-row (per 8192)"
        );
        assert_eq!(summarize_heights(&[]), "(none)");
    }

    #[test]
    fn dossier_for_the_small_coupled_chip() {
        let opts = CharacterizeOptions {
            scan_rows: 257,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let d = characterize(&ChipProfile::test_small_coupled(), 77, opts).unwrap();
        assert_eq!(d.subarray_heights[..4], [40, 24, 40, 24]);
        assert_eq!(d.composition, "1 x 40-row + 1 x 24-row (per 64)");
        assert_eq!(d.edge_interval, Some(256));
        assert_eq!(d.edge_interval_from_power, Some(256));
        assert_eq!(d.coupled_distance, Some(1024));
        assert_eq!(d.copy_inverted, Some(true));
        assert_eq!(d.polarity, PolarityVerdict::AllTrue);
        assert_eq!(d.remap, RemapVerdict::Scrambled);
        assert_eq!(d.trr, TrrVerdict::Absent);
        assert_eq!(d.on_die_ecc, EccVerdict::Absent);
        let text = d.to_string();
        assert!(text.contains("coupled-row distance: 1024 rows"), "{text}");
    }

    #[test]
    fn characterize_twice_is_byte_identical() {
        // Regression test for iteration-order nondeterminism: counters
        // and row state used to live in HashMaps, so refresh settle
        // order (which feeds the physics) and TRR eviction tie-breaks
        // followed hash order and differed run to run.
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let profile = ChipProfile::test_small().with_trr(2);
        let (a, sa) = characterize_with_stats(&profile, 123, opts).unwrap();
        let (b, sb) = characterize_with_stats(&profile, 123, opts).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.subarray_heights, b.subarray_heights);
        let counts = |s: &RunStats| {
            s.phases
                .iter()
                .map(|p| (p.name, p.commands, p.bitflips))
                .collect::<Vec<_>>()
        };
        assert_eq!(counts(&sa), counts(&sb));
    }

    #[test]
    fn run_stats_cover_all_phases() {
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let (_, stats) = characterize_with_stats(&ChipProfile::test_small(), 5, opts).unwrap();
        let names: Vec<_> = stats.phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "structure",
                "power",
                "retention",
                "remap",
                "swizzle",
                "trr_ecc"
            ]
        );
        assert!(stats.commands() > 0, "probing must issue commands");
        assert!(
            stats.bitflips() > 0,
            "remap hammering must resolve bitflips"
        );
        assert!(stats.wall_ms() > 0.0);
    }

    #[test]
    fn instrumented_metrics_are_deterministic_and_cover_phases() {
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let profile = ChipProfile::test_small();
        let (da, _, ra) = characterize_instrumented(&profile, 123, opts, None).unwrap();
        let (db, _, rb) = characterize_instrumented(&profile, 123, opts, None).unwrap();
        assert_eq!(da.to_string(), db.to_string());
        // The snapshot is byte-stable across runs.
        assert_eq!(ra.to_json_lines(), rb.to_json_lines());
        // The command mix is populated and every phase got accounted.
        assert!(ra.sum_counters("commands_total") > 0);
        for phase in ["structure", "power", "retention", "remap", "swizzle"] {
            let key = dram_telemetry::Key::of("phase_count", &[("phase", phase)]);
            assert_eq!(ra.counter(&key), 1, "phase {phase}");
        }
        // Span instrumentation fired (remap detection runs attack scans).
        let scans = dram_telemetry::Key::of("span_count", &[("span", "attack_scan")]);
        assert!(ra.counter(&scans) > 0);
        // The uninstrumented path is unaffected by the tee.
        let (dc, _) = characterize_with_stats(&profile, 123, opts).unwrap();
        assert_eq!(dc.to_string(), da.to_string());
    }

    #[test]
    fn bank_zero_shard_matches_the_legacy_whole_device_path() {
        // The per-bank flow with bank 0 must produce the exact dossier
        // the historical path produces — the shard marker is the only
        // difference, and it lives in the trace, not the dossier.
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let profile = ChipProfile::test_small();
        let (legacy, _) = characterize_with_stats(&profile, 123, opts).unwrap();
        let (shard, _) = characterize_bank_with_stats_traced(&profile, 123, 0, opts, None).unwrap();
        assert_eq!(shard.to_string(), legacy.to_string());
        assert_eq!(shard.digest(), legacy.digest());
    }

    #[test]
    fn nonzero_banks_characterize_deterministically() {
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let profile = ChipProfile::test_small_hbm2();
        let (a, sa, ra) = characterize_bank_instrumented(&profile, 123, 3, opts, None).unwrap();
        let (b, _, rb) = characterize_bank_instrumented(&profile, 123, 3, opts, None).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(ra.to_json_lines(), rb.to_json_lines());
        assert!(sa.commands() > 0);
        // The probe really ran against bank 3: the per-bank command mix
        // is populated for bank 3 and empty for every other bank.
        let bank_total = |reg: &dram_telemetry::Registry, bank: &str| {
            reg.counters()
                .filter(|(k, _)| {
                    k.metric() == "bank_commands_total"
                        && k.labels().iter().any(|(n, v)| n == "bank" && v == bank)
                })
                .map(|(_, v)| v)
                .sum::<u64>()
        };
        assert!(bank_total(&ra, "3") > 0);
        for other in ["0", "1", "2"] {
            assert_eq!(bank_total(&ra, other), 0, "bank {other} must stay idle");
        }
    }

    #[test]
    fn out_of_range_bank_is_rejected() {
        let profile = ChipProfile::test_small();
        let err = characterize_bank_with_stats_traced(
            &profile,
            1,
            profile.banks,
            CharacterizeOptions::default(),
            None,
        )
        .expect_err("bank out of range");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn dossier_flags_trr_and_ecc_chips() {
        let opts = CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        };
        let d = characterize(
            &ChipProfile::test_small().with_trr(2).with_on_die_ecc(),
            77,
            opts,
        )
        .unwrap();
        assert_eq!(d.trr, TrrVerdict::Present);
        assert_eq!(d.on_die_ecc, EccVerdict::Present);
        assert_eq!(d.remap, RemapVerdict::Sequential);
    }
}
