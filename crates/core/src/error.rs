//! The concrete error type shared by every `dramscope-core` pipeline.
//!
//! The toolkit used to return `Box<dyn Error>`, which is neither `Send`
//! nor `Sync` and therefore cannot cross the fleet engine's worker
//! threads. [`CoreError`] is a plain data enum (strings and `Copy`
//! payloads only), so `Result<_, CoreError>` moves freely between
//! threads and still speaks `std::error::Error` for callers that box.

use crate::swizzle_re::SwizzleReError;
use dram_testbed::TestbedError;
use std::error::Error;
use std::fmt;

/// Any failure surfaced by the characterization toolkit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The testbed (or the chip under it) rejected a command sequence.
    Testbed(TestbedError),
    /// Swizzle recovery could not assemble a consistent picture.
    Swizzle(SwizzleReError),
    /// A probe pipeline found the data it needed missing or inconsistent
    /// (too few victims, short chains, parity disagreement, …).
    Pipeline(String),
    /// A fleet worker panicked mid-characterization; the payload is the
    /// panic message. Only the offending profile is lost.
    WorkerPanic(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Testbed(e) => write!(f, "testbed: {e}"),
            CoreError::Swizzle(e) => write!(f, "swizzle recovery: {e}"),
            CoreError::Pipeline(m) => write!(f, "pipeline: {m}"),
            CoreError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Testbed(e) => Some(e),
            CoreError::Swizzle(e) => Some(e),
            CoreError::Pipeline(_) | CoreError::WorkerPanic(_) => None,
        }
    }
}

impl From<TestbedError> for CoreError {
    fn from(e: TestbedError) -> Self {
        CoreError::Testbed(e)
    }
}

impl From<SwizzleReError> for CoreError {
    fn from(e: SwizzleReError) -> Self {
        CoreError::Swizzle(e)
    }
}

impl From<String> for CoreError {
    fn from(m: String) -> Self {
        CoreError::Pipeline(m)
    }
}

impl From<&str> for CoreError {
    fn from(m: &str) -> Self {
        CoreError::Pipeline(m.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::CommandError;

    #[test]
    fn core_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn displays_and_sources_chain() {
        let e = CoreError::from(TestbedError::Chip(CommandError::TimeReversed));
        assert!(e.to_string().contains("testbed"));
        assert!(e.source().is_some());
        let p = CoreError::from("not enough interior triples");
        assert_eq!(p, CoreError::Pipeline("not enough interior triples".into()));
        assert!(p.source().is_none());
    }

    #[test]
    fn time_reversed_chain_renders_root_cause_end_to_end() {
        // The full chain a fleet worker reports when a testbed program
        // rewinds the clock: CoreError -> TestbedError -> CommandError.
        let e = CoreError::from(TestbedError::Chip(CommandError::TimeReversed));
        assert_eq!(
            e.to_string(),
            "testbed: chip error: command timestamp precedes previous command"
        );
        let testbed = e.source().expect("testbed source");
        let chip = testbed.source().expect("chip source");
        assert_eq!(
            chip.to_string(),
            "command timestamp precedes previous command"
        );
        assert!(chip.source().is_none(), "CommandError is the chain root");
    }

    #[test]
    fn string_variants_display_without_sources() {
        let w = CoreError::WorkerPanic("index out of bounds".into());
        assert_eq!(w.to_string(), "worker panicked: index out of bounds");
        assert!(w.source().is_none());

        let p = CoreError::Pipeline("trace replay failed: geometry changed".into());
        assert_eq!(
            p.to_string(),
            "pipeline: trace replay failed: geometry changed"
        );
        assert!(p.source().is_none());

        // `From<String>` and `From<&str>` agree.
        assert_eq!(CoreError::from(String::from("x")), CoreError::from("x"));
    }
}
