//! Data patterns in controller space and MAT (physical) space
//! (paper §IV-A Fig. 8, §V-C, §V-D).
//!
//! The central lesson of the paper's Fig. 8 is that the *intended*
//! pattern (defined over physical bitlines) and the *written* pattern
//! (defined over RD_data bit indices) differ by the chip's data swizzle.
//! [`CellLayout`] carries the (col, bit) ⇄ physical-position bijection —
//! either taken from ground truth for calibration or produced by the
//! reverse-engineering pipeline ([`crate::swizzle_re`]) — and everything
//! else in this module converts between the two spaces:
//!
//! * [`physical_image`] shows what a naive write actually lands as;
//! * [`writer_for_physical`] produces column data realizing a desired
//!   physical pattern (the paper's "values actually written to the MAT");
//! * [`CellPatternBuilder`] perturbs individual cells and their physical
//!   neighbours — the primitive behind the adversarial patterns of §V-D.

use dram_sim::SwizzleMap;

/// Classic test patterns, as a naive experimenter would write them
/// (defined over RD_data bit indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPattern {
    /// All cells the same value.
    Solid(bool),
    /// Alternating by row.
    RowStripe,
    /// Intended: alternating by bitline. Naive: alternating by RD bit.
    ColStripe,
    /// Intended: checkerboard over (row, bitline). Naive: over (row, RD bit).
    Checkered,
    /// A repeating byte (e.g. `0x55`, `0x33`).
    ByteRepeat(u8),
}

impl DataPattern {
    /// The RD_data a naive experimenter writes at `(row, col)`.
    pub fn naive_rd(self, row: u32, _col: u32, rd_bits: u32) -> u64 {
        let mask = if rd_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << rd_bits) - 1
        };
        match self {
            DataPattern::Solid(true) => mask,
            DataPattern::Solid(false) => 0,
            DataPattern::RowStripe => {
                if row.is_multiple_of(2) {
                    0
                } else {
                    mask
                }
            }
            DataPattern::ColStripe => 0xAAAA_AAAA_AAAA_AAAA & mask,
            DataPattern::Checkered => {
                if row.is_multiple_of(2) {
                    0xAAAA_AAAA_AAAA_AAAA & mask
                } else {
                    0x5555_5555_5555_5555 & mask
                }
            }
            DataPattern::ByteRepeat(b) => {
                let mut v = 0u64;
                for i in 0..8 {
                    v |= (b as u64) << (i * 8);
                }
                v & mask
            }
        }
    }
}

/// The (column, RD bit) ⇄ physical-position bijection of one row,
/// together with the MAT width (horizontal coupling never crosses MATs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellLayout {
    rd_bits: u32,
    row_bits: u32,
    mat_width: u32,
    /// Position indexed by `col * rd_bits + bit`.
    pos: Vec<u32>,
    /// `(col, bit)` indexed by position.
    inv: Vec<(u32, u32)>,
}

impl CellLayout {
    /// Builds the layout from a known swizzle map (ground-truth path).
    pub fn from_swizzle(s: &SwizzleMap, row_bits: u32, mat_width: u32) -> Self {
        let rd_bits = s.rd_bits();
        let cols = row_bits / rd_bits;
        let mut pos = vec![0u32; (cols * rd_bits) as usize];
        let mut inv = vec![(0u32, 0u32); row_bits as usize];
        for col in 0..cols {
            for bit in 0..rd_bits {
                let p = s.bitline_of(col, bit).0;
                pos[(col * rd_bits + bit) as usize] = p;
                inv[p as usize] = (col, bit);
            }
        }
        CellLayout {
            rd_bits,
            row_bits,
            mat_width,
            pos,
            inv,
        }
    }

    /// Builds the layout from recovered per-MAT chunk orders: `chains[m]`
    /// lists the RD bits of MAT `m`'s per-column chunk in physical order.
    /// MAT order and chunk direction are the canonical choices of the
    /// reverse-engineering pipeline (physically unknowable, as the paper
    /// notes).
    ///
    /// # Panics
    ///
    /// Panics if the chains do not partition `0..rd_bits`.
    pub fn from_chains(chains: &[Vec<u32>], rd_bits: u32, row_bits: u32) -> Self {
        let total: u32 = chains.iter().map(|c| c.len() as u32).sum();
        assert_eq!(total, rd_bits, "chains must partition the RD bits");
        let cols = row_bits / rd_bits;
        let mats = chains.len() as u32;
        let mat_width = row_bits / mats;
        let mut pos = vec![u32::MAX; (cols * rd_bits) as usize];
        let mut inv = vec![(0u32, 0u32); row_bits as usize];
        for (m, chain) in chains.iter().enumerate() {
            let k = chain.len() as u32;
            for col in 0..cols {
                for (i, &bit) in chain.iter().enumerate() {
                    let p = m as u32 * mat_width + col * k + i as u32;
                    pos[(col * rd_bits + bit) as usize] = p;
                    inv[p as usize] = (col, bit);
                }
            }
        }
        assert!(
            pos.iter().all(|&p| p != u32::MAX),
            "chains must cover every bit"
        );
        CellLayout {
            rd_bits,
            row_bits,
            mat_width,
            pos,
            inv,
        }
    }

    /// RD_data width.
    pub fn rd_bits(&self) -> u32 {
        self.rd_bits
    }

    /// Row width in cells.
    pub fn row_bits(&self) -> u32 {
        self.row_bits
    }

    /// Columns per row.
    pub fn cols(&self) -> u32 {
        self.row_bits / self.rd_bits
    }

    /// MAT width in cells.
    pub fn mat_width(&self) -> u32 {
        self.mat_width
    }

    /// The physical position of `(col, bit)`.
    pub fn position(&self, col: u32, bit: u32) -> u32 {
        self.pos[(col * self.rd_bits + bit) as usize]
    }

    /// The `(col, bit)` stored at a physical position.
    pub fn cell_at(&self, p: u32) -> (u32, u32) {
        self.inv[p as usize]
    }

    /// The physical in-MAT neighbours of `(col, bit)` at cell distance
    /// `dist`, as `(col, bit)` pairs (0, 1, or 2 entries).
    pub fn neighbors(&self, col: u32, bit: u32, dist: u32) -> Vec<(u32, u32)> {
        let p = self.position(col, bit) as i64;
        let mat = p as u32 / self.mat_width;
        let mut out = Vec::with_capacity(2);
        for q in [p - dist as i64, p + dist as i64] {
            if q >= 0 && (q as u32) < self.row_bits && q as u32 / self.mat_width == mat {
                out.push(self.cell_at(q as u32));
            }
        }
        out
    }
}

/// The physical per-position image of a naive per-column write.
pub fn physical_image(layout: &CellLayout, f: impl Fn(u32) -> u64) -> Vec<bool> {
    let mut out = vec![false; layout.row_bits() as usize];
    for col in 0..layout.cols() {
        let data = f(col);
        for bit in 0..layout.rd_bits() {
            out[layout.position(col, bit) as usize] = data & (1 << bit) != 0;
        }
    }
    out
}

/// Column data realizing a desired physical pattern (`f` maps physical
/// position → bit value).
pub fn writer_for_physical(layout: &CellLayout, f: impl Fn(u32) -> bool) -> Vec<u64> {
    let mut cols = vec![0u64; layout.cols() as usize];
    for p in 0..layout.row_bits() {
        if f(p) {
            let (col, bit) = layout.cell_at(p);
            cols[col as usize] |= 1 << bit;
        }
    }
    cols
}

/// Column data for a physical 4-bit repeating pattern (`nibble` bit `i`
/// lands on positions ≡ `i` mod 4) — the pattern family of Fig. 16.
pub fn nibble_pattern_row(layout: &CellLayout, nibble: u8) -> Vec<u64> {
    writer_for_physical(layout, |p| nibble & (1 << (p % 4)) != 0)
}

/// The longest run of equal values in a physical image — the statistic
/// that exposes Fig. 8's "ColStripe acts as Solid" distortion.
pub fn longest_run(image: &[bool]) -> usize {
    let mut best = 0;
    let mut cur = 0;
    let mut prev: Option<bool> = None;
    for &v in image {
        if Some(v) == prev {
            cur += 1;
        } else {
            cur = 1;
            prev = Some(v);
        }
        best = best.max(cur);
    }
    best
}

/// Incrementally builds per-cell perturbations of a solid base pattern.
#[derive(Debug, Clone)]
pub struct CellPatternBuilder<'a> {
    layout: &'a CellLayout,
    bits: Vec<bool>,
}

impl<'a> CellPatternBuilder<'a> {
    /// Starts from a solid base value.
    pub fn solid(layout: &'a CellLayout, base: bool) -> Self {
        CellPatternBuilder {
            bits: vec![base; layout.row_bits() as usize],
            layout,
        }
    }

    /// Sets one cell by RD coordinates.
    pub fn set_cell(&mut self, col: u32, bit: u32, v: bool) -> &mut Self {
        let p = self.layout.position(col, bit);
        self.bits[p as usize] = v;
        self
    }

    /// Sets the physical in-MAT neighbours of a cell at `dist`; returns
    /// how many neighbours exist.
    pub fn set_neighbors(&mut self, col: u32, bit: u32, dist: u32, v: bool) -> usize {
        let ns = self.layout.neighbors(col, bit, dist);
        for (c, b) in &ns {
            self.set_cell(*c, *b, v);
        }
        ns.len()
    }

    /// The per-column data realizing the built pattern.
    pub fn columns(&self) -> Vec<u64> {
        writer_for_physical(self.layout, |p| self.bits[p as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::SwizzleMap;

    fn layout() -> CellLayout {
        CellLayout::from_swizzle(&SwizzleMap::vendor_a(32, 256, 64), 256, 64)
    }

    #[test]
    fn from_swizzle_round_trips() {
        let l = layout();
        for col in 0..l.cols() {
            for bit in 0..32 {
                let p = l.position(col, bit);
                assert_eq!(l.cell_at(p), (col, bit));
            }
        }
    }

    #[test]
    fn neighbors_stay_inside_mats() {
        let l = layout();
        // Position 0 is a MAT edge: one neighbour at distance 1.
        let (c0, b0) = l.cell_at(0);
        assert_eq!(l.neighbors(c0, b0, 1).len(), 1);
        let (c5, b5) = l.cell_at(5);
        assert_eq!(l.neighbors(c5, b5, 1).len(), 2);
        // Position 63 is the last cell of MAT 0.
        let (ce, be) = l.cell_at(63);
        assert_eq!(l.neighbors(ce, be, 1).len(), 1);
        assert_eq!(l.neighbors(ce, be, 2).len(), 1);
    }

    #[test]
    fn naive_colstripe_is_not_physically_alternating() {
        let l = layout();
        let img = physical_image(&l, |c| DataPattern::ColStripe.naive_rd(0, c, 32));
        assert!(
            longest_run(&img) >= 2,
            "the swizzle must distort a naive ColStripe (Fig. 8)"
        );
    }

    #[test]
    fn physical_writer_round_trips() {
        let l = layout();
        let want = |p: u32| (p / 3).is_multiple_of(2);
        let cols = writer_for_physical(&l, want);
        let img = physical_image(&l, |c| cols[c as usize]);
        for p in 0..l.row_bits() {
            assert_eq!(img[p as usize], want(p), "position {p}");
        }
    }

    #[test]
    fn nibble_pattern_lands_physically() {
        let l = layout();
        let cols = nibble_pattern_row(&l, 0x3); // 1100 repeating
        let img = physical_image(&l, |c| cols[c as usize]);
        for p in 0..l.row_bits() {
            assert_eq!(img[p as usize], p % 4 < 2, "position {p}");
        }
    }

    #[test]
    fn builder_sets_cells_and_neighbors() {
        let l = layout();
        let (c, b) = l.cell_at(10);
        let mut builder = CellPatternBuilder::solid(&l, false);
        builder.set_cell(c, b, true);
        let n1 = builder.set_neighbors(c, b, 2, true);
        assert_eq!(n1, 2);
        let cols = builder.columns();
        let img = physical_image(&l, |cc| cols[cc as usize]);
        assert!(img[10] && img[8] && img[12]);
        assert!(!img[9] && !img[11]);
    }

    #[test]
    fn from_chains_matches_ground_truth_structure() {
        // Recover the ground-truth chains from the swizzle, rebuild, and
        // check neighbour relations agree.
        let s = SwizzleMap::vendor_a(32, 256, 64);
        let gt = CellLayout::from_swizzle(&s, 256, 64);
        let k = 32 / (256 / 64); // bits per mat
        let mats = 256 / 64;
        let mut chains = Vec::new();
        for m in 0..mats {
            let mut chain = Vec::new();
            for i in 0..k {
                let (_, bit) = gt.cell_at(m * 64 + i);
                chain.push(bit);
            }
            chains.push(chain);
        }
        let rebuilt = CellLayout::from_chains(&chains, 32, 256);
        for col in 0..gt.cols() {
            for bit in 0..32 {
                assert_eq!(
                    gt.neighbors(col, bit, 1),
                    rebuilt.neighbors(col, bit, 1),
                    "col {col} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn byte_repeat_naive() {
        assert_eq!(
            DataPattern::ByteRepeat(0x33).naive_rd(0, 0, 32),
            0x3333_3333
        );
        assert_eq!(DataPattern::Solid(true).naive_rd(5, 2, 32), 0xFFFF_FFFF);
        assert_eq!(DataPattern::RowStripe.naive_rd(2, 0, 32), 0);
    }
}
