//! Executable validations of the paper's fourteen observations.
//!
//! [`ObservationSuite`] drives a full-size simulated Mfr. A ×4 chip (the
//! paper's most feature-complete device: internal remapping, coupled
//! rows, edge subarrays, 640/576-row subarrays) purely through the
//! command interface, reverse-engineers what it needs (row remap, data
//! swizzle), and then checks each observation O1–O14 the way the paper
//! states it. Ground truth is consulted only to *grade* the outcome,
//! never to produce it.

use crate::error::CoreError;
use crate::hammer::{self, AibConfig, Attack};
use crate::patterns::{CellLayout, CellPatternBuilder};
use crate::protect;
use crate::remap_re;
use crate::retention_probe::{self, PolarityVerdict};
use crate::rowcopy_probe;
use crate::swizzle_re::{self, ProbeSetup};
use dram_sim::{ChipProfile, DramChip, Time};
use dram_testbed::{BitflipRecord, Testbed};
use std::fmt;

/// A `(victim, upper aggressor, lower aggressor)` row triple.
pub type Triple = (u32, u32, u32);

/// A graded observation outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationReport {
    /// Observation number (1–14).
    pub id: u8,
    /// The paper's statement, abbreviated.
    pub title: &'static str,
    /// Whether the reproduction confirmed it.
    pub passed: bool,
    /// Measured evidence.
    pub details: String,
}

impl fmt::Display for ObservationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "O{:<2} [{}] {} — {}",
            self.id,
            if self.passed { "PASS" } else { "FAIL" },
            self.title,
            self.details
        )
    }
}

/// The observation driver. See the [module docs](self).
#[derive(Debug)]
pub struct ObservationSuite {
    tb: Testbed,
    layout: Option<CellLayout>,
    /// Consecutive physically-ordered pin rows inside an interior
    /// subarray (from the remap reverse engineering).
    phys_chain: Option<Vec<u32>>,
    /// Row range used for interior probing (must lie inside a non-edge
    /// subarray of the profile).
    probe_lo: u32,
    probe_hi: u32,
}

impl ObservationSuite {
    /// Builds the suite on the paper's Mfr. A ×4 2016 device.
    pub fn new(seed: u64) -> Self {
        // Subarray 1 of the 2016 layout spans wordlines 640..1280.
        Self::with_profile_range(ChipProfile::mfr_a_x4_2016(), seed, 648, 704)
    }

    /// Builds the suite on a specific profile with the default interior
    /// probe range (valid for the 640/576-row Mfr. A 2016 layout).
    pub fn with_profile(profile: ChipProfile, seed: u64) -> Self {
        Self::with_profile_range(profile, seed, 648, 704)
    }

    /// Builds the suite with an explicit interior probe range
    /// (`lo..hi` must sit inside one non-edge subarray, e.g. 840..896 for
    /// the 832/768-row Mfr. A 2018/2021 layout).
    pub fn with_profile_range(profile: ChipProfile, seed: u64, lo: u32, hi: u32) -> Self {
        ObservationSuite {
            tb: Testbed::new(DramChip::new(profile, seed)),
            layout: None,
            phys_chain: None,
            probe_lo: lo,
            probe_hi: hi,
        }
    }

    /// Runs every observation in order.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors and reconstruction failures.
    pub fn run_all(&mut self) -> Result<Vec<ObservationReport>, CoreError> {
        Ok(vec![
            self.o1()?,
            self.o2()?,
            self.o3()?,
            self.o4()?,
            self.o5()?,
            self.o6()?,
            self.o7()?,
            self.o8()?,
            self.o9()?,
            self.o10()?,
            self.o11()?,
            self.o12()?,
            self.o13()?,
            self.o14()?,
        ])
    }

    /// The attack used for high-statistics probing (flip probability near
    /// the top of the power-law regime).
    pub fn strong_hammer() -> Attack {
        Attack::Hammer { count: 2_600_000 }
    }

    /// Direct access to the suite's testbed (used by the experiment
    /// binaries that extend the suite's measurements).
    pub fn testbed_mut(&mut self) -> &mut Testbed {
        &mut self.tb
    }

    /// Physically consecutive pin rows in an interior subarray, recovered
    /// by hammer-based adjacency probing (pitfall-2 compensation).
    /// Cached after the first call.
    pub fn phys_chain(&mut self) -> Result<Vec<u32>, CoreError> {
        if self.phys_chain.is_none() {
            let cfg = AibConfig {
                bank: 0,
                attack: Self::strong_hammer(),
            };
            let map = remap_re::adjacency_map(&mut self.tb, cfg, self.probe_lo..self.probe_hi)?;
            let chains = remap_re::physical_chains(&map);
            let longest = chains
                .into_iter()
                .max_by_key(|c| c.len())
                .ok_or("no chains recovered")?;
            if longest.len() < 24 {
                return Err(format!("chain too short: {}", longest.len()).into());
            }
            self.phys_chain = Some(longest);
        }
        Ok(self.phys_chain.clone().expect("set above"))
    }

    /// `(victim, up, down)` triples with a consistent direction
    /// convention, taken from the physical chain.
    pub fn triples(&mut self, n: usize) -> Result<Vec<Triple>, CoreError> {
        let chain = self.phys_chain()?;
        let mut out = Vec::new();
        let mut i = 1;
        while out.len() < n && i + 1 < chain.len() {
            out.push((chain[i], chain[i + 1], chain[i - 1]));
            i += 3;
        }
        if out.len() < n {
            return Err("not enough interior triples".into());
        }
        Ok(out)
    }

    /// Like [`triples`](Self::triples), but every victim shares the same
    /// *relative wordline parity* (chain-index parity). The 6F² error
    /// pattern reverses between even and odd wordlines (O7), so
    /// alternation measurements must not mix parities — this is the
    /// "even WL victims only" selection of the paper's Fig. 12.
    pub fn triples_with_parity(
        &mut self,
        n: usize,
        parity: usize,
    ) -> Result<Vec<Triple>, CoreError> {
        let chain = self.phys_chain()?;
        let mut out = Vec::new();
        let mut i = 1 + ((parity + 1) % 2);
        while out.len() < n && i + 1 < chain.len() {
            if i % 2 == parity {
                out.push((chain[i], chain[i + 1], chain[i - 1]));
            }
            i += 2;
        }
        if out.len() < n {
            return Err("not enough parity-consistent triples".into());
        }
        Ok(out)
    }

    /// The recovered cell layout (swizzle RE pipeline), cached.
    pub fn layout(&mut self) -> Result<CellLayout, CoreError> {
        if self.layout.is_none() {
            let triples = self.triples(6)?;
            // Calibrate the probe dose below saturation (anti-cell
            // subarrays saturate at the all-true chips' standard dose).
            let attack = swizzle_re::calibrate_probe_attack(&mut self.tb, 0, triples[0])?;
            let setup = ProbeSetup {
                bank: 0,
                triples,
                attack,
                drop_threshold: 0.98,
            };
            // Parity rows: straddle the nearest subarray boundary below
            // the probe range; rowcopy probing finds it without ground
            // truth.
            let scan_lo = self.probe_lo.saturating_sub(250).max(1);
            let boundaries =
                rowcopy_probe::find_boundaries(&mut self.tb, 0, scan_lo..self.probe_lo + 250)?;
            let b = *boundaries
                .first()
                .ok_or("no subarray boundary near the probe range")?;
            let rec = swizzle_re::recover_swizzle(&mut self.tb, &setup, (b - 2, b + 2))?;
            self.layout = Some(rec.layout);
        }
        Ok(self.layout.clone().expect("set above"))
    }

    /// Measures victim flips for one (victim, aggressor) pair under solid
    /// or custom per-column patterns.
    pub fn measure(
        &mut self,
        aggressor: u32,
        victim: u32,
        attack: Attack,
        vic_cols: &[u64],
        aggr_cols: &[u64],
    ) -> Result<Vec<BitflipRecord>, CoreError> {
        let cfg = AibConfig { bank: 0, attack };
        Ok(hammer::measure_victim_flips(
            &mut self.tb,
            cfg,
            aggressor,
            victim,
            &|c| vic_cols[c as usize],
            &|c| aggr_cols[c as usize],
        )?)
    }

    /// Per-column solid data for this chip's geometry.
    pub fn solid_cols(&self, v: u64) -> Vec<u64> {
        vec![v; self.tb.cols() as usize]
    }

    /// Splits flips by recovered physical-position parity.
    pub fn parity_split(&self, layout: &CellLayout, recs: &[BitflipRecord]) -> (u64, u64) {
        let mut even = 0;
        let mut odd = 0;
        for r in recs {
            if layout.position(r.col, r.bit).is_multiple_of(2) {
                even += 1;
            } else {
                odd += 1;
            }
        }
        (even, odd)
    }

    /// O1: one RD command's data is collected from multiple MATs.
    pub fn o1(&mut self) -> Result<ObservationReport, CoreError> {
        let layout = self.layout()?;
        // Count distinct MATs touched by column 0's RD_data.
        let mat_w = layout.mat_width();
        let mut mats: Vec<u32> = (0..layout.rd_bits())
            .map(|b| layout.position(0, b) / mat_w)
            .collect();
        mats.sort_unstable();
        mats.dedup();
        let gt = self.tb.chip().ground_truth();
        let expected = self.tb.chip().profile().row_bits / gt.mat_width;
        let passed = mats.len() as u32 == expected && mats.len() > 1;
        Ok(ObservationReport {
            id: 1,
            title: "single RD_data gathered from multiple MATs (swizzled)",
            passed,
            details: format!(
                "RD_data spans {} MATs (ground truth {})",
                mats.len(),
                expected
            ),
        })
    }

    /// O2: the MAT width is measurable (512 cells for this device).
    pub fn o2(&mut self) -> Result<ObservationReport, CoreError> {
        let layout = self.layout()?;
        let gt = self.tb.chip().ground_truth();
        let passed = layout.mat_width() == gt.mat_width;
        Ok(ObservationReport {
            id: 2,
            title: "MAT width measured via influence isolation",
            passed,
            details: format!(
                "measured {} cells, ground truth {}",
                layout.mat_width(),
                gt.mat_width
            ),
        })
    }

    /// O3: activating a row also activates its coupled row.
    pub fn o3(&mut self) -> Result<ObservationReport, CoreError> {
        let d = rowcopy_probe::detect_coupled_rows(&mut self.tb, 0)?;
        let gt = self.tb.chip().ground_truth();
        let passed = d == gt.coupled_distance && d.is_some();
        Ok(ObservationReport {
            id: 3,
            title: "coupled-row activation at half-bank distance",
            passed,
            details: format!("detected {d:?}, ground truth {:?}", gt.coupled_distance),
        })
    }

    /// O4: subarray heights are not powers of two and vary within a chip.
    pub fn o4(&mut self) -> Result<ObservationReport, CoreError> {
        let heights = rowcopy_probe::subarray_heights(&mut self.tb, 0, 0..8193)?;
        let gt = self.tb.chip().ground_truth();
        let expect: Vec<u32> = gt.subarray_heights[..heights.len()].to_vec();
        let non_pow2 = heights.iter().all(|h| !h.is_power_of_two());
        let varied = {
            let mut h = heights.clone();
            h.dedup();
            h.len() > 1
        };
        let passed = heights == expect && non_pow2 && varied && !heights.is_empty();
        Ok(ObservationReport {
            id: 4,
            title: "subarray heights non-power-of-two and mixed",
            passed,
            details: format!("measured {heights:?}"),
        })
    }

    /// O5: two edge subarrays work in tandem (wrap-stripe RowCopy).
    pub fn o5(&mut self) -> Result<ObservationReport, CoreError> {
        let interval = rowcopy_probe::detect_edge_interval(&mut self.tb, 0)?;
        let gt = self.tb.chip().ground_truth();
        let passed = interval == Some(gt.edge_interval_wls);
        Ok(ObservationReport {
            id: 5,
            title: "edge subarrays pair into tandem segments",
            passed,
            details: format!(
                "interval {interval:?} rows (ground truth {})",
                gt.edge_interval_wls
            ),
        })
    }

    /// O6: edge subarrays show lower AIB BER, mostly for aggressor = 1.
    pub fn o6(&mut self) -> Result<ObservationReport, CoreError> {
        // Edge aggressor: wordline 10 (pin 10 — identity inside the low
        // block); interior: the middle of the recovered chain.
        let chain = self.phys_chain()?;
        let mid = chain.len() / 2;
        let (iv, ia) = (chain[mid], chain[mid + 1]);
        let attack = Self::strong_hammer();
        let ones = self.solid_cols(u64::MAX);
        let zeros = self.solid_cols(0);

        // (aggr, vic) = (1, 0): flips 0→1.
        let interior_10 = self.measure(ia, iv, attack, &zeros, &ones)?.len();
        let edge_10 = self.measure(10, 9, attack, &zeros, &ones)?.len();
        // (aggr, vic) = (0, 1): flips 1→0.
        let interior_01 = self.measure(ia, iv, attack, &ones, &zeros)?.len();
        let edge_01 = self.measure(10, 9, attack, &ones, &zeros)?.len();

        let damped_1 = (edge_10 as f64) < 0.8 * interior_10 as f64;
        let damped_0 = (edge_01 as f64) < 0.95 * interior_01 as f64;
        let edge_ratio_1 = (edge_10 as f64) / interior_10.max(1) as f64;
        let edge_ratio_0 = (edge_01 as f64) / interior_01.max(1) as f64;
        let stronger_for_1 = edge_ratio_1 < edge_ratio_0;
        let passed = damped_1 && damped_0 && stronger_for_1 && interior_10 > 0;
        Ok(ObservationReport {
            id: 6,
            title: "edge subarrays show lower BER (dummy bitlines)",
            passed,
            details: format!(
                "aggr=1: edge {edge_10} vs interior {interior_10}; aggr=0: edge {edge_01} vs interior {interior_01}"
            ),
        })
    }

    /// Shared alternation measurement for O7/O8.
    ///
    /// Victims are restricted to one chain-index parity (the paper's
    /// "even WL" selection); `next_row` samples the opposite parity to
    /// witness the row-parity reversal.
    fn alternation(
        &mut self,
        attack: Attack,
        vic_value: bool,
    ) -> Result<AlternationEvidence, CoreError> {
        let layout = self.layout()?;
        let triples = self.triples_with_parity(8, 0)?;
        let odd_triples = self.triples_with_parity(2, 1)?;
        let vic = self.solid_cols(if vic_value { u64::MAX } else { 0 });
        let aggr = self.solid_cols(if vic_value { 0 } else { u64::MAX });
        let mut up = (0u64, 0u64);
        let mut down = (0u64, 0u64);
        let mut next_row = (0u64, 0u64);
        for &(v, a_up, a_down) in &triples {
            let from_up = self.measure(a_up, v, attack, &vic, &aggr)?;
            let (e, o) = self.parity_split(&layout, &from_up);
            up.0 += e;
            up.1 += o;
            let from_down = self.measure(a_down, v, attack, &vic, &aggr)?;
            let (e, o) = self.parity_split(&layout, &from_down);
            down.0 += e;
            down.1 += o;
        }
        for &(v, a_up, _) in &odd_triples {
            let recs = self.measure(a_up, v, attack, &vic, &aggr)?;
            let (e, o) = self.parity_split(&layout, &recs);
            next_row.0 += e;
            next_row.1 += o;
        }
        Ok(AlternationEvidence { up, down, next_row })
    }

    /// O7: RowPress alternates with bit parity and reverses with
    /// aggressor direction and victim-row parity.
    pub fn o7(&mut self) -> Result<ObservationReport, CoreError> {
        let ev = self.alternation(
            Attack::Press {
                count: 24_000,
                each_on: Time::from_ns(7_800),
            },
            true,
        )?;
        let passed = ev.alternates() && ev.reverses_with_direction() && ev.reverses_with_row();
        Ok(ObservationReport {
            id: 7,
            title: "RowPress BER alternates; reversed by direction/row parity",
            passed,
            details: ev.to_string(),
        })
    }

    /// O8: RowHammer shows the same alternation, additionally reversed by
    /// the written value.
    pub fn o8(&mut self) -> Result<ObservationReport, CoreError> {
        let charged = self.alternation(Self::strong_hammer(), true)?;
        let discharged = self.alternation(Self::strong_hammer(), false)?;
        let value_reversed = charged.majority_up() != discharged.majority_up();
        let passed = charged.alternates()
            && charged.reverses_with_direction()
            && charged.reverses_with_row()
            && value_reversed;
        Ok(ObservationReport {
            id: 8,
            title: "RowHammer BER alternates; reversed by direction/row/value",
            passed,
            details: format!("charged: {charged}; discharged: {discharged}"),
        })
    }

    /// O9: RowHammer occurs at both gate types.
    pub fn o9(&mut self) -> Result<ObservationReport, CoreError> {
        let charged = self.alternation(Self::strong_hammer(), true)?;
        let discharged = self.alternation(Self::strong_hammer(), false)?;
        // From a fixed direction, charged cells flip at one parity class
        // and discharged at the other — i.e. both gate types flip cells.
        let both = charged.up.0 + discharged.up.0 > 0 && charged.up.1 + discharged.up.1 > 0;
        let passed = both;
        Ok(ObservationReport {
            id: 9,
            title: "RowHammer occurs at both gate types",
            passed,
            details: format!(
                "upper-aggressor flips by parity: charged ({}, {}), discharged ({}, {})",
                charged.up.0, charged.up.1, discharged.up.0, discharged.up.1
            ),
        })
    }

    /// O10: a victim cell is susceptible to one gate type at a time,
    /// reversed with the written value.
    pub fn o10(&mut self) -> Result<ObservationReport, CoreError> {
        let charged = self.alternation(Self::strong_hammer(), true)?;
        let discharged = self.alternation(Self::strong_hammer(), false)?;
        // For a fixed direction the dominant parity class must flip when
        // the data value flips, and within each run one class dominates.
        let dominance = |x: (u64, u64)| {
            let hi = x.0.max(x.1) as f64;
            let lo = x.0.min(x.1) as f64;
            hi > 5.0 * (lo + 1.0)
        };
        let passed = dominance(charged.up)
            && dominance(discharged.up)
            && charged.majority_up() != discharged.majority_up();
        Ok(ObservationReport {
            id: 10,
            title: "susceptible gate type is exclusive and flips with data",
            passed,
            details: format!(
                "upper: charged ({}, {}) vs discharged ({}, {})",
                charged.up.0, charged.up.1, discharged.up.0, discharged.up.1
            ),
        })
    }

    /// A moderate attack for boost measurements: the strong attack's flip
    /// probability is so close to 1 that BER *increases* would clamp.
    pub fn moderate_hammer() -> Attack {
        Attack::Hammer { count: 1_200_000 }
    }

    /// Measures flips at spaced target cells under neighbour perturbation.
    fn neighbor_influence(
        &mut self,
        dists: &[u32],
        vic_value: bool,
    ) -> Result<(u64, u64), CoreError> {
        let layout = self.layout()?;
        let triples = self.triples(8)?;
        let attack = Self::moderate_hammer();
        // Targets: every 8th physical position, clear of MAT edges.
        let targets: Vec<(u32, u32)> = (0..layout.row_bits())
            .filter(|p| p % 8 == 4)
            .map(|p| layout.cell_at(p))
            .collect();
        let base_cols = self.solid_cols(if vic_value { u64::MAX } else { 0 });
        let aggr_cols = self.solid_cols(if vic_value { 0 } else { u64::MAX });

        let mut perturbed = CellPatternBuilder::solid(&layout, vic_value);
        for &(c, b) in &targets {
            for &d in dists {
                perturbed.set_neighbors(c, b, d, !vic_value);
            }
        }
        let pert_cols = perturbed.columns();

        let count_targets = |recs: &[BitflipRecord]| {
            recs.iter()
                .filter(|r| layout.position(r.col, r.bit) % 8 == 4)
                .count() as u64
        };
        let mut base_total = 0;
        let mut pert_total = 0;
        for &(v, a_up, _) in &triples {
            base_total += count_targets(&self.measure(a_up, v, attack, &base_cols, &aggr_cols)?);
            pert_total += count_targets(&self.measure(a_up, v, attack, &pert_cols, &aggr_cols)?);
        }
        Ok((base_total, pert_total))
    }

    /// O11: victim-side horizontal influence, strongest at distance two.
    pub fn o11(&mut self) -> Result<ObservationReport, CoreError> {
        let (base_1, d1) = self.neighbor_influence(&[1], false)?;
        let (base_2, d2) = self.neighbor_influence(&[2], false)?;
        let r1 = d1 as f64 / base_1.max(1) as f64;
        let r2 = d2 as f64 / base_2.max(1) as f64;
        let passed = d1 >= base_1 && d2 > base_2 && r2 > r1 && base_1 > 0;
        Ok(ObservationReport {
            id: 11,
            title: "Vic±1/±2 data affects BER; ±2 strongest",
            passed,
            details: format!("ratio d1 {r1:.3}, d2 {r2:.3} (paper 1.12 / 1.54)"),
        })
    }

    /// O12: aggressor-side horizontal influence, strongest at distance 0.
    pub fn o12(&mut self) -> Result<ObservationReport, CoreError> {
        let layout = self.layout()?;
        let triples = self.triples(6)?;
        let attack = Self::strong_hammer();
        let targets: Vec<(u32, u32)> = (0..layout.row_bits())
            .filter(|p| p % 8 == 4)
            .map(|p| layout.cell_at(p))
            .collect();
        let vic_cols = self.solid_cols(0);

        // Aggressor variants: baseline all-opposite, then cumulative same
        // sets {0}, {0,±1}, {0,±1,±2} at the targets.
        let mut variants: Vec<Vec<u64>> = vec![self.solid_cols(u64::MAX)];
        for dists in [&[0u32][..], &[0, 1], &[0, 1, 2]] {
            let mut b = CellPatternBuilder::solid(&layout, true);
            for &(c, bit) in &targets {
                for &d in dists {
                    if d == 0 {
                        b.set_cell(c, bit, false);
                    } else {
                        b.set_neighbors(c, bit, d, false);
                    }
                }
            }
            variants.push(b.columns());
        }

        let mut counts = vec![0u64; variants.len()];
        for &(v, a_up, _) in &triples {
            for (i, aggr_cols) in variants.iter().enumerate() {
                let recs = self.measure(a_up, v, attack, &vic_cols, aggr_cols)?;
                counts[i] += recs
                    .iter()
                    .filter(|r| layout.position(r.col, r.bit) % 8 == 4)
                    .count() as u64;
            }
        }
        let ratios: Vec<f64> = counts[1..]
            .iter()
            .map(|&c| c as f64 / counts[0].max(1) as f64)
            .collect();
        let passed =
            counts[0] > 0 && ratios[0] < 0.9 && ratios[1] < ratios[0] && ratios[2] < ratios[1];
        Ok(ObservationReport {
            id: 12,
            title: "Aggr0/±1/±2 data affects BER; cumulative drops",
            passed,
            details: format!(
                "cumulative ratios {:.3}/{:.3}/{:.3} (paper 0.58/0.46/0.38)",
                ratios[0], ratios[1], ratios[2]
            ),
        })
    }

    /// O13: adversarial neighbours lower H_cnt.
    pub fn o13(&mut self) -> Result<ObservationReport, CoreError> {
        let layout = self.layout()?;
        let triples = self.triples(2)?;
        let (v, a_up, _) = triples[0];
        // Find the weakest target along the row first (baseline attack).
        let base_cols = self.solid_cols(0);
        let aggr_cols = self.solid_cols(u64::MAX);
        let probe = self.measure(v, a_up, Attack::Hammer { count: 1 }, &base_cols, &aggr_cols);
        drop(probe); // ensure rows exist
        let recs = self.measure(a_up, v, Self::strong_hammer(), &base_cols, &aggr_cols)?;
        let target = recs
            .iter()
            .map(|r| (r.col, r.bit))
            .find(|&(c, b)| {
                let p = layout.position(c, b);
                p % layout.mat_width() > 4 && p % layout.mat_width() < layout.mat_width() - 4
            })
            .ok_or("no interior weak cell found")?;

        let base = hammer::hcnt_for_cell(
            &mut self.tb,
            0,
            a_up,
            v,
            &|_| 0,
            &|_| u64::MAX,
            target,
            6_000_000,
        )?;
        let mut adv = CellPatternBuilder::solid(&layout, false);
        adv.set_neighbors(target.0, target.1, 1, true);
        adv.set_neighbors(target.0, target.1, 2, true);
        let adv_cols = adv.columns();
        let adv_res = hammer::hcnt_for_cell(
            &mut self.tb,
            0,
            a_up,
            v,
            &|c| adv_cols[c as usize],
            &|_| u64::MAX,
            target,
            6_000_000,
        )?;
        let (b, a) = (
            base.count.ok_or("baseline never flipped")? as f64,
            adv_res.count.ok_or("adversarial never flipped")? as f64,
        );
        let ratio = a / b;
        let passed = ratio < 0.95;
        Ok(ObservationReport {
            id: 13,
            title: "adversarial neighbours lower H_cnt",
            passed,
            details: format!("H_cnt ratio {ratio:.3} (paper up to 0.81)"),
        })
    }

    /// O14: the 0x33/0xCC-style physical pattern worsens whole-row BER.
    pub fn o14(&mut self) -> Result<ObservationReport, CoreError> {
        let layout = self.layout()?;
        let triples = self.triples(6)?;
        let attack = Self::moderate_hammer();
        let base_vic = crate::patterns::nibble_pattern_row(&layout, 0xF);
        let base_aggr = crate::patterns::nibble_pattern_row(&layout, 0x0);
        let adv_vic = crate::patterns::nibble_pattern_row(&layout, 0x3);
        let adv_aggr = crate::patterns::nibble_pattern_row(&layout, 0xC);
        let mut base = 0u64;
        let mut adv = 0u64;
        for &(v, a_up, _) in &triples {
            base += self.measure(a_up, v, attack, &base_vic, &base_aggr)?.len() as u64;
            adv += self.measure(a_up, v, attack, &adv_vic, &adv_aggr)?.len() as u64;
        }
        let ratio = adv as f64 / base.max(1) as f64;
        let passed = ratio > 1.3 && base > 0;
        Ok(ObservationReport {
            id: 14,
            title: "adversarial 4-bit pattern worsens whole-row BER",
            passed,
            details: format!("BER ratio {ratio:.3} (paper up to 1.69)"),
        })
    }

    /// Supplementary: the retention-based polarity scheme (used by the
    /// Table III flow; Mfr. A is all-true).
    pub fn polarity(&mut self) -> Result<PolarityVerdict, CoreError> {
        let verdicts = retention_probe::classify_rows(
            &mut self.tb,
            0,
            &[16, 700, 1400],
            Time::from_ms(120_000),
        )?;
        Ok(retention_probe::polarity_scheme(&verdicts))
    }

    /// Supplementary: the coupled-row split attack evidence of §VI, run
    /// on this suite's chip.
    pub fn coupled_attack_probe(&mut self) -> Result<protect::AttackOutcome, CoreError> {
        let chain = self.phys_chain()?;
        let aggr = chain[chain.len() / 2];
        let d = self
            .tb
            .chip()
            .ground_truth()
            .coupled_distance
            .ok_or("chip not coupled")?;
        let mut noop = protect::MisraGries::new(u64::MAX, 4);
        Ok(protect::run_attack(
            &mut self.tb,
            &mut noop,
            aggr,
            protect::AttackStrategy::CoupledSplit { distance: d },
            5_200_000,
            650_000,
        )?)
    }
}

/// Flip-parity evidence for the alternation observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AlternationEvidence {
    /// (even, odd) flips from the upper aggressor.
    up: (u64, u64),
    /// (even, odd) flips from the lower aggressor.
    down: (u64, u64),
    /// (even, odd) flips for the next wordline (upper aggressor).
    next_row: (u64, u64),
}

impl AlternationEvidence {
    fn majority_up(&self) -> bool {
        self.up.0 > self.up.1
    }

    fn alternates(&self) -> bool {
        let hi = self.up.0.max(self.up.1) as f64;
        let lo = self.up.0.min(self.up.1) as f64;
        hi > 1.5 * (lo + 1.0)
    }

    fn reverses_with_direction(&self) -> bool {
        (self.up.0 > self.up.1) != (self.down.0 > self.down.1)
    }

    fn reverses_with_row(&self) -> bool {
        (self.up.0 > self.up.1) != (self.next_row.0 > self.next_row.1)
    }
}

impl fmt::Display for AlternationEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "up ({}, {}), down ({}, {}), next row ({}, {})",
            self.up.0, self.up.1, self.down.0, self.down.1, self.next_row.0, self.next_row.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full O1–O14 sweep lives in tests/observations.rs (integration);
    // here we keep the cheap structural pieces.

    #[test]
    fn suite_builds_and_discovers_interior_chain() {
        let mut suite = ObservationSuite::new(2024);
        let chain = suite.phys_chain().unwrap();
        assert!(chain.len() >= 24);
        // The chain must be physically consecutive under ground truth.
        let gt = suite.tb.chip().ground_truth();
        for w in chain.windows(2) {
            let a = gt.remap.to_physical(dram_sim::LogicalRow(w[0])).0;
            let b = gt.remap.to_physical(dram_sim::LogicalRow(w[1])).0;
            assert_eq!(a.abs_diff(b), 1, "{} and {} not adjacent", w[0], w[1]);
        }
    }

    #[test]
    fn o3_and_o5_structural_probes() {
        let mut suite = ObservationSuite::new(2024);
        let o3 = suite.o3().unwrap();
        assert!(o3.passed, "{o3}");
        let o5 = suite.o5().unwrap();
        assert!(o5.passed, "{o5}");
    }

    #[test]
    fn report_display_format() {
        let r = ObservationReport {
            id: 4,
            title: "t",
            passed: true,
            details: "d".into(),
        };
        assert_eq!(r.to_string(), "O4  [PASS] t — d");
    }
}
