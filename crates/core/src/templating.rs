//! Memory templating / massaging (paper §VI-A).
//!
//! AIB attacks need the victim's page to land physically adjacent to an
//! attacker-controlled row. The attacker "massages" the allocator until
//! that holds. Coupled-row activation (O3) helps the attacker twice:
//!
//! * every attacker row hammers **two** wordline neighbourhoods (its own
//!   and its coupled alias'), doubling the physical addresses it can
//!   attack;
//! * symmetric for templating: the set of physical frames adjacent to an
//!   attacker row doubles.
//!
//! This module computes those candidate sets over a controller address
//! mapping and simulates the massaging phase's success probability.

use dram_module::AddressMapping;
use dram_sim::rng::StreamRng;

/// All physical addresses whose rows an attacker hammering `attacker_addr`
/// can disturb: the row neighbours of the address itself, plus — on a
/// coupled device — the neighbours of its coupled alias.
pub fn attackable_neighbors(
    mapping: &AddressMapping,
    attacker_addr: u64,
    coupled_distance: Option<u32>,
    rows: u32,
) -> Vec<u64> {
    let mut out = vec![
        mapping.row_neighbor(attacker_addr, -1),
        mapping.row_neighbor(attacker_addr, 1),
    ];
    if let Some(d) = coupled_distance {
        let coord = mapping.decompose(attacker_addr);
        let alias_row = (coord.row + d) % rows;
        let alias = mapping.compose(dram_module::DramCoord {
            row: alias_row,
            ..coord
        });
        out.push(mapping.row_neighbor(alias, -1));
        out.push(mapping.row_neighbor(alias, 1));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The outcome of a simulated massaging phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassagingOutcome {
    /// Trials in which the victim frame landed attackable.
    pub hits: u32,
    /// Total trials.
    pub trials: u32,
}

impl MassagingOutcome {
    /// Empirical success probability.
    pub fn probability(&self) -> f64 {
        self.hits as f64 / self.trials.max(1) as f64
    }
}

/// Simulates the templating phase: each trial places the victim frame on
/// a uniformly random row of a bank the attacker occupies with
/// `attacker_rows` rows, and checks whether any attacker row can disturb
/// it. Coupling doubles the attacker's reach (paper §VI-A: "a higher
/// probability of guaranteeing adjacency between the attacker and victim
/// pages").
pub fn simulate_massaging(
    mapping: &AddressMapping,
    attacker_rows: &[u32],
    coupled_distance: Option<u32>,
    rows: u32,
    trials: u32,
    seed: u64,
) -> MassagingOutcome {
    // Precompute the attackable row set.
    let mut attackable: Vec<u32> = Vec::new();
    for &r in attacker_rows {
        let addr = mapping.compose(dram_module::DramCoord {
            bank: 0,
            row: r,
            col: 0,
        });
        for n in attackable_neighbors(mapping, addr, coupled_distance, rows) {
            attackable.push(mapping.decompose(n).row);
        }
    }
    attackable.sort_unstable();
    attackable.dedup();

    let mut rng = StreamRng::new(seed);
    let mut hits = 0;
    for _ in 0..trials {
        let victim_row = rng.next_below(rows as u64) as u32;
        if attackable.binary_search(&victim_row).is_ok() {
            hits += 1;
        }
    }
    MassagingOutcome { hits, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(3, 2, 11, false)
    }

    #[test]
    fn coupling_doubles_the_attackable_set() {
        let m = mapping();
        let addr = m.compose(dram_module::DramCoord {
            bank: 0,
            row: 100,
            col: 0,
        });
        let plain = attackable_neighbors(&m, addr, None, 2048);
        let coupled = attackable_neighbors(&m, addr, Some(1024), 2048);
        assert_eq!(plain.len(), 2);
        assert_eq!(coupled.len(), 4);
        let rows: Vec<u32> = coupled.iter().map(|&a| m.decompose(a).row).collect();
        assert!(rows.contains(&99) && rows.contains(&101));
        assert!(rows.contains(&1123) && rows.contains(&1125));
    }

    #[test]
    fn massaging_probability_doubles_with_coupling() {
        let m = mapping();
        let attacker_rows: Vec<u32> = (10..74).collect(); // 64 attacker rows
        let plain = simulate_massaging(&m, &attacker_rows, None, 2048, 20_000, 5);
        let coupled = simulate_massaging(&m, &attacker_rows, Some(1024), 2048, 20_000, 5);
        assert!(plain.probability() > 0.0);
        let ratio = coupled.probability() / plain.probability();
        assert!(
            (1.6..=2.4).contains(&ratio),
            "coupling should roughly double success: {ratio}"
        );
    }

    #[test]
    fn contiguous_attacker_blocks_have_thin_frontiers() {
        // A contiguous 64-row block can only attack its interior plus two
        // frontier rows: 66 attackable rows without coupling.
        let m = mapping();
        let attacker_rows: Vec<u32> = (10..74).collect();
        let plain = simulate_massaging(&m, &attacker_rows, None, 2048, 200_000, 9);
        let expect = 66.0 / 2048.0;
        assert!(
            (plain.probability() - expect).abs() < 0.005,
            "got {} want ~{expect}",
            plain.probability()
        );
    }
}
