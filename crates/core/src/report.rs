//! Table and series rendering for the experiment binaries.

use std::fmt;

/// A simple text table matching the paper's row/column presentation.
///
/// # Example
///
/// ```
/// use dramscope_core::report::Table;
/// let mut t = Table::new(vec!["vendor", "height"]);
/// t.row(vec!["Mfr. A".into(), "640".into()]);
/// assert!(t.to_string().contains("Mfr. A"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC 4180): cells containing a comma,
    /// a double quote, or a line break are quoted, with embedded quotes
    /// doubled; all other cells render verbatim.
    pub fn to_csv(&self) -> String {
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut s = render(&self.headers);
        s.push('\n');
        for r in &self.rows {
            s.push_str(&render(r));
            s.push('\n');
        }
        s
    }
}

/// Quotes one CSV cell on demand per RFC 4180.
fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(cell.len() + 2);
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        cell.to_string()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// A named numeric series (one line/bar group of a figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Series label.
    pub name: String,
    /// `(x-label, y)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) -> &mut Self {
        self.points.push((x.into(), y));
        self
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x}\t{y:.6e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-cell".into()]);
        let s = t.to_string();
        assert!(s.contains("| a           | long-header |"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn table_csv_quotes_special_cells_rfc_4180() {
        let mut t = Table::new(vec!["name", "note, with comma"]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["has \"quotes\"".into(), "line\nbreak".into()]);
        assert_eq!(
            t.to_csv(),
            "name,\"note, with comma\"\n\
             plain,\"a,b\"\n\
             \"has \"\"quotes\"\"\",\"line\nbreak\"\n"
        );
    }

    #[test]
    fn series_renders() {
        let mut s = Series::new("ber");
        s.push("0", 1e-3).push("1", 2e-3);
        let out = s.to_string();
        assert!(out.starts_with("# ber"));
        assert!(out.contains("1\t2.0"));
    }
}
