//! RowCopy-based structural probing (paper §III-B, §IV-C).
//!
//! RowCopy only transfers data between rows that share sense amplifiers,
//! and *which* bits transfer encodes the open-bitline wiring:
//!
//! * same subarray → every bit copies, non-inverted;
//! * vertically adjacent subarrays → half the bits copy (those whose
//!   bitlines meet on the shared SA stripe), charge-inverted;
//! * the two edge subarrays of a segment → half the bits copy through the
//!   wrap stripe (paper O5);
//! * anything else → nothing copies.
//!
//! Scanning these outcomes recovers subarray heights (Table III), the
//! even/odd-bitline parity of every RD_data bit (used by the swizzle
//! pipeline, §IV-A), edge-subarray intervals, coupled rows, and the
//! copy-inversion behaviour that distinguishes true-/anti-cell designs.

use dram_testbed::{Testbed, TestbedError};
use std::ops::Range;

/// How one RD_data bit behaved under a RowCopy probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitCopy {
    /// The bit kept the destination's old value.
    None,
    /// The bit received the source value.
    Direct,
    /// The bit received the complemented source value.
    Inverted,
}

/// The physical bitline parity of a bit, as revealed by which direction
/// it copies (model convention: odd bitlines copy to the subarray above).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlParity {
    /// Copies downward: even bitline.
    Even,
    /// Copies upward: odd bitline.
    Odd,
}

/// A marker with an irregular, balanced bit mix for copy probing.
const MARKER: u64 = 0x9E37_79B9_7F4A_7C15;

fn rd_mask(tb: &Testbed) -> u64 {
    let bits = tb.chip().profile().io_width.rd_bits();
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Probes which bits of column `col` copy from `src` to `dst`, and how.
///
/// Runs two copies with *solid* source patterns (all zeros, then all
/// ones). Solid patterns make the classification independent of the
/// bit-position shift a shared SA stripe introduces: any copied
/// destination cell carries the (possibly inverted) solid source value,
/// and untouched destination bits never masquerade as copied because the
/// two runs would then agree.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn probe_copy_bits(
    tb: &mut Testbed,
    bank: u32,
    src: u32,
    dst: u32,
    col: u32,
) -> Result<Vec<BitCopy>, TestbedError> {
    let mask = rd_mask(tb);
    let run = |tb: &mut Testbed, pattern: u64| -> Result<u64, TestbedError> {
        tb.write_col(bank, src, col, pattern)?;
        tb.write_col(bank, dst, col, 0)?;
        tb.rowcopy(bank, src, dst)?;
        tb.read_col(bank, dst, col)
    };
    let from_zeros = run(tb, 0)?;
    let from_ones = run(tb, mask)?;
    let bits = tb.chip().profile().io_width.rd_bits();
    let mut out = Vec::with_capacity(bits as usize);
    for i in 0..bits {
        let vz = from_zeros >> i & 1;
        let vo = from_ones >> i & 1;
        out.push(if vz == vo {
            BitCopy::None
        } else if vo == 1 {
            BitCopy::Direct
        } else {
            BitCopy::Inverted
        });
    }
    Ok(out)
}

/// The fraction of probed bits that copied (in either polarity).
pub fn copied_fraction(bits: &[BitCopy]) -> f64 {
    if bits.is_empty() {
        return 0.0;
    }
    bits.iter().filter(|b| **b != BitCopy::None).count() as f64 / bits.len() as f64
}

/// Classifies a src→dst pair as full, half, or no copy.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn copy_class(
    tb: &mut Testbed,
    bank: u32,
    src: u32,
    dst: u32,
) -> Result<CopyClass, TestbedError> {
    let bits = probe_copy_bits(tb, bank, src, dst, 0)?;
    Ok(CopyClass::from_fraction(copied_fraction(&bits)))
}

/// Aggregate outcome of a copy probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyClass {
    /// (Nearly) every bit copied: same subarray.
    Full,
    /// About half the bits copied: shared SA stripe across subarrays.
    Half,
    /// No bits copied: no shared sense amplifiers.
    NoCopy,
}

impl CopyClass {
    /// Buckets a copied fraction.
    pub fn from_fraction(f: f64) -> Self {
        if f > 0.9 {
            CopyClass::Full
        } else if f > 0.1 {
            CopyClass::Half
        } else {
            CopyClass::NoCopy
        }
    }
}

/// Finds every row `r` in `range` where RowCopy from `r-1` to `r` stops
/// being a full copy — the subarray boundaries.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn find_boundaries(
    tb: &mut Testbed,
    bank: u32,
    range: Range<u32>,
) -> Result<Vec<u32>, TestbedError> {
    let mut out = Vec::new();
    let start = range.start.max(1);
    for r in start..range.end {
        if copy_class(tb, bank, r - 1, r)? != CopyClass::Full {
            out.push(r);
        }
    }
    Ok(out)
}

/// Recovers the heights of all subarrays fully contained in `range`
/// (assumes `range.start` is itself a boundary, which holds for 0).
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn subarray_heights(
    tb: &mut Testbed,
    bank: u32,
    range: Range<u32>,
) -> Result<Vec<u32>, TestbedError> {
    let start = range.start;
    let boundaries = find_boundaries(tb, bank, range)?;
    let mut heights = Vec::with_capacity(boundaries.len());
    let mut prev = start;
    for b in boundaries {
        heights.push(b - prev);
        prev = b;
    }
    Ok(heights)
}

/// Detects the edge-subarray interval: the smallest power-of-two segment
/// size `k` such that rows `0` and `k-1` copy half their bits despite the
/// large address distance (the tandem wrap stripe, paper O5).
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn detect_edge_interval(tb: &mut Testbed, bank: u32) -> Result<Option<u32>, TestbedError> {
    let rows = tb.rows();
    // Rows adjacent to row 0's subarray also half-copy (shared stripe);
    // find where that window ends — the second boundary — so only
    // *distant* half copies count as tandem evidence.
    let mut boundaries = Vec::new();
    let mut r = 1;
    while boundaries.len() < 2 && r < rows.min(4096) {
        if copy_class(tb, bank, r - 1, r)? != CopyClass::Full {
            boundaries.push(r);
        }
        r += 1;
    }
    let adjacent_window_end = boundaries.get(1).copied().unwrap_or(0);

    let mut k = 64u32;
    while k <= rows {
        if k > adjacent_window_end && copy_class(tb, bank, 0, k - 1)? == CopyClass::Half {
            return Ok(Some(k));
        }
        k <<= 1;
    }
    Ok(None)
}

/// Detects coupled-row activation via RowCopy (paper O3): copying row
/// `src` into `dst` also moves the data of `src + d` into `dst + d` when
/// rows are coupled at distance `d = rows/2`, because the copy operates
/// on whole wordlines.
///
/// Returns the coupled distance if the chip is coupled.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn detect_coupled_rows(tb: &mut Testbed, bank: u32) -> Result<Option<u32>, TestbedError> {
    let rows = tb.rows();
    let d = rows / 2;
    let (src, dst) = (5u32, 9u32);
    let mask = rd_mask(tb);
    let hidden_pattern = 0x5A5A_5A5A_5A5A_5A5A & mask;
    tb.write_row_pattern(bank, src, MARKER & mask)?;
    tb.write_row_pattern(bank, src + d, hidden_pattern)?;
    tb.write_row_pattern(bank, dst, 0)?;
    tb.write_row_pattern(bank, dst + d, 0)?;
    tb.rowcopy(bank, src, dst)?;
    let alias = tb.read_row(bank, dst + d)?;
    let moved = alias.iter().all(|&w| w == hidden_pattern);
    Ok(if moved { Some(d) } else { None })
}

/// Determines whether cross-subarray copies arrive inverted (Mfr. A/B
/// all-true designs) or as-is (Mfr. C's subarray-interleaved polarity),
/// by probing across the first boundary at or after `near`.
///
/// Returns `None` when no boundary exists in the scanned window.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn detect_copy_inversion(
    tb: &mut Testbed,
    bank: u32,
    near: u32,
) -> Result<Option<bool>, TestbedError> {
    let window = near..(near + 2048).min(tb.rows());
    let boundaries = find_boundaries(tb, bank, window)?;
    let Some(&b) = boundaries.first() else {
        return Ok(None);
    };
    let bits = probe_copy_bits(tb, bank, b - 1, b, 0)?;
    let inverted = bits.iter().filter(|x| **x == BitCopy::Inverted).count();
    let direct = bits.iter().filter(|x| **x == BitCopy::Direct).count();
    if inverted + direct == 0 {
        return Ok(None);
    }
    Ok(Some(inverted > direct))
}

/// Classifies the bitline parity of every bit of column `col`, by copying
/// from `src` to the subarray above (`dst_up`): bits that transfer upward
/// sit on odd bitlines (paper §IV-A, "even/odd BL").
///
/// `src` must be in the subarray directly below `dst_up`'s.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn classify_bit_parity(
    tb: &mut Testbed,
    bank: u32,
    src: u32,
    dst_up: u32,
    col: u32,
) -> Result<Vec<BlParity>, TestbedError> {
    let up = probe_copy_bits(tb, bank, src, dst_up, col)?;
    Ok(up
        .iter()
        .map(|b| {
            if *b == BitCopy::None {
                BlParity::Even
            } else {
                BlParity::Odd
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    fn tb() -> Testbed {
        Testbed::new(DramChip::new(ChipProfile::test_small(), 21))
    }

    #[test]
    fn same_subarray_copies_fully_and_directly() {
        let mut t = tb();
        let bits = probe_copy_bits(&mut t, 0, 3, 11, 0).unwrap();
        assert!(bits.iter().all(|b| *b == BitCopy::Direct));
        assert_eq!(copy_class(&mut t, 0, 3, 11).unwrap(), CopyClass::Full);
    }

    #[test]
    fn adjacent_subarray_copies_half_inverted() {
        let mut t = tb();
        // Rows 39 (subarray 0) and 45 (subarray 1).
        let bits = probe_copy_bits(&mut t, 0, 39, 45, 0).unwrap();
        let inv = bits.iter().filter(|b| **b == BitCopy::Inverted).count();
        let none = bits.iter().filter(|b| **b == BitCopy::None).count();
        assert_eq!(inv, 16, "half of 32 bits, inverted (all-true chip)");
        assert_eq!(none, 16);
    }

    #[test]
    fn unrelated_rows_do_not_copy() {
        let mut t = tb();
        // Rows 3 (subarray 0) and 70 (subarray 2).
        assert_eq!(copy_class(&mut t, 0, 3, 70).unwrap(), CopyClass::NoCopy);
    }

    #[test]
    fn boundary_scan_recovers_heights() {
        let mut t = tb();
        let heights = subarray_heights(&mut t, 0, 0..256).unwrap();
        assert_eq!(heights, vec![40, 24, 40, 24, 40, 24, 40]);
    }

    #[test]
    fn edge_interval_detected() {
        let mut t = tb();
        assert_eq!(copy_class(&mut t, 0, 0, 255).unwrap(), CopyClass::Half);
        assert_eq!(copy_class(&mut t, 0, 0, 511).unwrap(), CopyClass::NoCopy);
        assert_eq!(detect_edge_interval(&mut t, 0).unwrap(), Some(256));
    }

    #[test]
    fn uncoupled_chip_reports_no_coupling() {
        let mut t = tb();
        assert_eq!(detect_coupled_rows(&mut t, 0).unwrap(), None);
    }

    #[test]
    fn coupled_chip_reports_distance() {
        let mut t = Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 21));
        assert_eq!(detect_coupled_rows(&mut t, 0).unwrap(), Some(1024));
    }

    #[test]
    fn all_true_chip_copies_inverted_across_subarrays() {
        let mut t = tb();
        assert_eq!(detect_copy_inversion(&mut t, 0, 0).unwrap(), Some(true));
    }

    #[test]
    fn parity_classification_splits_half_and_half() {
        let mut t = tb();
        // src 39 is directly below subarray 1 (rows 40..64).
        let parity = classify_bit_parity(&mut t, 0, 39, 45, 0).unwrap();
        let odd = parity.iter().filter(|p| **p == BlParity::Odd).count();
        assert_eq!(odd, 16);
    }

    #[test]
    fn parity_is_consistent_with_downward_copies() {
        let mut t = tb();
        let up = classify_bit_parity(&mut t, 0, 39, 45, 0).unwrap();
        // Downward probe: src 45 (subarray 1) → dst 39 (subarray 0); the
        // bits that copy downward are the even ones.
        let down = probe_copy_bits(&mut t, 0, 45, 39, 0).unwrap();
        for (i, p) in up.iter().enumerate() {
            let copied_down = down[i] != BitCopy::None;
            assert_eq!(
                copied_down,
                *p == BlParity::Even,
                "bit {i}: up-parity and down-copy must complement"
            );
        }
    }
}
