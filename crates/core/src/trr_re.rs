//! In-DRAM TRR reverse engineering (the Hassan et al. U-TRR /
//! TRRespass line of work the paper builds on, and the §VI-B context
//! for RFM-based mitigation).
//!
//! Two questions, both answered through the command interface:
//!
//! 1. **Is a TRR engine present?** Hammer in bursts with `REF` commands
//!    interleaved. A sliced `REF` almost never refreshes the victims
//!    itself (1/8192 of rows per command), so if the victims survive a
//!    dose that flips them on a mitigation-free run, something inside
//!    the DRAM rescued them.
//! 2. **How big is its sampler?** A TRR sampler with `N` table entries
//!    loses track of the real aggressor once an attack rotates through
//!    enough decoy rows (the many-sided bypass). The smallest decoy
//!    count that lets flips through bounds the table size.

use crate::hammer::Attack;
use dram_testbed::{results, Testbed, TestbedError};

/// The outcome of a TRR-presence probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrrVerdict {
    /// Victims flipped even with interleaved `REF`s: no effective TRR.
    Absent,
    /// Victims survived a flipping dose only when `REF`s were present.
    Present,
    /// The dose never flipped victims even without `REF`s — the probe
    /// needs a higher ceiling.
    Inconclusive,
}

/// Hammers `aggressor` in `windows` bursts of `per_window` activations.
/// After each burst, issues a handful of `REF` commands when `with_refs`
/// is set. Returns the victims' flip count.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn windowed_attack(
    tb: &mut Testbed,
    bank: u32,
    aggressor: u32,
    victims: &[u32],
    per_window: u64,
    windows: u32,
    with_refs: bool,
) -> Result<u32, TestbedError> {
    tb.mark("span:trr_window:enter");
    for &v in victims {
        tb.write_row_pattern(bank, v, u64::MAX)?;
    }
    tb.write_row_pattern(bank, aggressor, 0)?;
    for _ in 0..windows {
        Attack::Hammer { count: per_window }.run(tb, bank, aggressor)?;
        if with_refs {
            for _ in 0..4 {
                tb.refresh()?;
            }
        }
    }
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let mut flips = 0;
    for &v in victims {
        let data = tb.read_row(bank, v)?;
        flips += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len() as u32;
    }
    tb.mark("span:trr_window:exit");
    Ok(flips)
}

/// Detects whether the device runs an in-DRAM TRR engine.
///
/// `fresh` must produce identical chips (same profile and seed) so the
/// with-/without-`REF` runs compare the same silicon.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn detect_trr(
    fresh: &mut dyn FnMut() -> Testbed,
    bank: u32,
    aggressor: u32,
    victims: &[u32],
    per_window: u64,
    windows: u32,
) -> Result<TrrVerdict, TestbedError> {
    let mut without = fresh();
    let baseline = windowed_attack(
        &mut without,
        bank,
        aggressor,
        victims,
        per_window,
        windows,
        false,
    )?;
    if baseline == 0 {
        return Ok(TrrVerdict::Inconclusive);
    }
    let mut with = fresh();
    let protected = windowed_attack(
        &mut with, bank, aggressor, victims, per_window, windows, true,
    )?;
    Ok(if protected == 0 {
        TrrVerdict::Present
    } else {
        TrrVerdict::Absent
    })
}

/// A many-sided attack round: hammer the real aggressor plus `decoys`
/// rotating decoy rows per window, with `REF`s interleaved, and report
/// whether the real victims flipped.
///
/// Decoy rows are taken from `decoy_base`, `decoy_base + 2`, … (stride 2
/// keeps them from being each other's neighbours); they must be
/// well away from the victims.
///
/// # Errors
///
/// Propagates chip protocol errors.
#[allow(clippy::too_many_arguments)]
pub fn many_sided_attack(
    tb: &mut Testbed,
    bank: u32,
    aggressor: u32,
    victims: &[u32],
    decoy_base: u32,
    decoys: u32,
    per_window: u64,
    windows: u32,
) -> Result<u32, TestbedError> {
    for &v in victims {
        tb.write_row_pattern(bank, v, u64::MAX)?;
    }
    tb.write_row_pattern(bank, aggressor, 0)?;
    for w in 0..windows {
        // The real aggressor first, then the rotating decoys: by the time
        // the refresh arrives, the decoys have churned the sampler and
        // (with enough of them) evicted the aggressor — the TRRespass
        // many-sided bypass.
        Attack::Hammer { count: per_window }.run(tb, bank, aggressor)?;
        for d in 0..decoys {
            let decoy = decoy_base + 2 * ((w * decoys + d) % (4 * decoys.max(1)));
            Attack::Hammer { count: per_window }.run(tb, bank, decoy)?;
        }
        for _ in 0..4 {
            tb.refresh()?;
        }
    }
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let mut flips = 0;
    for &v in victims {
        let data = tb.read_row(bank, v)?;
        flips += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len() as u32;
    }
    Ok(flips)
}

/// Estimates the TRR sampler's table size: the smallest decoy count whose
/// many-sided attack gets flips through bounds the table from below.
///
/// Returns `None` if no decoy count up to `max_decoys` bypasses the
/// engine.
///
/// # Errors
///
/// Propagates chip protocol errors.
#[allow(clippy::too_many_arguments)]
pub fn estimate_sampler_size(
    fresh: &mut dyn FnMut() -> Testbed,
    bank: u32,
    aggressor: u32,
    victims: &[u32],
    decoy_base: u32,
    max_decoys: u32,
    per_window: u64,
    windows: u32,
) -> Result<Option<u32>, TestbedError> {
    for decoys in 1..=max_decoys {
        let mut tb = fresh();
        let flips = many_sided_attack(
            &mut tb, bank, aggressor, victims, decoy_base, decoys, per_window, windows,
        )?;
        if flips > 0 {
            // `decoys` rotating rows defeated the sampler: its table has
            // fewer than `decoys + 1` reliable entries.
            return Ok(Some(decoys));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    const AGGR: u32 = 20;
    const VICTIMS: [u32; 2] = [19, 21];

    fn fresh_trr(entries: usize) -> impl FnMut() -> Testbed {
        move || {
            Testbed::new(DramChip::new(
                ChipProfile::test_small().with_trr(entries),
                33,
            ))
        }
    }

    fn fresh_plain() -> impl FnMut() -> Testbed {
        || Testbed::new(DramChip::new(ChipProfile::test_small(), 33))
    }

    #[test]
    fn detects_trr_presence() {
        let mut mk = fresh_trr(2);
        let verdict = detect_trr(&mut mk, 0, AGGR, &VICTIMS, 200_000, 12).unwrap();
        assert_eq!(verdict, TrrVerdict::Present);
    }

    #[test]
    fn detects_trr_absence() {
        let mut mk = fresh_plain();
        let verdict = detect_trr(&mut mk, 0, AGGR, &VICTIMS, 200_000, 12).unwrap();
        assert_eq!(verdict, TrrVerdict::Absent);
    }

    #[test]
    fn underdosed_probe_is_inconclusive() {
        let mut mk = fresh_plain();
        let verdict = detect_trr(&mut mk, 0, AGGR, &VICTIMS, 1_000, 2).unwrap();
        assert_eq!(verdict, TrrVerdict::Inconclusive);
    }

    #[test]
    fn many_sided_bypasses_a_small_sampler() {
        // A 1-entry sampler is defeated by rotating decoys.
        let mut mk = fresh_trr(1);
        let size = estimate_sampler_size(
            &mut mk, 0, AGGR, &VICTIMS,
            70, // decoys live in subarray 2 ([64, 104)), away from 19..21
            4, 200_000, 12,
        )
        .unwrap();
        assert!(size.is_some(), "a 1-entry sampler must be bypassable");
        assert!(size.unwrap() <= 3, "bypass should need few decoys");
    }
}
