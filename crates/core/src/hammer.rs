//! AIB test drivers: RowHammer / RowPress attacks, flip scanning,
//! adjacency profiling, BER measurement, and `H_cnt` search (paper §III-B,
//! §V-B).

use dram_sim::Time;
use dram_testbed::{results, BitflipRecord, Testbed, TestbedError, PRESS_ON_TIME};
use std::ops::Range;

/// An AIB attack specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// RowHammer: many short activations (35 ns each).
    Hammer {
        /// Activation count.
        count: u64,
    },
    /// RowPress: few activations held open for a long time.
    Press {
        /// Activation count.
        count: u64,
        /// Open time per activation.
        each_on: Time,
    },
}

impl Attack {
    /// The paper's standard RowHammer experiment: 300 K single-sided
    /// activations (§V-B).
    pub fn standard_hammer() -> Self {
        Attack::Hammer { count: 300_000 }
    }

    /// The paper's standard RowPress experiment: 8 K activations of
    /// 7.8 µs each (§V-B).
    pub fn standard_press() -> Self {
        Attack::Press {
            count: 8_000,
            each_on: PRESS_ON_TIME,
        }
    }

    /// Runs the attack on one aggressor row.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn run(self, tb: &mut Testbed, bank: u32, row: u32) -> Result<(), TestbedError> {
        match self {
            Attack::Hammer { count } => tb.hammer(bank, row, count),
            Attack::Press { count, each_on } => tb.press(bank, row, count, each_on),
        }
    }
}

/// Common experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AibConfig {
    /// Bank under test.
    pub bank: u32,
    /// The attack to run.
    pub attack: Attack,
}

impl Default for AibConfig {
    fn default() -> Self {
        AibConfig {
            bank: 0,
            attack: Attack::standard_hammer(),
        }
    }
}

/// Writes `victim_pattern` to every row in `scan` (skipping the
/// aggressor), writes `aggr_pattern` to the aggressor, runs the attack,
/// and returns the flip count of every scanned row.
///
/// This is the discovery primitive: it assumes nothing about adjacency.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn attack_and_scan(
    tb: &mut Testbed,
    cfg: AibConfig,
    aggressor: u32,
    scan: Range<u32>,
    victim_pattern: u64,
    aggr_pattern: u64,
) -> Result<Vec<(u32, u32)>, TestbedError> {
    tb.mark("span:attack_scan:enter");
    for row in scan.clone() {
        if row != aggressor {
            tb.write_row_pattern(cfg.bank, row, victim_pattern)?;
        }
    }
    tb.write_row_pattern(cfg.bank, aggressor, aggr_pattern)?;
    cfg.attack.run(tb, cfg.bank, aggressor)?;
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let mut out = Vec::new();
    for row in scan {
        if row == aggressor {
            continue;
        }
        let data = tb.read_row(cfg.bank, row)?;
        let flips = results::diff_row(row, rd_bits, |_| victim_pattern, &data).len() as u32;
        out.push((row, flips));
    }
    tb.mark("span:attack_scan:exit");
    Ok(out)
}

/// Finds the rows most damaged by single-sided hammering of `aggressor`
/// within `radius` pin addresses — the physically adjacent rows
/// (common pitfall 2 recovery, paper §III-C).
///
/// Returns up to two row addresses ordered by flip count (descending);
/// rows with zero flips are omitted.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn adjacent_rows(
    tb: &mut Testbed,
    cfg: AibConfig,
    aggressor: u32,
    radius: u32,
) -> Result<Vec<u32>, TestbedError> {
    let lo = aggressor.saturating_sub(radius);
    let hi = (aggressor + radius + 1).min(tb.rows());
    // Victims all-charged, aggressor opposite: the strongest hammer setup.
    let mut flips = attack_and_scan(tb, cfg, aggressor, lo..hi, u64::MAX, 0)?;
    flips.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(flips
        .into_iter()
        .take_while(|(_, f)| *f > 0)
        .take(2)
        .map(|(r, _)| r)
        .collect())
}

/// Measures the flips of one known victim row under per-column pattern
/// functions. Victim and aggressor rows are rewritten first, so each call
/// is an independent trial.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn measure_victim_flips(
    tb: &mut Testbed,
    cfg: AibConfig,
    aggressor: u32,
    victim: u32,
    vic_pattern: &dyn Fn(u32) -> u64,
    aggr_pattern: &dyn Fn(u32) -> u64,
) -> Result<Vec<BitflipRecord>, TestbedError> {
    tb.write_row_with(cfg.bank, victim, vic_pattern)?;
    tb.write_row_with(cfg.bank, aggressor, aggr_pattern)?;
    cfg.attack.run(tb, cfg.bank, aggressor)?;
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let data = tb.read_row(cfg.bank, victim)?;
    Ok(results::diff_row(victim, rd_bits, vic_pattern, &data))
}

/// The result of an `H_cnt` search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcntResult {
    /// The smallest activation count that flipped the target, if it ever
    /// flipped within the search ceiling.
    pub count: Option<u64>,
    /// Attack trials spent.
    pub trials: u32,
}

/// Binary-searches the minimum activation count (`H_cnt`) that flips a
/// specific victim cell `(col, bit)` (paper §V-D, Fig. 15).
///
/// Patterns are rewritten before every trial so trials are independent.
///
/// # Errors
///
/// Propagates chip protocol errors.
#[allow(clippy::too_many_arguments)]
pub fn hcnt_for_cell(
    tb: &mut Testbed,
    bank: u32,
    aggressor: u32,
    victim: u32,
    vic_pattern: &dyn Fn(u32) -> u64,
    aggr_pattern: &dyn Fn(u32) -> u64,
    target: (u32, u32),
    ceiling: u64,
) -> Result<HcntResult, TestbedError> {
    let (t_col, t_bit) = target;
    let mut trials = 0;
    let flips_at = |tb: &mut Testbed, count: u64, trials: &mut u32| -> Result<bool, TestbedError> {
        *trials += 1;
        tb.write_row_with(bank, victim, vic_pattern)?;
        tb.write_row_with(bank, aggressor, aggr_pattern)?;
        tb.hammer(bank, aggressor, count)?;
        let data = tb.read_row(bank, victim)?;
        let want = vic_pattern(t_col) & (1 << t_bit);
        let got = data[t_col as usize] & (1 << t_bit);
        Ok(want != got)
    };

    if !flips_at(tb, ceiling, &mut trials)? {
        return Ok(HcntResult {
            count: None,
            trials,
        });
    }
    let (mut lo, mut hi) = (0u64, ceiling);
    // Invariant: flips at hi, does not flip at lo.
    while hi - lo > ceiling.div_ceil(256).max(1) {
        let mid = lo + (hi - lo) / 2;
        if flips_at(tb, mid, &mut trials)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(HcntResult {
        count: Some(hi),
        trials,
    })
}

/// A multi-aggressor hammer pattern (the access-pattern taxonomy the
/// paper's footnote 6 and the TRR literature work with).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HammerPattern {
    /// One aggressor (the paper's characterization default).
    SingleSided {
        /// Aggressor row.
        row: u32,
    },
    /// Both physical neighbours of a victim, hammered equally — more
    /// flips per activation but a confounded characterization signal
    /// (footnote 6).
    DoubleSided {
        /// The sandwiched victim row.
        victim: u32,
    },
    /// An arbitrary aggressor set (many-sided TRR-evasion patterns).
    ManySided {
        /// Aggressor rows.
        rows: Vec<u32>,
    },
}

impl HammerPattern {
    /// The aggressor rows this pattern activates.
    pub fn aggressors(&self) -> Vec<u32> {
        match self {
            HammerPattern::SingleSided { row } => vec![*row],
            HammerPattern::DoubleSided { victim } => vec![victim - 1, victim + 1],
            HammerPattern::ManySided { rows } => rows.clone(),
        }
    }

    /// Runs the pattern: `count` activations per aggressor.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn run(&self, tb: &mut Testbed, bank: u32, count: u64) -> Result<(), TestbedError> {
        for row in self.aggressors() {
            tb.hammer(bank, row, count)?;
        }
        Ok(())
    }
}

/// Aggregates flips-per-bit-index (mod `period`) over a set of
/// independent victim measurements — the reduction behind Fig. 12.
pub fn flips_by_bit_index(records: &[BitflipRecord], rd_bits: u32, period: u32) -> Vec<u64> {
    let mut hist = vec![0u64; period as usize];
    for r in records {
        let idx = r.row_bit(rd_bits) % period;
        hist[idx as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    fn tb() -> Testbed {
        Testbed::new(DramChip::new(ChipProfile::test_small(), 13))
    }

    fn big_hammer() -> AibConfig {
        AibConfig {
            bank: 0,
            attack: Attack::Hammer { count: 1_500_000 },
        }
    }

    #[test]
    fn scan_finds_only_neighbors() {
        let mut t = tb();
        let flips = attack_and_scan(&mut t, big_hammer(), 20, 15..26, u64::MAX, 0).unwrap();
        for (row, f) in &flips {
            if *row == 19 || *row == 21 {
                assert!(*f > 0, "row {row} must flip");
            } else {
                assert_eq!(*f, 0, "row {row} must not flip");
            }
        }
    }

    #[test]
    fn adjacent_rows_returns_the_two_neighbors() {
        let mut t = tb();
        let adj = adjacent_rows(&mut t, big_hammer(), 20, 4).unwrap();
        let mut sorted = adj.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![19, 21]);
    }

    #[test]
    fn subarray_edge_has_one_neighbor() {
        let mut t = tb();
        // Row 0 is the bottom of subarray 0: only row 1 is adjacent.
        let adj = adjacent_rows(&mut t, big_hammer(), 0, 3).unwrap();
        assert_eq!(adj, vec![1]);
    }

    #[test]
    fn measure_victim_flips_reports_direction() {
        let mut t = tb();
        let recs =
            measure_victim_flips(&mut t, big_hammer(), 20, 19, &|_| u64::MAX, &|_| 0).unwrap();
        assert!(!recs.is_empty());
        assert!(recs
            .iter()
            .all(|r| r.direction == dram_testbed::FlipDirection::OneToZero));
    }

    #[test]
    fn hcnt_search_is_consistent() {
        let mut t = tb();
        let res =
            hcnt_for_cell(&mut t, 0, 20, 19, &|_| u64::MAX, &|_| 0, (0, 0), 4_000_000).unwrap();
        // Cell (0,0) may or may not be the weakest; if it flips, verify
        // the search bracket semantics by direct replay.
        if let Some(n) = res.count {
            assert!(n <= 4_000_000);
            let recs = measure_victim_flips(
                &mut t,
                AibConfig {
                    bank: 0,
                    attack: Attack::Hammer { count: n },
                },
                20,
                19,
                &|_| u64::MAX,
                &|_| 0,
            )
            .unwrap();
            assert!(
                recs.iter().any(|r| (r.col, r.bit) == (0, 0)),
                "replay at H_cnt must reproduce the flip"
            );
        }
        assert!(res.trials >= 1);
    }

    #[test]
    fn press_flips_only_charged_cells() {
        let mut t = tb();
        let cfg = AibConfig {
            bank: 0,
            attack: Attack::Press {
                count: 64_000,
                each_on: PRESS_ON_TIME,
            },
        };
        // Charged victim (all 1s on an all-true chip) flips.
        let charged = measure_victim_flips(&mut t, cfg, 20, 19, &|_| u64::MAX, &|_| 0).unwrap();
        assert!(!charged.is_empty(), "charged cells must flip under press");
        // Discharged victim (all 0s) does not.
        let discharged = measure_victim_flips(&mut t, cfg, 20, 19, &|_| 0, &|_| u64::MAX).unwrap();
        assert!(discharged.is_empty(), "press must spare discharged cells");
    }

    #[test]
    fn double_sided_amplifies_single_sided() {
        // Same per-aggressor count, two aggressors sandwiching the victim.
        let count = 2_000_000;
        let flips_for = |pattern: HammerPattern| -> usize {
            let mut t = Testbed::new(DramChip::new(ChipProfile::test_small(), 13));
            t.write_row_pattern(0, 20, u64::MAX).unwrap();
            t.write_row_pattern(0, 19, 0).unwrap();
            t.write_row_pattern(0, 21, 0).unwrap();
            pattern.run(&mut t, 0, count).unwrap();
            let data = t.read_row(0, 20).unwrap();
            dram_testbed::results::diff_row(20, 32, |_| u64::MAX, &data).len()
        };
        let single = flips_for(HammerPattern::SingleSided { row: 21 });
        let double = flips_for(HammerPattern::DoubleSided { victim: 20 });
        assert!(single > 0);
        // Each aggressor direction owns one gate-type class of the
        // victim's cells, so double-sided roughly doubles the exposed
        // population (footnote 6's "more errors with the same count").
        assert!(
            double as f64 > 1.5 * single as f64,
            "double-sided must amplify: {double} vs {single}"
        );
        assert_eq!(
            HammerPattern::DoubleSided { victim: 20 }.aggressors(),
            vec![19, 21]
        );
        assert_eq!(
            HammerPattern::ManySided { rows: vec![3, 9] }.aggressors(),
            vec![3, 9]
        );
    }

    #[test]
    fn flips_by_bit_index_buckets() {
        let recs = vec![
            BitflipRecord {
                row: 0,
                col: 0,
                bit: 1,
                direction: dram_testbed::FlipDirection::OneToZero,
            },
            BitflipRecord {
                row: 0,
                col: 1,
                bit: 1,
                direction: dram_testbed::FlipDirection::OneToZero,
            },
        ];
        let hist = flips_by_bit_index(&recs, 32, 32);
        assert_eq!(hist[1], 2);
        assert_eq!(hist.iter().sum::<u64>(), 2);
    }
}
