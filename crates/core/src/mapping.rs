//! Module-level mapping pitfalls and their compensation
//! (paper §III-C, Fig. 5).
//!
//! Everything here runs against a whole [`Dimm`], where the RCD inverts
//! B-side addresses and the DQ nets twist per chip. The *naive* flows
//! reproduce the classic artifacts (apparent non-adjacent RowHammer,
//! per-chip pattern corruption); the *aware* flows compensate with the
//! public datasheet information, as the paper does.

use dram_module::{CacheLine, Dimm, ModuleCommand, ModuleError};
use dram_sim::Time;
use std::collections::BTreeSet;

/// A minimal module-level testbed: a command cursor over a [`Dimm`].
#[derive(Debug)]
pub struct ModuleTestbed {
    dimm: Dimm,
    cursor: Time,
}

impl ModuleTestbed {
    /// Wraps a module.
    pub fn new(dimm: Dimm) -> Self {
        let cursor = dimm.timing().trp;
        ModuleTestbed { dimm, cursor }
    }

    /// The module under test.
    pub fn dimm(&self) -> &Dimm {
        &self.dimm
    }

    /// Mutable access to the module under test.
    pub fn dimm_mut(&mut self) -> &mut Dimm {
        &mut self.dimm
    }

    /// Writes one cache line to every column of a controller row.
    ///
    /// # Errors
    ///
    /// Propagates module errors.
    pub fn write_row(&mut self, bank: u32, row: u32, line: CacheLine) -> Result<(), ModuleError> {
        let t = *self.dimm.timing();
        let t0 = self.cursor + t.trp;
        self.dimm.issue(ModuleCommand::Activate { bank, row }, t0)?;
        let mut tc = t0 + t.trcd;
        let cols = self.dimm.profile().cols_per_row();
        for col in 0..cols {
            self.dimm.issue(
                ModuleCommand::Write {
                    bank,
                    col,
                    data: line,
                },
                tc,
            )?;
            tc += t.tck;
        }
        let tp = tc.max(t0 + t.tras);
        self.dimm.issue(ModuleCommand::Precharge { bank }, tp)?;
        self.cursor = tp;
        Ok(())
    }

    /// Reads every column of a controller row.
    ///
    /// # Errors
    ///
    /// Propagates module errors.
    pub fn read_row(&mut self, bank: u32, row: u32) -> Result<Vec<CacheLine>, ModuleError> {
        let t = *self.dimm.timing();
        let t0 = self.cursor + t.trp;
        self.dimm.issue(ModuleCommand::Activate { bank, row }, t0)?;
        let mut tc = t0 + t.trcd;
        let cols = self.dimm.profile().cols_per_row();
        let mut out = Vec::with_capacity(cols as usize);
        for col in 0..cols {
            let line = self
                .dimm
                .issue(ModuleCommand::Read { bank, col }, tc)?
                .expect("read returns a line");
            out.push(line);
            tc += t.tck;
        }
        let tp = tc.max(t0 + t.tras);
        self.dimm.issue(ModuleCommand::Precharge { bank }, tp)?;
        self.cursor = tp;
        Ok(out)
    }

    /// Runs one full refresh window on every chip and advances the
    /// cursor.
    ///
    /// # Errors
    ///
    /// Propagates module errors.
    pub fn refresh(&mut self) -> Result<(), ModuleError> {
        let at = self.cursor + self.dimm.timing().trfc;
        self.dimm.refresh_window(at)?;
        self.cursor = at;
        Ok(())
    }

    /// Advances the cursor without issuing commands (retention waits).
    pub fn wait(&mut self, d: Time) {
        self.cursor += d;
    }

    /// Hammers a controller row: every chip bursts on the pin address the
    /// RCD hands it.
    ///
    /// # Errors
    ///
    /// Propagates chip errors (tagged with the chip index).
    pub fn hammer(&mut self, bank: u32, row: u32, count: u64) -> Result<(), ModuleError> {
        let t0 = self.cursor + self.dimm.timing().trp;
        let on = dram_testbed::HAMMER_ON_TIME;
        let mut end = t0;
        for i in 0..self.dimm.chip_count() {
            let pin_row = self.dimm.chip_row_address(i, row);
            end = self
                .dimm
                .chip_mut(i)
                .activate_burst(bank, pin_row, count, on, t0)
                .map_err(|error| ModuleError { chip: i, error })?;
        }
        self.cursor = end;
        Ok(())
    }
}

/// A flip observation from a module-level scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleFlip {
    /// Controller row where the corruption was read.
    pub row: u32,
    /// Chip position holding the flipped lanes.
    pub chip: usize,
    /// Flipped bits on this chip for this row.
    pub flips: u32,
}

/// Hammers `aggressor` and scans `rows` for corruption, attributing flips
/// to chip positions. With a naive mapping, B-side victims show up at
/// far-away controller rows — the "direct non-adjacent RowHammer"
/// artifact.
///
/// # Errors
///
/// Propagates module errors.
pub fn hammer_and_scan_module(
    mtb: &mut ModuleTestbed,
    bank: u32,
    aggressor: u32,
    rows: &[u32],
    count: u64,
) -> Result<Vec<ModuleFlip>, ModuleError> {
    let ones = CacheLine::splat(u64::MAX);
    for &r in rows {
        if r != aggressor {
            mtb.write_row(bank, r, ones)?;
        }
    }
    mtb.write_row(bank, aggressor, CacheLine::default())?;
    mtb.hammer(bank, aggressor, count)?;

    let n_chips = mtb.dimm().chip_count();
    let dq = mtb.dimm().profile().io_width.dq_pins();
    let mut out = Vec::new();
    for &r in rows {
        if r == aggressor {
            continue;
        }
        let lines = mtb.read_row(bank, r)?;
        for chip in 0..n_chips {
            let base = chip as u32 * dq;
            let lane_mask = if dq >= 64 { u64::MAX } else { (1u64 << dq) - 1 };
            let mask = lane_mask << base;
            let mut flips = 0;
            for line in &lines {
                for beat in line.0.iter() {
                    flips += ((beat ^ u64::MAX) & mask).count_ones();
                }
            }
            if flips > 0 {
                out.push(ModuleFlip {
                    row: r,
                    chip,
                    flips,
                });
            }
        }
    }
    Ok(out)
}

/// The controller rows where a mapping-aware analyst *expects* victims of
/// `aggressor` on each chip: the pin neighbours translated back through
/// the RCD (assuming no internal chip remap).
pub fn aware_expected_victims(dimm: &Dimm, aggressor: u32) -> BTreeSet<u32> {
    let rows = dimm.profile().rows_per_bank;
    let mut out = BTreeSet::new();
    for i in 0..dimm.chip_count() {
        let pin = dimm.chip_row_address(i, aggressor);
        for neighbor in dram_sim::row_neighbors(pin, rows) {
            let side = dimm.side_of(i);
            out.insert(dimm.rcd().controller_row(side, neighbor));
        }
    }
    out
}

/// The per-chip RD_data that a naive uniform write of `beat_pattern`
/// actually lands as inside each chip — the pitfall-3 demonstration.
pub fn naive_pattern_per_chip(dimm: &Dimm, beat_pattern: u64) -> Vec<u64> {
    let line = CacheLine::splat(beat_pattern);
    (0..dimm.chip_count())
        .map(|i| dimm.gather_line_to_chip(i, &line))
        .collect()
}

/// Column data for chip `i` that makes the chip receive `wanted` — the
/// aware write (compensating the DQ twist).
pub fn aware_line_for_chip_pattern(dimm: &Dimm, wanted: &[u64]) -> CacheLine {
    let mut line = CacheLine::default();
    for (i, &w) in wanted.iter().enumerate() {
        dimm.scatter_chip_to_line(i, w, &mut line);
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::ChipProfile;

    fn mtb() -> ModuleTestbed {
        ModuleTestbed::new(Dimm::new(ChipProfile::test_small(), 4, 77))
    }

    #[test]
    fn module_write_read_round_trips() {
        let mut m = mtb();
        let line = CacheLine([1, 2, 3, 4, 5, 6, 7, 0xFFFF]);
        m.write_row(0, 33, line).unwrap();
        let got = m.read_row(0, 33).unwrap();
        assert!(got
            .iter()
            .all(|l| { (0..8).all(|b| l.0[b] & 0xFFFF == line.0[b] & 0xFFFF) }));
    }

    #[test]
    fn naive_hammer_shows_nonadjacent_artifact() {
        let mut m = mtb();
        // Aggressor 103 sits right below a low-3-bit carry boundary, so
        // the B-side pin aggressor's +1 neighbour maps back to a distant
        // controller row.
        let aggressor = 103;
        let rows: Vec<u32> = (96..112).chain([88]).collect();
        let flips = hammer_and_scan_module(&mut m, 0, aggressor, &rows, 1_500_000).unwrap();
        let rows_hit: BTreeSet<u32> = flips.iter().map(|f| f.row).collect();
        assert!(rows_hit.contains(&102));
        assert!(
            rows_hit.contains(&88),
            "B-side inversion must surface a 'non-adjacent' victim at 88, got {rows_hit:?}"
        );
        // And the far victim must be exclusively on B-side chips.
        assert!(flips.iter().filter(|f| f.row == 88).all(|f| f.chip >= 2));
    }

    #[test]
    fn aware_analysis_predicts_every_victim() {
        let mut m = mtb();
        // Aggressor 101: its pin neighbours stay inside one subarray on
        // both sides, so the aware prediction is exact.
        let aggressor = 101;
        let expected = aware_expected_victims(m.dimm(), aggressor);
        assert_eq!(expected, BTreeSet::from([100, 102]));
        let scan: Vec<u32> = expected.iter().copied().collect();
        let flips = hammer_and_scan_module(&mut m, 0, aggressor, &scan, 1_500_000).unwrap();
        let hit: BTreeSet<u32> = flips.iter().map(|f| f.row).collect();
        assert_eq!(hit, expected, "aware prediction must be exact");
    }

    #[test]
    fn aware_victims_at_bank_edges_stay_in_bounds() {
        // Aggressors at row 0 and the last row: B-side RCD inversion puts
        // some chips' pin addresses at the opposite array edge, where the
        // old `pin.wrapping_sub(1)` neighbour enumeration wrapped.
        let d = Dimm::new(ChipProfile::test_small(), 4, 77);
        let rows = d.profile().rows_per_bank;
        for aggressor in [0, rows - 1] {
            let victims = aware_expected_victims(&d, aggressor);
            assert!(!victims.is_empty(), "row {aggressor}: no victims");
            assert!(
                victims.iter().all(|&v| v < rows),
                "row {aggressor}: out-of-bank victim in {victims:?}"
            );
        }
    }

    #[test]
    fn naive_patterns_differ_per_chip_and_aware_compensates() {
        let d = Dimm::new(ChipProfile::test_small(), 4, 77);
        let naive = naive_pattern_per_chip(&d, 0x5555);
        assert!(naive.iter().any(|&p| p != naive[0]), "twists must distort");
        let wanted = vec![0x55u64; 4];
        let line = aware_line_for_chip_pattern(&d, &wanted);
        for i in 0..4 {
            assert_eq!(d.gather_line_to_chip(i, &line), 0x55);
        }
    }
}
