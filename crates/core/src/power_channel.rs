//! DRAM power side channel (paper §VI-C).
//!
//! Edge-subarray rows drive two wordlines per activation (the tandem
//! pair) and coupled chips drive double-width wordlines, so *which row a
//! victim accesses is visible in the supply current*. The paper flags
//! this as an intriguing side-/covert-channel; this module implements it:
//!
//! * [`activation_energy`] — the per-activation energy measurement (the
//!   power meter an attacker would attach);
//! * [`energy_scan`] / [`edge_interval_from_power`] — a *third*,
//!   AIB/RowCopy-independent way to locate edge subarrays, usable for
//!   cross-validation of O5;
//! * [`transmit`] / covert signalling between a sender picking rows and a
//!   receiver watching the power rail.

use dram_testbed::{Testbed, TestbedError};

/// Measures the wordline-activation energy (in model units) of one
/// `ACT`-`PRE` cycle on `row`. Interior rows of an uncoupled chip cost 1;
/// tandem edge rows and coupled wordlines cost more.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn activation_energy(tb: &mut Testbed, bank: u32, row: u32) -> Result<u64, TestbedError> {
    let before = tb.chip().stats().act_energy_units;
    // A read is the cheapest legal ACT-PRE round trip.
    let _ = tb.read_col(bank, row, 0)?;
    Ok(tb.chip().stats().act_energy_units - before)
}

/// The per-row energy profile over a row range (step `stride`).
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn energy_scan(
    tb: &mut Testbed,
    bank: u32,
    rows: std::ops::Range<u32>,
    stride: u32,
) -> Result<Vec<(u32, u64)>, TestbedError> {
    let mut out = Vec::new();
    let mut r = rows.start;
    while r < rows.end {
        out.push((r, activation_energy(tb, bank, r)?));
        r += stride;
    }
    Ok(out)
}

/// Locates the edge-subarray interval purely from activation power: the
/// bank's energy profile is high inside edge subarrays and low in the
/// interior; the distance between the starts of consecutive high regions
/// is the segment size.
///
/// Returns `None` when no high-energy region repeats within the bank.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn edge_interval_from_power(
    tb: &mut Testbed,
    bank: u32,
    stride: u32,
) -> Result<Option<u32>, TestbedError> {
    let rows = tb.rows();
    let profile = energy_scan(tb, bank, 0..rows, stride)?;
    let base = profile.iter().map(|&(_, e)| e).min().unwrap_or(1);
    // Starts of contiguous high-energy regions.
    let mut starts = Vec::new();
    let mut in_high = false;
    for &(r, e) in &profile {
        let high = e > base;
        if high && !in_high {
            starts.push(r);
        }
        in_high = high;
    }
    // Row 0 opens a high region (segment 0's low edge). Each later high
    // region spans a segment boundary: the high edge of segment k fused
    // with the low edge of segment k+1. Consecutive *interior* starts are
    // therefore exactly one segment apart.
    if starts.len() < 3 {
        return Ok(None);
    }
    Ok(Some(starts[2] - starts[1]))
}

/// Sends `bits` over the power covert channel: a 1 activates `high_row`
/// (an edge/tandem row), a 0 activates `low_row` (an interior row). The
/// receiver decodes each symbol from the measured activation energy.
/// Returns the decoded bits — lossless on this channel.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn transmit(
    tb: &mut Testbed,
    bank: u32,
    high_row: u32,
    low_row: u32,
    bits: &[bool],
) -> Result<Vec<bool>, TestbedError> {
    let low_energy = activation_energy(tb, bank, low_row)?;
    let mut decoded = Vec::with_capacity(bits.len());
    for &b in bits {
        let row = if b { high_row } else { low_row };
        let e = activation_energy(tb, bank, row)?;
        decoded.push(e > low_energy);
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    fn tb() -> Testbed {
        Testbed::new(DramChip::new(ChipProfile::test_small(), 8))
    }

    #[test]
    fn edge_rows_cost_double() {
        let mut t = tb();
        // Row 10 is in the low-edge subarray, row 50 interior.
        assert_eq!(activation_energy(&mut t, 0, 50).unwrap(), 1);
        assert_eq!(activation_energy(&mut t, 0, 10).unwrap(), 2);
    }

    #[test]
    fn coupled_chips_double_everything() {
        let mut t = Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 8));
        assert_eq!(activation_energy(&mut t, 0, 45).unwrap(), 2);
        // Coupled AND tandem: 4 units (pin 2 → wordline 1, low edge).
        assert_eq!(activation_energy(&mut t, 0, 2).unwrap(), 4);
    }

    #[test]
    fn power_scan_recovers_the_edge_interval() {
        let mut t = tb();
        let interval = edge_interval_from_power(&mut t, 0, 4).unwrap();
        assert_eq!(
            interval,
            Some(t.chip().ground_truth().edge_interval_wls),
            "the power side channel must reveal the segment size (O5 cross-check)"
        );
    }

    #[test]
    fn covert_channel_is_lossless() {
        let mut t = tb();
        let bits = [true, false, true, true, false, false, true, false];
        let decoded = transmit(&mut t, 0, 10, 50, &bits).unwrap();
        assert_eq!(decoded, bits);
    }
}
