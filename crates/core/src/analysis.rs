//! Statistical reductions shared by the experiment drivers: alternation
//! contrast for the Fig. 12/13 histograms, binomial confidence intervals
//! for BER estimates, and series normalization.

/// The even/odd alternation contrast of a histogram: the ratio of the
/// stronger parity-class total to the weaker one (≥ 1.0). A flat profile
/// scores ≈ 1; the paper's Fig. 12 panels score ≫ 1.
pub fn alternation_contrast(hist: &[u64]) -> f64 {
    let even: u64 = hist.iter().step_by(2).sum();
    let odd: u64 = hist.iter().skip(1).step_by(2).sum();
    let hi = even.max(odd) as f64;
    let lo = even.min(odd) as f64;
    if lo == 0.0 {
        if hi == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        hi / lo
    }
}

/// Which parity class dominates a histogram (`true` = even indices).
pub fn dominant_parity(hist: &[u64]) -> bool {
    let even: u64 = hist.iter().step_by(2).sum();
    let odd: u64 = hist.iter().skip(1).step_by(2).sum();
    even >= odd
}

/// A binomial proportion with a Wilson 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerEstimate {
    /// Observed flips.
    pub flips: u64,
    /// Observed cells.
    pub cells: u64,
    /// Point estimate.
    pub ber: f64,
    /// Wilson interval lower bound.
    pub lo: f64,
    /// Wilson interval upper bound.
    pub hi: f64,
}

/// Computes a BER point estimate with a Wilson 95% interval.
///
/// # Example
///
/// ```
/// let e = dramscope_core::analysis::ber_estimate(50, 1000);
/// assert!(e.lo < e.ber && e.ber < e.hi);
/// assert!((e.ber - 0.05).abs() < 1e-12);
/// ```
pub fn ber_estimate(flips: u64, cells: u64) -> BerEstimate {
    let n = cells.max(1) as f64;
    let p = flips as f64 / n;
    let z = 1.959964; // 95%
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    BerEstimate {
        flips,
        cells,
        ber: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// `true` when two BER estimates' 95% intervals do not overlap — a
/// conservative "significantly different" check for the ratio claims.
pub fn significantly_different(a: &BerEstimate, b: &BerEstimate) -> bool {
    a.hi < b.lo || b.hi < a.lo
}

/// Normalizes a series to its first element (the paper's "relative BER"
/// presentation). Returns an empty vector for an empty input; a zero
/// first element normalizes to the raw values.
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    match values.first() {
        None => Vec::new(),
        Some(&f) if f != 0.0 => values.iter().map(|v| v / f).collect(),
        Some(_) => values.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrast_detects_alternation() {
        let flat = vec![10u64; 32];
        assert!((alternation_contrast(&flat) - 1.0).abs() < 1e-12);
        let alternating: Vec<u64> = (0..32).map(|i| if i % 2 == 0 { 100 } else { 5 }).collect();
        assert!(alternation_contrast(&alternating) > 10.0);
        assert!(dominant_parity(&alternating));
        let reversed: Vec<u64> = (0..32).map(|i| if i % 2 == 1 { 100 } else { 5 }).collect();
        assert!(!dominant_parity(&reversed));
    }

    #[test]
    fn contrast_edge_cases() {
        assert_eq!(alternation_contrast(&[]), 1.0);
        assert_eq!(alternation_contrast(&[5, 0, 5, 0]), f64::INFINITY);
    }

    #[test]
    fn wilson_interval_behaves() {
        let e = ber_estimate(0, 1000);
        assert_eq!(e.ber, 0.0);
        assert!(e.lo < 1e-9 && e.hi > 0.0 && e.hi < 0.01);
        let e = ber_estimate(1000, 1000);
        assert_eq!(e.ber, 1.0);
        assert!(e.lo > 0.99 && e.hi > 1.0 - 1e-9);
        let wide = ber_estimate(5, 10);
        let narrow = ber_estimate(500, 1000);
        assert!(wide.hi - wide.lo > narrow.hi - narrow.lo);
    }

    #[test]
    fn significance_check() {
        let a = ber_estimate(10, 1000);
        let b = ber_estimate(300, 1000);
        assert!(significantly_different(&a, &b));
        let c = ber_estimate(12, 1000);
        assert!(!significantly_different(&a, &c));
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_to_first(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert!(normalize_to_first(&[]).is_empty());
        assert_eq!(normalize_to_first(&[0.0, 3.0]), vec![0.0, 3.0]);
    }
}
