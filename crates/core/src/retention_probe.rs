//! Retention-time testing: true-/anti-cell classification
//! (paper §III-B).
//!
//! Charge always leaks from the charged state to the discharged state, so
//! pausing refresh and watching which *logical* direction bits decay in
//! reveals each cell's polarity: true-cells fail 1→0, anti-cells 0→1.

use dram_sim::Time;
use dram_testbed::{Testbed, TestbedError};

/// The polarity verdict for one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowPolarity {
    /// Failures were 1→0: charged state stores 1.
    TrueCells,
    /// Failures were 0→1: charged state stores 0.
    AntiCells,
    /// No failures observed in either direction (wait too short for this
    /// row's cells).
    Unknown,
}

/// Per-row retention classification result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionVerdict {
    /// The row tested.
    pub row: u32,
    /// Failures observed with all-ones data (1→0 count).
    pub fails_from_ones: u32,
    /// Failures observed with all-zeros data (0→1 count).
    pub fails_from_zeros: u32,
}

impl RetentionVerdict {
    /// The polarity this verdict implies.
    pub fn polarity(&self) -> RowPolarity {
        if self.fails_from_ones > self.fails_from_zeros {
            RowPolarity::TrueCells
        } else if self.fails_from_zeros > self.fails_from_ones {
            RowPolarity::AntiCells
        } else {
            RowPolarity::Unknown
        }
    }
}

/// Classifies the polarity of each row by writing solid data, pausing
/// refresh for `wait`, and diffing (both directions).
///
/// The paper heats the DIMM (75 °C) to accelerate this test; call
/// [`Testbed::set_temperature`] first for the same effect.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn classify_rows(
    tb: &mut Testbed,
    bank: u32,
    rows: &[u32],
    wait: Time,
) -> Result<Vec<RetentionVerdict>, TestbedError> {
    tb.mark("span:retention_classify:enter");
    let mut out = Vec::with_capacity(rows.len());
    for &row in rows {
        let mut verdict = RetentionVerdict {
            row,
            fails_from_ones: 0,
            fails_from_zeros: 0,
        };
        tb.write_row_pattern(bank, row, u64::MAX)?;
        tb.wait(wait);
        verdict.fails_from_ones = tb
            .read_row(bank, row)?
            .iter()
            .map(|d| (!d).count_ones().saturating_sub(64 - rd_bits(tb)))
            .sum();
        tb.write_row_pattern(bank, row, 0)?;
        tb.wait(wait);
        verdict.fails_from_zeros = tb.read_row(bank, row)?.iter().map(|d| d.count_ones()).sum();
        out.push(verdict);
    }
    tb.mark("span:retention_classify:exit");
    Ok(out)
}

fn rd_bits(tb: &Testbed) -> u32 {
    tb.chip().profile().io_width.rd_bits()
}

/// A retention-time profile of one row: failure counts after a ladder of
/// unrefreshed waits (the paper's third reverse-engineering technique,
/// extended to full profiling à la Liu et al.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetentionProfile {
    /// The row profiled.
    pub row: u32,
    /// `(wait, failing bits)` per ladder step.
    pub steps: Vec<(Time, u32)>,
}

impl RetentionProfile {
    /// `true` when longer waits never lose fewer bits — the invariant of
    /// leak-to-discharge retention.
    pub fn is_monotonic(&self) -> bool {
        self.steps.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// The shortest profiled wait at which any bit failed.
    pub fn first_failure(&self) -> Option<Time> {
        self.steps.iter().find(|(_, f)| *f > 0).map(|(t, _)| *t)
    }
}

/// Profiles a row's retention behaviour over a wait ladder (charged
/// data). Each step rewrites the row, so steps are independent trials on
/// the same deterministic cells.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn profile_retention(
    tb: &mut Testbed,
    bank: u32,
    row: u32,
    waits: &[Time],
) -> Result<RetentionProfile, TestbedError> {
    let mut steps = Vec::with_capacity(waits.len());
    for &wait in waits {
        tb.write_row_pattern(bank, row, u64::MAX)?;
        tb.wait(wait);
        let fails: u32 = tb
            .read_row(bank, row)?
            .iter()
            .map(|d| (!d).count_ones().saturating_sub(64 - rd_bits(tb)))
            .sum();
        steps.push((wait, fails));
    }
    Ok(RetentionProfile { row, steps })
}

/// The weak cells of a row at a given wait: the `(col, bit)` positions
/// that fail retention (the set an attacker templates with, and a
/// defender maps for victim-cell placement).
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn weak_cells(
    tb: &mut Testbed,
    bank: u32,
    row: u32,
    wait: Time,
) -> Result<Vec<(u32, u32)>, TestbedError> {
    tb.write_row_pattern(bank, row, u64::MAX)?;
    tb.wait(wait);
    let rd = rd_bits(tb);
    let data = tb.read_row(bank, row)?;
    let mut out = Vec::new();
    for (c, &word) in data.iter().enumerate() {
        for b in 0..rd {
            if word & (1 << b) == 0 {
                out.push((c as u32, b));
            }
        }
    }
    Ok(out)
}

/// The polarity scheme of a chip, inferred from a row sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolarityVerdict {
    /// Every sampled row used true-cells (Mfr. A / Mfr. B style).
    AllTrue,
    /// Both polarities appeared (Mfr. C's subarray interleaving).
    Mixed,
    /// Every sampled row used anti-cells.
    AllAnti,
    /// The wait was too short to classify.
    Inconclusive,
}

/// Infers the chip-level polarity scheme from per-row verdicts.
pub fn polarity_scheme(verdicts: &[RetentionVerdict]) -> PolarityVerdict {
    let mut true_rows = 0;
    let mut anti_rows = 0;
    for v in verdicts {
        match v.polarity() {
            RowPolarity::TrueCells => true_rows += 1,
            RowPolarity::AntiCells => anti_rows += 1,
            RowPolarity::Unknown => {}
        }
    }
    match (true_rows, anti_rows) {
        (0, 0) => PolarityVerdict::Inconclusive,
        (_, 0) => PolarityVerdict::AllTrue,
        (0, _) => PolarityVerdict::AllAnti,
        _ => PolarityVerdict::Mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    fn wait() -> Time {
        // ~22% expected failures at 75 °C under the default retention
        // model: plenty of signal per 256-cell row.
        Time::from_ms(120_000)
    }

    #[test]
    fn all_true_chip_fails_one_to_zero() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 31));
        let verdicts = classify_rows(&mut tb, 0, &[3, 50, 100], wait()).unwrap();
        for v in &verdicts {
            assert!(v.fails_from_ones > 0, "row {} saw no decay", v.row);
            assert_eq!(v.fails_from_zeros, 0);
            assert_eq!(v.polarity(), RowPolarity::TrueCells);
        }
        assert_eq!(polarity_scheme(&verdicts), PolarityVerdict::AllTrue);
    }

    #[test]
    fn interleaved_chip_shows_both_polarities() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small_interleaved(), 31));
        // Rows 3 (subarray 0, true) and 45 (subarray 1, anti).
        let verdicts = classify_rows(&mut tb, 0, &[3, 45], wait()).unwrap();
        assert_eq!(verdicts[0].polarity(), RowPolarity::TrueCells);
        assert_eq!(verdicts[1].polarity(), RowPolarity::AntiCells);
        assert_eq!(polarity_scheme(&verdicts), PolarityVerdict::Mixed);
    }

    #[test]
    fn short_wait_is_inconclusive() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 31));
        let verdicts = classify_rows(&mut tb, 0, &[3], Time::from_ns(10)).unwrap();
        assert_eq!(verdicts[0].polarity(), RowPolarity::Unknown);
        assert_eq!(polarity_scheme(&verdicts), PolarityVerdict::Inconclusive);
    }

    #[test]
    fn retention_profile_is_monotonic_with_stable_weak_cells() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 31));
        let waits = [
            Time::from_ms(30_000),
            Time::from_ms(120_000),
            Time::from_ms(480_000),
        ];
        let profile = profile_retention(&mut tb, 0, 9, &waits).unwrap();
        assert!(profile.is_monotonic(), "{profile:?}");
        assert!(profile.first_failure().is_some());
        // Weak cells at a short wait are a subset of those at a long one
        // (deterministic per-cell retention times).
        let short = weak_cells(&mut tb, 0, 9, waits[0]).unwrap();
        let long = weak_cells(&mut tb, 0, 9, waits[2]).unwrap();
        assert!(short.iter().all(|c| long.contains(c)));
        assert!(long.len() >= short.len());
    }

    #[test]
    fn heating_increases_failures() {
        let mut cold = Testbed::new(DramChip::new(ChipProfile::test_small(), 31));
        cold.set_temperature(45.0);
        let vc = classify_rows(&mut cold, 0, &[3], wait()).unwrap();

        let mut hot = Testbed::new(DramChip::new(ChipProfile::test_small(), 31));
        hot.set_temperature(85.0);
        let vh = classify_rows(&mut hot, 0, &[3], wait()).unwrap();
        assert!(vh[0].fails_from_ones > vc[0].fails_from_ones);
    }
}
