//! Internal row-remap reverse engineering (common pitfall 2,
//! paper §III-C).
//!
//! Single-sided RowHammer identifies the two physically adjacent rows of
//! any aggressor (they flip the most bits). Probing a row range and
//! chaining the adjacency graph recovers the pin-address order in which
//! rows are physically laid out — exposing vendor scrambles like
//! Mfr. A's 8-row block twist.

use crate::hammer::{adjacent_rows, AibConfig};
use dram_testbed::{Testbed, TestbedError};
use std::collections::BTreeMap;
use std::ops::Range;

/// Whether a chip's row decoder preserves pin order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemapVerdict {
    /// Every probed row's physical neighbours are its pin neighbours.
    Sequential,
    /// At least one probed row has a non-±1 physical neighbour.
    Scrambled,
}

/// Probes whether the chip remaps rows internally, by hammering each
/// sample row and checking that the damaged rows are the pin neighbours.
///
/// Sample rows should be interior rows (≥ 8 from subarray boundaries) so
/// missing neighbours don't masquerade as remapping.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn detect_remap(
    tb: &mut Testbed,
    cfg: AibConfig,
    sample: &[u32],
) -> Result<RemapVerdict, TestbedError> {
    tb.mark("span:remap_detect:enter");
    // Resolve the verdict with `break` (not an early return) so the exit
    // marker closes the span on every success path.
    let mut verdict = RemapVerdict::Sequential;
    for &row in sample {
        let adj = adjacent_rows(tb, cfg, row, 8)?;
        if adj.iter().any(|&a| a.abs_diff(row) != 1) {
            verdict = RemapVerdict::Scrambled;
            break;
        }
    }
    tb.mark("span:remap_detect:exit");
    Ok(verdict)
}

/// The adjacency graph of a probed pin-row range.
pub type AdjacencyMap = BTreeMap<u32, Vec<u32>>;

/// Hammers every row in `range` and records which rows flip — the raw
/// adjacency evidence.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn adjacency_map(
    tb: &mut Testbed,
    cfg: AibConfig,
    range: Range<u32>,
) -> Result<AdjacencyMap, TestbedError> {
    let mut out = AdjacencyMap::new();
    for row in range {
        out.insert(row, adjacent_rows(tb, cfg, row, 8)?);
    }
    Ok(out)
}

/// Reconstructs the physical ordering of the probed rows by chaining the
/// adjacency graph: each returned chain lists pin rows in consecutive
/// physical order (subarray boundaries split chains).
///
/// Rows whose probed neighbours fall outside `map` are treated as chain
/// ends. Chains are canonicalized to start with their smaller endpoint.
pub fn physical_chains(map: &AdjacencyMap) -> Vec<Vec<u32>> {
    // Symmetrize edges restricted to probed rows.
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&r, ns) in map {
        for &n in ns {
            if map.contains_key(&n) {
                adj.entry(r).or_default().push(n);
                adj.entry(n).or_default().push(r);
            }
        }
    }
    for ns in adj.values_mut() {
        ns.sort_unstable();
        ns.dedup();
    }

    let mut visited: BTreeMap<u32, bool> = adj.keys().map(|&k| (k, false)).collect();
    let mut chains = Vec::new();
    // Start from endpoints (degree 1), then mop up anything left.
    let starts: Vec<u32> = adj
        .iter()
        .filter(|(_, ns)| ns.len() <= 1)
        .map(|(&k, _)| k)
        .collect();
    for start in starts.into_iter().chain(adj.keys().copied()) {
        if visited.get(&start).copied().unwrap_or(true) {
            continue;
        }
        let mut chain = vec![start];
        visited.insert(start, true);
        let mut cur = start;
        loop {
            let next = adj[&cur]
                .iter()
                .find(|n| !visited.get(n).copied().unwrap_or(true))
                .copied();
            match next {
                Some(n) => {
                    visited.insert(n, true);
                    chain.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        if chain.len() > 1 && chain.first() > chain.last() {
            chain.reverse();
        }
        chains.push(chain);
    }
    chains.sort_by_key(|c| c[0]);
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hammer::Attack;
    use dram_sim::{ChipProfile, DramChip};

    fn cfg() -> AibConfig {
        AibConfig {
            bank: 0,
            attack: Attack::Hammer { count: 1_500_000 },
        }
    }

    #[test]
    fn identity_chip_is_sequential() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 40));
        let verdict = detect_remap(&mut tb, cfg(), &[12, 13, 21]).unwrap();
        assert_eq!(verdict, RemapVerdict::Sequential);
    }

    #[test]
    fn mfr_a_chip_is_scrambled() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 40));
        let verdict = detect_remap(&mut tb, cfg(), &[12]).unwrap();
        assert_eq!(verdict, RemapVerdict::Scrambled);
    }

    #[test]
    fn chains_recover_mfr_a_block_order() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 40));
        let map = adjacency_map(&mut tb, cfg(), 8..24).unwrap();
        let chains = physical_chains(&map);
        assert_eq!(chains.len(), 1, "interior range must form one chain");
        // Mfr. A twist: within each 8-block, pins run 0,1,2,3,7,6,5,4.
        let expected: Vec<u32> = vec![8, 9, 10, 11, 15, 14, 13, 12, 16, 17, 18, 19, 23, 22, 21, 20];
        let fwd = chains[0].clone();
        let mut rev = fwd.clone();
        rev.reverse();
        assert!(
            fwd == expected || rev == expected,
            "got {fwd:?}, want {expected:?} (either direction)"
        );
    }

    #[test]
    fn chains_split_at_subarray_boundaries() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 40));
        // Range straddles the subarray boundary at wordline 40.
        let map = adjacency_map(&mut tb, cfg(), 36..44).unwrap();
        let chains = physical_chains(&map);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0], vec![36, 37, 38, 39]);
        assert_eq!(chains[1], vec![40, 41, 42, 43]);
    }
}
