//! On-die ECC detection (the BEER/HARP question the paper cites: what
//! error correction hides between the cells and the pins?).
//!
//! A SEC on-die ECC changes the *shape* of visible errors without any
//! interface hint:
//!
//! * single-cell errors are invisible, so the first *visible* corruption
//!   of a victim row appears only once a codeword holds two errors —
//!   and then it surfaces as **two or three** flipped bits at once
//!   (raw double error, or a miscorrection adding a third);
//! * on an unprotected chip the first visible corruption is a single
//!   bit.
//!
//! [`detect_on_die_ecc`] turns that signature into a black-box verdict.

use dram_testbed::{results, Testbed, TestbedError};

/// The verdict of an ECC-presence probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccVerdict {
    /// First visible corruption was a single bit: no on-die correction.
    Absent,
    /// First visible corruption arrived as a multi-bit event.
    Present,
    /// Nothing flipped within the dose ceiling.
    Inconclusive,
}

/// Measures the victim flips visible at `dose` activations.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn visible_flips(
    tb: &mut Testbed,
    bank: u32,
    aggressor: u32,
    victim: u32,
    dose: u64,
) -> Result<u32, TestbedError> {
    tb.write_row_pattern(bank, victim, u64::MAX)?;
    tb.write_row_pattern(bank, aggressor, 0)?;
    tb.hammer(bank, aggressor, dose)?;
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let data = tb.read_row(bank, victim)?;
    Ok(results::diff_row(victim, rd_bits, |_| u64::MAX, &data).len() as u32)
}

/// Detects on-die ECC from the first-visible-corruption signature.
///
/// `fresh` must produce identical chips (same profile and seed).
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn detect_on_die_ecc(
    fresh: &mut dyn FnMut() -> Testbed,
    bank: u32,
    aggressor: u32,
    victim: u32,
    ceiling: u64,
) -> Result<EccVerdict, TestbedError> {
    let mut flips_at = |n: u64| -> Result<u32, TestbedError> {
        let mut tb = fresh();
        visible_flips(&mut tb, bank, aggressor, victim, n)
    };
    if flips_at(ceiling)? == 0 {
        return Ok(EccVerdict::Inconclusive);
    }
    // Bisect the minimal dose with visible corruption.
    let (mut lo, mut hi) = (0u64, ceiling);
    while hi - lo > ceiling / 256 {
        let mid = lo + (hi - lo) / 2;
        if flips_at(mid)? > 0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let first_visible = flips_at(hi)?;
    Ok(if first_visible >= 2 {
        EccVerdict::Present
    } else {
        EccVerdict::Absent
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    #[test]
    fn detects_absence_on_a_plain_chip() {
        let mut mk = || Testbed::new(DramChip::new(ChipProfile::test_small(), 61));
        let v = detect_on_die_ecc(&mut mk, 0, 20, 19, 8_000_000).unwrap();
        assert_eq!(v, EccVerdict::Absent);
    }

    #[test]
    fn detects_presence_on_an_ecc_chip() {
        let mut mk = || {
            Testbed::new(DramChip::new(
                ChipProfile::test_small().with_on_die_ecc(),
                61,
            ))
        };
        let v = detect_on_die_ecc(&mut mk, 0, 20, 19, 8_000_000).unwrap();
        assert_eq!(v, EccVerdict::Present);
    }

    #[test]
    fn underdosed_probe_is_inconclusive() {
        let mut mk = || Testbed::new(DramChip::new(ChipProfile::test_small(), 61));
        let v = detect_on_die_ecc(&mut mk, 0, 20, 19, 1_000).unwrap();
        assert_eq!(v, EccVerdict::Inconclusive);
    }

    #[test]
    fn ecc_raises_the_visible_flip_threshold() {
        // The dose needed for *any* visible corruption must be higher
        // with on-die ECC (its first event needs a double error).
        let first_visible = |ecc: bool| -> u64 {
            let mk = move || {
                let p = if ecc {
                    ChipProfile::test_small().with_on_die_ecc()
                } else {
                    ChipProfile::test_small()
                };
                Testbed::new(DramChip::new(p, 61))
            };
            let (mut lo, mut hi) = (0u64, 8_000_000u64);
            while hi - lo > 31_250 {
                let mid = lo + (hi - lo) / 2;
                let mut tb = mk();
                if visible_flips(&mut tb, 0, 20, 19, mid).unwrap() > 0 {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        };
        let plain = first_visible(false);
        let protected = first_visible(true);
        assert!(
            protected > plain,
            "ECC first-visible dose {protected} must exceed raw {plain}"
        );
    }
}
