//! Data-swizzling reverse engineering (paper §IV-A, Fig. 6/7, O1/O2).
//!
//! The pipeline mirrors the paper's three steps:
//!
//! 1. **Influence brute force** — for every candidate RD bit, flip its
//!    value in the aggressor rows (in columns ≡ 0 mod 3) and observe
//!    which victim bits' flip counts drop. A drop means the candidate is
//!    within two physical cells of the victim bit; the column-class trick
//!    separates same-column from adjacent-column relations in one run.
//!    (The paper perturbs victim-side neighbours; aggressor-side
//!    perturbation measures the same physical adjacency with a far
//!    stronger signal — Fig. 14(b) vs 14(a) — and we cross-validate the
//!    victim side in the observation suite.)
//! 2. **Even/odd bitline classification** — RowCopy toward the adjacent
//!    subarray transfers only odd bitlines
//!    ([`crate::rowcopy_probe::classify_bit_parity`]); distance-1
//!    neighbours have opposite parity, distance-2 the same, which is
//!    exactly the disambiguation the influence data lacks.
//! 3. **Chain assembly** — distance-1 relations form per-MAT chains whose
//!    length is the per-column chunk size; chunk orientation follows from
//!    the cross-column relations; chains × columns give the MAT width
//!    (O2), and the number of chains is the MAT count feeding one RD_data
//!    (O1).

use crate::error::CoreError;
use crate::hammer::Attack;
use crate::patterns::CellLayout;
use crate::rowcopy_probe::{classify_bit_parity, BlParity};
use dram_testbed::{results, Testbed, TestbedError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The probing configuration for the influence step.
#[derive(Debug, Clone)]
pub struct ProbeSetup {
    /// Bank under test.
    pub bank: u32,
    /// `(victim, upper aggressor, lower aggressor)` triples. Use interior
    /// rows of non-edge subarrays, physically adjacent (run
    /// [`crate::remap_re`] first on remapping chips).
    pub triples: Vec<(u32, u32, u32)>,
    /// The attack per aggressor (needs a high count so baseline flip
    /// counts are well above zero).
    pub attack: Attack,
    /// Count-drop ratio below which a relation counts as influence.
    pub drop_threshold: f64,
}

impl ProbeSetup {
    /// A setup over victims `start, start+3, …` (stride 3 keeps the
    /// aggressor rows of different triples disjoint).
    pub fn strided(bank: u32, start: u32, triples: usize, attack: Attack) -> Self {
        let triples = (0..triples as u32)
            .map(|i| {
                let v = start + 3 * i;
                (v, v + 1, v - 1)
            })
            .collect();
        ProbeSetup {
            bank,
            triples,
            attack,
            // The baseline and perturbed runs flip the *same deterministic
            // cells*, so an unaffected relation has ratio exactly 1.0 and
            // any strict drop is signal; 0.98 only guards quantization.
            drop_threshold: 0.98,
        }
    }

    /// A setup drawing victims from several `(start, end)` wordline
    /// ranges (each range must lie inside one non-edge subarray, with one
    /// row of margin at both ends).
    pub fn from_ranges(bank: u32, ranges: &[(u32, u32)], attack: Attack) -> Self {
        let mut triples = Vec::new();
        for &(start, end) in ranges {
            let mut v = start + 1;
            while v + 1 < end {
                triples.push((v, v + 1, v - 1));
                v += 3;
            }
        }
        ProbeSetup {
            bank,
            triples,
            attack,
            drop_threshold: 0.98,
        }
    }
}

/// One influence relation: perturbing `candidate` in the aggressor rows
/// reduced the flips of `target`, for targets `dcol` columns after the
/// perturbed column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InfluenceEdge {
    /// The perturbed aggressor RD bit.
    pub candidate: u32,
    /// The affected victim RD bit.
    pub target: u32,
    /// `target_col - candidate_col` ∈ {-1, 0, +1}.
    pub dcol: i32,
}

/// Errors from the reconstruction step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwizzleReError {
    /// A bit had more than two distance-1 relations: measurement noise or
    /// a wrong drop threshold.
    DegreeTooHigh {
        /// The offending bit.
        bit: u32,
    },
    /// The distance-1 graph contained a cycle instead of chains.
    Cyclic,
    /// A chain's orientation could not be determined from cross-column
    /// relations.
    Unoriented {
        /// A bit of the affected chain.
        bit: u32,
    },
    /// The chains do not cover every RD bit.
    Incomplete,
}

impl fmt::Display for SwizzleReError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwizzleReError::DegreeTooHigh { bit } => {
                write!(f, "bit {bit} has more than two distance-1 relations")
            }
            SwizzleReError::Cyclic => write!(f, "distance-1 relations form a cycle"),
            SwizzleReError::Unoriented { bit } => {
                write!(f, "chain containing bit {bit} has no orientation evidence")
            }
            SwizzleReError::Incomplete => write!(f, "chains do not cover all RD bits"),
        }
    }
}

impl Error for SwizzleReError {}

/// Picks a probe attack whose baseline flip fraction sits inside the
/// sensitive band: a saturated probe (flip probability pinned at 1, as
/// happens on anti-cell subarrays where an all-zeros victim is fully
/// charged) cannot see the candidate-induced drops.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn calibrate_probe_attack(
    tb: &mut Testbed,
    bank: u32,
    triple: (u32, u32, u32),
) -> Result<Attack, TestbedError> {
    let (vic, up, down) = triple;
    let row_bits = tb.chip().profile().row_bits as f64;
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    for count in [
        2_600_000u64,
        2_000_000,
        1_500_000,
        1_100_000,
        800_000,
        550_000,
        400_000,
    ] {
        tb.write_row_pattern(bank, vic, 0)?;
        tb.write_row_pattern(bank, up, u64::MAX)?;
        tb.write_row_pattern(bank, down, u64::MAX)?;
        tb.hammer(bank, up, count)?;
        tb.hammer(bank, down, count)?;
        let data = tb.read_row(bank, vic)?;
        let flips = results::diff_row(vic, rd_bits, |_| 0, &data).len() as f64;
        let frac = flips / row_bits;
        if frac < 0.92 && frac > 0.25 {
            return Ok(Attack::Hammer { count });
        }
    }
    Ok(Attack::Hammer { count: 400_000 })
}

/// Debug access to the raw per-`(bit, col)` counts (used by the test
/// suite to diagnose probe statistics).
#[doc(hidden)]
pub fn measure_counts_debug(
    tb: &mut Testbed,
    setup: &ProbeSetup,
    candidate: Option<u32>,
) -> Result<Vec<Vec<u32>>, TestbedError> {
    measure_counts(tb, setup, candidate)
}

/// Flip counts per `(bit, col)` aggregated over all probe triples.
fn measure_counts(
    tb: &mut Testbed,
    setup: &ProbeSetup,
    candidate: Option<u32>,
) -> Result<Vec<Vec<u32>>, TestbedError> {
    let rd_bits = tb.chip().profile().io_width.rd_bits() as usize;
    let cols = tb.cols() as usize;
    let mut counts = vec![vec![0u32; cols]; rd_bits];
    let aggr_pattern = |col: u32| -> u64 {
        let mask = if rd_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << rd_bits) - 1
        };
        match candidate {
            Some(bit) if col.is_multiple_of(3) => mask & !(1 << bit),
            _ => mask,
        }
    };
    for &(vic, up, down) in &setup.triples {
        tb.write_row_pattern(setup.bank, vic, 0)?;
        tb.write_row_with(setup.bank, up, aggr_pattern)?;
        tb.write_row_with(setup.bank, down, aggr_pattern)?;
        setup.attack.run(tb, setup.bank, up)?;
        setup.attack.run(tb, setup.bank, down)?;
        let data = tb.read_row(setup.bank, vic)?;
        for rec in results::diff_row(vic, rd_bits as u32, |_| 0, &data) {
            counts[rec.bit as usize][rec.col as usize] += 1;
        }
    }
    Ok(counts)
}

/// Sums counts over the columns relevant to one `dcol` relation.
fn class_sum(counts: &[Vec<u32>], bit: u32, dcol: i32, cols: usize) -> u32 {
    (0..cols)
        .filter(|&c| {
            let cand_col = c as i64 - dcol as i64;
            cand_col >= 0 && (cand_col as usize) < cols && cand_col % 3 == 0
        })
        .map(|c| counts[bit as usize][c])
        .sum()
}

/// Runs the influence brute force and returns all detected relations.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn influence_edges(
    tb: &mut Testbed,
    setup: &ProbeSetup,
) -> Result<Vec<InfluenceEdge>, TestbedError> {
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let cols = tb.cols() as usize;
    let baseline = measure_counts(tb, setup, None)?;
    let mut edges = Vec::new();
    for n in 0..rd_bits {
        let probed = measure_counts(tb, setup, Some(n))?;
        for t in 0..rd_bits {
            for dcol in [-1i32, 0, 1] {
                if t == n && dcol == 0 {
                    continue; // self (distance 0)
                }
                let base = class_sum(&baseline, t, dcol, cols);
                let got = class_sum(&probed, t, dcol, cols);
                if base >= 8 && (got as f64) < setup.drop_threshold * base as f64 {
                    edges.push(InfluenceEdge {
                        candidate: n,
                        target: t,
                        dcol,
                    });
                }
            }
        }
    }
    Ok(edges)
}

/// Assembles per-MAT chunk chains from influence relations and bitline
/// parities.
///
/// Distance-1 relations (opposite parity) within a column give the chunk
/// adjacency; the `dcol = +1` relation from a chunk's last cell to the
/// next chunk's first cell orients each chain.
///
/// # Errors
///
/// Returns a [`SwizzleReError`] when the relations are inconsistent with
/// a chain structure.
pub fn recover_chains(
    edges: &[InfluenceEdge],
    parity: &[BlParity],
    rd_bits: u32,
) -> Result<Vec<Vec<u32>>, SwizzleReError> {
    let is_d1 = |a: u32, b: u32| parity[a as usize] != parity[b as usize];

    // Undirected intra-column distance-1 adjacency.
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for e in edges {
        if e.dcol == 0 && is_d1(e.candidate, e.target) {
            adj.entry(e.candidate).or_default().push(e.target);
            adj.entry(e.target).or_default().push(e.candidate);
        }
    }
    for (bit, ns) in adj.iter_mut() {
        ns.sort_unstable();
        ns.dedup();
        if ns.len() > 2 {
            return Err(SwizzleReError::DegreeTooHigh { bit: *bit });
        }
    }

    // Cross-column distance-1 relations: chunk-last → next chunk-first.
    // Every physical pair is measured from both sides (aggressor bit in
    // the earlier or the later column), so fold `dcol = -1` evidence into
    // the same orientation fact — doubling the detection redundancy.
    let mut cross: Vec<(u32, u32)> = edges
        .iter()
        .filter(|e| is_d1(e.candidate, e.target))
        .filter_map(|e| match e.dcol {
            1 => Some((e.candidate, e.target)),
            -1 => Some((e.target, e.candidate)),
            _ => None,
        })
        .collect();
    cross.sort_unstable();
    cross.dedup();

    let mut visited: BTreeMap<u32, bool> = (0..rd_bits).map(|b| (b, false)).collect();
    let mut chains = Vec::new();
    for start in 0..rd_bits {
        if visited[&start] || adj.get(&start).map_or(0, |n| n.len()) > 1 {
            continue;
        }
        // `start` is a chain endpoint (degree ≤ 1).
        let mut chain = vec![start];
        visited.insert(start, true);
        let mut cur = start;
        while let Some(&next) = adj.get(&cur).and_then(|ns| ns.iter().find(|n| !visited[n])) {
            visited.insert(next, true);
            chain.push(next);
            cur = next;
        }
        // Orient: the chunk-last cell influences the chunk-first cell of
        // the next column (dcol = +1).
        let first = *chain.first().expect("chain is non-empty");
        let last = *chain.last().expect("chain is non-empty");
        if chain.len() > 1 {
            if cross.iter().any(|&(c, t)| c == last && t == first) {
                // Correct orientation.
            } else if cross.iter().any(|&(c, t)| c == first && t == last) {
                chain.reverse();
            } else {
                return Err(SwizzleReError::Unoriented { bit: first });
            }
        }
        chains.push(chain);
    }
    if visited.values().any(|v| !v) {
        return Err(SwizzleReError::Cyclic);
    }
    if chains.iter().map(|c| c.len() as u32).sum::<u32>() != rd_bits {
        return Err(SwizzleReError::Incomplete);
    }
    chains.sort_by_key(|c| c[0]);
    Ok(chains)
}

/// The full recovered picture of one chip's data organization.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSwizzle {
    /// Per-MAT chunk orders (RD bits in physical order within a column).
    pub chains: Vec<Vec<u32>>,
    /// Bitline parity per RD bit.
    pub parity: Vec<BlParity>,
    /// The equivalent cell layout (canonical MAT order/direction).
    pub layout: CellLayout,
}

impl RecoveredSwizzle {
    /// The measured MAT width in cells (paper O2).
    pub fn mat_width(&self) -> u32 {
        self.layout.mat_width()
    }

    /// How many MATs one RD_data is collected from (paper O1).
    pub fn mats_per_rd(&self) -> u32 {
        self.chains.len() as u32
    }
}

/// Runs the full swizzle-recovery pipeline.
///
/// `parity_rows` is a `(src, dst)` pair with `dst` in the subarray
/// directly above `src`'s (find one with
/// [`crate::rowcopy_probe::find_boundaries`]).
///
/// # Errors
///
/// Returns chip protocol errors or a [`SwizzleReError`] when the
/// influence data cannot be assembled.
pub fn recover_swizzle(
    tb: &mut Testbed,
    setup: &ProbeSetup,
    parity_rows: (u32, u32),
) -> Result<RecoveredSwizzle, CoreError> {
    tb.mark("span:swizzle_recover:enter");
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let row_bits = tb.chip().profile().row_bits;
    let edges = influence_edges(tb, setup)?;
    let parity = classify_bit_parity(tb, setup.bank, parity_rows.0, parity_rows.1, 0)?;
    let chains = recover_chains(&edges, &parity, rd_bits)?;
    let layout = CellLayout::from_chains(&chains, rd_bits, row_bits);
    tb.mark("span:swizzle_recover:exit");
    Ok(RecoveredSwizzle {
        chains,
        parity,
        layout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip, SwizzleMap};

    fn setup() -> ProbeSetup {
        // Interior subarrays of the test profile: [40,64), [64,104),
        // [128,168) — 33 triples in total for solid per-edge statistics.
        ProbeSetup::from_ranges(
            0,
            &[(41, 63), (65, 103), (129, 167)],
            Attack::Hammer { count: 2_600_000 },
        )
    }

    /// Ground-truth chains for the test_small profile's vendor-A swizzle.
    fn expected_chains() -> Vec<Vec<u32>> {
        let s = SwizzleMap::vendor_a(32, 256, 64);
        let layout = CellLayout::from_swizzle(&s, 256, 64);
        let mats = 4;
        let k = 8;
        (0..mats)
            .map(|m| (0..k).map(|i| layout.cell_at(m * 64 + i).1).collect())
            .collect()
    }

    #[test]
    fn influence_edges_find_physical_neighbors() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 55));
        let edges = influence_edges(&mut tb, &setup()).unwrap();
        assert!(!edges.is_empty());
        // Validate against ground truth: every detected same-column edge
        // must be a true distance ≤ 2 physical neighbour pair.
        let s = SwizzleMap::vendor_a(32, 256, 64);
        let layout = CellLayout::from_swizzle(&s, 256, 64);
        for e in edges.iter().filter(|e| e.dcol == 0) {
            let pc = layout.position(0, e.candidate) as i64;
            let pt = layout.position(0, e.target) as i64;
            let d = (pc - pt).abs();
            assert!((1..=2).contains(&d), "edge {e:?} has physical distance {d}");
        }
    }

    #[test]
    fn full_pipeline_recovers_the_swizzle() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 55));
        // Rows 39 → 45 straddle the first subarray boundary (wordline 40).
        let rec = recover_swizzle(&mut tb, &setup(), (39, 45)).unwrap();
        assert_eq!(rec.mats_per_rd(), 4, "test profile has 4 MATs (O1)");
        assert_eq!(rec.mat_width(), 64, "MAT width must be measured (O2)");
        let expected = expected_chains();
        assert_eq!(rec.chains.len(), expected.len());
        for chain in &rec.chains {
            let mut rev = chain.clone();
            rev.reverse();
            assert!(
                expected.contains(chain) || expected.contains(&rev),
                "chain {chain:?} not in ground truth {expected:?}"
            );
        }
    }

    #[test]
    fn recovered_layout_preserves_neighbor_relations() {
        let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 55));
        let rec = recover_swizzle(&mut tb, &setup(), (39, 45)).unwrap();
        let truth = CellLayout::from_swizzle(&SwizzleMap::vendor_a(32, 256, 64), 256, 64);
        for col in 1..truth.cols() - 1 {
            for bit in 0..32 {
                let mut a = truth.neighbors(col, bit, 1);
                let mut b = rec.layout.neighbors(col, bit, 1);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "col {col} bit {bit}");
            }
        }
    }

    #[test]
    fn recover_chains_rejects_cycles() {
        // Synthetic cyclic relation set.
        let parity = vec![BlParity::Even, BlParity::Odd, BlParity::Even, BlParity::Odd];
        let edges = vec![
            InfluenceEdge {
                candidate: 0,
                target: 1,
                dcol: 0,
            },
            InfluenceEdge {
                candidate: 1,
                target: 2,
                dcol: 0,
            },
            InfluenceEdge {
                candidate: 2,
                target: 3,
                dcol: 0,
            },
            InfluenceEdge {
                candidate: 3,
                target: 0,
                dcol: 0,
            },
        ];
        assert_eq!(
            recover_chains(&edges, &parity, 4),
            Err(SwizzleReError::Cyclic)
        );
    }
}

#[cfg(test)]
mod vendor_style_tests {
    use super::*;
    use crate::patterns::CellLayout;
    use dram_sim::{ChipProfile, DramChip, SwizzleMap};

    fn recover(profile: ChipProfile, truth: SwizzleMap) {
        let mut tb = Testbed::new(DramChip::new(profile, 55));
        let setup = ProbeSetup::from_ranges(
            0,
            &[(41, 63), (65, 103), (129, 167)],
            Attack::Hammer { count: 2_600_000 },
        );
        let rec = recover_swizzle(&mut tb, &setup, (39, 45)).unwrap();
        let gt = CellLayout::from_swizzle(&truth, 256, 64);
        for col in 1..gt.cols() - 1 {
            for bit in 0..32 {
                let mut a = gt.neighbors(col, bit, 1);
                let mut b = rec.layout.neighbors(col, bit, 1);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "col {col} bit {bit}");
            }
        }
    }

    #[test]
    fn pipeline_recovers_vendor_b_style() {
        recover(
            ChipProfile::test_small_vendor_b(),
            SwizzleMap::vendor_b(32, 256, 64),
        );
    }

    #[test]
    fn pipeline_recovers_vendor_c_style() {
        recover(
            ChipProfile::test_small_vendor_c(),
            SwizzleMap::vendor_c(32, 256, 64),
        );
    }
}
