//! # dramscope-core
//!
//! The DRAMScope toolkit (the paper's primary contribution): black-box
//! reverse-engineering of DRAM microarchitecture and activate-induced
//! bitflip (AIB) characterization, built on three cross-validating
//! techniques driven purely through the DRAM command interface:
//!
//! 1. **AIB tests** ([`hammer`]) — RowHammer and RowPress reveal physical
//!    row adjacency, internal row remapping, horizontal cell coupling,
//!    and the 6F²-induced error patterns.
//! 2. **RowCopy** ([`rowcopy_probe`]) — timing-violating in-memory copies
//!    reveal subarray heights, the open-bitline structure, even/odd
//!    bitline parity, edge-subarray tandem pairs, and coupled rows.
//! 3. **Retention tests** ([`retention_probe`]) — true-/anti-cell
//!    classification.
//!
//! On top of the probes sit the full pipelines ([`swizzle_re`],
//! [`remap_re`]), the §III-C pitfall handling ([`mapping`]), the
//! data-pattern machinery including the adversarial patterns of §V-D
//! ([`patterns`]), executable validations of the paper's fourteen
//! observations ([`observations`]), and the attack/defense analyses of
//! §VI ([`protect`]).
//!
//! # Example: discover subarray heights of an unknown chip
//!
//! ```
//! use dram_sim::{ChipProfile, DramChip};
//! use dram_testbed::Testbed;
//! use dramscope_core::rowcopy_probe;
//!
//! # fn main() -> Result<(), dram_testbed::TestbedError> {
//! let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 7));
//! let heights = rowcopy_probe::subarray_heights(&mut tb, 0, 0..256)?;
//! assert_eq!(heights, vec![40, 24, 40, 24, 40, 24, 40]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod dossier;
pub mod ecc_probe;
pub mod error;
pub mod fleet;
pub mod hammer;
pub mod mapping;
pub mod observations;
pub mod patterns;
pub mod power_channel;
pub mod protect;
pub mod remap_re;
pub mod report;
pub mod retention_probe;
pub mod rowcopy_probe;
pub mod shard;
pub mod swizzle_re;
pub mod templating;
pub mod trace_run;
pub mod trr_re;

pub use dossier::{characterize, characterize_instrumented, ChipDossier};
pub use error::CoreError;
pub use fleet::{
    parallel_map, run_fleet, run_fleet_serial, run_fleet_sharded, run_fleet_sharded_with_events,
    run_fleet_with_events, FleetConfig, FleetPool, FleetReport, JobHandle, PoolStats,
    ProfileResult, ShardedFleetReport,
};
pub use hammer::{AibConfig, HcntResult};
pub use observations::{ObservationReport, ObservationSuite};
pub use patterns::DataPattern;
pub use report::Table;
pub use shard::{
    characterize_sharded, characterize_sharded_serial, BankResult, ShardConfig, ShardedDossier,
    ShardedReport,
};
pub use trace_run::{
    record_characterization, record_characterization_instrumented, record_characterization_sharded,
    replay_benchmark, replay_characterization, replay_characterization_instrumented,
    replay_characterization_sharded,
};

// The segment-boundary marker prefixes the characterization pipeline
// emits (`phase:`/`span:`/`shard:bank=`), canonically defined next to
// the trace-lake index that splits streams at them.
pub use dram_trace::{
    DEFAULT_SEGMENT_PREFIXES, PHASE_MARKER_PREFIX, SHARD_MARKER_PREFIX, SPAN_MARKER_PREFIX,
};
