//! AIB attacks and protections (paper §VI).
//!
//! The evaluation harness wires an attacker, a controller-side defense,
//! and a simulated chip together:
//!
//! * trackers ([`MisraGries`], [`Para`]) watch the activate stream and
//!   trigger victim-refresh mitigations;
//! * [`RowSwapDefense`] models MC-side row swapping (RRS-style), which
//!   coupled-row activation defeats (the alias is not swapped);
//! * [`drfm_refresh`] models the DDR5 DRFM command: the mitigation runs
//!   *inside* the DRAM, which knows its own remap/coupling, so it
//!   neutralizes the coupled-row bypass;
//! * [`Scrambler`] models MC-side data scrambling keyed by row or by
//!   row+column, the defense against adversarial data patterns (§VI-B).
//!
//! The coupled-row split attack (§VI-A) spreads activations across the
//! two addresses of a coupled pair: a coupling-oblivious counter sees two
//! half-rate rows and never triggers, while the physical wordline takes
//! the full dose.

use dram_sim::rng::mix64;
use dram_sim::row_neighbors;
use dram_testbed::{results, Testbed, TestbedError};
use std::collections::BTreeMap;

/// A mitigation decision from a tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// Refresh the two pin neighbours of this row.
    RefreshNeighbors(u32),
    /// Relocate this row (row-swap defenses).
    Swap(u32),
}

/// A controller-side activation tracker.
pub trait Tracker {
    /// Observes `count` activations of `row`; returns mitigations to run.
    fn observe(&mut self, row: u32, count: u64) -> Vec<Mitigation>;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Resets all counters (e.g. at a refresh window boundary).
    fn reset(&mut self);
}

/// A Graphene-style Misra–Gries frequent-row counter that refreshes
/// victims when a row's estimated count crosses the threshold.
#[derive(Debug, Clone)]
pub struct MisraGries {
    threshold: u64,
    table_size: usize,
    counters: BTreeMap<u32, u64>,
    /// When set, activations are folded onto the coupled pair's canonical
    /// address before counting — the paper's proposed fix (§VI-B).
    coupled_distance: Option<u32>,
}

impl MisraGries {
    /// Creates a tracker that mitigates at `threshold` activations.
    pub fn new(threshold: u64, table_size: usize) -> Self {
        MisraGries {
            threshold,
            table_size,
            counters: BTreeMap::new(),
            coupled_distance: None,
        }
    }

    /// Enables coupled-row awareness: addresses `r` and `r + d` count as
    /// one row (requires the reverse-engineered coupling distance).
    pub fn with_coupled_awareness(mut self, distance: u32) -> Self {
        self.coupled_distance = Some(distance);
        self
    }

    /// Configures coupled-row awareness from a module's SPD disclosure —
    /// the deployment path the paper proposes in §VI-B (vendor discloses,
    /// controller reads, tracking folds the pair). Without a disclosure
    /// the tracker stays oblivious, which is exactly "the price of
    /// secrecy".
    pub fn with_spd(self, spd: &dram_module::Spd) -> Self {
        match spd.disclosure.coupled_row_distance {
            Some(d) => self.with_coupled_awareness(d),
            None => self,
        }
    }

    fn canonical(&self, row: u32) -> u32 {
        match self.coupled_distance {
            Some(d) if row >= d => row - d,
            _ => row,
        }
    }
}

impl Tracker for MisraGries {
    fn observe(&mut self, row: u32, count: u64) -> Vec<Mitigation> {
        let key = self.canonical(row);
        if !self.counters.contains_key(&key) && self.counters.len() >= self.table_size {
            // Misra–Gries decrement step.
            let dec = count.min(self.counters.values().copied().min().unwrap_or(0));
            self.counters.retain(|_, v| {
                *v = v.saturating_sub(dec);
                *v > 0
            });
            if self.counters.len() >= self.table_size {
                return Vec::new();
            }
        }
        let c = self.counters.entry(key).or_insert(0);
        *c += count;
        if *c >= self.threshold {
            *c = 0;
            let mut out = vec![Mitigation::RefreshNeighbors(row)];
            if let Some(d) = self.coupled_distance {
                let alias = if row >= d { row - d } else { row + d };
                out.push(Mitigation::RefreshNeighbors(alias));
            }
            out
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "misra-gries"
    }

    fn reset(&mut self) {
        self.counters.clear();
    }
}

/// PARA: refresh neighbours with a fixed probability per activation.
#[derive(Debug, Clone)]
pub struct Para {
    probability: f64,
    state: u64,
}

impl Para {
    /// Creates a PARA tracker with per-activation refresh probability `p`.
    pub fn new(probability: f64, seed: u64) -> Self {
        Para {
            probability,
            state: seed,
        }
    }
}

impl Tracker for Para {
    fn observe(&mut self, row: u32, count: u64) -> Vec<Mitigation> {
        // Probability that at least one of `count` Bernoulli draws fires.
        self.state = mix64(self.state ^ row as u64);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        let p_any = 1.0 - (1.0 - self.probability).powf(count as f64);
        if u < p_any {
            vec![Mitigation::RefreshNeighbors(row)]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "para"
    }

    fn reset(&mut self) {}
}

/// An MC-side randomized row-swap defense (RRS-style): rows crossing the
/// threshold are remapped to spare rows, breaking the aggressor/victim
/// spatial correlation — unless an unswapped alias still reaches the
/// physical wordline (coupled-row bypass, §VI-A).
#[derive(Debug, Clone)]
pub struct RowSwapDefense {
    threshold: u64,
    counters: BTreeMap<u32, u64>,
    swap_map: BTreeMap<u32, u32>,
    next_spare: u32,
}

impl RowSwapDefense {
    /// Creates a defense with `threshold` and a spare region starting at
    /// `spare_base` (row addresses assumed unused by the workload).
    pub fn new(threshold: u64, spare_base: u32) -> Self {
        RowSwapDefense {
            threshold,
            counters: BTreeMap::new(),
            swap_map: BTreeMap::new(),
            next_spare: spare_base,
        }
    }

    /// The physical-facing address the controller uses for `row`.
    pub fn translate(&self, row: u32) -> u32 {
        self.swap_map.get(&row).copied().unwrap_or(row)
    }

    /// Observes activations; may install a swap.
    pub fn observe(&mut self, row: u32, count: u64) {
        let c = self.counters.entry(row).or_insert(0);
        *c += count;
        if *c >= self.threshold {
            *c = 0;
            self.swap_map.insert(row, self.next_spare);
            self.next_spare += 8;
        }
    }
}

/// The outcome of an attack-vs-defense run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Bitflips in the victim rows after the attack.
    pub victim_flips: u32,
    /// Mitigations the defense issued.
    pub mitigations: u64,
}

/// The attacker's addressing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStrategy {
    /// Hammer one address.
    SingleRow,
    /// Split activations across the coupled pair `row` / `row + d`
    /// (paper §VI-A).
    CoupledSplit {
        /// The coupled distance.
        distance: u32,
    },
}

/// Runs an attack of `total` activations on `aggressor` (in `chunk`-sized
/// bursts) against a tracker defense, then reports victim damage around
/// the aggressor and its alias.
///
/// Victim rows `aggressor ± 1` (and the alias side) are pre-filled with
/// all-ones; the defense's `RefreshNeighbors` rewrites nothing — it just
/// activates the pin neighbours, which restores their charge exactly as
/// a real victim refresh does.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn run_attack(
    tb: &mut Testbed,
    tracker: &mut dyn Tracker,
    aggressor: u32,
    strategy: AttackStrategy,
    total: u64,
    chunk: u64,
) -> Result<AttackOutcome, TestbedError> {
    let bank = 0;
    let rows = tb.rows();
    let alias = match strategy {
        AttackStrategy::SingleRow => None,
        AttackStrategy::CoupledSplit { distance } => Some(aggressor + distance),
    };
    let mut victims: Vec<u32> = row_neighbors(aggressor, rows).collect();
    if let Some(a) = alias {
        victims.extend(row_neighbors(a, rows));
    }
    victims.retain(|&v| v != aggressor && Some(v) != alias);
    for &v in &victims {
        tb.write_row_pattern(bank, v, u64::MAX)?;
    }
    tb.write_row_pattern(bank, aggressor, 0)?;
    if let Some(a) = alias {
        tb.write_row_pattern(bank, a, 0)?;
    }

    let mut issued = 0u64;
    let mut mitigations = 0u64;
    let mut flip = false;
    while issued < total {
        let n = chunk.min(total - issued);
        let target = match (alias, flip) {
            (Some(a), true) => a,
            _ => aggressor,
        };
        flip = !flip;
        tb.hammer(bank, target, n)?;
        issued += n;
        for m in tracker.observe(target, n) {
            mitigations += 1;
            match m {
                Mitigation::RefreshNeighbors(r) => {
                    for v in row_neighbors(r, rows) {
                        // A victim refresh is just an activation.
                        let _ = tb.read_col(bank, v, 0)?;
                    }
                }
                Mitigation::Swap(_) => {}
            }
        }
    }

    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let mut victim_flips = 0;
    for &v in &victims {
        let data = tb.read_row(bank, v)?;
        victim_flips += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len() as u32;
    }
    Ok(AttackOutcome {
        victim_flips,
        mitigations,
    })
}

/// Runs the attack against a row-swap defense: the attacker hammers by
/// *controller* address; the defense translates addresses; the coupled
/// alias reaches the original wordline untranslated.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn run_attack_rowswap(
    tb: &mut Testbed,
    defense: &mut RowSwapDefense,
    aggressor: u32,
    strategy: AttackStrategy,
    total: u64,
    chunk: u64,
) -> Result<AttackOutcome, TestbedError> {
    let bank = 0;
    let rows = tb.rows();
    let alias = match strategy {
        AttackStrategy::SingleRow => None,
        AttackStrategy::CoupledSplit { distance } => Some(aggressor + distance),
    };
    let mut victims: Vec<u32> = row_neighbors(aggressor, rows).collect();
    if let Some(a) = alias {
        // The coupled alias' neighbours sit on the same wordlines and
        // take the same dose; count their damage too.
        victims.extend(row_neighbors(a, rows));
    }
    for &v in &victims {
        tb.write_row_pattern(bank, v, u64::MAX)?;
    }
    tb.write_row_pattern(bank, aggressor, 0)?;

    let mut issued = 0u64;
    let mut swaps = 0u64;
    let mut flip = false;
    while issued < total {
        let n = chunk.min(total - issued);
        let addr = match (alias, flip) {
            (Some(a), true) => a,
            _ => aggressor,
        };
        flip = !flip;
        defense.observe(addr, n);
        let physical_facing = defense.translate(addr);
        tb.hammer(bank, physical_facing, n)?;
        issued += n;
    }
    swaps += defense.swap_map.len() as u64;

    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let mut victim_flips = 0;
    for &v in &victims {
        let data = tb.read_row(bank, v)?;
        victim_flips += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len() as u32;
    }
    Ok(AttackOutcome {
        victim_flips,
        mitigations: swaps,
    })
}

/// In-DRAM directed refresh (DDR5 DRFM): the device refreshes the
/// physical neighbours of a sampled row address. Because the mitigation
/// runs inside the DRAM — which knows its own remapping and coupling —
/// it restores the true wordline neighbours. We model that by asking the
/// chip's ground truth (vendor knowledge, not attacker knowledge) for
/// the physical neighbours.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn drfm_refresh(tb: &mut Testbed, bank: u32, sampled_row: u32) -> Result<(), TestbedError> {
    let gt = tb.chip().ground_truth();
    let rows = tb.rows();
    let phys = gt.remap.to_physical(dram_sim::LogicalRow(sampled_row)).0;
    for neighbor_phys in row_neighbors(phys, rows) {
        let pin = gt.remap.to_logical(dram_sim::LogicalRow(neighbor_phys)).0;
        let _ = tb.read_col(bank, pin, 0)?;
    }
    Ok(())
}

/// An MC-side RFM issuing policy (Mithril/DDR5-style): count activations
/// per bank and ask the DRAM to run its in-DRAM mitigation every
/// `raaimt` of them (the Rolling Accumulated ACT Initial Management
/// Threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfmPolicy {
    /// Activations between `RFM` commands.
    pub raaimt: u64,
}

/// Runs an attack against a chip whose in-DRAM mitigation is driven by an
/// MC-side [`RfmPolicy`]. Because the mitigation samples *wordlines*
/// inside the DRAM, the coupled-row aliases fold automatically — the
/// paper's argument for DRFM-class defenses (§VI-B).
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn run_attack_with_rfm(
    tb: &mut Testbed,
    policy: RfmPolicy,
    aggressor: u32,
    strategy: AttackStrategy,
    total: u64,
    chunk: u64,
) -> Result<AttackOutcome, TestbedError> {
    let bank = 0;
    let rows = tb.rows();
    let alias = match strategy {
        AttackStrategy::SingleRow => None,
        AttackStrategy::CoupledSplit { distance } => Some(aggressor + distance),
    };
    let mut victims: Vec<u32> = row_neighbors(aggressor, rows).collect();
    if let Some(a) = alias {
        victims.extend(row_neighbors(a, rows));
    }
    victims.retain(|&v| v != aggressor && Some(v) != alias);
    for &v in &victims {
        tb.write_row_pattern(bank, v, u64::MAX)?;
    }
    tb.write_row_pattern(bank, aggressor, 0)?;
    if let Some(a) = alias {
        tb.write_row_pattern(bank, a, 0)?;
    }

    let mut issued = 0u64;
    let mut since_rfm = 0u64;
    let mut rfms = 0u64;
    let mut flip = false;
    while issued < total {
        let n = chunk.min(total - issued);
        let target = match (alias, flip) {
            (Some(a), true) => a,
            _ => aggressor,
        };
        flip = !flip;
        tb.hammer(bank, target, n)?;
        issued += n;
        since_rfm += n;
        while since_rfm >= policy.raaimt {
            tb.rfm(bank)?;
            rfms += 1;
            since_rfm -= policy.raaimt;
        }
    }

    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let mut victim_flips = 0;
    for &v in &victims {
        let data = tb.read_row(bank, v)?;
        victim_flips += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len() as u32;
    }
    Ok(AttackOutcome {
        victim_flips,
        mitigations: rfms,
    })
}

/// Binary-searches the deterministic first-flip activation count of the
/// given victim set under single-sided hammering of `aggressor`
/// (victims all-ones, aggressor all-zeros). Returns `None` if nothing
/// flips at `ceiling`.
///
/// Defense evaluations use this to pick thresholds with a guaranteed
/// margin: the simulated silicon is deterministic, so `N*` is exact.
///
/// # Errors
///
/// Propagates chip protocol errors.
pub fn first_flip_count(
    tb: &mut Testbed,
    bank: u32,
    aggressor: u32,
    victims: &[u32],
    ceiling: u64,
) -> Result<Option<u64>, TestbedError> {
    let rd_bits = tb.chip().profile().io_width.rd_bits();
    let flips_at = |tb: &mut Testbed, n: u64| -> Result<bool, TestbedError> {
        for &v in victims {
            tb.write_row_pattern(bank, v, u64::MAX)?;
        }
        tb.write_row_pattern(bank, aggressor, 0)?;
        tb.hammer(bank, aggressor, n)?;
        for &v in victims {
            let data = tb.read_row(bank, v)?;
            if !results::diff_row(v, rd_bits, |_| u64::MAX, &data).is_empty() {
                return Ok(true);
            }
        }
        Ok(false)
    };
    if !flips_at(tb, ceiling)? {
        return Ok(None);
    }
    let (mut lo, mut hi) = (0u64, ceiling);
    while hi - lo > ceiling / 128 {
        let mid = lo + (hi - lo) / 2;
        if flips_at(tb, mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

/// An MC-side data scrambler (paper §VI-B): data is XORed with a
/// keystream derived from the address before it reaches the DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambler {
    key: u64,
    /// When set, the keystream depends on the column as well as the row —
    /// the paper's recommendation against column-structured adversarial
    /// patterns.
    column_keyed: bool,
}

impl Scrambler {
    /// Creates a row-keyed scrambler.
    pub fn row_keyed(key: u64) -> Self {
        Scrambler {
            key,
            column_keyed: false,
        }
    }

    /// Creates a row+column-keyed scrambler.
    pub fn row_col_keyed(key: u64) -> Self {
        Scrambler {
            key,
            column_keyed: true,
        }
    }

    /// The keystream for an address.
    pub fn mask(&self, row: u32, col: u32) -> u64 {
        let c = if self.column_keyed { col as u64 } else { 0 };
        mix64(self.key ^ ((row as u64) << 32) ^ c)
    }

    /// Scrambles (or descrambles — XOR is an involution) one RD_data.
    pub fn apply(&self, row: u32, col: u32, data: u64) -> u64 {
        data ^ self.mask(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{ChipProfile, DramChip};

    fn tb_coupled() -> Testbed {
        Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), 91))
    }

    /// An interior aggressor on the coupled test chip: pin 45 → wordline
    /// 46 in subarray 1 ([40, 64)), away from edges. Its wordline
    /// neighbours 45/47 map back to pins 46/44, so the pin neighbours
    /// happen to be the true victims on this profile.
    const AGGR: u32 = 45;
    const COUPLED_D: u32 = 1024;

    /// The deterministic first-flip count of AGGR's victims — including
    /// the coupled-alias halves, which live on the same wordlines but
    /// have independent weak cells.
    fn n_star() -> u64 {
        let mut tb = tb_coupled();
        first_flip_count(
            &mut tb,
            0,
            AGGR,
            &[44, 46, 44 + COUPLED_D, 46 + COUPLED_D],
            8_000_000,
        )
        .unwrap()
        .expect("victims must flip within the ceiling")
    }

    #[test]
    fn edge_row_attacks_run_at_row_zero_and_last_row() {
        // Row 0 and the last row of the bank: the old `aggressor - 1`
        // victim construction underflowed at row 0 (a debug-build panic,
        // a wrapped u32::MAX address in release), and the tracker's
        // `wrapping_sub` neighbour refresh manufactured the same wrapped
        // address. Both edges must run clean and still mitigate.
        let mut tb = tb_coupled();
        let rows = tb.rows();
        for aggressor in [0, rows - 1] {
            let mut mg = MisraGries::new(10_000, 4);
            let out = run_attack(
                &mut tb,
                &mut mg,
                aggressor,
                AttackStrategy::SingleRow,
                60_000,
                10_000,
            )
            .unwrap();
            assert!(out.mitigations > 0, "row {aggressor}: tracker never fired");
        }
    }

    #[test]
    fn edge_row_rowswap_and_rfm_attacks_run() {
        let mut tb = tb_coupled();
        let rows = tb.rows();
        for aggressor in [0, rows - 1] {
            let mut d = RowSwapDefense::new(u64::MAX, 1500);
            run_attack_rowswap(
                &mut tb,
                &mut d,
                aggressor,
                AttackStrategy::SingleRow,
                40_000,
                10_000,
            )
            .unwrap();
            run_attack_with_rfm(
                &mut tb,
                RfmPolicy { raaimt: 30_000 },
                aggressor,
                AttackStrategy::SingleRow,
                60_000,
                10_000,
            )
            .unwrap();
        }
    }

    #[test]
    fn drfm_refresh_handles_physical_edge_wordlines() {
        let mut tb = tb_coupled();
        let rows = tb.rows();
        let gt = tb.chip().ground_truth();
        // The pin addresses whose *physical* wordline sits at either edge
        // of the array — exactly where the old wrapping_sub neighbour
        // enumeration wrapped.
        let low_pin = gt.remap.to_logical(dram_sim::LogicalRow(0)).0;
        let high_pin = gt.remap.to_logical(dram_sim::LogicalRow(rows - 1)).0;
        drfm_refresh(&mut tb, 0, low_pin).unwrap();
        drfm_refresh(&mut tb, 0, high_pin).unwrap();
    }

    #[test]
    fn unprotected_chip_takes_flips() {
        let n = n_star();
        let mut tb = tb_coupled();
        let mut noop = MisraGries::new(u64::MAX, 16);
        let out = run_attack(
            &mut tb,
            &mut noop,
            AGGR,
            AttackStrategy::SingleRow,
            n + n / 4,
            50_000,
        )
        .unwrap();
        assert!(out.victim_flips > 0);
        assert_eq!(out.mitigations, 0);
    }

    #[test]
    fn tracker_stops_single_row_attack() {
        let n = n_star();
        let mut tb = tb_coupled();
        // Mitigate at half the first-flip count: victims can never
        // accumulate a flipping dose between refreshes.
        let mut mg = MisraGries::new(n / 2, 16);
        let out = run_attack(
            &mut tb,
            &mut mg,
            AGGR,
            AttackStrategy::SingleRow,
            3 * n,
            n / 8,
        )
        .unwrap();
        assert_eq!(out.victim_flips, 0, "victim refreshes must reset the dose");
        assert!(out.mitigations > 0);
    }

    #[test]
    fn coupled_split_keeps_refresh_based_defense_safe_but_doubles_work() {
        // Refresh-based mitigation survives the coupled split (the paper:
        // it "can still be secure by unintentionally refreshing victims
        // of row-B"), but the oblivious tracker pays with doubled table
        // pressure while the aware tracker folds the pair.
        let n = n_star();
        let mut tb = tb_coupled();
        let mut oblivious = MisraGries::new(n / 3, 16);
        let split = run_attack(
            &mut tb,
            &mut oblivious,
            AGGR,
            AttackStrategy::CoupledSplit {
                distance: COUPLED_D,
            },
            3 * n,
            n / 8,
        )
        .unwrap();

        let mut tb2 = tb_coupled();
        let mut aware = MisraGries::new(n / 3, 16).with_coupled_awareness(COUPLED_D);
        let aware_out = run_attack(
            &mut tb2,
            &mut aware,
            AGGR,
            AttackStrategy::CoupledSplit {
                distance: COUPLED_D,
            },
            3 * n,
            n / 8,
        )
        .unwrap();
        assert_eq!(split.victim_flips, 0);
        assert_eq!(aware_out.victim_flips, 0);
        assert!(
            aware_out.mitigations >= split.mitigations,
            "the aware tracker folds the pair and triggers at the true rate"
        );
    }

    #[test]
    fn rowswap_is_bypassed_by_coupled_alias() {
        let n = n_star();
        let threshold = 3 * n / 4;

        // Single-address attack: the swap relocates the aggressor before
        // the victims' first-flip dose accumulates.
        let mut tb = tb_coupled();
        let mut d = RowSwapDefense::new(threshold, 1500);
        let single = run_attack_rowswap(
            &mut tb,
            &mut d,
            AGGR,
            AttackStrategy::SingleRow,
            2 * n,
            threshold / 4,
        )
        .unwrap();
        assert_eq!(single.victim_flips, 0, "swap must break the attack");
        assert!(single.mitigations > 0);

        // Coupled split, staying *under* the swap threshold per address:
        // the wordline still takes 2 × (threshold − ε) ≥ N* activations
        // and flips, with the defense completely blind (zero swaps).
        // Aligned to 4 chunks so the alternation lands exactly.
        let per_address = (threshold - 1) / 4 * 4;
        let mut tb2 = tb_coupled();
        let mut d2 = RowSwapDefense::new(threshold, 1500);
        let split = run_attack_rowswap(
            &mut tb2,
            &mut d2,
            AGGR,
            AttackStrategy::CoupledSplit {
                distance: COUPLED_D,
            },
            2 * per_address,
            per_address / 4,
        )
        .unwrap();
        assert!(
            split.victim_flips > 0,
            "coupled alias must bypass MC-side row swapping"
        );
        assert_eq!(split.mitigations, 0, "the defense never even triggered");
    }

    #[test]
    fn drfm_refresh_restores_physical_neighbors() {
        let n = n_star();
        let burst = 3 * n / 4;
        let mut tb = tb_coupled();
        tb.write_row_pattern(0, AGGR - 1, u64::MAX).unwrap();
        tb.write_row_pattern(0, AGGR + 1, u64::MAX).unwrap();
        tb.write_row_pattern(0, AGGR, 0).unwrap();
        // Hammer below the flip threshold, DRFM, hammer again: the
        // refresh must have reset the accumulated dose.
        tb.hammer(0, AGGR, burst).unwrap();
        drfm_refresh(&mut tb, 0, AGGR).unwrap();
        tb.hammer(0, AGGR, burst).unwrap();
        let rd_bits = tb.chip().profile().io_width.rd_bits();
        let mut flips = 0;
        for v in [AGGR - 1, AGGR + 1] {
            let data = tb.read_row(0, v).unwrap();
            flips += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len();
        }
        assert_eq!(flips, 0, "DRFM between bursts must prevent flips");

        // Control: without DRFM the same total dose flips bits.
        let mut tb2 = tb_coupled();
        tb2.write_row_pattern(0, AGGR - 1, u64::MAX).unwrap();
        tb2.write_row_pattern(0, AGGR + 1, u64::MAX).unwrap();
        tb2.write_row_pattern(0, AGGR, 0).unwrap();
        tb2.hammer(0, AGGR, 2 * burst).unwrap();
        let mut flips2 = 0;
        for v in [AGGR - 1, AGGR + 1] {
            let data = tb2.read_row(0, v).unwrap();
            flips2 += results::diff_row(v, rd_bits, |_| u64::MAX, &data).len();
        }
        assert!(flips2 > 0);
    }

    #[test]
    fn spd_disclosure_configures_coupled_tracking() {
        use dram_module::Spd;
        let profile = ChipProfile::test_small_coupled();
        let chip = DramChip::new(profile.clone(), 91);
        let disclosed = Spd::with_disclosure(&profile, &chip);
        let secret = Spd::undisclosed(&profile);
        let aware = MisraGries::new(1000, 4).with_spd(&disclosed);
        let oblivious = MisraGries::new(1000, 4).with_spd(&secret);
        assert_eq!(aware.canonical(45 + COUPLED_D), 45);
        assert_eq!(oblivious.canonical(45 + COUPLED_D), 45 + COUPLED_D);
    }

    #[test]
    fn rfm_policy_neutralizes_the_coupled_split() {
        // The in-DRAM sampler works on wordlines, so the two aliases of a
        // coupled pair fold automatically — DRFM-class mitigation handles
        // the O3 threat that defeats MC-side tracking.
        let n = n_star();
        let mk_trr = || {
            Testbed::new(DramChip::new(
                ChipProfile::test_small_coupled().with_trr(2),
                91,
            ))
        };
        let mut tb = mk_trr();
        let policy = RfmPolicy { raaimt: n / 3 };
        let out = run_attack_with_rfm(
            &mut tb,
            policy,
            AGGR,
            AttackStrategy::CoupledSplit {
                distance: COUPLED_D,
            },
            3 * n,
            n / 8,
        )
        .unwrap();
        assert_eq!(out.victim_flips, 0, "RFM must fold the coupled aliases");
        assert!(out.mitigations > 0);

        // Control: same chip, no RFM issued — the engine never gets to
        // run and the split attack flips bits.
        let mut tb2 = mk_trr();
        let mut noop = MisraGries::new(u64::MAX, 4);
        let out2 = run_attack(
            &mut tb2,
            &mut noop,
            AGGR,
            AttackStrategy::CoupledSplit {
                distance: COUPLED_D,
            },
            3 * n,
            n / 8,
        )
        .unwrap();
        assert!(out2.victim_flips > 0);
    }

    #[test]
    fn scrambler_is_an_involution_and_varies() {
        let s = Scrambler::row_col_keyed(0xABCD);
        let data = 0x1234_5678_9ABC_DEF0;
        assert_eq!(s.apply(7, 3, s.apply(7, 3, data)), data);
        assert_ne!(s.mask(7, 3), s.mask(7, 4));
        assert_ne!(s.mask(7, 3), s.mask(8, 3));
        let r = Scrambler::row_keyed(0xABCD);
        assert_eq!(r.mask(7, 3), r.mask(7, 4), "row-keyed ignores columns");
    }
}
