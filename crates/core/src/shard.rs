//! Bank-sharded characterization: probe every bank of ONE device
//! concurrently, one shard per bank, and merge the results in
//! deterministic bank order.
//!
//! The paper's findings are per-bank facts — Table III subarray
//! compositions, the edge-subarray structure, coupled-row folds — and
//! SoftMC/DRAM Bender-class platforms get their throughput by running
//! independent command programs against independent banks at once. The
//! reproduction's equivalent: each bank shard gets a **fresh chip built
//! from the same `(profile, seed)`** (the same simulated silicon — the
//! "clone-per-shard" contract) and probes only its own bank, so shards
//! can never observe each other's bank state. Observations, telemetry
//! registries, and trace segments merge back in bank order, which makes
//! the sharded output **byte-identical** to the serial one no matter how
//! many workers ran or in what order shards finished:
//!
//! * [`ShardedDossier::digest`] — same for serial and any shard count;
//! * merged [`Registry`] snapshots — same
//!   bytes (counters/histograms commute, gauges merge in bank order);
//! * recorded traces (see [`crate::trace_run::record_characterization_sharded`])
//!   — same bytes (segments concatenate in bank order).
//!
//! # Example
//!
//! ```no_run
//! use dramscope_core::shard::{self, ShardConfig};
//! use dramscope_core::dossier::CharacterizeOptions;
//! use dram_sim::ChipProfile;
//!
//! let report = shard::characterize_sharded(
//!     &ChipProfile::hbm2_mfr_a(),
//!     0x5ca1e,
//!     CharacterizeOptions::default(),
//!     ShardConfig::default(),
//! );
//! println!("{}", report.table());
//! println!("{}", report.dossier().unwrap());
//! ```

use crate::dossier::{characterize_bank_instrumented, CharacterizeOptions, ChipDossier, RunStats};
use crate::error::CoreError;
use crate::fleet::parallel_map;
use dram_sim::ChipProfile;
use dram_telemetry::Registry;
use std::fmt;
use std::time::Instant;

/// Configuration for [`characterize_sharded`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardConfig {
    /// Concurrent shard workers. `0` (the default) uses the machine's
    /// available parallelism; always capped at the device's bank count.
    pub shards: usize,
}

/// The outcome of characterizing one bank shard.
#[derive(Debug, Clone)]
pub struct BankResult {
    /// The bank this shard probed.
    pub bank: u32,
    /// The bank's dossier, or the error/panic that stopped the shard.
    pub outcome: Result<ChipDossier, CoreError>,
    /// Per-phase run statistics (empty when the shard's worker panicked).
    pub stats: RunStats,
    /// Wall-clock time the shard spent on its worker, milliseconds
    /// (zero when the worker panicked — the unwind destroys the clock).
    pub bank_wall_ms: f64,
    /// Telemetry from the shard's bank-local testbed (empty on failure).
    pub metrics: Registry,
}

/// A whole device described bank by bank: the merged output of a
/// sharded characterization, in bank order.
#[derive(Debug, Clone)]
pub struct ShardedDossier {
    /// The device's public label.
    pub label: String,
    /// One dossier per bank, ascending bank order.
    pub banks: Vec<(u32, ChipDossier)>,
}

impl ShardedDossier {
    /// FNV-1a 64 digest of the rendered per-bank dossier, the identity
    /// the sharded-vs-serial determinism contract asserts on (the
    /// per-device analogue of [`ChipDossier::digest`]).
    pub fn digest(&self) -> u64 {
        dram_trace::fnv1a_64(self.to_string().as_bytes())
    }
}

impl fmt::Display for ShardedDossier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== sharded device dossier: {} ({} banks) ===",
            self.label,
            self.banks.len()
        )?;
        for (bank, dossier) in &self.banks {
            writeln!(f, "--- bank {bank} ---")?;
            write!(f, "{dossier}")?;
        }
        Ok(())
    }
}

/// Everything a sharded characterization produced, in bank order.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The device's public label.
    pub label: String,
    /// The seed every shard's chip clone was built from.
    pub seed: u64,
    /// Per-bank results, ascending bank order.
    pub results: Vec<BankResult>,
    /// End-to-end wall time of the run, milliseconds.
    pub wall_ms: f64,
    /// Shard workers actually used (1 for the serial reference path).
    pub shards: usize,
}

impl ShardedReport {
    /// `true` when every bank produced a dossier.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.outcome.is_ok())
    }

    /// Assembles the merged per-device dossier, in bank order.
    ///
    /// # Errors
    ///
    /// The first failed bank's error, if any shard failed.
    pub fn dossier(&self) -> Result<ShardedDossier, CoreError> {
        let mut banks = Vec::with_capacity(self.results.len());
        for r in &self.results {
            match &r.outcome {
                Ok(d) => banks.push((r.bank, d.clone())),
                Err(e) => {
                    return Err(format!("bank {} failed: {e}", r.bank).into());
                }
            }
        }
        Ok(ShardedDossier {
            label: self.label.clone(),
            banks,
        })
    }

    /// Folds every bank's telemetry into one device-wide registry, in
    /// bank order — deterministic regardless of shard completion order.
    pub fn merged_metrics(&self) -> Registry {
        Registry::merged(self.results.iter().map(|r| &r.metrics))
    }

    /// Total worker-side wall time across every bank, milliseconds —
    /// what the run would have cost serially on one core.
    pub fn banks_wall_ms(&self) -> f64 {
        self.results.iter().map(|r| r.bank_wall_ms).sum()
    }

    /// Observed parallel speedup: summed per-bank wall time over the
    /// run's end-to-end wall time. `None` when the run's wall time
    /// rounds to zero.
    pub fn speedup(&self) -> Option<f64> {
        (self.wall_ms > 0.0).then(|| self.banks_wall_ms() / self.wall_ms)
    }

    /// A human-readable per-bank summary table (CSV via
    /// [`crate::report::Table`]).
    pub fn table(&self) -> String {
        let mut t = crate::report::Table::new(vec![
            "bank",
            "status",
            "wall_ms",
            "bank_ms",
            "commands",
            "bitflips",
            "composition",
        ]);
        for r in &self.results {
            let (status, composition) = match &r.outcome {
                Ok(d) => ("ok".to_string(), d.composition.clone()),
                Err(e) => (format!("error: {e}"), String::new()),
            };
            t.row(vec![
                r.bank.to_string(),
                status,
                format!("{:.1}", r.stats.wall_ms()),
                format!("{:.1}", r.bank_wall_ms),
                r.stats.commands().to_string(),
                r.stats.bitflips().to_string(),
                composition,
            ]);
        }
        t.to_csv()
    }

    /// One JSON object summarizing the run: shard count, bank/ok
    /// counts, end-to-end and summed per-bank wall times, and the
    /// observed speedup (`null` when the run was too fast to time).
    pub fn summary_json(&self) -> String {
        let ok = self.results.iter().filter(|r| r.outcome.is_ok()).count();
        let speedup = self
            .speedup()
            .map_or("null".to_string(), |s| format!("{s:.2}"));
        format!(
            "{{\"shards\":{},\"banks\":{},\"ok\":{},\"wall_ms\":{:.3},\"banks_wall_ms\":{:.3},\"speedup\":{}}}",
            self.shards,
            self.results.len(),
            ok,
            self.wall_ms,
            self.banks_wall_ms(),
            speedup
        )
    }
}

/// The effective worker count for a device with `banks` banks.
fn effective_shards(requested: usize, banks: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let s = if requested == 0 { hw } else { requested };
    s.clamp(1, banks.max(1))
}

/// Characterizes every bank of the device concurrently, one shard per
/// bank on a worker pool of [`ShardConfig::shards`] threads.
///
/// Shards never share chip state — each runs the full probe plan
/// against its own clone of the device (same `(profile, seed)`) and
/// touches only its own bank — so the merged report is byte-identical
/// to [`characterize_sharded_serial`] for any shard count. A panic
/// inside one shard costs only that bank.
pub fn characterize_sharded(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
    config: ShardConfig,
) -> ShardedReport {
    let shards = effective_shards(config.shards, profile.banks as usize);
    run_sharded(profile, seed, opts, shards, |banks, f| {
        parallel_map(banks, shards, f)
    })
}

/// The strictly serial reference path: identical per-bank probe plans,
/// one bank at a time on the calling thread, in bank order. Exists so
/// the sharded path's determinism can be asserted byte-for-byte, and as
/// the baseline for the sharded speedup.
pub fn characterize_sharded_serial(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
) -> ShardedReport {
    run_sharded(profile, seed, opts, 1, |banks, f| {
        banks.iter().map(f).collect()
    })
}

/// One scheduler outcome for one bank: the worker-side wall time paired
/// with the bank's characterization result. The outer `Err` arm is
/// reserved for worker panics (mirroring the fleet engine).
type BankOutcome = Result<(f64, Result<(ChipDossier, RunStats, Registry), CoreError>), CoreError>;

/// The engine under both paths, generic over the scheduler so the
/// serial reference provably runs the identical per-bank closure.
fn run_sharded<S>(
    profile: &ChipProfile,
    seed: u64,
    opts: CharacterizeOptions,
    shards: usize,
    schedule: S,
) -> ShardedReport
where
    S: FnOnce(&[u32], &(dyn Fn(&u32) -> BankOutcome + Sync)) -> Vec<BankOutcome>,
{
    let started = Instant::now();
    let banks: Vec<u32> = (0..profile.banks).collect();
    // Timing wraps the per-bank run so errored shards keep their cost;
    // the inner Result is re-wrapped in Ok so the scheduler's error arm
    // stays reserved for panics (mirroring the fleet engine).
    let outcomes = schedule(&banks, &|&bank| {
        let bank_started = Instant::now();
        let outcome = characterize_bank_instrumented(profile, seed, bank, opts, None);
        Ok((bank_started.elapsed().as_secs_f64() * 1e3, outcome))
    });
    let results = banks
        .iter()
        .zip(outcomes)
        .map(|(&bank, outcome)| bank_result(bank, outcome))
        .collect();
    ShardedReport {
        label: profile.label(),
        seed,
        results,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        shards,
    }
}

/// The fault-injectable twin of [`run_sharded`]'s closure, used by tests
/// to prove per-bank panic isolation without manufacturing a broken
/// chip: runs the normal sharded engine but lets the caller wrap the
/// per-bank body.
#[cfg(test)]
fn run_sharded_with<F>(profile: &ChipProfile, seed: u64, f: F) -> ShardedReport
where
    F: Fn(u32) -> Result<(ChipDossier, RunStats, Registry), CoreError> + Sync,
{
    let started = Instant::now();
    let banks: Vec<u32> = (0..profile.banks).collect();
    let outcomes = parallel_map(&banks, banks.len(), |&bank| {
        let bank_started = Instant::now();
        let outcome = f(bank);
        Ok((bank_started.elapsed().as_secs_f64() * 1e3, outcome))
    });
    let results = banks
        .iter()
        .zip(outcomes)
        .map(|(&bank, outcome)| bank_result(bank, outcome))
        .collect();
    ShardedReport {
        label: profile.label(),
        seed,
        results,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        shards: banks.len(),
    }
}

/// Unpacks one scheduler outcome into a [`BankResult`] (shared with the
/// fleet's two-level scheduler).
pub(crate) fn bank_result(bank: u32, outcome: BankOutcome) -> BankResult {
    match outcome {
        Ok((bank_wall_ms, Ok((dossier, stats, metrics)))) => BankResult {
            bank,
            outcome: Ok(dossier),
            stats,
            bank_wall_ms,
            metrics,
        },
        Ok((bank_wall_ms, Err(e))) => BankResult {
            bank,
            outcome: Err(e),
            stats: RunStats::default(),
            bank_wall_ms,
            metrics: Registry::new(),
        },
        Err(e) => BankResult {
            bank,
            outcome: Err(e),
            stats: RunStats::default(),
            bank_wall_ms: 0.0,
            metrics: Registry::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::Time;

    fn small_opts() -> CharacterizeOptions {
        CharacterizeOptions {
            scan_rows: 129,
            with_swizzle: false,
            probe_range: (44, 60),
            retention_wait: Time::from_ms(120_000),
        }
    }

    /// The tentpole contract: a sharded run is byte-identical to the
    /// serial reference for any shard count — dossier digest, rendered
    /// dossier text, and the merged telemetry snapshot.
    #[test]
    fn sharded_matches_serial_byte_for_byte() {
        for profile in [
            dram_sim::ChipProfile::test_small(),
            dram_sim::ChipProfile::test_small_hbm2(),
        ] {
            let serial = characterize_sharded_serial(&profile, 77, small_opts());
            assert!(serial.all_ok(), "{}", serial.table());
            let serial_dossier = serial.dossier().unwrap();
            let serial_metrics = serial.merged_metrics().to_json_lines();
            for shards in [1, profile.banks as usize] {
                let par = characterize_sharded(&profile, 77, small_opts(), ShardConfig { shards });
                assert!(par.all_ok(), "{}", par.table());
                let dossier = par.dossier().unwrap();
                assert_eq!(dossier.to_string(), serial_dossier.to_string());
                assert_eq!(dossier.digest(), serial_dossier.digest());
                assert_eq!(par.merged_metrics().to_json_lines(), serial_metrics);
            }
        }
    }

    #[test]
    fn report_covers_every_bank_in_order_with_real_work() {
        let profile = dram_sim::ChipProfile::test_small_hbm2();
        let report = characterize_sharded(&profile, 3, small_opts(), ShardConfig::default());
        assert!(report.all_ok(), "{}", report.table());
        let banks: Vec<u32> = report.results.iter().map(|r| r.bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
        for r in &report.results {
            assert!(r.stats.commands() > 0, "bank {}", r.bank);
            assert!(r.bank_wall_ms > 0.0, "bank {}", r.bank);
            assert!(
                r.metrics.sum_counters("commands_total") > 0,
                "bank {}",
                r.bank
            );
        }
        assert!(report.banks_wall_ms() > 0.0);
        let summary = report.summary_json();
        assert!(summary.contains("\"banks\":4"), "{summary}");
        assert!(summary.contains("\"ok\":4"), "{summary}");
        let table = report.table();
        assert!(table.lines().next().unwrap().contains("composition"));
        assert_eq!(table.lines().count(), 5, "{table}");
    }

    /// A panic inside one bank shard costs only that bank; siblings
    /// finish, and the report degrades per-bank instead of aborting.
    #[test]
    fn bank_shard_panic_is_isolated_to_its_bank() {
        let profile = dram_sim::ChipProfile::test_small_hbm2();
        let report = run_sharded_with(&profile, 9, |bank| {
            if bank == 2 {
                panic!("injected bank fault");
            }
            characterize_bank_instrumented(&profile, 9, bank, small_opts(), None)
        });
        assert_eq!(report.results.len(), 4);
        assert!(!report.all_ok());
        for r in &report.results {
            if r.bank == 2 {
                let err = r.outcome.as_ref().unwrap_err();
                assert_eq!(err, &CoreError::WorkerPanic("injected bank fault".into()));
                assert_eq!(r.bank_wall_ms, 0.0);
                assert!(r.metrics.is_empty());
            } else {
                assert!(r.outcome.is_ok(), "bank {}: {:?}", r.bank, r.outcome);
            }
        }
        // The failed bank surfaces in the merged-dossier error and table.
        let err = report.dossier().expect_err("bank 2 failed");
        assert!(err.to_string().contains("bank 2 failed"), "{err}");
        assert!(report.table().contains("worker panicked"));
    }

    #[test]
    fn effective_shards_clamps_to_bank_count() {
        assert_eq!(effective_shards(8, 4), 4);
        assert_eq!(effective_shards(2, 4), 2);
        assert_eq!(effective_shards(5, 0), 1);
        assert!(effective_shards(0, 64) >= 1);
    }
}
