//! # dram-testbed
//!
//! A SoftMC / DRAM-Bender-style testing infrastructure for the simulated
//! chips: programmable command sequences with explicit timing, a thermal
//! plant standing in for the paper's rubber heater + controller, and
//! bitflip measurement collection (paper §III-A).
//!
//! The [`Testbed`] owns one [`dram_sim::DramChip`] (the paper analyzes
//! per-chip, wiring DIMMs to the FPGA and compensating module-level
//! mappings in software) and exposes:
//!
//! * a [`program::Program`] interpreter for raw timed command sequences,
//!   including the loop-accelerated `Hammer` instruction that mirrors
//!   DRAM Bender's hardware loops;
//! * convenience operations (`write_row_pattern`, `read_row`, `hammer`,
//!   `press`, `rowcopy`, …) that honor JEDEC timing except where a
//!   violation is the point (RowCopy);
//! * [`results`] helpers that diff expected and observed data into
//!   [`results::BitflipRecord`]s and CSV, the artifact format of the
//!   paper's flow.
//!
//! # Example
//!
//! ```
//! use dram_sim::{ChipProfile, DramChip};
//! use dram_testbed::Testbed;
//!
//! # fn main() -> Result<(), dram_testbed::TestbedError> {
//! let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), 5));
//! tb.write_row_pattern(0, 21, 0)?;          // aggressor
//! tb.write_row_pattern(0, 20, u64::MAX)?;   // victim
//! tb.hammer(0, 21, 100_000)?;               // single-sided RowHammer
//! let data = tb.read_row(0, 20)?;
//! assert_eq!(data.len(), tb.cols() as usize);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod program;
pub mod results;
pub mod thermal;

pub use program::{Instr, Program, RunOutput};
pub use results::{BerStats, BitflipRecord, FlipDirection};
pub use thermal::ThermalPlant;

use dram_sim::sink::CommandSink;
use dram_sim::{Command, CommandError, DramChip, Time, TimingParams};
use std::error::Error;
use std::fmt;

/// Errors from testbed operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestbedError {
    /// The underlying chip rejected a command.
    Chip(CommandError),
    /// A program referenced an instruction the interpreter cannot run.
    BadProgram(&'static str),
}

impl fmt::Display for TestbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestbedError::Chip(e) => write!(f, "chip error: {e}"),
            TestbedError::BadProgram(m) => write!(f, "bad program: {m}"),
        }
    }
}

impl Error for TestbedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TestbedError::Chip(e) => Some(e),
            TestbedError::BadProgram(_) => None,
        }
    }
}

impl From<CommandError> for TestbedError {
    fn from(e: CommandError) -> Self {
        TestbedError::Chip(e)
    }
}

/// The default per-activation open time for hammer loops (the paper uses
/// 35 ns per activation, §V-B).
pub const HAMMER_ON_TIME: Time = Time::from_ns(35);

/// The default per-activation open time for RowPress (7.8 µs, §V-B).
pub const PRESS_ON_TIME: Time = Time::from_ns(7_800);

/// An FPGA-testbed stand-in driving one chip.
#[derive(Debug)]
pub struct Testbed {
    chip: DramChip,
    thermal: ThermalPlant,
    cursor: Time,
}

impl Testbed {
    /// Wraps a chip. The cursor starts one `tRP` in so the first `ACT`
    /// can never alias a pre-simulation precharge.
    pub fn new(chip: DramChip) -> Self {
        let cursor = chip.now() + chip.timing().trp;
        Testbed {
            thermal: ThermalPlant::new(chip.temperature()),
            chip,
            cursor,
        }
    }

    /// The chip under test.
    pub fn chip(&self) -> &DramChip {
        &self.chip
    }

    /// Mutable access to the chip under test.
    pub fn chip_mut(&mut self) -> &mut DramChip {
        &mut self.chip
    }

    /// Consumes the testbed and returns the chip.
    pub fn into_chip(self) -> DramChip {
        self.chip
    }

    /// Columns per row of the chip under test.
    pub fn cols(&self) -> u32 {
        self.chip.profile().cols_per_row()
    }

    /// Rows per bank of the chip under test.
    pub fn rows(&self) -> u32 {
        self.chip.profile().rows_per_bank
    }

    /// The testbed's current command cursor.
    pub fn now(&self) -> Time {
        self.cursor
    }

    /// Chip timing parameters.
    pub fn timing(&self) -> TimingParams {
        *self.chip.timing()
    }

    /// Advances the cursor without issuing commands (retention waits).
    ///
    /// A wait is invisible to an attached [`CommandSink`]: it reaches the
    /// chip only as the (larger) timestamp of the next command, which is
    /// exactly what a trace needs to replay it.
    pub fn wait(&mut self, d: Time) {
        self.cursor += d;
    }

    /// Attaches a [`CommandSink`] to the chip under test: every command
    /// issued from here on — through [`run`](Self::run), the convenience
    /// helpers, or direct chip access — is reported to it with its
    /// timestamp and outcome. This is the capture point of the
    /// `dram-trace` record/replay subsystem.
    pub fn set_sink(&mut self, sink: Box<dyn CommandSink + Send>) {
        self.chip.set_sink(sink);
    }

    /// Detaches and returns the chip's sink, if any.
    pub fn clear_sink(&mut self) -> Option<Box<dyn CommandSink + Send>> {
        self.chip.clear_sink()
    }

    /// Emits an out-of-band phase marker through the chip's sink (no-op
    /// when none is attached). Markers carry experiment structure into a
    /// recorded trace without touching chip state.
    pub fn mark(&mut self, label: &str) {
        self.chip.mark(label);
    }

    /// Drives the heater to `setpoint` °C and updates the chip's die
    /// temperature once the plant settles (paper §III-A).
    pub fn set_temperature(&mut self, setpoint: f64) {
        let reached = self.thermal.settle(setpoint);
        self.chip.set_temperature(reached);
    }

    fn issue(
        &mut self,
        cmd: Command,
        at: Time,
    ) -> Result<Option<dram_sim::ReadData>, TestbedError> {
        self.cursor = at;
        Ok(self.chip.issue(cmd, at)?)
    }

    /// Writes the same RD_data pattern to every column of a row.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn write_row_pattern(
        &mut self,
        bank: u32,
        row: u32,
        pattern: u64,
    ) -> Result<(), TestbedError> {
        self.write_row_with(bank, row, |_| pattern)
    }

    /// Writes a row with a per-column pattern function.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn write_row_with(
        &mut self,
        bank: u32,
        row: u32,
        f: impl Fn(u32) -> u64,
    ) -> Result<(), TestbedError> {
        let t = self.timing();
        let t0 = self.cursor + t.trp;
        self.issue(Command::Activate { bank, row }, t0)?;
        let mut tc = t0 + t.trcd;
        for col in 0..self.cols() {
            self.issue(
                Command::Write {
                    bank,
                    col,
                    data: f(col),
                },
                tc,
            )?;
            tc += t.tck;
        }
        let tp = tc.max(t0 + t.tras);
        self.issue(Command::Precharge { bank }, tp)?;
        Ok(())
    }

    /// Writes a single column of a row (one ACT/WR/PRE round trip — much
    /// cheaper than a full-row write when only one RD_data matters).
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn write_col(
        &mut self,
        bank: u32,
        row: u32,
        col: u32,
        data: u64,
    ) -> Result<(), TestbedError> {
        let t = self.timing();
        let t0 = self.cursor + t.trp;
        self.issue(Command::Activate { bank, row }, t0)?;
        self.issue(Command::Write { bank, col, data }, t0 + t.trcd)?;
        self.issue(Command::Precharge { bank }, t0 + t.tras)?;
        Ok(())
    }

    /// Reads a single column of a row.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn read_col(&mut self, bank: u32, row: u32, col: u32) -> Result<u64, TestbedError> {
        let t = self.timing();
        let t0 = self.cursor + t.trp;
        self.issue(Command::Activate { bank, row }, t0)?;
        let d = self
            .issue(Command::Read { bank, col }, t0 + t.trcd)?
            .expect("read returns data");
        self.issue(Command::Precharge { bank }, t0 + t.tras)?;
        Ok(d.0)
    }

    /// Reads every column of a row.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn read_row(&mut self, bank: u32, row: u32) -> Result<Vec<u64>, TestbedError> {
        let t = self.timing();
        let t0 = self.cursor + t.trp;
        self.issue(Command::Activate { bank, row }, t0)?;
        let mut tc = t0 + t.trcd;
        let mut out = Vec::with_capacity(self.cols() as usize);
        for col in 0..self.cols() {
            let d = self
                .issue(Command::Read { bank, col }, tc)?
                .expect("read returns data");
            out.push(d.0);
            tc += t.tck;
        }
        let tp = tc.max(t0 + t.tras);
        self.issue(Command::Precharge { bank }, tp)?;
        Ok(out)
    }

    /// Runs a single-sided RowHammer: `count` ACT-PRE pairs on `row` with
    /// the paper's 35 ns open time.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn hammer(&mut self, bank: u32, row: u32, count: u64) -> Result<(), TestbedError> {
        self.burst(bank, row, count, HAMMER_ON_TIME)
    }

    /// Runs a double-sided RowHammer: `count` activations on each of the
    /// two aggressors.
    ///
    /// Under the dose model, alternating A/B activations are equivalent
    /// to two bursts of `count` each (doses accumulate per aggressor
    /// wordline).
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn hammer_double(
        &mut self,
        bank: u32,
        row_a: u32,
        row_b: u32,
        count: u64,
    ) -> Result<(), TestbedError> {
        self.burst(bank, row_a, count, HAMMER_ON_TIME)?;
        self.burst(bank, row_b, count, HAMMER_ON_TIME)
    }

    /// Runs a RowPress attack: `count` activations each held open for
    /// `each_on` (the paper's experiment: 8 K activations × 7.8 µs).
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn press(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        each_on: Time,
    ) -> Result<(), TestbedError> {
        self.burst(bank, row, count, each_on)
    }

    fn burst(
        &mut self,
        bank: u32,
        row: u32,
        count: u64,
        each_on: Time,
    ) -> Result<(), TestbedError> {
        let at = self.cursor + self.timing().trp;
        let end = self.chip.activate_burst(bank, row, count, each_on, at)?;
        self.cursor = end;
        Ok(())
    }

    /// Performs an in-memory RowCopy: activate `src`, precharge after
    /// `tRAS`, then re-activate `dst` inside the precharge window so the
    /// bitlines carry `src`'s data into `dst` (paper §III-B).
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn rowcopy(&mut self, bank: u32, src: u32, dst: u32) -> Result<(), TestbedError> {
        let t = self.timing();
        let t0 = self.cursor + t.trp;
        self.issue(Command::Activate { bank, row: src }, t0)?;
        let tp = t0 + t.tras;
        self.issue(Command::Precharge { bank }, tp)?;
        // Violate tRP: re-activate after ~1/10 of the precharge time.
        let quick = tp + Time::from_ps(t.trp.as_ps() / 10);
        self.issue(Command::Activate { bank, row: dst }, quick)?;
        let done = quick + t.tras;
        self.issue(Command::Precharge { bank }, done)?;
        Ok(())
    }

    /// Issues one `REF` (all banks must be precharged). One `REF` covers
    /// only 1/8192 of the rows, per JEDEC — use
    /// [`refresh_window`](Self::refresh_window) for a full sweep.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn refresh(&mut self) -> Result<(), TestbedError> {
        let at = self.cursor + self.timing().trfc;
        self.issue(Command::Refresh, at)?;
        Ok(())
    }

    /// Runs one full refresh window (the accelerated equivalent of 8192
    /// `REF` commands).
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn refresh_window(&mut self) -> Result<(), TestbedError> {
        let at = self.cursor + self.timing().trfc;
        self.cursor = at;
        self.chip.refresh_window(at)?;
        Ok(())
    }

    /// Issues a DDR5-style `RFM`, asking the device to run its in-DRAM
    /// AIB mitigation for one bank (paper §VI-B).
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors.
    pub fn rfm(&mut self, bank: u32) -> Result<(), TestbedError> {
        let at = self.cursor + self.timing().trfc;
        self.issue(Command::Rfm { bank }, at)?;
        Ok(())
    }

    /// Runs a raw [`Program`], returning all read data in order.
    ///
    /// # Errors
    ///
    /// Propagates chip protocol errors; `Wait` never fails.
    pub fn run(&mut self, program: &Program) -> Result<RunOutput, TestbedError> {
        let mut out = RunOutput::default();
        for instr in program.instrs() {
            match *instr {
                Instr::Act { bank, row } => {
                    let at = self.cursor + self.timing().trp;
                    self.issue(Command::Activate { bank, row }, at)?;
                }
                Instr::ActAfter { bank, row, delay } => {
                    let at = self.cursor + delay;
                    self.issue(Command::Activate { bank, row }, at)?;
                }
                Instr::Pre { bank, after } => {
                    let at = self.cursor + after;
                    self.issue(Command::Precharge { bank }, at)?;
                }
                Instr::Rd { bank, col } => {
                    let at = self.cursor + self.timing().trcd;
                    let d = self
                        .issue(Command::Read { bank, col }, at)?
                        .expect("read returns data");
                    out.reads.push(d.0);
                }
                Instr::Wr { bank, col, data } => {
                    let at = self.cursor + self.timing().trcd;
                    self.issue(Command::Write { bank, col, data }, at)?;
                }
                Instr::Ref => self.refresh()?,
                Instr::Rfm { bank } => self.rfm(bank)?,
                Instr::Wait(d) => self.wait(d),
                Instr::Hammer {
                    bank,
                    row,
                    count,
                    each_on,
                } => self.burst(bank, row, count, each_on)?,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::ChipProfile;

    fn tb() -> Testbed {
        Testbed::new(DramChip::new(ChipProfile::test_small(), 9))
    }

    /// The fleet engine moves whole testbeds across worker threads.
    #[test]
    fn testbed_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Testbed>();
        assert_send::<TestbedError>();
    }

    #[test]
    fn write_read_round_trip() {
        let mut t = tb();
        t.write_row_pattern(0, 3, 0xCAFE_F00D).unwrap();
        assert!(t.read_row(0, 3).unwrap().iter().all(|&d| d == 0xCAFE_F00D));
    }

    #[test]
    fn per_column_patterns_apply() {
        let mut t = tb();
        t.write_row_with(0, 4, |c| c as u64).unwrap();
        let data = t.read_row(0, 4).unwrap();
        for (c, d) in data.iter().enumerate() {
            assert_eq!(*d, c as u64);
        }
    }

    #[test]
    fn rowcopy_moves_data_within_subarray() {
        let mut t = tb();
        t.write_row_pattern(0, 2, 0x1357_9BDF).unwrap();
        t.write_row_pattern(0, 7, 0).unwrap();
        t.rowcopy(0, 2, 7).unwrap();
        assert!(t.read_row(0, 7).unwrap().iter().all(|&d| d == 0x1357_9BDF));
    }

    #[test]
    fn hammer_accumulates_damage() {
        let mut t = tb();
        t.write_row_pattern(0, 19, u64::MAX).unwrap();
        t.write_row_pattern(0, 20, 0).unwrap();
        t.hammer(0, 20, 2_000_000).unwrap();
        let flips: u32 = t
            .read_row(0, 19)
            .unwrap()
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum();
        assert!(flips > 0);
    }

    #[test]
    fn double_sided_hammers_both_aggressors() {
        let mut t = tb();
        t.write_row_pattern(0, 20, u64::MAX).unwrap();
        t.write_row_pattern(0, 19, 0).unwrap();
        t.write_row_pattern(0, 21, 0).unwrap();
        t.hammer_double(0, 19, 21, 1_200_000).unwrap();
        let flips: u32 = t
            .read_row(0, 20)
            .unwrap()
            .iter()
            .map(|d| (!d & 0xFFFF_FFFF).count_ones())
            .sum();
        assert!(flips > 0, "double-sided at 1.2M per side must flip bits");
    }

    #[test]
    fn temperature_control_reaches_setpoint() {
        let mut t = tb();
        t.set_temperature(85.0);
        assert!((t.chip().temperature() - 85.0).abs() < 0.5);
        t.set_temperature(45.0);
        assert!((t.chip().temperature() - 45.0).abs() < 0.5);
    }

    #[test]
    fn program_interpreter_matches_helpers() {
        let mut a = tb();
        a.write_row_pattern(0, 5, 0xAA).unwrap();
        let want = a.read_row(0, 5).unwrap();

        let mut b = tb();
        let mut p = Program::new();
        p.act(0, 5);
        for col in 0..b.cols() {
            p.wr(0, col, 0xAA);
        }
        p.pre(0, b.timing().tras);
        p.act(0, 5);
        for col in 0..b.cols() {
            p.rd(0, col);
        }
        p.pre(0, b.timing().tras);
        let out = b.run(&p).unwrap();
        assert_eq!(out.reads, want);
    }

    /// A sink attached at the testbed level observes everything
    /// `Testbed::run` issues, marker included, in program order.
    #[test]
    fn sink_observes_program_interpreter() {
        use dram_sim::sink::{ChipEvent, CommandSink};
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Counter {
            commands: u64,
            markers: Vec<String>,
        }
        #[derive(Clone)]
        struct Handle(Arc<Mutex<Counter>>);
        impl CommandSink for Handle {
            fn record(&mut self, ev: ChipEvent<'_>) {
                let mut c = self.0.lock().unwrap();
                match ev {
                    ChipEvent::Marker { label } => c.markers.push(label.to_string()),
                    _ => c.commands += 1,
                }
            }
        }

        let shared = Arc::new(Mutex::new(Counter::default()));
        let mut t = tb();
        t.set_sink(Box::new(Handle(Arc::clone(&shared))));
        t.mark("program:write-read");
        let mut p = Program::new();
        p.act(0, 5);
        p.wr(0, 0, 0xAB);
        p.pre(0, t.timing().tras);
        p.act(0, 5);
        p.rd(0, 0);
        p.pre(0, t.timing().tras);
        let out = t.run(&p).unwrap();
        assert_eq!(out.reads, vec![0xAB]);
        t.clear_sink().expect("sink was attached");

        let c = shared.lock().unwrap();
        assert_eq!(c.commands, 6, "ACT WR PRE ACT RD PRE");
        assert_eq!(c.markers, vec!["program:write-read".to_string()]);
    }

    #[test]
    fn wait_advances_cursor() {
        let mut t = tb();
        let before = t.now();
        t.wait(Time::from_ms(5));
        assert_eq!(t.now() - before, Time::from_ms(5));
    }
}
