//! Thermal plant: the rubber heater + temperature controller of the
//! paper's testbed (§III-A), as a first-order system with a bang-bang
//! controller.

/// A first-order thermal plant with a heater under closed-loop control.
///
/// # Example
///
/// ```
/// use dram_testbed::ThermalPlant;
/// let mut plant = ThermalPlant::new(25.0);
/// let reached = plant.settle(75.0);
/// assert!((reached - 75.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPlant {
    temperature: f64,
    ambient: f64,
    /// Heater power in °C/s of forcing when fully on.
    heater_gain: f64,
    /// Cooling time constant toward ambient, in seconds.
    tau_s: f64,
}

impl ThermalPlant {
    /// Creates a plant at the given starting temperature (°C), ambient
    /// 25 °C.
    pub fn new(start: f64) -> Self {
        ThermalPlant {
            temperature: start,
            ambient: 25.0,
            heater_gain: 2.0,
            tau_s: 60.0,
        }
    }

    /// Current plate temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Advances the plant by `dt_s` seconds with the heater duty in
    /// `[0, 1]`.
    pub fn step(&mut self, dt_s: f64, heater_duty: f64) {
        let duty = heater_duty.clamp(0.0, 1.0);
        let cooling = (self.ambient - self.temperature) / self.tau_s;
        self.temperature += dt_s * (cooling + duty * self.heater_gain);
    }

    /// Runs a bang-bang controller until the plate settles at `setpoint`
    /// (within 0.1 °C) or a generous step budget runs out; returns the
    /// reached temperature.
    ///
    /// Setpoints below ambient can only be approached by passive cooling
    /// and will settle at ambient.
    pub fn settle(&mut self, setpoint: f64) -> f64 {
        let target = setpoint.max(self.ambient);
        for _ in 0..200_000 {
            let duty = if self.temperature < target { 1.0 } else { 0.0 };
            self.step(0.1, duty);
            if (self.temperature - target).abs() < 0.1 {
                break;
            }
        }
        self.temperature
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heats_to_setpoint() {
        let mut p = ThermalPlant::new(25.0);
        let t = p.settle(85.0);
        assert!((t - 85.0).abs() < 0.5, "reached {t}");
    }

    #[test]
    fn cools_back_down() {
        let mut p = ThermalPlant::new(85.0);
        let t = p.settle(45.0);
        assert!((t - 45.0).abs() < 0.5, "reached {t}");
    }

    #[test]
    fn cannot_cool_below_ambient() {
        let mut p = ThermalPlant::new(30.0);
        let t = p.settle(0.0);
        assert!((t - 25.0).abs() < 1.0, "reached {t}");
    }

    #[test]
    fn step_is_bounded() {
        let mut p = ThermalPlant::new(25.0);
        for _ in 0..10_000 {
            p.step(0.1, 1.0);
        }
        // Heater gain vs cooling settles well below runaway.
        assert!(p.temperature() < 25.0 + 2.0 * 60.0 + 1.0);
    }
}
