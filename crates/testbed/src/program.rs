//! Command programs: the testbed's instruction format.
//!
//! Mirrors the programming model of SoftMC/DRAM Bender: a linear sequence
//! of timed DRAM commands plus hardware-loop instructions. The
//! interpreter lives in [`Testbed::run`](crate::Testbed::run).

use dram_sim::Time;

/// One testbed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `ACT` after a full `tRP` gap (safe activate).
    Act {
        /// Bank index.
        bank: u32,
        /// Pin-level row address.
        row: u32,
    },
    /// `ACT` after an explicit delay from the previous command — the
    /// timing-violation primitive used for RowCopy.
    ActAfter {
        /// Bank index.
        bank: u32,
        /// Pin-level row address.
        row: u32,
        /// Delay from the previous command.
        delay: Time,
    },
    /// `PRE` after an explicit delay from the previous command.
    Pre {
        /// Bank index.
        bank: u32,
        /// Delay from the previous command (usually ≥ `tRAS` from `ACT`).
        after: Time,
    },
    /// `RD` one column (issued `tRCD` after the previous command).
    Rd {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
    },
    /// `WR` one column (issued `tRCD` after the previous command).
    Wr {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
        /// RD_data payload.
        data: u64,
    },
    /// `REF` (one 1/8192 refresh slice).
    Ref,
    /// DDR5-style `RFM` for one bank.
    Rfm {
        /// Bank index.
        bank: u32,
    },
    /// Advance time without issuing commands.
    Wait(Time),
    /// Hardware loop: `count` × (`ACT` held `each_on`, then `PRE`).
    Hammer {
        /// Bank index.
        bank: u32,
        /// Aggressor row.
        row: u32,
        /// Loop iterations.
        count: u64,
        /// Row-open time per iteration.
        each_on: Time,
    },
}

/// A builder for instruction sequences.
///
/// # Example
///
/// ```
/// use dram_testbed::Program;
/// use dram_sim::Time;
///
/// let mut p = Program::new();
/// p.act(0, 10).wr(0, 0, 0xFF).pre(0, Time::from_ns(32));
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instruction list.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Appends a safe `ACT`.
    pub fn act(&mut self, bank: u32, row: u32) -> &mut Self {
        self.push(Instr::Act { bank, row })
    }

    /// Appends an `ACT` with an explicit (possibly violating) delay.
    pub fn act_after(&mut self, bank: u32, row: u32, delay: Time) -> &mut Self {
        self.push(Instr::ActAfter { bank, row, delay })
    }

    /// Appends a `PRE` after `after`.
    pub fn pre(&mut self, bank: u32, after: Time) -> &mut Self {
        self.push(Instr::Pre { bank, after })
    }

    /// Appends a `RD`.
    pub fn rd(&mut self, bank: u32, col: u32) -> &mut Self {
        self.push(Instr::Rd { bank, col })
    }

    /// Appends a `WR`.
    pub fn wr(&mut self, bank: u32, col: u32, data: u64) -> &mut Self {
        self.push(Instr::Wr { bank, col, data })
    }

    /// Appends a `REF`.
    pub fn refresh(&mut self) -> &mut Self {
        self.push(Instr::Ref)
    }

    /// Appends an `RFM`.
    pub fn rfm(&mut self, bank: u32) -> &mut Self {
        self.push(Instr::Rfm { bank })
    }

    /// Appends a wait.
    pub fn wait(&mut self, d: Time) -> &mut Self {
        self.push(Instr::Wait(d))
    }

    /// Appends a hammer loop.
    pub fn hammer(&mut self, bank: u32, row: u32, count: u64, each_on: Time) -> &mut Self {
        self.push(Instr::Hammer {
            bank,
            row,
            count,
            each_on,
        })
    }

    /// Appends the canonical RowCopy idiom: `ACT src`, `PRE` at `tRAS`,
    /// violating `ACT dst` at one tenth of `tRP`.
    pub fn rowcopy(&mut self, bank: u32, src: u32, dst: u32, tras: Time, trp: Time) -> &mut Self {
        self.act(bank, src)
            .pre(bank, tras)
            .act_after(bank, dst, Time::from_ps(trp.as_ps() / 10))
            .pre(bank, tras)
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program {
            instrs: iter.into_iter().collect(),
        }
    }
}

/// The data collected while running a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOutput {
    /// Every `RD` result, in program order.
    pub reads: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut p = Program::new();
        p.act(0, 1).rd(0, 0).pre(0, Time::from_ns(32)).refresh();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.instrs()[1], Instr::Rd { bank: 0, col: 0 },);
    }

    #[test]
    fn rowcopy_idiom_shape() {
        let mut p = Program::new();
        p.rowcopy(0, 3, 9, Time::from_ns(32), Time::from_ns(13));
        assert_eq!(p.len(), 4);
        assert!(matches!(p.instrs()[2], Instr::ActAfter { row: 9, .. }));
    }

    #[test]
    fn collects_from_iterator() {
        let p: Program = (0..4).map(|c| Instr::Rd { bank: 0, col: c }).collect();
        assert_eq!(p.len(), 4);
    }
}
