//! Measurement collection: bitflip records, BER aggregation, CSV export.
//!
//! The paper's artifact produces CSV files of flip locations from the
//! FPGA runs and post-processes them into figures; these types are the
//! equivalent stage of this reproduction.

use std::fmt;

/// The direction of an observed bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipDirection {
    /// Expected 0, read 1.
    ZeroToOne,
    /// Expected 1, read 0.
    OneToZero,
}

impl fmt::Display for FlipDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipDirection::ZeroToOne => write!(f, "0->1"),
            FlipDirection::OneToZero => write!(f, "1->0"),
        }
    }
}

/// One observed bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitflipRecord {
    /// Pin-level row address.
    pub row: u32,
    /// Column address.
    pub col: u32,
    /// Bit index within the RD_data.
    pub bit: u32,
    /// Flip direction.
    pub direction: FlipDirection,
}

impl BitflipRecord {
    /// The flat bit index of this flip within its row
    /// (`col * rd_bits + bit`).
    pub fn row_bit(&self, rd_bits: u32) -> u32 {
        self.col * rd_bits + self.bit
    }
}

/// Diffs one row read against its expected per-column pattern and emits a
/// record per flipped bit.
pub fn diff_row(
    row: u32,
    rd_bits: u32,
    expected: impl Fn(u32) -> u64,
    observed: &[u64],
) -> Vec<BitflipRecord> {
    let mut out = Vec::new();
    for (col, &got) in observed.iter().enumerate() {
        let col = col as u32;
        let want = expected(col);
        let mut x = (want ^ got) & mask(rd_bits);
        while x != 0 {
            let bit = x.trailing_zeros();
            let direction = if want & (1 << bit) != 0 {
                FlipDirection::OneToZero
            } else {
                FlipDirection::ZeroToOne
            };
            out.push(BitflipRecord {
                row,
                col,
                bit,
                direction,
            });
            x &= x - 1;
        }
    }
    out
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Aggregated bit-error-rate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerStats {
    /// Bits that flipped.
    pub flips: u64,
    /// Bits examined.
    pub cells: u64,
}

impl BerStats {
    /// Creates stats from counts.
    pub fn new(flips: u64, cells: u64) -> Self {
        BerStats { flips, cells }
    }

    /// The bit error rate (0 when no cells were examined).
    pub fn ber(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.flips as f64 / self.cells as f64
        }
    }

    /// Merges another sample.
    pub fn merge(&mut self, other: BerStats) {
        self.flips += other.flips;
        self.cells += other.cells;
    }
}

impl fmt::Display for BerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.3e})", self.flips, self.cells, self.ber())
    }
}

/// Renders records in the artifact's CSV format
/// (`row,col,bit,direction`).
pub fn to_csv(records: &[BitflipRecord]) -> String {
    let mut s = String::from("row,col,bit,direction\n");
    for r in records {
        s.push_str(&format!("{},{},{},{}\n", r.row, r.col, r.bit, r.direction));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_finds_both_directions() {
        let observed = vec![0b1010, 0b0001];
        let recs = diff_row(
            7,
            32,
            |col| if col == 0 { 0b1000 } else { 0b0011 },
            &observed,
        );
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0],
            BitflipRecord {
                row: 7,
                col: 0,
                bit: 1,
                direction: FlipDirection::ZeroToOne
            }
        );
        assert_eq!(recs[1].direction, FlipDirection::OneToZero);
        assert_eq!(recs[1].row_bit(32), 32 + 1);
    }

    #[test]
    fn diff_respects_rd_width() {
        // Bits above rd_bits must be ignored.
        let observed = vec![0xFFFF_FFFF_0000_0000];
        let recs = diff_row(0, 32, |_| 0, &observed);
        assert!(recs.is_empty());
    }

    #[test]
    fn ber_stats_merge() {
        let mut a = BerStats::new(1, 100);
        a.merge(BerStats::new(3, 100));
        assert_eq!(a.flips, 4);
        assert!((a.ber() - 0.02).abs() < 1e-12);
        assert_eq!(BerStats::default().ber(), 0.0);
    }

    #[test]
    fn csv_format() {
        let recs = vec![BitflipRecord {
            row: 1,
            col: 2,
            bit: 3,
            direction: FlipDirection::OneToZero,
        }];
        assert_eq!(to_csv(&recs), "row,col,bit,direction\n1,2,3,1->0\n");
    }
}
