//! Simulator anomaly surfacing: a [`CommandSink`] that turns the same
//! conditions `clock_anomalies_total` counts into structured events.
//!
//! The telemetry `MetricsSink` increments
//! `clock_anomalies_total{interval=act_to_act|row_open}` when an
//! accepted event's timestamp runs *backwards* relative to the interval
//! it would close — a logic-bug symptom, not a device behavior. The
//! counter says it happened; this sink says *where*: one `warn`
//! `sim.clock_anomaly` event per occurrence, carrying the bank, the two
//! simulated timestamps, and the interval name. Payloads are pure
//! simulated time, so the events are deterministic and byte-stable.
//!
//! Attach it with a [`Tee`](dram_sim::sink::Tee) next to whatever sink
//! the run already uses.

use std::collections::BTreeMap;

use dram_sim::chip::Command;
use dram_sim::sink::{ChipEvent, CommandOutcome, CommandSink};

use crate::bus::{EventBus, EventDraft};

/// A [`CommandSink`] emitting `sim.clock_anomaly` events onto a bus.
#[derive(Debug)]
pub struct AnomalySink {
    bus: EventBus,
    run_id: Option<String>,
    job_id: Option<String>,
    /// Last accepted explicit-`ACT` timestamp per bank, ps.
    last_act_ps: BTreeMap<u32, u64>,
    /// Accepted explicit-`ACT` timestamp of the currently open row per
    /// bank, ps.
    open_since_ps: BTreeMap<u32, u64>,
    anomalies: u64,
}

impl AnomalySink {
    /// A sink emitting onto `bus`, with optional correlation ids copied
    /// onto every event.
    pub fn new(bus: EventBus, run_id: Option<&str>, job_id: Option<&str>) -> AnomalySink {
        AnomalySink {
            bus,
            run_id: run_id.map(str::to_string),
            job_id: job_id.map(str::to_string),
            last_act_ps: BTreeMap::new(),
            open_since_ps: BTreeMap::new(),
            anomalies: 0,
        }
    }

    /// Anomalies emitted so far.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    fn emit(&mut self, interval: &str, bank: u32, prev_ps: u64, at_ps: u64) {
        self.anomalies += 1;
        let mut draft = EventDraft::warn("sim.clock_anomaly")
            .shard(bank)
            .field_str("interval", interval)
            .field_u64("prev_ps", prev_ps)
            .field_u64("at_ps", at_ps);
        if let Some(run) = &self.run_id {
            draft = draft.run(run);
        }
        if let Some(job) = &self.job_id {
            draft = draft.job(job);
        }
        self.bus.emit(draft);
    }
}

impl CommandSink for AnomalySink {
    fn record(&mut self, event: ChipEvent<'_>) {
        let ChipEvent::Command { cmd, at, outcome } = event else {
            return;
        };
        if matches!(outcome, CommandOutcome::Rejected(_)) {
            return;
        }
        let at_ps = at.as_ps();
        match cmd {
            Command::Activate { bank, .. } => {
                if let Some(prev) = self.last_act_ps.insert(bank, at_ps) {
                    if at_ps < prev {
                        self.emit("act_to_act", bank, prev, at_ps);
                    }
                }
                self.open_since_ps.insert(bank, at_ps);
            }
            Command::Precharge { bank } => {
                if let Some(opened) = self.open_since_ps.remove(&bank) {
                    if at_ps < opened {
                        self.emit("row_open", bank, opened, at_ps);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::time::Time;

    fn act(bank: u32, row: u32, ps: u64) -> ChipEvent<'static> {
        ChipEvent::Command {
            cmd: Command::Activate { bank, row },
            at: Time::from_ps(ps),
            outcome: CommandOutcome::Accepted,
        }
    }

    fn pre(bank: u32, ps: u64) -> ChipEvent<'static> {
        ChipEvent::Command {
            cmd: Command::Precharge { bank },
            at: Time::from_ps(ps),
            outcome: CommandOutcome::Accepted,
        }
    }

    #[test]
    fn forward_time_emits_nothing() {
        let bus = EventBus::new(16);
        let mut sink = AnomalySink::new(bus.clone(), Some("r"), None);
        sink.record(act(0, 1, 100));
        sink.record(pre(0, 200));
        sink.record(act(0, 2, 300));
        assert_eq!(sink.anomalies(), 0);
        assert_eq!(bus.next_seq(), 0);
    }

    #[test]
    fn backwards_act_and_pre_emit_warn_events() {
        let bus = EventBus::new(16);
        let mut sink = AnomalySink::new(bus.clone(), Some("r"), Some("j"));
        sink.record(act(3, 1, 1000));
        sink.record(act(3, 2, 500)); // act_to_act backwards
        sink.record(pre(3, 100)); // row_open backwards (opened at 500)
        assert_eq!(sink.anomalies(), 2);
        let events = bus.since(0, 0).events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "sim.clock_anomaly");
        assert_eq!(events[0].shard, Some(3));
        assert_eq!(events[0].job_id.as_deref(), Some("j"));
        assert_eq!(
            events[0].field("interval").and_then(|v| v.as_str()),
            Some("act_to_act")
        );
        assert_eq!(
            events[1].field("interval").and_then(|v| v.as_str()),
            Some("row_open")
        );
        assert_eq!(
            events[1].field("prev_ps").and_then(|v| v.as_u64()),
            Some(500)
        );
        // Deterministic payload: the stable line equals the full line.
        assert_eq!(events[0].stable_line(), events[0].line());
    }

    #[test]
    fn rejected_commands_are_ignored() {
        let bus = EventBus::new(16);
        let mut sink = AnomalySink::new(bus.clone(), None, None);
        sink.record(act(0, 1, 1000));
        sink.record(ChipEvent::Command {
            cmd: Command::Activate { bank: 0, row: 2 },
            at: Time::from_ps(10),
            outcome: CommandOutcome::Rejected(dram_sim::chip::CommandError::BankOutOfRange {
                bank: 9,
                banks: 4,
            }),
        });
        assert_eq!(sink.anomalies(), 0);
    }
}
