//! A bounded in-memory event buffer with `since_seq` cursors.
//!
//! The ring is the live-tail side of the journal: it keeps the most
//! recent `capacity` events in memory so a `dramscoped` `events` request
//! (or a future UI) can read recent history and then resume from
//! exactly the sequence number where the previous read stopped. When
//! the ring overflows, the oldest events fall off — a cursor read past
//! them reports how many it missed instead of silently skipping.

use std::collections::VecDeque;

use crate::event::Event;

/// A fixed-capacity ring of recent events plus the monotonic sequence
/// counter that numbers every event pushed through it.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<Event>,
    next_seq: u64,
}

/// The result of a cursor read: the events at or after the cursor that
/// are still retained, and how many matching events had already been
/// evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinceResult {
    /// Retained events with `seq >= since`, oldest first.
    pub events: Vec<Event>,
    /// Events with `seq >= since` that were evicted before this read.
    pub dropped: u64,
    /// The cursor to pass next time to resume after this read.
    pub next_seq: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// The sequence number the next pushed event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Assigns the next sequence number to `event`, retains it (evicting
    /// the oldest if full), and returns the assigned number.
    pub fn push(&mut self, mut event: Event) -> u64 {
        let seq = self.next_seq;
        event.seq = seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        seq
    }

    /// The sequence number of the oldest retained event (equals
    /// [`next_seq`](Self::next_seq) when empty).
    pub fn oldest_seq(&self) -> u64 {
        self.next_seq - self.events.len() as u64
    }

    /// Reads events with `seq >= since`, oldest first, at most `max`
    /// (`max == 0` means no limit). Events already evicted are counted
    /// in `dropped` rather than returned.
    pub fn since(&self, since: u64, max: usize) -> SinceResult {
        let oldest = self.oldest_seq();
        let dropped = oldest
            .saturating_sub(since)
            .min(self.next_seq.saturating_sub(since));
        let skip = since.saturating_sub(oldest) as usize;
        let iter = self.events.iter().skip(skip).cloned();
        let events: Vec<Event> = if max == 0 {
            iter.collect()
        } else {
            iter.take(max).collect()
        };
        let next_seq = events.last().map_or(oldest.max(since), |e| e.seq + 1);
        SinceResult {
            events,
            dropped,
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;
    use std::collections::BTreeMap;

    fn ev(kind: &str) -> Event {
        Event {
            seq: 0,
            severity: Severity::Info,
            kind: kind.to_string(),
            run_id: None,
            job_id: None,
            shard: None,
            fields: BTreeMap::new(),
            wall: BTreeMap::new(),
        }
    }

    #[test]
    fn push_assigns_monotonic_seqs() {
        let mut ring = EventRing::new(8);
        assert_eq!(ring.push(ev("a")), 0);
        assert_eq!(ring.push(ev("b")), 1);
        assert_eq!(ring.next_seq(), 2);
        let r = ring.since(0, 0);
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].seq, 0);
        assert_eq!(r.events[1].kind, "b");
        assert_eq!(r.dropped, 0);
        assert_eq!(r.next_seq, 2);
    }

    #[test]
    fn overflow_drops_oldest_and_reports_it() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev(&format!("e{i}")));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.oldest_seq(), 2);
        let r = ring.since(0, 0);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.events[0].seq, 2);
        assert_eq!(r.next_seq, 5);
        // A cursor inside the retained window drops nothing.
        let r = ring.since(3, 0);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.events.len(), 2);
    }

    #[test]
    fn max_limits_the_read_and_cursor_resumes() {
        let mut ring = EventRing::new(8);
        for i in 0..6 {
            ring.push(ev(&format!("e{i}")));
        }
        let first = ring.since(0, 4);
        assert_eq!(first.events.len(), 4);
        assert_eq!(first.next_seq, 4);
        let rest = ring.since(first.next_seq, 4);
        assert_eq!(rest.events.len(), 2);
        assert_eq!(rest.events[0].seq, 4);
        assert_eq!(rest.next_seq, 6);
        // Reading at the tip returns nothing and a stable cursor.
        let tip = ring.since(rest.next_seq, 4);
        assert!(tip.events.is_empty());
        assert_eq!(tip.next_seq, 6);
    }

    #[test]
    fn future_cursor_is_not_counted_as_dropped() {
        let mut ring = EventRing::new(2);
        ring.push(ev("a"));
        let r = ring.since(10, 0);
        assert!(r.events.is_empty());
        assert_eq!(r.dropped, 0);
        assert_eq!(r.next_seq, 10);
    }
}
