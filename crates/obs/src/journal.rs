//! The append-only on-disk journal: JSON lines with size-based rotation.
//!
//! A [`JournalWriter`] appends one encoded event line at a time to a
//! file, fsync-free (events are operational telemetry, not the source of
//! truth), rotating `journal` → `journal.1` → `journal.2` → … whenever
//! the active file would exceed [`JournalConfig::max_bytes`]. Rotation
//! keeps at most `max_files` rotated generations; the oldest falls off.
//!
//! Reading is total: [`scan_journal`] decodes every line independently
//! and yields per-line `Result`s with 1-based line numbers, so one
//! corrupt line (a torn write, a flipped bit) never hides the rest of
//! the journal; [`read_journal`] is the strict form that fails on the
//! first bad line.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::ObsError;
use crate::event::{decode_event, Event};

/// Rotation policy for a [`JournalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Rotate before the active file would exceed this many bytes.
    pub max_bytes: u64,
    /// Keep at most this many rotated generations (`.1` … `.N`);
    /// 0 means rotation truncates instead of keeping history.
    pub max_files: usize,
}

impl Default for JournalConfig {
    /// 16 MiB active file, 4 rotated generations (~80 MiB ceiling).
    fn default() -> JournalConfig {
        JournalConfig {
            max_bytes: 16 * 1024 * 1024,
            max_files: 4,
        }
    }
}

/// An append-only journal file with size-based rotation.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: File,
    written: u64,
    config: JournalConfig,
}

impl JournalWriter {
    /// Opens (or creates) the journal at `path` for appending. An
    /// existing file is continued, not truncated; its current size
    /// counts toward the rotation threshold.
    pub fn open(
        path: impl Into<PathBuf>,
        config: JournalConfig,
    ) -> Result<JournalWriter, ObsError> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        let written = file.metadata().map_err(|e| io_err(&path, &e))?.len();
        Ok(JournalWriter {
            path,
            file,
            written,
            config,
        })
    }

    /// The active journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event as one line, rotating first if the line would
    /// push the active file past the configured ceiling.
    pub fn append(&mut self, event: &Event) -> Result<(), ObsError> {
        self.append_line(&event.line())
    }

    /// Appends one pre-rendered line (no trailing newline expected).
    pub fn append_line(&mut self, line: &str) -> Result<(), ObsError> {
        let needed = line.len() as u64 + 1;
        if self.written > 0 && self.written + needed > self.config.max_bytes {
            self.rotate()?;
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .map_err(|e| io_err(&self.path, &e))?;
        self.written += needed;
        Ok(())
    }

    /// Flushes buffered bytes to the OS.
    pub fn flush(&mut self) -> Result<(), ObsError> {
        self.file.flush().map_err(|e| io_err(&self.path, &e))
    }

    /// Shifts `path.(N-1)` → `path.N`, …, `path` → `path.1`, then
    /// reopens a fresh active file. With `max_files == 0` the active
    /// file is simply truncated.
    fn rotate(&mut self) -> Result<(), ObsError> {
        self.file.flush().map_err(|e| io_err(&self.path, &e))?;
        if self.config.max_files > 0 {
            let gen_path = |n: usize| -> PathBuf {
                let mut os = self.path.clone().into_os_string();
                os.push(format!(".{n}"));
                PathBuf::from(os)
            };
            // The oldest generation is overwritten by the rename chain.
            for n in (1..self.config.max_files).rev() {
                let from = gen_path(n);
                if from.exists() {
                    std::fs::rename(&from, gen_path(n + 1)).map_err(|e| io_err(&from, &e))?;
                }
            }
            std::fs::rename(&self.path, gen_path(1)).map_err(|e| io_err(&self.path, &e))?;
        }
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, &e))?;
        self.written = 0;
        Ok(())
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> ObsError {
    ObsError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Decodes every line of journal text independently, yielding one
/// `Result` per non-empty line with its 1-based line number attached to
/// errors. Never panics on corrupt input.
pub fn scan_journal(text: &str) -> impl Iterator<Item = Result<Event, ObsError>> + '_ {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.is_empty())
        .map(|(idx, line)| decode_event(line).map_err(|e| e.at_line(idx + 1)))
}

/// Reads and strictly decodes a journal file: the first corrupt line is
/// the error. Use [`scan_journal`] to salvage readable lines instead.
pub fn read_journal(path: impl AsRef<Path>) -> Result<Vec<Event>, ObsError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    scan_journal(&text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FieldValue, Severity};
    use std::collections::BTreeMap;

    fn ev(seq: u64, kind: &str) -> Event {
        let mut fields = BTreeMap::new();
        fields.insert("k".to_string(), FieldValue::U64(seq));
        Event {
            seq,
            severity: Severity::Info,
            kind: kind.to_string(),
            run_id: Some("r".to_string()),
            job_id: None,
            shard: None,
            fields,
            wall: BTreeMap::new(),
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dram-obs-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("j.jsonl");
        let mut w = JournalWriter::open(&path, JournalConfig::default()).unwrap();
        for i in 0..5 {
            w.append(&ev(i, "job.started")).unwrap();
        }
        w.flush().unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back[3], ev(3, "job.started"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends_instead_of_truncating() {
        let dir = tmpdir("reopen");
        let path = dir.join("j.jsonl");
        {
            let mut w = JournalWriter::open(&path, JournalConfig::default()).unwrap();
            w.append(&ev(0, "a")).unwrap();
        }
        {
            let mut w = JournalWriter::open(&path, JournalConfig::default()).unwrap();
            w.append(&ev(1, "b")).unwrap();
        }
        assert_eq!(read_journal(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_shifts_generations_and_bounds_them() {
        let dir = tmpdir("rotate");
        let path = dir.join("j.jsonl");
        let line_len = ev(0, "x").line().len() as u64 + 1;
        let config = JournalConfig {
            // Room for exactly two lines per generation.
            max_bytes: line_len * 2,
            max_files: 2,
        };
        let mut w = JournalWriter::open(&path, config).unwrap();
        for i in 0..9 {
            w.append(&ev(i, "x")).unwrap();
        }
        w.flush().unwrap();
        // 9 lines at 2/generation: active holds 1, .1 and .2 hold 2 each,
        // older generations fell off; .3 must not exist.
        assert_eq!(read_journal(&path).unwrap().len(), 1);
        assert_eq!(read_journal(dir.join("j.jsonl.1")).unwrap().len(), 2);
        assert_eq!(read_journal(dir.join("j.jsonl.2")).unwrap().len(), 2);
        assert!(!dir.join("j.jsonl.3").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_oversized_single_line_still_lands() {
        let dir = tmpdir("oversize");
        let path = dir.join("j.jsonl");
        let config = JournalConfig {
            max_bytes: 8,
            max_files: 1,
        };
        let mut w = JournalWriter::open(&path, config).unwrap();
        w.append(&ev(0, "much.longer.than.eight.bytes")).unwrap();
        w.flush().unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_salvages_around_corrupt_lines() {
        let good = ev(0, "a").line();
        let text = format!("{good}\nnot json\n\n{good}\n");
        let results: Vec<_> = scan_journal(&text).collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        match &results[1] {
            Err(ObsError::Decode { line, .. }) => assert_eq!(*line, 2),
            other => panic!("expected decode error, got {other:?}"),
        }
        assert!(results[2].is_ok());
    }
}
