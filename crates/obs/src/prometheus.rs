//! Prometheus text-format exposition for a telemetry [`Registry`].
//!
//! Renders the exposition format (version 0.0.4): one `# TYPE` comment
//! per metric name followed by its samples. Counters and gauges map
//! directly; log2 histograms map to the native histogram sample triple —
//! cumulative `_bucket{le="…"}` series derived from the fixed bucket
//! upper bounds, plus `_sum` and `_count`.
//!
//! The output is byte-stable for a given registry state: the registry
//! iterates in key order, and nothing here consults a clock.

use dram_telemetry::{Key, Registry};

/// Renders `registry` in Prometheus text exposition format.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_type_line: Option<String> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if last_type_line.as_deref() != Some(line.as_str()) {
            out.push_str(&line);
            last_type_line = Some(line);
        }
    };
    for (key, value) in registry.counters() {
        let name = metric_name(key.metric());
        type_line(&mut out, &name, "counter");
        out.push_str(&sample(&name, "", key, &[], &value.to_string()));
    }
    for (key, value) in registry.gauges() {
        let name = metric_name(key.metric());
        type_line(&mut out, &name, "gauge");
        out.push_str(&sample(&name, "", key, &[], &value.to_string()));
    }
    for (key, hist) in registry.histograms() {
        let name = metric_name(key.metric());
        type_line(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        for (idx, count) in hist.nonzero_buckets() {
            cumulative += count;
            let le = bucket_le(idx);
            out.push_str(&sample(
                &name,
                "_bucket",
                key,
                &[("le", &le)],
                &cumulative.to_string(),
            ));
        }
        out.push_str(&sample(
            &name,
            "_bucket",
            key,
            &[("le", "+Inf")],
            &hist.count().to_string(),
        ));
        out.push_str(&sample(&name, "_sum", key, &[], &hist.sum().to_string()));
        out.push_str(&sample(
            &name,
            "_count",
            key,
            &[],
            &hist.count().to_string(),
        ));
    }
    out
}

/// The inclusive upper bound of a log2 bucket, as a `le` label value:
/// bucket 0 holds exactly `{0}`, bucket `i` holds `[2^(i-1), 2^i)` over
/// the integers, so its inclusive bound is `2^i - 1`; the final bucket
/// is unbounded.
fn bucket_le(index: usize) -> String {
    if index == 0 {
        "0".to_string()
    } else if index >= 64 {
        "+Inf".to_string()
    } else {
        ((1u64 << index) - 1).to_string()
    }
}

fn sample(name: &str, suffix: &str, key: &Key, extra: &[(&str, &str)], value: &str) -> String {
    let mut line = String::with_capacity(64);
    line.push_str(name);
    line.push_str(suffix);
    let labels = key.labels();
    if !labels.is_empty() || !extra.is_empty() {
        line.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&label_name(k));
            line.push_str("=\"");
            line.push_str(&escape_label(v));
            line.push('"');
        }
        for (k, v) in extra {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(k);
            line.push_str("=\"");
            line.push_str(&escape_label(v));
            line.push('"');
        }
        line.push('}');
    }
    line.push(' ');
    line.push_str(value);
    line.push('\n');
    line
}

/// Maps a registry metric name onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; every invalid byte becomes `_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Label names allow `[a-zA-Z_][a-zA-Z0-9_]*`.
fn label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Label values escape `\`, `"`, and newline per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Exposes the log2 bucket bound mapping for tests and documentation.
#[doc(hidden)]
pub fn le_of_bucket(index: usize) -> String {
    bucket_le(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_telemetry::Histogram;

    #[test]
    fn renders_counters_gauges_histograms() {
        let mut reg = Registry::new();
        reg.inc(Key::of("commands_total", &[("kind", "act")]), 3);
        reg.inc(Key::of("commands_total", &[("kind", "rd")]), 5);
        reg.set_gauge(Key::name("die_temperature_mc"), 45_000);
        reg.observe(Key::name("act_to_act_ps"), 0);
        reg.observe(Key::name("act_to_act_ps"), 7);
        reg.observe(Key::name("act_to_act_ps"), 9);
        let text = render_prometheus(&reg);
        let expected = "# TYPE commands_total counter\n\
                        commands_total{kind=\"act\"} 3\n\
                        commands_total{kind=\"rd\"} 5\n\
                        # TYPE die_temperature_mc gauge\n\
                        die_temperature_mc 45000\n\
                        # TYPE act_to_act_ps histogram\n\
                        act_to_act_ps_bucket{le=\"0\"} 1\n\
                        act_to_act_ps_bucket{le=\"7\"} 2\n\
                        act_to_act_ps_bucket{le=\"15\"} 3\n\
                        act_to_act_ps_bucket{le=\"+Inf\"} 3\n\
                        act_to_act_ps_sum 16\n\
                        act_to_act_ps_count 3\n";
        assert_eq!(text, expected);
        // Byte-stable on re-render.
        assert_eq!(render_prometheus(&reg), text);
    }

    #[test]
    fn type_line_appears_once_per_name() {
        let mut reg = Registry::new();
        reg.inc(Key::of("x_total", &[("a", "1")]), 1);
        reg.inc(Key::of("x_total", &[("a", "2")]), 1);
        let text = render_prometheus(&reg);
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
    }

    #[test]
    fn bucket_bounds_match_the_histogram_convention() {
        // The inclusive `le` of a bucket is one less than its exclusive
        // upper bound, consistent with Histogram::bucket_bounds.
        for idx in 1..64 {
            let (_, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(bucket_le(idx), (hi - 1).to_string());
        }
        assert_eq!(bucket_le(0), "0");
        assert_eq!(bucket_le(64), "+Inf");
    }

    #[test]
    fn hostile_names_and_values_are_sanitized() {
        let mut reg = Registry::new();
        reg.inc(Key::of("weird metric", &[("l bl", "a\"b\\c\nd")]), 1);
        let text = render_prometheus(&reg);
        assert!(text.contains("weird_metric{l_bl=\"a\\\"b\\\\c\\nd\"} 1"));
        assert_eq!(metric_name("9lives"), "_lives");
        assert_eq!(metric_name(""), "_");
    }
}
