//! Structured errors for event decoding and journal I/O.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong in this crate. Decoding corrupt input
/// yields `Decode`, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// A journal line failed to decode. `line` is 1-based; line 0 means
    /// the input was a single line with no surrounding file context.
    Decode {
        /// 1-based line number within the journal (0 for bare lines).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A filesystem operation on the journal failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, rendered.
        message: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Decode { line, message } if *line > 0 => {
                write!(f, "journal line {line}: {message}")
            }
            ObsError::Decode { message, .. } => write!(f, "event line: {message}"),
            ObsError::Io { path, message } => write!(f, "journal {path}: {message}"),
        }
    }
}

impl Error for ObsError {}

impl ObsError {
    /// A decode error for a bare line (no file context).
    pub fn decode(message: impl Into<String>) -> ObsError {
        ObsError::Decode {
            line: 0,
            message: message.into(),
        }
    }

    /// Attaches a 1-based line number to a decode error.
    pub fn at_line(self, line: usize) -> ObsError {
        match self {
            ObsError::Decode { message, .. } => ObsError::Decode { line, message },
            other => other,
        }
    }
}
