//! The shared emission point: a clonable handle that sequences events
//! into a ring buffer and mirrors them to an optional on-disk journal.
//!
//! Every layer that emits events — the fleet pool, the service cache,
//! the daemon connection loop, the anomaly sink — holds a cheap clone of
//! one [`EventBus`], so the run gets a single monotonic sequence over
//! all of them. Journal write failures never propagate into the hot
//! path: they are counted ([`EventBus::journal_errors`]) and the run
//! continues, because observability must not be able to fail the work
//! it observes.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::event::{Event, FieldValue, Severity};
use crate::journal::JournalWriter;
use crate::ring::{EventRing, SinceResult};

/// A draft event: everything but the sequence number, which the bus
/// assigns at emission. Build with the fluent setters and pass to
/// [`EventBus::emit`].
#[derive(Debug, Clone)]
pub struct EventDraft {
    severity: Severity,
    kind: String,
    run_id: Option<String>,
    job_id: Option<String>,
    shard: Option<u32>,
    fields: BTreeMap<String, FieldValue>,
    wall: BTreeMap<String, FieldValue>,
}

impl EventDraft {
    /// A draft of the given severity and kind.
    pub fn new(severity: Severity, kind: &str) -> EventDraft {
        EventDraft {
            severity,
            kind: kind.to_string(),
            run_id: None,
            job_id: None,
            shard: None,
            fields: BTreeMap::new(),
            wall: BTreeMap::new(),
        }
    }

    /// Shorthand for an `info` draft.
    pub fn info(kind: &str) -> EventDraft {
        EventDraft::new(Severity::Info, kind)
    }

    /// Shorthand for a `warn` draft.
    pub fn warn(kind: &str) -> EventDraft {
        EventDraft::new(Severity::Warn, kind)
    }

    /// Shorthand for an `error` draft.
    pub fn error(kind: &str) -> EventDraft {
        EventDraft::new(Severity::Error, kind)
    }

    /// Sets the run correlation id.
    pub fn run(mut self, id: &str) -> EventDraft {
        self.run_id = Some(id.to_string());
        self
    }

    /// Sets the job correlation id.
    pub fn job(mut self, id: &str) -> EventDraft {
        self.job_id = Some(id.to_string());
        self
    }

    /// Sets the shard index.
    pub fn shard(mut self, shard: u32) -> EventDraft {
        self.shard = Some(shard);
        self
    }

    /// Adds a deterministic unsigned field.
    pub fn field_u64(mut self, key: &str, value: u64) -> EventDraft {
        self.fields.insert(key.to_string(), FieldValue::U64(value));
        self
    }

    /// Adds a deterministic signed field (normalized to unsigned when
    /// non-negative, matching the decoder).
    pub fn field_i64(mut self, key: &str, value: i64) -> EventDraft {
        let fv = if value >= 0 {
            FieldValue::U64(value as u64)
        } else {
            FieldValue::I64(value)
        };
        self.fields.insert(key.to_string(), fv);
        self
    }

    /// Adds a deterministic string field.
    pub fn field_str(mut self, key: &str, value: &str) -> EventDraft {
        self.fields
            .insert(key.to_string(), FieldValue::Str(value.to_string()));
        self
    }

    /// Adds a deterministic boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> EventDraft {
        self.fields.insert(key.to_string(), FieldValue::Bool(value));
        self
    }

    /// Adds a wall-clock field (excluded from stable renderings).
    pub fn wall_u64(mut self, key: &str, value: u64) -> EventDraft {
        self.wall.insert(key.to_string(), FieldValue::U64(value));
        self
    }

    /// Adds the conventional wall-clock duration field `ms`.
    pub fn wall_ms(self, ms: u64) -> EventDraft {
        self.wall_u64("ms", ms)
    }

    /// Finishes the draft into an event with the given sequence number.
    pub fn into_event(self, seq: u64) -> Event {
        Event {
            seq,
            severity: self.severity,
            kind: self.kind,
            run_id: self.run_id,
            job_id: self.job_id,
            shard: self.shard,
            fields: self.fields,
            wall: self.wall,
        }
    }
}

struct BusInner {
    ring: EventRing,
    journal: Option<JournalWriter>,
    journal_errors: u64,
}

/// A clonable, thread-safe event emission handle (ring buffer plus
/// optional journal behind one mutex).
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<Mutex<BusInner>>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventBus(..)")
    }
}

/// Default ring capacity: enough for a long daemon session's recent
/// history without unbounded memory.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new(DEFAULT_RING_CAPACITY)
    }
}

impl EventBus {
    /// A bus with an in-memory ring only.
    pub fn new(capacity: usize) -> EventBus {
        EventBus {
            inner: Arc::new(Mutex::new(BusInner {
                ring: EventRing::new(capacity),
                journal: None,
                journal_errors: 0,
            })),
        }
    }

    /// A bus that also mirrors every event to an on-disk journal.
    pub fn with_journal(capacity: usize, journal: JournalWriter) -> EventBus {
        EventBus {
            inner: Arc::new(Mutex::new(BusInner {
                ring: EventRing::new(capacity),
                journal: Some(journal),
                journal_errors: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BusInner> {
        // A panic while holding the bus lock can only come from the ring
        // or journal code above; recover the data rather than cascading.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Sequences and records `draft`; returns the assigned sequence
    /// number. Journal failures are absorbed (counted, not returned).
    pub fn emit(&self, draft: EventDraft) -> u64 {
        let mut inner = self.lock();
        let event = draft.into_event(0);
        let seq = inner.ring.push(event.clone());
        if let Some(journal) = inner.journal.as_mut() {
            let mut stamped = event;
            stamped.seq = seq;
            if journal.append(&stamped).is_err() {
                inner.journal_errors += 1;
            }
        }
        seq
    }

    /// Cursor read delegated to the ring; see [`EventRing::since`].
    pub fn since(&self, seq: u64, max: usize) -> SinceResult {
        self.lock().ring.since(seq, max)
    }

    /// The sequence number the next emitted event will receive.
    pub fn next_seq(&self) -> u64 {
        self.lock().ring.next_seq()
    }

    /// Journal writes that failed and were absorbed.
    pub fn journal_errors(&self) -> u64 {
        self.lock().journal_errors
    }

    /// Flushes the journal, if any, reporting its first error.
    pub fn flush(&self) -> Result<(), crate::error::ObsError> {
        match self.lock().journal.as_mut() {
            Some(journal) => journal.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_sequences_and_since_reads_back() {
        let bus = EventBus::new(16);
        let s0 = bus.emit(EventDraft::info("a").field_u64("n", 1));
        let s1 = bus.emit(EventDraft::warn("b").run("r1").job("j1").shard(2));
        assert_eq!((s0, s1), (0, 1));
        let r = bus.since(0, 0);
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[1].kind, "b");
        assert_eq!(r.events[1].shard, Some(2));
        assert_eq!(r.next_seq, 2);
    }

    #[test]
    fn clones_share_one_sequence() {
        let bus = EventBus::new(16);
        let other = bus.clone();
        bus.emit(EventDraft::info("a"));
        other.emit(EventDraft::info("b"));
        assert_eq!(bus.next_seq(), 2);
        assert_eq!(other.since(0, 0).events.len(), 2);
    }

    #[test]
    fn field_i64_normalizes_non_negative() {
        let d = EventDraft::info("x").field_i64("a", 5).field_i64("b", -5);
        let e = d.into_event(0);
        assert_eq!(e.fields["a"], FieldValue::U64(5));
        assert_eq!(e.fields["b"], FieldValue::I64(-5));
    }

    #[test]
    fn journal_mirror_gets_the_assigned_seq() {
        let dir = std::env::temp_dir().join(format!("dram-obs-bus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let writer = JournalWriter::open(&path, crate::journal::JournalConfig::default()).unwrap();
        let bus = EventBus::with_journal(4, writer);
        bus.emit(EventDraft::info("a"));
        bus.emit(EventDraft::info("b").wall_ms(3));
        bus.flush().unwrap();
        let back = crate::journal::read_journal(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].seq, 1);
        assert_eq!(back[1].wall["ms"], FieldValue::U64(3));
        assert_eq!(bus.journal_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
