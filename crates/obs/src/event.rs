//! The structured event model and its byte-stable JSON-line codec.
//!
//! One event is one JSON object on one line, with a **fixed key order**
//! so identical events always render to identical bytes:
//!
//! ```text
//! {"seq":7,"sev":"info","kind":"cache.miss","run":"r1","job":"j1",
//!  "shard":3,"fields":{"seed":42},"wall":{"ms":12}}
//! ```
//!
//! `run`, `job`, and `shard` are omitted when absent; `fields` and
//! `wall` are omitted when empty. Keys inside `fields`/`wall` render in
//! `BTreeMap` order. [`Event::stable_line`] renders the event without
//! its `wall` map — the wall-clock-free form that digests and
//! byte-stability checks consume.
//!
//! Decoding ([`decode_event`]) is total: every malformed line maps to a
//! structured [`ObsError::Decode`], never a panic. Unknown top-level
//! keys are rejected (same strictness as the service wire protocol), so
//! a corrupted key name cannot silently drop a field.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ObsError;
use dram_perf::json::{parse, Value};

/// Event severity, ordered `Debug < Info < Warn < Error` so filters can
/// use `>=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Chatty diagnostics.
    Debug,
    /// Normal lifecycle.
    Info,
    /// Something unexpected but survivable (a simulator clock anomaly,
    /// a dropped journal write).
    Warn,
    /// Something failed (a job panicked, a request would not decode).
    Error,
}

impl Severity {
    /// The wire spelling (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the wire spelling back.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A scalar event field value.
///
/// Numbers are integers only: journal lines travel through an f64-based
/// JSON reader, so writers must keep magnitudes within 2^53 for exact
/// round-tripping (64-bit digests and the like are rendered as hex
/// strings everywhere in this repo, so in practice only picosecond
/// clocks come close, and 2^53 ps is ~2.5 hours of simulated time —
/// far beyond any campaign's clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative values normalize to `U64`).
    I64(i64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl FieldValue {
    fn render(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::Str(s) => out.push_str(&json_string(s)),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One structured, sequenced, correlated event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number assigned by the emitting bus.
    pub seq: u64,
    /// Severity.
    pub severity: Severity,
    /// Dotted kind, e.g. `job.started`, `cache.hit`, `sim.clock_anomaly`.
    pub kind: String,
    /// Correlates every event of one run (a fleet sweep, a daemon
    /// lifetime, a CLI invocation).
    pub run_id: Option<String>,
    /// Correlates every event of one job within a run.
    pub job_id: Option<String>,
    /// Shard (bank) index for sharded work.
    pub shard: Option<u32>,
    /// Deterministic payload: simulated time, counts, labels.
    pub fields: BTreeMap<String, FieldValue>,
    /// Wall-clock payload, quarantined: excluded from
    /// [`stable_line`](Event::stable_line) and from any digest.
    pub wall: BTreeMap<String, FieldValue>,
}

impl Event {
    /// Renders the full journal line (no trailing newline).
    pub fn line(&self) -> String {
        self.render(true)
    }

    /// Renders the wall-clock-free line: identical to [`line`](Event::line)
    /// except the `wall` map is omitted entirely. This is the rendering
    /// digests and byte-stability comparisons must use.
    pub fn stable_line(&self) -> String {
        self.render(false)
    }

    fn render(&self, with_wall: bool) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"sev\":\"");
        out.push_str(self.severity.as_str());
        out.push_str("\",\"kind\":");
        out.push_str(&json_string(&self.kind));
        if let Some(run) = &self.run_id {
            out.push_str(",\"run\":");
            out.push_str(&json_string(run));
        }
        if let Some(job) = &self.job_id {
            out.push_str(",\"job\":");
            out.push_str(&json_string(job));
        }
        if let Some(shard) = self.shard {
            out.push_str(",\"shard\":");
            out.push_str(&shard.to_string());
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":");
            render_map(&self.fields, &mut out);
        }
        if with_wall && !self.wall.is_empty() {
            out.push_str(",\"wall\":");
            render_map(&self.wall, &mut out);
        }
        out.push('}');
        out
    }

    /// Looks up a deterministic field.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.get(key)
    }
}

fn render_map(map: &BTreeMap<String, FieldValue>, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        v.render(out);
    }
    out.push('}');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the same convention the telemetry snapshot writer uses.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The keys an event line may carry, in their canonical render order.
const EVENT_KEYS: [&str; 8] = [
    "seq", "sev", "kind", "run", "job", "shard", "fields", "wall",
];

/// Decodes one journal line back into an [`Event`].
///
/// Total: every malformed input maps to [`ObsError::Decode`]. Unknown
/// top-level keys, wrong value types, out-of-range shards, fractional or
/// oversized numbers, and non-scalar field values are all structured
/// errors.
pub fn decode_event(line: &str) -> Result<Event, ObsError> {
    let value =
        parse("journal", line).map_err(|e| ObsError::decode(format!("not valid JSON: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| ObsError::decode("event line is not a JSON object"))?;
    for key in obj.keys() {
        if !EVENT_KEYS.contains(&key.as_str()) {
            return Err(ObsError::decode(format!("unknown key {key:?}")));
        }
    }
    let seq = obj
        .get("seq")
        .and_then(Value::as_u64)
        .ok_or_else(|| ObsError::decode("missing or non-integer \"seq\""))?;
    let severity = obj
        .get("sev")
        .and_then(Value::as_str)
        .and_then(Severity::parse)
        .ok_or_else(|| ObsError::decode("missing or unknown \"sev\""))?;
    let kind = obj
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| ObsError::decode("missing or non-string \"kind\""))?
        .to_string();
    if kind.is_empty() {
        return Err(ObsError::decode("empty \"kind\""));
    }
    let run_id = opt_string(obj.get("run"), "run")?;
    let job_id = opt_string(obj.get("job"), "job")?;
    let shard = match obj.get("shard") {
        None => None,
        Some(v) => {
            let n = v
                .as_u64()
                .filter(|&n| n <= u64::from(u32::MAX))
                .ok_or_else(|| ObsError::decode("\"shard\" is not a u32"))?;
            Some(n as u32)
        }
    };
    let fields = decode_map(obj.get("fields"), "fields")?;
    let wall = decode_map(obj.get("wall"), "wall")?;
    Ok(Event {
        seq,
        severity,
        kind,
        run_id,
        job_id,
        shard,
        fields,
        wall,
    })
}

fn opt_string(value: Option<&Value>, key: &str) -> Result<Option<String>, ObsError> {
    match value {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ObsError::decode(format!("{key:?} is not a string"))),
    }
}

fn decode_map(value: Option<&Value>, what: &str) -> Result<BTreeMap<String, FieldValue>, ObsError> {
    let Some(value) = value else {
        return Ok(BTreeMap::new());
    };
    let obj = value
        .as_object()
        .ok_or_else(|| ObsError::decode(format!("{what:?} is not an object")))?;
    let mut out = BTreeMap::new();
    for (k, v) in obj {
        let fv = match v {
            Value::String(s) => FieldValue::Str(s.clone()),
            Value::Bool(b) => FieldValue::Bool(*b),
            Value::Number(n) => decode_number(*n)
                .ok_or_else(|| ObsError::decode(format!("{what:?}.{k:?} is not an integer")))?,
            _ => return Err(ObsError::decode(format!("{what:?}.{k:?} is not a scalar"))),
        };
        out.insert(k.clone(), fv);
    }
    Ok(out)
}

/// Integer magnitudes above 2^53 cannot have round-tripped through the
/// f64 reader exactly, so they are rejected rather than silently
/// rounded.
const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53

fn decode_number(n: f64) -> Option<FieldValue> {
    if !n.is_finite() || n.fract() != 0.0 || n.abs() > MAX_EXACT {
        return None;
    }
    if n >= 0.0 {
        Some(FieldValue::U64(n as u64))
    } else {
        Some(FieldValue::I64(n as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        let mut fields = BTreeMap::new();
        fields.insert("seed".to_string(), FieldValue::U64(42));
        fields.insert("label".to_string(), FieldValue::Str("a\"b".to_string()));
        fields.insert("ok".to_string(), FieldValue::Bool(true));
        fields.insert("delta".to_string(), FieldValue::I64(-7));
        let mut wall = BTreeMap::new();
        wall.insert("ms".to_string(), FieldValue::U64(12));
        Event {
            seq: 7,
            severity: Severity::Info,
            kind: "cache.miss".to_string(),
            run_id: Some("r1".to_string()),
            job_id: Some("j1".to_string()),
            shard: Some(3),
            fields,
            wall,
        }
    }

    #[test]
    fn encode_is_fixed_order_and_round_trips() {
        let e = sample();
        let line = e.line();
        assert_eq!(
            line,
            "{\"seq\":7,\"sev\":\"info\",\"kind\":\"cache.miss\",\"run\":\"r1\",\
             \"job\":\"j1\",\"shard\":3,\"fields\":{\"delta\":-7,\"label\":\"a\\\"b\",\
             \"ok\":true,\"seed\":42},\"wall\":{\"ms\":12}}"
        );
        let back = decode_event(&line).expect("round trip");
        assert_eq!(back, e);
        // Re-encoding the decoded event reproduces the exact bytes.
        assert_eq!(back.line(), line);
    }

    #[test]
    fn stable_line_omits_wall_only() {
        let e = sample();
        let stable = e.stable_line();
        assert!(!stable.contains("wall"));
        let mut no_wall = e.clone();
        no_wall.wall.clear();
        assert_eq!(stable, no_wall.line());
        // A decoded stable line equals the event with wall stripped.
        assert_eq!(decode_event(&stable).unwrap(), no_wall);
    }

    #[test]
    fn minimal_event_omits_absent_keys() {
        let e = Event {
            seq: 0,
            severity: Severity::Warn,
            kind: "x".to_string(),
            run_id: None,
            job_id: None,
            shard: None,
            fields: BTreeMap::new(),
            wall: BTreeMap::new(),
        };
        assert_eq!(e.line(), "{\"seq\":0,\"sev\":\"warn\",\"kind\":\"x\"}");
        assert_eq!(decode_event(&e.line()).unwrap(), e);
    }

    #[test]
    fn severity_orders_and_round_trips() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        for sev in [
            Severity::Debug,
            Severity::Info,
            Severity::Warn,
            Severity::Error,
        ] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn decode_rejects_malformed_lines_with_errors() {
        let cases = [
            "",
            "null",
            "[]",
            "{\"sev\":\"info\",\"kind\":\"x\"}", // no seq
            "{\"seq\":1,\"kind\":\"x\"}",        // no sev
            "{\"seq\":1,\"sev\":\"info\"}",      // no kind
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"\"}", // empty kind
            "{\"seq\":1,\"sev\":\"loud\",\"kind\":\"x\"}", // bad sev
            "{\"seq\":-1,\"sev\":\"info\",\"kind\":\"x\"}", // negative seq
            "{\"seq\":1.5,\"sev\":\"info\",\"kind\":\"x\"}", // fractional
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"zz\":1}", // unknown key
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"shard\":4294967296}",
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"run\":7}",
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"fields\":[]}",
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"fields\":{\"a\":null}}",
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"fields\":{\"a\":{}}}",
            "{\"seq\":1,\"sev\":\"info\",\"kind\":\"x\",\"fields\":{\"a\":1e99}}",
        ];
        for line in cases {
            let err = decode_event(line).expect_err(line);
            assert!(matches!(err, ObsError::Decode { .. }), "{line}");
        }
    }

    #[test]
    fn numbers_reject_precision_loss_accept_exact() {
        assert_eq!(decode_number(0.0), Some(FieldValue::U64(0)));
        assert_eq!(decode_number(-3.0), Some(FieldValue::I64(-3)));
        assert_eq!(decode_number(MAX_EXACT), Some(FieldValue::U64(1 << 53)));
        assert_eq!(decode_number(MAX_EXACT * 2.0), None);
        assert_eq!(decode_number(f64::NAN), None);
        assert_eq!(decode_number(0.5), None);
    }
}
