//! # dram-obs
//!
//! The observability layer of the DRAMScope reproduction: a structured
//! event model with correlation ids, an in-memory ring buffer with
//! `since_seq` cursors, an append-only on-disk journal with size-based
//! rotation, and a Prometheus text-format renderer for the existing
//! `dram-telemetry` [`Registry`](dram_telemetry::Registry).
//!
//! Characterization campaigns are long, multi-phase sweeps; a daemon
//! serving them needs an audit trail of *what happened when* — jobs
//! queued, started, finished, panicked; cache hits and misses;
//! connections opened; simulator anomalies — not just end-of-run
//! snapshots. Every such happening is an [`Event`]:
//!
//! * a **monotonic sequence number** assigned by the emitting
//!   [`EventBus`], so tails can resume exactly where they left off;
//! * a [`Severity`] (`debug` < `info` < `warn` < `error`);
//! * a dotted **kind** (`job.started`, `cache.hit`, `sim.clock_anomaly`)
//!   naming what happened;
//! * **correlation ids** — `run_id`, `job_id`, `shard` — tying the event
//!   to the work it belongs to, so a journal can be filtered down to one
//!   job's complete lifecycle;
//! * ordered key-value **fields** carrying the payload.
//!
//! ## Determinism rules
//!
//! The repo-wide contract is byte-stable output for identical
//! `(profile, seed)` inputs, and events must not be the thing that
//! breaks it. Two rules keep them honest:
//!
//! 1. Every payload derived from simulation carries **simulated** time
//!    (picoseconds of the chip clock) in ordinary `fields`, and those
//!    fields are byte-stable.
//! 2. Wall-clock measurements live only in the clearly separated
//!    [`Event::wall`] map. [`Event::stable_line`] renders an event
//!    *without* that map — that rendering is the one digests, golden
//!    fixtures, and byte-stability CI checks consume, mirroring the
//!    telemetry crate's `host-clock` opt-in.
//!
//! ## Totality
//!
//! Journal decoding is **total**: any byte-level corruption of a journal
//! line comes back as a structured [`ObsError`], never a panic — the
//! same discipline `dram-trace` applies to its binary format and
//! `dramscope-service` to its wire protocol.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod error;
pub mod event;
pub mod journal;
pub mod prometheus;
pub mod ring;
pub mod sink;

pub use bus::{EventBus, EventDraft, DEFAULT_RING_CAPACITY};
pub use error::ObsError;
pub use event::{decode_event, Event, FieldValue, Severity};
pub use journal::{read_journal, scan_journal, JournalConfig, JournalWriter};
pub use prometheus::render_prometheus;
pub use ring::EventRing;
pub use sink::AnomalySink;

/// Schema identifier carried by journal files (documentation-level; the
/// line format itself is versioned by [`SCHEMA_VERSION`]).
pub const SCHEMA: &str = "dramscope.obs";

/// Event line schema version. Bump when the encoded field set or its
/// ordering changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;
