//! Totality fuzz for the event decoder: every byte-level corruption of
//! a valid journal line must come back as a structured error (or a
//! valid decode), never a panic — the same discipline the wire
//! protocol's `protocol_totality` tests enforce for requests, applied
//! to the journal format. Plus the golden fixture: a checked-in journal
//! whose every line must decode and re-encode to the exact same bytes,
//! so the rendering can never drift without the diff showing it.

use dram_obs::{decode_event, scan_journal, Event, FieldValue, Severity};

/// A reference line exercising all eight keys: correlation ids, shard,
/// signed/unsigned/string/bool fields, and a quarantined wall key.
const VALID: &str = r#"{"seq":42,"sev":"warn","kind":"sim.clock_anomaly","run":"r-1","job":"mfr_a_x4_2016","shard":3,"fields":{"at_ps":1500,"delta":-25,"interval":"act_to_act","note":"tab\there \"quoted\"","ok":false},"wall":{"ms":12}}"#;

/// A tiny deterministic PRNG (xorshift64*) so the fuzz corpus is
/// reproducible without any dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn the_reference_line_decodes_and_reencodes_byte_identically() {
    let event = decode_event(VALID).expect("reference line decodes");
    assert_eq!(event.seq, 42);
    assert_eq!(event.severity, Severity::Warn);
    assert_eq!(event.kind, "sim.clock_anomaly");
    assert_eq!(event.run_id.as_deref(), Some("r-1"));
    assert_eq!(event.job_id.as_deref(), Some("mfr_a_x4_2016"));
    assert_eq!(event.shard, Some(3));
    assert_eq!(event.fields["delta"], FieldValue::I64(-25));
    assert_eq!(
        event.fields["note"],
        FieldValue::Str("tab\there \"quoted\"".to_string())
    );
    assert_eq!(event.line(), VALID);
    // The stable rendering drops exactly the wall map.
    assert!(!event.stable_line().contains("wall"));
    assert!(event.stable_line().contains("at_ps"));
}

#[test]
fn truncation_at_every_byte_is_a_structured_error() {
    for cut in 0..VALID.len() {
        let prefix = &VALID[..cut];
        let result = decode_event(prefix);
        assert!(
            result.is_err(),
            "prefix of {cut} bytes decoded as {result:?}"
        );
    }
}

#[test]
fn single_byte_mutations_never_panic_and_survivors_round_trip() {
    let bytes = VALID.as_bytes();
    let replacements: &[u8] = b"\0\x01 {}[]\",:xtrue9\\\x7f\xff";
    for pos in 0..bytes.len() {
        for &b in replacements {
            let mut mutated = bytes.to_vec();
            mutated[pos] = b;
            // Invalid UTF-8 mutations are the file reader's problem (it
            // errors before decoding); the decoder only sees strings.
            let Ok(line) = std::str::from_utf8(&mutated) else {
                continue;
            };
            if let Ok(event) = decode_event(line) {
                // A mutation that still decodes must have produced a
                // canonically renderable event: encode → decode is
                // lossless even for corrupted-but-valid survivors.
                let rendered = event.line();
                let back = decode_event(&rendered)
                    .unwrap_or_else(|e| panic!("re-decode of {rendered:?} failed: {e}"));
                assert_eq!(back, event, "round trip drifted for {line:?}");
            }
        }
    }
}

#[test]
fn random_garbage_lines_never_panic() {
    let mut rng = Rng(0x5ca1e);
    for _ in 0..2000 {
        let len = (rng.next() % 256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() % 128) as u8).collect();
        if let Ok(line) = std::str::from_utf8(&bytes) {
            let _ = decode_event(line);
        }
    }
    // Structured garbage: random splices of journal vocabulary.
    let vocab = [
        "{",
        "}",
        "[",
        "]",
        ":",
        ",",
        "\"seq\"",
        "\"sev\"",
        "\"info\"",
        "\"kind\"",
        "\"job.started\"",
        "\"fields\"",
        "\"wall\"",
        "\"shard\"",
        "42",
        "null",
        "true",
        "-1",
        "1e999",
        "9007199254740993",
        "\"",
        "\\",
    ];
    for _ in 0..2000 {
        let n = (rng.next() % 24) as usize;
        let line: String = (0..n)
            .map(|_| vocab[(rng.next() % vocab.len() as u64) as usize])
            .collect();
        let _ = decode_event(&line);
    }
}

#[test]
fn scan_salvages_every_decodable_line_of_a_mutated_journal() {
    // Corrupt one line of a three-line journal at every position; the
    // other two lines must always come back intact.
    let lines = [VALID, VALID, VALID];
    for pos in 0..VALID.len() {
        let mut mutated = VALID.as_bytes().to_vec();
        mutated[pos] = b'\x01';
        let Ok(bad) = std::str::from_utf8(&mutated) else {
            continue;
        };
        let text = format!("{}\n{bad}\n{}\n", lines[0], lines[2]);
        let ok = scan_journal(&text).filter(Result::is_ok).count();
        assert!(ok >= 2, "mutation at byte {pos} hid a good line");
    }
}

#[test]
fn golden_journal_replays_byte_identically() {
    let text = include_str!("golden.jsonl");
    let events: Vec<Event> = scan_journal(text)
        .collect::<Result<_, _>>()
        .expect("every golden line decodes");
    assert_eq!(events.len(), 10);
    // Replayed bytes: re-encoding every decoded event reproduces the
    // fixture exactly.
    let replayed: String = events
        .iter()
        .flat_map(|e| [e.line(), "\n".into()])
        .collect();
    assert_eq!(replayed, text, "golden journal drifted");
    // Sequence numbers are dense and monotonic.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    // Spot checks across the severity range and key shapes.
    assert_eq!(events[0].severity, Severity::Info);
    assert_eq!(events[5].severity, Severity::Warn);
    assert_eq!(events[6].severity, Severity::Error);
    assert_eq!(events[8].severity, Severity::Debug);
    assert_eq!(events[3].run_id.as_deref(), Some("r9"));
    assert_eq!(events[3].shard, Some(2));
    assert_eq!(
        events[6].fields["message"],
        FieldValue::Str("boom: \"quoted\" backslash\\ tab\t".to_string())
    );
    assert_eq!(events[7].fields["delta"], FieldValue::I64(-3));
    assert_eq!(
        events[4].wall["unix_ms"],
        FieldValue::U64(1_700_000_000_000)
    );
    // Wall-clock keys are quarantined: the stable rendering of the
    // whole journal carries no "wall" key anywhere.
    let stable: String = events
        .iter()
        .flat_map(|e| [e.stable_line(), "\n".into()])
        .collect();
    assert!(!stable.contains("\"wall\""));
}
