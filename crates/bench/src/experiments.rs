//! Experiment drivers for every table and figure of the paper's
//! evaluation. Each driver returns a printable report; the `src/bin/*`
//! binaries are thin wrappers. Run them in release mode:
//!
//! ```text
//! cargo run --release -p dramscope-bench --bin table3
//! ```

use dram_module::Dimm;
use dram_sim::{ChipProfile, DramChip, Time};
use dram_testbed::Testbed;
use dramscope_core::fleet;
use dramscope_core::hammer::Attack;
use dramscope_core::mapping;
use dramscope_core::observations::ObservationSuite;
use dramscope_core::patterns::{
    nibble_pattern_row, physical_image, writer_for_physical, CellLayout, CellPatternBuilder,
    DataPattern,
};
use dramscope_core::protect::{self, AttackStrategy, MisraGries, RowSwapDefense, Scrambler};
use dramscope_core::report::{Series, Table};
use dramscope_core::rowcopy_probe;
use dramscope_core::{hammer, swizzle_re};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt::Write as _;

/// The fixed silicon seed used by all experiment binaries.
pub const SEED: u64 = 0x5ca1e;

/// A suite on the Mfr. A ×4 2021 device (the microscopic-analysis device
/// of §V), probing inside its first interior subarray (832..1664).
fn suite_2021() -> ObservationSuite {
    ObservationSuite::with_profile_range(ChipProfile::mfr_a_x4_2021(), SEED, 840, 896)
}

/// Table I: the device population — the same jobs the fleet engine
/// characterizes in parallel ([`fleet::table1_jobs`]).
pub fn table1() -> Result<String, Box<dyn Error>> {
    let mut t = Table::new(vec![
        "profile",
        "vendor",
        "type",
        "density",
        "year",
        "rows/bank",
        "row bits",
    ]);
    for p in fleet::table1_jobs().into_iter().map(|j| j.profile) {
        t.row(vec![
            p.label(),
            p.vendor.to_string(),
            p.io_width.to_string(),
            format!("{}Gb", p.density_gbit),
            if p.year == 0 {
                "N/A".into()
            } else {
                p.year.to_string()
            },
            p.rows_per_bank.to_string(),
            p.row_bits.to_string(),
        ]);
    }
    Ok(format!(
        "Table I — simulated device population (one profile per distinct structure)\n{t}"
    ))
}

/// Summarizes a height sequence as Table III does ("11 x 640 + 2 x 576").
pub fn summarize_heights(heights: &[u32]) -> String {
    if heights.is_empty() {
        return "(none)".into();
    }
    // Find the shortest repeating block.
    let block_len = (1..=heights.len())
        .find(|&k| {
            heights
                .iter()
                .enumerate()
                .all(|(i, h)| *h == heights[i % k])
        })
        .unwrap_or(heights.len());
    let block = &heights[..block_len];
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &h in block {
        *counts.entry(h).or_default() += 1;
    }
    let body = counts
        .iter()
        .rev()
        .map(|(h, c)| format!("{c} x {h}-row"))
        .collect::<Vec<_>>()
        .join(" + ");
    let total: u32 = block.iter().sum();
    format!("{body} (per {total})")
}

/// Table III: discover subarray composition, edge interval, and coupled
/// distance of every distinct structure, via RowCopy probing.
pub fn table3() -> Result<String, Box<dyn Error>> {
    let profiles = vec![
        ChipProfile::mfr_a_x4_2016(),
        ChipProfile::mfr_a_x4_2018(),
        ChipProfile::mfr_a_x8_2017(),
        ChipProfile::mfr_a_x8_2018(),
        ChipProfile::mfr_b_x4_2019(),
        ChipProfile::mfr_b_x8_2017(),
        ChipProfile::mfr_c_x4_2018(),
        ChipProfile::mfr_c_x8_2016(),
        ChipProfile::mfr_c_x8_2019(),
        ChipProfile::hbm2_mfr_a(),
    ];
    let mut t = Table::new(vec![
        "device",
        "subarray composition (measured)",
        "edge interval",
        "coupled distance",
        "matches ground truth",
    ]);
    // Each device probes independently, so fan the population out on the
    // fleet engine; rows come back in the population order above.
    let rows = fleet::parallel_map(&profiles, 0, |p| {
        let label = p.label();
        let gt_comp = summarize_heights(&{
            let chip = DramChip::new(p.clone(), SEED);
            chip.ground_truth().composition
        });
        let mut tb = Testbed::new(DramChip::new(p.clone(), SEED));
        let scan_end = 8193.min(tb.rows());
        let heights = rowcopy_probe::subarray_heights(&mut tb, 0, 0..scan_end)?;
        let comp = summarize_heights(&heights);
        let edge = rowcopy_probe::detect_edge_interval(&mut tb, 0)?;
        let coupled = rowcopy_probe::detect_coupled_rows(&mut tb, 0)?;
        let gt = tb.chip().ground_truth();
        let ok =
            comp == gt_comp && edge == Some(gt.edge_interval_wls) && coupled == gt.coupled_distance;
        Ok(vec![
            label,
            comp,
            edge.map_or("?".into(), |e| format!("per {}K rows", e >> 10)),
            coupled.map_or("N/A".into(), |d| format!("{}K rows", d >> 10)),
            if ok { "yes".into() } else { "NO".into() },
        ])
    });
    for row in rows {
        t.row(row?);
    }
    Ok(format!(
        "Table III — structures discovered through the command interface\n{t}"
    ))
}

/// Fig. 5: the RCD-inversion pitfall — naive hammering shows a
/// "non-adjacent" victim; mapping-aware analysis predicts every flip.
pub fn fig5_pitfalls() -> Result<String, Box<dyn Error>> {
    let mut out = String::new();
    let dimm = Dimm::new(ChipProfile::mfr_b_x4_2019(), 4, SEED);
    let mut mtb = mapping::ModuleTestbed::new(dimm);

    // Aggressor crossing a low-3-bit carry: the B-side neighbour maps to
    // a distant controller row.
    let aggressor = 1031;
    let expected = mapping::aware_expected_victims(mtb.dimm(), aggressor);
    writeln!(
        out,
        "Fig. 5 — common pitfall 1 (RCD B-side address inversion)"
    )?;
    writeln!(out, "aggressor (controller row): {aggressor}")?;
    writeln!(out, "mapping-aware victim prediction: {expected:?}")?;

    let mut scan: Vec<u32> = (aggressor - 4..aggressor + 5).collect();
    scan.extend(expected.iter().copied());
    scan.sort_unstable();
    scan.dedup();
    let flips = mapping::hammer_and_scan_module(&mut mtb, 0, aggressor, &scan, 2_000_000)?;
    let mut t = Table::new(vec!["controller row", "chip", "side", "flips"]);
    for f in &flips {
        let side = format!("{:?}", mtb.dimm().side_of(f.chip));
        t.row(vec![
            f.row.to_string(),
            f.chip.to_string(),
            side,
            f.flips.to_string(),
        ]);
    }
    writeln!(out, "{t}")?;
    let far = flips
        .iter()
        .filter(|f| f.row.abs_diff(aggressor) > 8)
        .count();
    writeln!(
        out,
        "naive interpretation: {far} victim locations look 'non-adjacent' — \
         all of them are B-side chips whose RCD address was inverted."
    )?;

    // Pitfall 3: the per-chip view of a naive uniform pattern.
    let per_chip = mapping::naive_pattern_per_chip(mtb.dimm(), 0x5555);
    writeln!(
        out,
        "common pitfall 3 (DQ twisting): controller writes 0x5 per nibble lane; \
         chips receive {per_chip:x?}"
    )?;
    Ok(out)
}

/// Fig. 7: the recovered data swizzling of a Mfr. A ×4 chip.
pub fn fig7_swizzle() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 7 — data swizzling of Mfr. A x4 (recovered through AIB + RowCopy)"
    )?;
    writeln!(
        out,
        "RD_data of one column is collected from {} MATs of width {} cells (O1/O2)",
        layout.row_bits() / layout.mat_width(),
        layout.mat_width()
    )?;
    let k = layout.rd_bits() / (layout.row_bits() / layout.mat_width());
    writeln!(
        out,
        "per-MAT chunk order (RD bits, physical left to right):"
    )?;
    for m in 0..layout.row_bits() / layout.mat_width() {
        let chunk: Vec<u32> = (0..k)
            .map(|i| layout.cell_at(m * layout.mat_width() + i).1)
            .collect();
        writeln!(out, "  MAT {m}: {chunk:?}")?;
    }
    let gt_swizzle = {
        let mut probe = suite_2021();
        probe.testbed_mut().chip().ground_truth().swizzle
    };
    let gt_layout = CellLayout::from_swizzle(&gt_swizzle, layout.row_bits(), layout.mat_width());
    let mut agree = true;
    'outer: for col in 1..layout.cols() - 1 {
        for bit in 0..layout.rd_bits() {
            let mut a = gt_layout.neighbors(col, bit, 1);
            let mut b = layout.neighbors(col, bit, 1);
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                agree = false;
                break 'outer;
            }
        }
    }
    writeln!(
        out,
        "neighbour relations agree with ground truth: {}",
        if agree { "yes" } else { "NO" }
    )?;
    Ok(out)
}

/// Fig. 8: what naive ColStripe/Checkered writes physically land as.
pub fn fig8_patterns() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let mut out = String::new();
    writeln!(out, "Fig. 8 — naive patterns vs their physical arrangement")?;
    for (name, pattern) in [
        ("ColStripe", DataPattern::ColStripe),
        ("Checkered (even row)", DataPattern::Checkered),
    ] {
        let img = physical_image(&layout, |c| pattern.naive_rd(0, c, layout.rd_bits()));
        let window: String = img[..48.min(img.len())]
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        writeln!(
            out,
            "{name}: intended alternation 0101..., lands as {window}... \
             (longest equal run {})",
            dramscope_core::patterns::longest_run(&img)
        )?;
    }
    writeln!(
        out,
        "a true physical ColStripe requires the recovered swizzle \
         (writer_for_physical), as used by every §V experiment."
    )?;
    Ok(out)
}

/// Fig. 10: BER of typical vs edge subarrays for (aggr, vic) = (0,1) and
/// (1,0), on DDR4 and HBM2.
pub fn fig10_edge_ber() -> Result<String, Box<dyn Error>> {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 10 — AIB BER by subarray type (victim pattern inverse of aggressor)"
    )?;
    for (name, profile, edge_aggr, interior_aggr) in [
        (
            "DDR4 (Mfr. A x4 2021)",
            ChipProfile::mfr_a_x4_2021(),
            10u32,
            850u32,
        ),
        ("HBM2 (Mfr. A)", ChipProfile::hbm2_mfr_a(), 10, 850),
    ] {
        let mut tb = Testbed::new(DramChip::new(profile, SEED));
        let cfg = dramscope_core::hammer::AibConfig {
            bank: 0,
            attack: Attack::Hammer { count: 1_800_000 },
        };
        let run = |tb: &mut Testbed, aggr: u32, vic_pat: u64, aggr_pat: u64| {
            hammer::measure_victim_flips(tb, cfg, aggr, aggr + 1, &|_| vic_pat, &|_| aggr_pat)
                .map(|r| r.len())
        };
        let cells = tb.chip().profile().row_bits as f64;
        let t01_edge = run(&mut tb, edge_aggr, u64::MAX, 0)? as f64 / cells;
        let t01_int = run(&mut tb, interior_aggr, u64::MAX, 0)? as f64 / cells;
        let t10_edge = run(&mut tb, edge_aggr, 0, u64::MAX)? as f64 / cells;
        let t10_int = run(&mut tb, interior_aggr, 0, u64::MAX)? as f64 / cells;
        let mut s = Series::new(format!("{name}: BER by (aggr,vic) and subarray type"));
        s.push("(0,1) typical", t01_int)
            .push("(0,1) edge", t01_edge)
            .push("(1,0) typical", t10_int)
            .push("(1,0) edge", t10_edge);
        writeln!(out, "{s}")?;
        writeln!(
            out,
            "edge/typical ratio: (0,1) {:.2}, (1,0) {:.2} — edge lower, most for aggr=1\n",
            t01_edge / t01_int.max(1e-12),
            t10_edge / t10_int.max(1e-12)
        )?;
    }
    Ok(out)
}

/// Fig. 12: BER vs physically-remapped bit index (mod 32) for RowPress and
/// RowHammer, by victim charge state and aggressor direction.
pub fn fig12_profile() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    // Fixed relative wordline parity — the paper's "even WL" selection.
    let triples = suite.triples_with_parity(12, 0)?;
    let press = Attack::Press {
        count: 24_000,
        each_on: Time::from_ns(7_800),
    };
    let hammer_attack = Attack::Hammer { count: 600_000 };

    let mut out = String::new();
    writeln!(
        out,
        "Fig. 12 — flips by physical bit index mod 32 (Mfr. A x4, even-WL victims)"
    )?;
    for (mech_name, attack) in [("RowPress", press), ("RowHammer", hammer_attack)] {
        for (vic_name, vic_value) in [("charged", true), ("discharged", false)] {
            for (dir_name, use_up) in [("upper", true), ("lower", false)] {
                let vic = suite.solid_cols(if vic_value { u64::MAX } else { 0 });
                let aggr = suite.solid_cols(if vic_value { 0 } else { u64::MAX });
                let mut hist = vec![0u64; 32];
                for &(v, up, down) in &triples {
                    let a = if use_up { up } else { down };
                    for rec in suite.measure(a, v, attack, &vic, &aggr)? {
                        hist[(layout.position(rec.col, rec.bit) % 32) as usize] += 1;
                    }
                }
                let total: u64 = hist.iter().sum();
                let contrast = dramscope_core::analysis::alternation_contrast(&hist);
                let parity = if dramscope_core::analysis::dominant_parity(&hist) {
                    "even"
                } else {
                    "odd"
                };
                let line: Vec<String> = hist.iter().map(|h| h.to_string()).collect();
                writeln!(
                    out,
                    "{mech_name:9} {vic_name:10} {dir_name:5} aggressor | total {total:5} | contrast {contrast:6.1} ({parity}) | {}",
                    line.join(" ")
                )?;
            }
        }
    }
    writeln!(
        out,
        "\nexpected shape: alternating strong/weak buckets; reversal between \
         upper/lower direction and between charged/discharged (hammer); \
         RowPress discharged rows stay silent."
    )?;
    Ok(out)
}

/// Fig. 13: flips by gate class (A/B), charge state, and mechanism.
pub fn fig13_gate_types() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let chain = suite.phys_chain()?;
    let triples = suite.triples(12)?;
    let chain_index: BTreeMap<u32, usize> =
        chain.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    let press = Attack::Press {
        count: 24_000,
        each_on: Time::from_ns(7_800),
    };
    let hammer_attack = Attack::Hammer { count: 600_000 };

    let mut out = String::new();
    writeln!(
        out,
        "Fig. 13 — flips by gate type (A/B up to a global swap), charge, mechanism"
    )?;
    let mut t = Table::new(vec!["mechanism", "victim state", "gate A", "gate B"]);
    for (mech_name, attack) in [("RowPress", press), ("RowHammer", hammer_attack)] {
        for (vic_name, vic_value) in [("charged", true), ("discharged", false)] {
            let vic = suite.solid_cols(if vic_value { u64::MAX } else { 0 });
            let aggr = suite.solid_cols(if vic_value { 0 } else { u64::MAX });
            let mut gate = [0u64; 2];
            for &(v, up, down) in &triples {
                let vi = chain_index[&v];
                for (a, dir_up) in [(up, true), (down, false)] {
                    for rec in suite.measure(a, v, attack, &vic, &aggr)? {
                        let pos = layout.position(rec.col, rec.bit);
                        // Gate class: parity of (cell position + victim
                        // chain index + direction) — stable up to the
                        // global A/B ambiguity the paper also has.
                        let class = (pos as usize + vi + usize::from(dir_up)) % 2;
                        gate[class] += 1;
                    }
                }
            }
            t.row(vec![
                mech_name.into(),
                vic_name.into(),
                gate[0].to_string(),
                gate[1].to_string(),
            ]);
        }
    }
    writeln!(out, "{t}")?;
    writeln!(
        out,
        "expected: RowPress only in the charged state (both gates, one stronger); \
         RowHammer in both states, each state dominated by the opposite gate (O9/O10)."
    )?;
    Ok(out)
}

/// Fig. 14: relative BER under victim-side and aggressor-side horizontal
/// data-pattern changes.
pub fn fig14_horizontal() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let triples = suite.triples(10)?;
    // Boost measurements need headroom below BER = 1 (see O11).
    let attack = ObservationSuite::moderate_hammer();

    let targets: Vec<(u32, u32)> = (0..layout.row_bits())
        .filter(|p| p % 8 == 4)
        .map(|p| layout.cell_at(p))
        .collect();
    let count_targets = |layout: &CellLayout, recs: &[dram_testbed::BitflipRecord]| {
        recs.iter()
            .filter(|r| layout.position(r.col, r.bit) % 8 == 4)
            .count() as u64
    };

    let mut out = String::new();
    writeln!(
        out,
        "Fig. 14 — horizontal data-pattern influence on RowHammer BER"
    )?;
    let mut t = Table::new(vec![
        "quantity",
        "Vic0=0 measured",
        "Vic0=0 paper",
        "Vic0=1 measured",
        "Vic0=1 paper",
    ]);

    // (a) victim side.
    let mut vic_rows: Vec<Vec<f64>> = Vec::new();
    for vic_value in [false, true] {
        let base_cols = suite.solid_cols(if vic_value { u64::MAX } else { 0 });
        let aggr_cols = suite.solid_cols(if vic_value { 0 } else { u64::MAX });
        let mut variants: Vec<Vec<u64>> = Vec::new();
        for dists in [&[1u32][..], &[2], &[1, 2]] {
            let mut b = CellPatternBuilder::solid(&layout, vic_value);
            for &(c, bit) in &targets {
                for &d in dists {
                    b.set_neighbors(c, bit, d, !vic_value);
                }
            }
            variants.push(b.columns());
        }
        let mut counts = [0u64; 4];
        for &(v, up, _) in &triples {
            counts[0] += count_targets(
                &layout,
                &suite.measure(up, v, attack, &base_cols, &aggr_cols)?,
            );
            for (i, var) in variants.iter().enumerate() {
                counts[i + 1] +=
                    count_targets(&layout, &suite.measure(up, v, attack, var, &aggr_cols)?);
            }
        }
        vic_rows.push(
            counts[1..]
                .iter()
                .map(|&c| c as f64 / counts[0].max(1) as f64)
                .collect(),
        );
    }
    for (i, (name, p0, p1)) in [
        ("(a) Vic±1 opposite", "1.12", "1.00"),
        ("(a) Vic±2 opposite", "1.54", "1.35"),
        ("(a) Vic±1,±2 opposite", "~1.7", "~1.5"),
    ]
    .iter()
    .enumerate()
    {
        t.row(vec![
            (*name).into(),
            format!("{:.2}", vic_rows[0][i]),
            (*p0).into(),
            format!("{:.2}", vic_rows[1][i]),
            (*p1).into(),
        ]);
    }

    // (b) aggressor side (cumulative sets, baseline aggressor opposite).
    let mut aggr_rows: Vec<Vec<f64>> = Vec::new();
    for vic_value in [false, true] {
        let vic_cols = suite.solid_cols(if vic_value { u64::MAX } else { 0 });
        let mut variants: Vec<Vec<u64>> =
            vec![suite.solid_cols(if vic_value { 0 } else { u64::MAX })];
        for dists in [&[0u32][..], &[0, 1], &[0, 1, 2]] {
            let mut b = CellPatternBuilder::solid(&layout, !vic_value);
            for &(c, bit) in &targets {
                for &d in dists {
                    if d == 0 {
                        b.set_cell(c, bit, vic_value);
                    } else {
                        b.set_neighbors(c, bit, d, vic_value);
                    }
                }
            }
            variants.push(b.columns());
        }
        let mut counts = [0u64; 4];
        for &(v, up, _) in &triples {
            for (i, var) in variants.iter().enumerate() {
                counts[i] += count_targets(&layout, &suite.measure(up, v, attack, &vic_cols, var)?);
            }
        }
        aggr_rows.push(
            counts[1..]
                .iter()
                .map(|&c| c as f64 / counts[0].max(1) as f64)
                .collect(),
        );
    }
    for (i, (name, p0, p1)) in [
        ("(b) Aggr0 same", "0.58", "0.72"),
        ("(b) Aggr0,±1 same", "0.46", "0.58"),
        ("(b) Aggr0,±1,±2 same", "0.38", "0.08"),
    ]
    .iter()
    .enumerate()
    {
        t.row(vec![
            (*name).into(),
            format!("{:.2}", aggr_rows[0][i]),
            (*p0).into(),
            format!("{:.2}", aggr_rows[1][i]),
            (*p1).into(),
        ]);
    }
    writeln!(out, "{t}")?;
    Ok(out)
}

/// Fig. 15: relative H_cnt as victim-neighbour data changes.
pub fn fig15_hcnt() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let triples = suite.triples(3)?;

    let mut out = String::new();
    writeln!(
        out,
        "Fig. 15 — relative H_cnt (aggressor always opposite of Vic0)"
    )?;
    let mut t = Table::new(vec![
        "pattern",
        "Vic0=0 measured",
        "Vic0=0 paper",
        "Vic0=1 measured",
        "Vic0=1 paper",
    ]);
    let mut measured: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (vi, vic_value) in [false, true].into_iter().enumerate() {
        let (v, up, _) = triples[0];
        let base_cols = suite.solid_cols(if vic_value { u64::MAX } else { 0 });
        let aggr_cols = suite.solid_cols(if vic_value { 0 } else { u64::MAX });
        // Find the weakest interior target under the baseline pattern.
        let recs = suite.measure(
            up,
            v,
            ObservationSuite::strong_hammer(),
            &base_cols,
            &aggr_cols,
        )?;
        let target = recs
            .iter()
            .map(|r| (r.col, r.bit))
            .find(|&(c, b)| {
                let p = layout.position(c, b) % layout.mat_width();
                (4..layout.mat_width() - 4).contains(&p)
            })
            .ok_or("no interior weak cell")?;
        let tb = suite.testbed_mut();
        let base = hammer::hcnt_for_cell(
            tb,
            0,
            up,
            v,
            &|_| if vic_value { u64::MAX } else { 0 },
            &|_| if vic_value { 0 } else { u64::MAX },
            target,
            8_000_000,
        )?
        .count
        .ok_or("baseline never flipped")? as f64;
        for dists in [&[1u32][..], &[2], &[1, 2]] {
            let mut b = CellPatternBuilder::solid(&layout, vic_value);
            for &d in dists {
                b.set_neighbors(target.0, target.1, d, !vic_value);
            }
            let cols = b.columns();
            let tb = suite.testbed_mut();
            let adv = hammer::hcnt_for_cell(
                tb,
                0,
                up,
                v,
                &|c| cols[c as usize],
                &|_| if vic_value { 0 } else { u64::MAX },
                target,
                8_000_000,
            )?
            .count
            .ok_or("variant never flipped")? as f64;
            measured[vi].push(adv / base);
        }
    }
    for (i, (name, p0, p1)) in [
        ("Vic±1 opposite", "0.95", "0.91"),
        ("Vic±2 opposite", "0.87", "0.91"),
        ("Vic±1,±2 opposite", "0.81", "0.90"),
    ]
    .iter()
    .enumerate()
    {
        t.row(vec![
            (*name).into(),
            format!("{:.3}", measured[0][i]),
            (*p0).into(),
            format!("{:.3}", measured[1][i]),
            (*p1).into(),
        ]);
    }
    writeln!(out, "{t}")?;
    Ok(out)
}

/// A normalized 16×16 BER matrix (victim nibble × aggressor nibble).
pub type SweepMatrix = Vec<Vec<f64>>;

/// Fig. 16: the 16×16 sweep of physically 4-bit-repeating victim and
/// aggressor patterns. Returns the report and the normalized matrix.
pub fn fig16_sweep() -> Result<(String, SweepMatrix), Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let triples = suite.triples(4)?;
    let attack = Attack::Hammer { count: 1_200_000 };

    let mut counts = vec![vec![0u64; 16]; 16];
    for vic_nib in 0..16u8 {
        let vic_cols = nibble_pattern_row(&layout, vic_nib);
        for aggr_nib in 0..16u8 {
            let aggr_cols = nibble_pattern_row(&layout, aggr_nib);
            let mut c = 0;
            for &(v, up, _) in &triples {
                c += suite.measure(up, v, attack, &vic_cols, &aggr_cols)?.len() as u64;
            }
            counts[vic_nib as usize][aggr_nib as usize] = c;
        }
    }
    let baseline = counts[0xF][0x0].max(1) as f64;
    let matrix: Vec<Vec<f64>> = counts
        .iter()
        .map(|row| row.iter().map(|&c| c as f64 / baseline).collect())
        .collect();

    let mut out = String::new();
    writeln!(
        out,
        "Fig. 16 — BER of 4-bit repeating (victim, aggressor) patterns, \
         normalized to (0xF, 0x0); rows = victim nibble, cols = aggressor nibble"
    )?;
    write!(out, "      ")?;
    for a in 0..16 {
        write!(out, " a={a:<4x}")?;
    }
    writeln!(out)?;
    let mut worst = (0.0f64, 0usize, 0usize);
    for (v, row) in matrix.iter().enumerate() {
        write!(out, "v={v:<2x} |")?;
        for (a, &val) in row.iter().enumerate() {
            write!(out, " {val:5.2}")?;
            if val > worst.0 {
                worst = (val, v, a);
            }
        }
        writeln!(out)?;
    }
    writeln!(
        out,
        "worst case: victim 0x{:x}, aggressor 0x{:x} at {:.2}x baseline \
         (paper: 0x3/0xC at 1.69x)",
        worst.1, worst.2, worst.0
    )?;
    Ok((out, matrix))
}

/// Fig. 17: the worst-case adversarial pattern vs the baseline, with
/// finer statistics.
pub fn fig17_worst_case() -> Result<String, Box<dyn Error>> {
    let mut suite = suite_2021();
    let layout = suite.layout()?;
    let triples = suite.triples(12)?;
    let attack = Attack::Hammer { count: 1_200_000 };
    let mut base = 0u64;
    let mut adv = 0u64;
    for &(v, up, _) in &triples {
        base += suite
            .measure(
                up,
                v,
                attack,
                &nibble_pattern_row(&layout, 0xF),
                &nibble_pattern_row(&layout, 0x0),
            )?
            .len() as u64;
        adv += suite
            .measure(
                up,
                v,
                attack,
                &nibble_pattern_row(&layout, 0x3),
                &nibble_pattern_row(&layout, 0xC),
            )?
            .len() as u64;
    }
    Ok(format!(
        "Fig. 17 — worst-case adversarial pattern (victim 0x3 / aggressor 0xC physical)\n\
         baseline (0xF/0x0): {base} flips; adversarial: {adv} flips; \
         ratio {:.2}x (paper: 1.69x)\n\
         the pattern pairs opposite vertical neighbours with 2-bit repeating \
         horizontal runs, exploiting O11 (Vic±2) and O12 (Aggr opposite).\n",
        adv as f64 / base.max(1) as f64
    ))
}

/// §VI: attack-vs-defense evaluation, including the coupled-row split and
/// data scrambling against the adversarial pattern.
pub fn sec6_protection() -> Result<String, Box<dyn Error>> {
    let mut out = String::new();
    writeln!(out, "Section VI — attacks and protections")?;

    // Coupled-row scenarios on the coupled test chip.
    let mk = || Testbed::new(DramChip::new(ChipProfile::test_small_coupled(), SEED));
    let aggr = 45;
    let victims = [44u32, 46];
    let mut probe = mk();
    let n_star = protect::first_flip_count(&mut probe, 0, aggr, &[44, 46, 1068, 1070], 8_000_000)?
        .ok_or("no flips at ceiling")?;
    writeln!(out, "first-flip activation count (N*): {n_star}")?;

    let mut t = Table::new(vec!["scenario", "victim flips", "mitigations", "verdict"]);
    {
        // Coupled split so the flip count covers both wordline halves —
        // 2 x N* total dose guarantees at least one deterministic flip.
        let mut tb = mk();
        let mut noop = MisraGries::new(u64::MAX, 16);
        let o = protect::run_attack(
            &mut tb,
            &mut noop,
            aggr,
            AttackStrategy::CoupledSplit { distance: 1024 },
            n_star * 2,
            n_star / 8,
        )?;
        t.row(vec![
            "unprotected, coupled split".into(),
            o.victim_flips.to_string(),
            o.mitigations.to_string(),
            "flips".into(),
        ]);
    }
    {
        let mut tb = mk();
        let mut mg = MisraGries::new(n_star / 2, 16);
        let o = protect::run_attack(
            &mut tb,
            &mut mg,
            aggr,
            AttackStrategy::SingleRow,
            n_star * 3,
            n_star / 8,
        )?;
        t.row(vec![
            "Misra-Gries tracker, single row".into(),
            o.victim_flips.to_string(),
            o.mitigations.to_string(),
            "safe".into(),
        ]);
    }
    {
        let mut tb = mk();
        let mut mg = MisraGries::new(n_star / 3, 16);
        let o = protect::run_attack(
            &mut tb,
            &mut mg,
            aggr,
            AttackStrategy::CoupledSplit { distance: 1024 },
            n_star * 3,
            n_star / 8,
        )?;
        t.row(vec![
            "oblivious tracker, coupled split".into(),
            o.victim_flips.to_string(),
            o.mitigations.to_string(),
            "safe (refresh-based), 2x tracked rows".into(),
        ]);
    }
    {
        let mut tb = mk();
        let mut mg = MisraGries::new(n_star / 3, 16).with_coupled_awareness(1024);
        let o = protect::run_attack(
            &mut tb,
            &mut mg,
            aggr,
            AttackStrategy::CoupledSplit { distance: 1024 },
            n_star * 3,
            n_star / 8,
        )?;
        t.row(vec![
            "coupled-aware tracker, coupled split".into(),
            o.victim_flips.to_string(),
            o.mitigations.to_string(),
            "safe, folds the pair".into(),
        ]);
    }
    {
        let threshold = 3 * n_star / 4;
        let mut tb = mk();
        let mut d = RowSwapDefense::new(threshold, 1500);
        let o = protect::run_attack_rowswap(
            &mut tb,
            &mut d,
            aggr,
            AttackStrategy::SingleRow,
            n_star * 2,
            threshold / 4,
        )?;
        t.row(vec![
            "row swap (RRS-like), single row".into(),
            o.victim_flips.to_string(),
            o.mitigations.to_string(),
            "safe (relocated)".into(),
        ]);
        let per_address = (threshold - 1) / 4 * 4;
        let mut tb2 = mk();
        let mut d2 = RowSwapDefense::new(threshold, 1500);
        let o2 = protect::run_attack_rowswap(
            &mut tb2,
            &mut d2,
            aggr,
            AttackStrategy::CoupledSplit { distance: 1024 },
            2 * per_address,
            per_address / 4,
        )?;
        t.row(vec![
            "row swap, coupled split (sub-threshold)".into(),
            o2.victim_flips.to_string(),
            o2.mitigations.to_string(),
            "BYPASSED (O3 vulnerability)".into(),
        ]);
    }
    writeln!(out, "{t}")?;

    // Data scrambling vs the adversarial pattern (on the small chip with
    // its ground-truth layout standing in for a completed RE pass).
    let tb = mk();
    let gt = tb.chip().ground_truth();
    let layout = CellLayout::from_swizzle(&gt.swizzle, tb.chip().profile().row_bits, gt.mat_width);
    let attack_count = 8 * n_star;
    let scramble_eval =
        |tb: &mut Testbed, scrambler: Option<Scrambler>| -> Result<u64, Box<dyn Error>> {
            let vic_cols = nibble_pattern_row(&layout, 0x3);
            let aggr_cols = nibble_pattern_row(&layout, 0xC);
            let apply = |s: &Option<Scrambler>, row: u32, col: u32, d: u64| match s {
                Some(sc) => sc.apply(row, col, d) & 0xFFFF_FFFF,
                None => d,
            };
            for (row, cols) in [(44, &vic_cols), (46, &vic_cols), (45, &aggr_cols)] {
                tb.write_row_with(0, row, |c| apply(&scrambler, row, c, cols[c as usize]))?;
            }
            tb.hammer(0, 45, attack_count)?;
            let mut flips = 0u64;
            for v in victims {
                let data = tb.read_row(0, v)?;
                for (c, &got) in data.iter().enumerate() {
                    let want = apply(&scrambler, v, c as u32, vic_cols[c]);
                    flips += (got ^ want).count_ones() as u64;
                }
            }
            Ok(flips)
        };
    let none = scramble_eval(&mut mk(), None)?;
    let row_keyed = scramble_eval(&mut mk(), Some(Scrambler::row_keyed(0xFEED)))?;
    let row_col = scramble_eval(&mut mk(), Some(Scrambler::row_col_keyed(0xFEED)))?;
    // Reference: the baseline solid pattern under the same dose.
    let mut tbb = mk();
    let base = {
        tbb.write_row_pattern(0, 44, 0xFFFF_FFFF)?;
        tbb.write_row_pattern(0, 46, 0xFFFF_FFFF)?;
        tbb.write_row_pattern(0, 45, 0)?;
        tbb.hammer(0, 45, attack_count)?;
        let mut f = 0u64;
        for v in victims {
            f += tbb
                .read_row(0, v)?
                .iter()
                .map(|d| (!d & 0xFFFF_FFFF).count_ones() as u64)
                .sum::<u64>();
        }
        f
    };
    writeln!(
        out,
        "adversarial-pattern flips at 8xN*: none {none}, row-keyed scrambler {row_keyed}, \
         row+col-keyed {row_col} (solid baseline {base})"
    )?;
    writeln!(
        out,
        "scrambling destroys the attacker's physical pattern; row+column keying \
         also removes the residual column structure (§VI-B)."
    )?;

    Ok(out)
}

/// §VI-B extension: in-DRAM TRR reverse engineering and RFM-based
/// mitigation of the coupled-row split.
pub fn trr_study() -> Result<String, Box<dyn Error>> {
    use dramscope_core::trr_re::{self, TrrVerdict};
    let mut out = String::new();
    writeln!(
        out,
        "In-DRAM mitigation study (TRRespass/U-TRR-style probing + DDR5 RFM)"
    )?;

    let aggr = 20u32;
    let victims = [19u32, 21];
    let mut t = Table::new(vec![
        "device",
        "TRR verdict",
        "sampler bound (decoys to bypass)",
    ]);
    for (name, entries) in [
        ("no TRR", 0usize),
        ("TRR, 1-entry sampler", 1),
        ("TRR, 2-entry sampler", 2),
    ] {
        let mut mk = || {
            let p = if entries == 0 {
                ChipProfile::test_small()
            } else {
                ChipProfile::test_small().with_trr(entries)
            };
            Testbed::new(DramChip::new(p, SEED))
        };
        let verdict = trr_re::detect_trr(&mut mk, 0, aggr, &victims, 200_000, 12)?;
        let bound = if verdict == TrrVerdict::Present {
            trr_re::estimate_sampler_size(&mut mk, 0, aggr, &victims, 70, 6, 200_000, 12)?
                .map_or("> 6".into(), |d| d.to_string())
        } else {
            "-".into()
        };
        t.row(vec![name.into(), format!("{verdict:?}"), bound]);
    }
    writeln!(out, "{t}")?;

    // RFM folds coupled aliases inside the DRAM (§VI-B).
    let mk_coupled = || {
        Testbed::new(DramChip::new(
            ChipProfile::test_small_coupled().with_trr(2),
            SEED,
        ))
    };
    let mut probe = mk_coupled();
    let n_star = protect::first_flip_count(&mut probe, 0, 45, &[44, 46, 1068, 1070], 8_000_000)?
        .ok_or("no first flip")?;
    let mut tb = mk_coupled();
    let rfm = protect::run_attack_with_rfm(
        &mut tb,
        protect::RfmPolicy { raaimt: n_star / 3 },
        45,
        AttackStrategy::CoupledSplit { distance: 1024 },
        3 * n_star,
        n_star / 8,
    )?;
    writeln!(
        out,
        "coupled split vs MC-driven RFM (RAAIMT = N*/3): {} victim flips after {} RFMs \
         — the in-DRAM sampler works on wordlines, folding the aliases automatically.",
        rfm.victim_flips, rfm.mitigations
    )?;
    Ok(out)
}

/// §VI-C extension: the power side channel and on-die ECC detection.
pub fn side_channels() -> Result<String, Box<dyn Error>> {
    use dramscope_core::{ecc_probe, power_channel};
    let mut out = String::new();
    writeln!(out, "Power side channel (§VI-C) and on-die ECC detection")?;

    // Edge-interval recovery from activation power alone, on the
    // full-size coupled device — cross-validating O5 without RowCopy.
    let mut tb = Testbed::new(DramChip::new(ChipProfile::mfr_a_x4_2016(), SEED));
    let interval = power_channel::edge_interval_from_power(&mut tb, 0, 64)?;
    let gt = tb.chip().ground_truth().edge_interval_wls;
    writeln!(
        out,
        "edge interval from the power rail: {interval:?} rows (RowCopy/ground truth: {gt})"
    )?;

    // Covert channel: 16 bits through row-selection power.
    let mut small = Testbed::new(DramChip::new(ChipProfile::test_small(), SEED));
    let bits: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    let decoded = power_channel::transmit(&mut small, 0, 10, 50, &bits)?;
    writeln!(
        out,
        "covert channel (edge vs interior rows): {}/{} bits decoded correctly",
        decoded.iter().zip(&bits).filter(|(a, b)| a == b).count(),
        bits.len()
    )?;

    // On-die ECC detection from the first-visible-corruption signature.
    for (name, ecc) in [("plain chip", false), ("on-die-ECC chip", true)] {
        let mut mk = move || {
            let p = if ecc {
                ChipProfile::test_small().with_on_die_ecc()
            } else {
                ChipProfile::test_small()
            };
            Testbed::new(DramChip::new(p, SEED))
        };
        let v = ecc_probe::detect_on_die_ecc(&mut mk, 0, 20, 19, 8_000_000)?;
        writeln!(out, "{name}: ECC verdict {v:?}")?;
    }
    Ok(out)
}

/// Full black-box dossier of the flagship device (also available per
/// device via the `characterize` binary).
pub fn dossier_report() -> Result<String, Box<dyn Error>> {
    use dramscope_core::dossier::{characterize, CharacterizeOptions};
    let opts = CharacterizeOptions {
        with_swizzle: true,
        probe_range: (648, 704),
        ..CharacterizeOptions::default()
    };
    let d = characterize(&ChipProfile::mfr_a_x4_2016(), SEED, opts)?;
    Ok(d.to_string())
}

/// The parallel fleet run over the full Table I population: one worker
/// per device, deterministic per-profile seeds, per-device run stats.
/// Prints the human summary table followed by the machine-readable
/// JSON-lines run report (also available via `characterize fleet`).
pub fn fleet_report() -> Result<String, Box<dyn Error>> {
    let jobs = fleet::table1_jobs();
    let report = fleet::run_fleet(&jobs, SEED, fleet::FleetConfig::default());
    let mut out = String::new();
    writeln!(
        out,
        "Fleet characterization — {} profiles on {} workers, {:.0} ms wall",
        report.results.len(),
        report.workers,
        report.wall_ms
    )?;
    out.push_str(&report.table());
    writeln!(out, "\nRun report (JSON lines):")?;
    out.push_str(&report.json_lines());
    Ok(out)
}

/// The observation suite as a printable report (used by the
/// `observations` binary).
pub fn observations_report() -> Result<String, Box<dyn Error>> {
    let mut suite = ObservationSuite::new(SEED);
    let mut out = String::from("Observations O1-O14 on Mfr. A x4 2016 (seed 0x5ca1e)\n");
    for r in suite.run_all()? {
        writeln!(out, "{r}")?;
    }
    Ok(out)
}

/// A fast structural sanity kernel used by the smoke tests.
pub fn quick_structural_kernel() -> Result<usize, Box<dyn Error>> {
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), SEED));
    let heights = rowcopy_probe::subarray_heights(&mut tb, 0, 0..129)?;
    Ok(heights.len())
}

/// A fast swizzle-influence kernel used by the smoke tests.
pub fn quick_influence_kernel() -> Result<usize, Box<dyn Error>> {
    let mut tb = Testbed::new(DramChip::new(ChipProfile::test_small(), SEED));
    let setup =
        swizzle_re::ProbeSetup::from_ranges(0, &[(65, 80)], Attack::Hammer { count: 2_600_000 });
    Ok(swizzle_re::influence_edges(&mut tb, &setup)?.len())
}

/// A fast pattern-image kernel used by the smoke tests.
pub fn quick_pattern_kernel() -> usize {
    let chip = DramChip::new(ChipProfile::test_small(), SEED);
    let gt = chip.ground_truth();
    let layout = CellLayout::from_swizzle(&gt.swizzle, 256, gt.mat_width);
    let cols = writer_for_physical(&layout, |p| p % 4 < 2);
    physical_image(&layout, |c| cols[c as usize]).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_summary_matches_table_iii_format() {
        let mut block = vec![640u32; 11];
        block.extend([576, 576]);
        let mut two_blocks = block.clone();
        two_blocks.extend(block);
        assert_eq!(
            summarize_heights(&two_blocks),
            "11 x 640-row + 2 x 576-row (per 8192)"
        );
        assert_eq!(
            summarize_heights(&[832, 832, 832, 832, 768]),
            "4 x 832-row + 1 x 768-row (per 4096)"
        );
        assert_eq!(
            summarize_heights(&[688, 680, 680, 688, 680, 680]),
            "1 x 688-row + 2 x 680-row (per 2048)"
        );
        assert_eq!(summarize_heights(&[]), "(none)");
    }

    #[test]
    fn quick_kernels_run() {
        assert_eq!(quick_structural_kernel().unwrap(), 4);
        assert!(quick_pattern_kernel() == 256);
    }
}
